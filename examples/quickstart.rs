//! Quickstart: information channels, IRS computation, influence oracle and
//! top-k influence maximization on the paper's running example.
//!
//! Run with: `cargo run --release --example quickstart`

use infprop::irs::greedy_top_k_paper;
use infprop::prelude::*;

fn main() {
    // The interaction network of Figure 1a in the paper (a..f = 0..5):
    // eight timestamped directed interactions.
    let net = infprop::datasets::toy::figure1a();
    println!(
        "network: {} nodes, {} interactions, time span {}",
        net.num_nodes(),
        net.num_interactions(),
        net.time_span()
    );

    // --- Exact influence-reachability sets (paper Algorithm 2) ----------
    let window = Window(3); // information is stale after 3 time units
    let exact = ExactIrs::compute(&net, window);
    for u in net.node_ids() {
        let reachable: Vec<String> = exact
            .irs_sorted(u)
            .into_iter()
            .map(|v| v.to_string())
            .collect();
        println!("sigma_3({u}) = {{{}}}", reachable.join(", "));
    }

    // λ(a, c): the earliest time a message from `a` can have reached `c`.
    if let Some(lambda) = exact.lambda(NodeId(0), NodeId(2)) {
        println!("lambda(a, c) = {lambda}");
    }

    // --- Approximate IRS with versioned HyperLogLog (Algorithm 3) -------
    let approx = ApproxIrs::compute(&net, window);
    for u in net.node_ids() {
        println!(
            "node {u}: exact |IRS| = {}, sketch estimate = {:.2}",
            exact.irs_size(u),
            approx.irs_size_estimate(u)
        );
    }

    // --- Influence oracle: union cardinality for any seed set -----------
    let oracle = exact.oracle();
    let seeds = [NodeId(0), NodeId(4)];
    println!(
        "Inf({{a, e}}) = {}  (union of their reachability sets)",
        oracle.influence(&seeds)
    );

    // --- Greedy influence maximization (Algorithm 4) --------------------
    for pick in greedy_top_k(&oracle, 3) {
        println!(
            "selected {} (marginal {}, cumulative {})",
            pick.node, pick.marginal, pick.cumulative
        );
    }
    // The paper's verbatim Algorithm 4 gives the same selections:
    assert_eq!(greedy_top_k(&oracle, 3), greedy_top_k_paper(&oracle, 3));

    // --- Evaluate the chosen seeds under the TCIC cascade model ---------
    let seeds: Vec<NodeId> = greedy_top_k(&oracle, 2)
        .into_iter()
        .map(|s| s.node)
        .collect();
    let cfg = TcicConfig::new(window, 1.0).with_runs(1);
    println!(
        "TCIC spread of {:?} at p = 1.0: {}",
        seeds,
        tcic_spread(&net, &seeds, &cfg)
    );
}
