//! Find the most influential senders in an email-style interaction network
//! and compare the paper's IRS method against static baselines under the
//! TCIC cascade model — a miniature of the paper's Figure 5 experiment.
//!
//! Run with: `cargo run --release --example email_influencers`

use infprop::prelude::*;

fn main() {
    // An Enron-shaped synthetic email network (~0.5% of the real dataset's
    // size; swap in the real SNAP edge list via `infprop::graph::io` if you
    // have it).
    let dataset = infprop::datasets::profiles::enron_like(7).build(0.005);
    let net = &dataset.network;
    let stats = NetworkStats::compute(net, dataset.units_per_day);
    println!("dataset {}: {stats}", dataset.name);

    // Window: 1% of the time span, the paper's most temporal setting.
    let window = net.window_from_percent(1.0);
    println!("window = {} time units", window.get());

    let k = 10;

    // IRS (approximate, beta = 512) greedy seeds.
    let irs = ApproxIrs::compute(net, window);
    let irs_seeds: Vec<NodeId> = greedy_top_k(&irs.oracle(), k)
        .into_iter()
        .map(|s| s.node)
        .collect();

    // Static baselines.
    let static_graph = net.to_static();
    let hd = high_degree(&static_graph, k);
    let shd = smart_high_degree(&static_graph, k);
    let pr = infprop::baselines::pagerank_top_k(
        &static_graph,
        k,
        &infprop::baselines::PageRankConfig::default(),
    );

    // Evaluate all seed sets under TCIC at p = 0.5.
    let cfg = TcicConfig::new(window, 0.5)
        .with_runs(100)
        .with_seed(1)
        .with_threads(4);
    let eval = |name: &str, seeds: &[NodeId]| {
        println!(
            "{name:<14} seeds {:?} -> avg spread {:.1}",
            seeds.iter().map(|n| n.0).collect::<Vec<_>>(),
            tcic_spread(net, seeds, &cfg)
        );
    };
    eval("IRS(approx)", &irs_seeds);
    eval("High Degree", &hd);
    eval("Smart HD", &shd);
    eval("PageRank", &pr);

    // How different are temporal and static pictures? Count common seeds.
    let overlap = irs_seeds.iter().filter(|s| hd.contains(s)).count();
    println!("IRS and High-Degree share {overlap}/{k} seeds at this window");
}
