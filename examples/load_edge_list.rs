//! Load a real interaction log from a SNAP-style edge list (`src dst time`
//! per line, `#` comments) and run the full pipeline on it: statistics,
//! approximate IRS, influence oracle, top-k seeds.
//!
//! Run with:
//! `cargo run --release --example load_edge_list -- path/to/edges.txt`
//! (without an argument, a small bundled sample of an email log is used).

use infprop::graph::io;
use infprop::prelude::*;
use std::io::Write;

const SAMPLE: &str = "\
# tiny email log: sender receiver unix-day
alice bob 1
alice carol 2
bob dave 3
carol dave 4
dave erin 5
alice dave 6
erin frank 7
dave frank 9
bob erin 10
frank alice 12
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let loaded = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading {path}");
            io::read_interactions_path(&path)?
        }
        None => {
            // Write the bundled sample to a temp file to demonstrate the
            // file-based loader end to end.
            let path = std::env::temp_dir().join("infprop-sample-edges.txt");
            std::fs::File::create(&path)?.write_all(SAMPLE.as_bytes())?;
            println!("no path given; using bundled sample at {}", path.display());
            io::read_interactions_path(&path)?
        }
    };

    let net = &loaded.network;
    let stats = NetworkStats::compute(net, 1);
    println!("loaded: {stats}");

    let window = net.window_from_percent(40.0);
    let irs = ApproxIrs::compute(net, window);
    let oracle = irs.oracle();
    println!("window = {} time units", window.get());

    for pick in greedy_top_k(&oracle, 3) {
        // Map dense ids back to the original labels via the interner.
        let label = loaded
            .interner
            .label(pick.node)
            .unwrap_or("<unknown>")
            .to_owned();
        println!(
            "influencer {label:<8} estimated reach {:.1} (cumulative {:.1})",
            pick.marginal, pick.cumulative
        );
    }
    Ok(())
}
