//! A production-shaped workflow on top of the library's extension APIs:
//!
//! 1. **stream** a reverse-ordered interaction feed into sketches without
//!    materializing the log ([`ApproxIrsStream`]),
//! 2. **persist** the influence oracle to a compact binary file and serve
//!    `Inf(S)` queries from the reloaded artefact,
//! 3. **audit** a suspicious pair by extracting the explicit information
//!    channel ([`find_channel`]) that could have leaked the message, and
//! 4. **stress** the chosen seeds under both cascade models (TCIC and the
//!    TC-LT extension) to check model robustness.
//!
//! Run with: `cargo run --release --example audit_and_serve`

use infprop::irs::ApproxOracle;
use infprop::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = infprop::datasets::profiles::facebook_like(21).build(0.003);
    let net = &dataset.network;
    let window = net.window_from_percent(10.0);
    println!(
        "network: {} nodes, {} interactions | window {} ticks",
        net.num_nodes(),
        net.num_interactions(),
        window.get()
    );

    // 1. Stream the log in reverse time order (as a log-shipper would).
    let mut stream = ApproxIrsStream::new(window);
    for i in net.iter_reverse() {
        stream.push(*i)?;
    }
    let irs = stream.finish();
    println!(
        "streamed {} interactions into sketches",
        net.num_interactions()
    );

    // 2. Persist the oracle, reload it, serve queries.
    let path = std::env::temp_dir().join("infprop-demo-oracle.bin");
    {
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path)?);
        irs.oracle().write_to(&mut w)?;
    }
    let oracle = {
        let mut r = std::io::BufReader::new(std::fs::File::open(&path)?);
        ApproxOracle::read_from(&mut r)?
    };
    let bytes = std::fs::metadata(&path)?.len();
    println!("oracle persisted: {bytes} bytes on disk");

    let top = greedy_top_k(&oracle, 5);
    let seeds: Vec<NodeId> = top.iter().map(|s| s.node).collect();
    println!(
        "top-5 seeds {:?} -> Inf(S) = {:.0}",
        seeds.iter().map(|n| n.0).collect::<Vec<_>>(),
        oracle.influence(&seeds)
    );

    // 3. Audit: how could information get from the top seed to the node it
    // reaches latest? Show the explicit channel.
    let source = seeds[0];
    if let Some((target, channel)) = infprop::irs::channels_from(net, source, window)
        .into_iter()
        .max_by_key(|(_, c)| c.end_time())
    {
        println!(
            "latest-reached node from {source}: {target} via {} hops (duration {}):",
            channel.hops.len(),
            channel.duration()
        );
        for hop in &channel.hops {
            println!("  {} -> {} @ {}", hop.src, hop.dst, hop.time);
        }
    }

    // 4. Model robustness: same seeds under both cascade models.
    let tcic_cfg = TcicConfig::new(window, 0.5).with_runs(100).with_seed(9);
    let weights = LtWeights::from_network(net);
    println!(
        "TCIC spread: {:.1} | TC-LT spread: {:.1}",
        tcic_spread(net, &seeds, &tcic_cfg),
        tclt_spread(net, &weights, &seeds, window, 100, 9)
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
