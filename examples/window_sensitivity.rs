//! The paper's closing observation (Table 5): the most influential nodes
//! change drastically with the window length, so influence maximization
//! must be window-aware. This example sweeps ω on a bursty cascade-style
//! network and reports how the top-10 changes.
//!
//! Run with: `cargo run --release --example window_sensitivity`

use infprop::prelude::*;

fn main() {
    // A Higgs-shaped burst-heavy retweet network.
    let dataset = infprop::datasets::profiles::higgs_like(3).build(0.01);
    let net = &dataset.network;
    println!(
        "dataset {}: {} nodes, {} interactions over {:.1} days",
        dataset.name,
        net.num_nodes(),
        net.num_interactions(),
        net.time_span() as f64 / dataset.units_per_day as f64
    );

    let percents = [1.0, 5.0, 10.0, 20.0, 50.0];
    let mut tops: Vec<Vec<NodeId>> = Vec::new();
    for &pct in &percents {
        let window = net.window_from_percent(pct);
        let irs = ApproxIrs::compute(net, window);
        let oracle = irs.oracle();
        let top: Vec<NodeId> = greedy_top_k(&oracle, 10)
            .into_iter()
            .map(|s| s.node)
            .collect();
        let influence = oracle.influence(&top);
        println!(
            "w = {pct:>4}%: top-10 = {:?} | Inf = {:.0}",
            top.iter().map(|n| n.0).collect::<Vec<_>>(),
            influence
        );
        tops.push(top);
    }

    println!("\ncommon seeds between window pairs (cf. paper Table 5):");
    for i in 0..percents.len() {
        for j in (i + 1)..percents.len() {
            let common = tops[i].iter().filter(|s| tops[j].contains(s)).count();
            println!("  {:>4}% vs {:>4}%: {common}/10", percents[i], percents[j]);
        }
    }
}
