//! Criterion benchmarks for IRS construction (the cost behind Figure 3):
//! exact vs approximate one-pass builds, the generic engine driven directly
//! (wrapper-overhead check), and the reverse-vs-forward ablation on a small
//! input.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use infprop_core::engine::{ExactStore, ReversePassEngine, VhllStore};
use infprop_core::{brute_force_irs_all, ApproxIrs, ExactIrs};
use infprop_datasets::synthetic::SyntheticConfig;
use infprop_temporal_graph::InteractionNetwork;

fn network(nodes: usize, interactions: usize) -> InteractionNetwork {
    SyntheticConfig::new(nodes, interactions, interactions as i64 * 10)
        .with_seed(99)
        .generate()
}

fn bench_exact_vs_approx(c: &mut Criterion) {
    let net = network(2_000, 20_000);
    let window = net.window_from_percent(10.0);
    let mut group = c.benchmark_group("irs_build_20k_interactions");
    group.sample_size(10);
    group.bench_function("exact", |b| {
        b.iter(|| black_box(ExactIrs::compute(&net, window).total_entries()))
    });
    group.bench_function("approx_beta512", |b| {
        b.iter(|| black_box(ApproxIrs::compute(&net, window).total_entries()))
    });
    group.bench_function("approx_beta64", |b| {
        b.iter(|| black_box(ApproxIrs::compute_with_precision(&net, window, 6).total_entries()))
    });
    // The same passes through the bare generic engine: these must track the
    // wrapper numbers above within noise, or a wrapper grew overhead.
    group.bench_function("engine_exact_store", |b| {
        b.iter(|| {
            let store =
                ReversePassEngine::run(&net, window, ExactStore::with_nodes(net.num_nodes()));
            black_box(store.summaries().len())
        })
    });
    group.bench_function("engine_vhll_store", |b| {
        b.iter(|| {
            let store =
                ReversePassEngine::run(&net, window, VhllStore::with_nodes(9, net.num_nodes()));
            black_box(store.sketches().len())
        })
    });
    group.finish();
}

fn bench_window_sweep(c: &mut Criterion) {
    let net = network(1_000, 10_000);
    let mut group = c.benchmark_group("approx_build_vs_window");
    group.sample_size(10);
    for pct in [1.0f64, 10.0, 50.0, 100.0] {
        let window = net.window_from_percent(pct);
        group.bench_with_input(BenchmarkId::from_parameter(pct as u64), &window, |b, &w| {
            b.iter(|| black_box(ApproxIrs::compute(&net, w).total_entries()))
        });
    }
    group.finish();
}

fn bench_reverse_vs_forward(c: &mut Criterion) {
    // Small input: the forward brute force is quadratic.
    let net = network(200, 1_500);
    let window = net.window_from_percent(10.0);
    let mut group = c.benchmark_group("reverse_vs_forward_1500");
    group.sample_size(10);
    group.bench_function("reverse_one_pass", |b| {
        b.iter(|| black_box(ExactIrs::compute(&net, window).total_entries()))
    });
    group.bench_function("forward_brute_force", |b| {
        b.iter(|| black_box(brute_force_irs_all(&net, window).len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_vs_approx,
    bench_window_sweep,
    bench_reverse_vs_forward
);
criterion_main!(benches);
