//! Criterion benchmarks for the extension APIs: channel-witness
//! extraction, sliding-contact profiles, and sketch serialization.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use infprop_core::{find_channel, ApproxIrs, ContactDirection, InfluenceOracle, SlidingContacts};
use infprop_datasets::synthetic::SyntheticConfig;
use infprop_temporal_graph::{InteractionNetwork, NodeId};

fn network() -> InteractionNetwork {
    SyntheticConfig::new(1_000, 10_000, 100_000)
        .with_seed(12)
        .generate()
}

fn bench_channel_witness(c: &mut Criterion) {
    let net = network();
    let window = net.window_from_percent(10.0);
    c.bench_function("find_channel_10k_interactions", |b| {
        let mut pair = 0u32;
        b.iter(|| {
            pair = (pair + 7) % 1_000;
            black_box(find_channel(
                &net,
                NodeId(pair),
                NodeId((pair + 13) % 1_000),
                window,
            ))
        })
    });
}

fn bench_sliding_profile(c: &mut Criterion) {
    let net = network();
    let window = net.window_from_percent(10.0);
    let mut group = c.benchmark_group("sliding_contacts");
    group.sample_size(20);
    group.bench_function("build_10k", |b| {
        b.iter(|| {
            black_box(
                SlidingContacts::build(&net, window, ContactDirection::Outgoing, 9).num_nodes(),
            )
        })
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let net = network();
    let irs = ApproxIrs::compute(&net, net.window_from_percent(10.0));
    let oracle = irs.oracle();
    let mut bytes = Vec::new();
    oracle.write_to(&mut bytes).unwrap();
    let mut group = c.benchmark_group("oracle_codec");
    group.bench_function("write", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(bytes.len());
            oracle.write_to(&mut out).unwrap();
            black_box(out.len())
        })
    });
    group.bench_function("read", |b| {
        b.iter(|| {
            black_box(
                infprop_core::ApproxOracle::read_from(&mut bytes.as_slice())
                    .unwrap()
                    .num_nodes(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_channel_witness,
    bench_sliding_profile,
    bench_codec
);
criterion_main!(benches);
