//! Criterion benchmarks for influence-oracle queries (Figure 4's cost):
//! seed-set influence and marginal-gain probes on both oracles.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use infprop_core::{ApproxIrs, ExactIrs, InfluenceOracle};
use infprop_datasets::synthetic::SyntheticConfig;
use infprop_temporal_graph::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_oracle_query(c: &mut Criterion) {
    let net = SyntheticConfig::new(3_000, 30_000, 300_000)
        .with_seed(4)
        .generate();
    let window = net.window_from_percent(20.0);
    let approx = ApproxIrs::compute(&net, window);
    let oracle = approx.oracle();
    let mut rng = SmallRng::seed_from_u64(8);
    let mut group = c.benchmark_group("approx_oracle_influence");
    for seeds in [10usize, 100, 1_000] {
        let set: Vec<NodeId> = (0..seeds)
            .map(|_| NodeId(rng.gen_range(0..3_000)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(seeds), &set, |b, set| {
            b.iter(|| black_box(oracle.influence(set)))
        });
    }
    group.finish();
}

fn bench_marginal_gain(c: &mut Criterion) {
    let net = SyntheticConfig::new(2_000, 20_000, 200_000)
        .with_seed(5)
        .generate();
    let window = net.window_from_percent(20.0);
    let exact = ExactIrs::compute(&net, window);
    let approx = ApproxIrs::compute(&net, window);
    let eo = exact.oracle();
    let ao = approx.oracle();

    let mut eu = eo.empty_union();
    let mut au = ao.empty_union();
    for s in 0..20u32 {
        eo.absorb(&mut eu, NodeId(s));
        ao.absorb(&mut au, NodeId(s));
    }
    let mut group = c.benchmark_group("marginal_gain_probe");
    group.bench_function("exact", |b| {
        b.iter(|| black_box(eo.marginal_gain(&eu, NodeId(777))))
    });
    group.bench_function("approx_beta512", |b| {
        b.iter(|| black_box(ao.marginal_gain(&au, NodeId(777))))
    });
    group.finish();
}

criterion_group!(benches, bench_oracle_query, bench_marginal_gain);
criterion_main!(benches);
