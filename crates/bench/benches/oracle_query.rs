//! Criterion benchmarks for influence-oracle queries (Figure 4's cost):
//! seed-set influence and marginal-gain probes on both oracles.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use infprop_core::{ApproxIrs, ExactIrs, InfluenceOracle};
use infprop_datasets::synthetic::SyntheticConfig;
use infprop_temporal_graph::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_oracle_query(c: &mut Criterion) {
    let net = SyntheticConfig::new(3_000, 30_000, 300_000)
        .with_seed(4)
        .generate();
    let window = net.window_from_percent(20.0);
    let approx = ApproxIrs::compute(&net, window);
    let oracle = approx.oracle();
    let mut rng = SmallRng::seed_from_u64(8);
    let mut group = c.benchmark_group("approx_oracle_influence");
    for seeds in [10usize, 100, 1_000] {
        let set: Vec<NodeId> = (0..seeds)
            .map(|_| NodeId(rng.gen_range(0..3_000)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(seeds), &set, |b, set| {
            b.iter(|| black_box(oracle.influence(set)))
        });
    }
    group.finish();
}

/// Frozen-arena queries: the per-query kernel versus the true batch API
/// (`influence_many_frozen`) over the same fixed query file, so the
/// dedup/scratch/ILP amortization of the batch path is measured directly
/// against its per-query floor.
fn bench_frozen_batch(c: &mut Criterion) {
    let net = SyntheticConfig::new(3_000, 30_000, 300_000)
        .with_seed(4)
        .generate();
    let window = net.window_from_percent(20.0);
    let frozen = ApproxIrs::compute(&net, window).freeze();
    let mut rng = SmallRng::seed_from_u64(9);
    let queries: Vec<Vec<NodeId>> = (0..64)
        .map(|_| (0..8).map(|_| NodeId(rng.gen_range(0..3_000))).collect())
        .collect();
    let mut group = c.benchmark_group("frozen_oracle_influence");
    group.bench_function("per_query_x64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for q in &queries {
                acc += frozen.influence(q);
            }
            black_box(acc)
        })
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("batch_x64", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(frozen.influence_many_frozen(&queries, threads))),
        );
    }
    group.finish();
}

fn bench_marginal_gain(c: &mut Criterion) {
    let net = SyntheticConfig::new(2_000, 20_000, 200_000)
        .with_seed(5)
        .generate();
    let window = net.window_from_percent(20.0);
    let exact = ExactIrs::compute(&net, window);
    let approx = ApproxIrs::compute(&net, window);
    let eo = exact.oracle();
    let ao = approx.oracle();

    let mut eu = eo.empty_union();
    let mut au = ao.empty_union();
    for s in 0..20u32 {
        eo.absorb(&mut eu, NodeId(s));
        ao.absorb(&mut au, NodeId(s));
    }
    let mut group = c.benchmark_group("marginal_gain_probe");
    group.bench_function("exact", |b| {
        b.iter(|| black_box(eo.marginal_gain(&eu, NodeId(777))))
    });
    group.bench_function("approx_beta512", |b| {
        b.iter(|| black_box(ao.marginal_gain(&au, NodeId(777))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_oracle_query,
    bench_frozen_batch,
    bench_marginal_gain
);
criterion_main!(benches);
