//! Criterion micro-benchmarks for the sketch primitives behind Figures 3–4:
//! vHLL add/merge/estimate and plain-HLL union.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use infprop_hll::{hash, HyperLogLog, VersionedHll};

fn bench_vhll_add(c: &mut Criterion) {
    c.bench_function("vhll_add_10k_items", |b| {
        b.iter(|| {
            let mut s = VersionedHll::new(9);
            // Reverse-time discipline, as in the IRS scan.
            for i in 0..10_000u64 {
                s.add_hash(hash::hash64(i % 2_000), 10_000 - i as i64);
            }
            black_box(s.total_entries())
        })
    });
}

fn bench_vhll_merge(c: &mut Criterion) {
    let mut a = VersionedHll::new(9);
    let mut b_sketch = VersionedHll::new(9);
    for i in 0..5_000u64 {
        a.add_hash(hash::hash64(i), 10_000 - i as i64);
        b_sketch.add_hash(hash::hash64(i + 2_500), 10_000 - i as i64);
    }
    c.bench_function("vhll_merge_windowed", |b| {
        b.iter(|| {
            let mut dst = a.clone();
            dst.merge_from(black_box(&b_sketch), 4_000, 3_000);
            black_box(dst.total_entries())
        })
    });
}

fn bench_vhll_estimate(c: &mut Criterion) {
    let mut s = VersionedHll::new(9);
    for i in 0..50_000u64 {
        s.add_hash(hash::hash64(i), 100_000 - i as i64);
    }
    c.bench_function("vhll_estimate_beta512", |b| {
        b.iter(|| black_box(s.estimate()))
    });
}

fn bench_hll_union(c: &mut Criterion) {
    let mut a = HyperLogLog::new(9);
    let mut u = HyperLogLog::new(9);
    for i in 0..20_000u64 {
        a.add_u64(i);
        u.add_u64(i + 10_000);
    }
    c.bench_function("hll_estimate_union_beta512", |b| {
        b.iter(|| black_box(a.estimate_union(&u)))
    });
}

criterion_group!(
    benches,
    bench_vhll_add,
    bench_vhll_merge,
    bench_vhll_estimate,
    bench_hll_union
);
criterion_main!(benches);
