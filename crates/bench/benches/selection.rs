//! Criterion benchmarks for seed selection (Table 6's cost): greedy IRS,
//! SKIM, PageRank, degree heuristics and the TCIC simulator itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use infprop_baselines::{
    high_degree, pagerank_top_k, smart_high_degree, PageRankConfig, Skim, SkimConfig,
};
use infprop_core::{greedy_top_k, ApproxIrs};
use infprop_datasets::synthetic::SyntheticConfig;
use infprop_diffusion::{tcic_spread, TcicConfig};
use infprop_temporal_graph::{InteractionNetwork, NodeId};

fn network() -> InteractionNetwork {
    SyntheticConfig::new(2_000, 20_000, 200_000)
        .with_seed(6)
        .generate()
}

fn bench_selection(c: &mut Criterion) {
    let net = network();
    let window = net.window_from_percent(10.0);
    let static_graph = net.to_static();
    let mut group = c.benchmark_group("select_top20");
    group.sample_size(10);
    group.bench_function("irs_approx_greedy", |b| {
        b.iter(|| {
            let irs = ApproxIrs::compute(&net, window);
            black_box(greedy_top_k(&irs.oracle(), 20).len())
        })
    });
    group.bench_function("skim", |b| {
        b.iter(|| {
            let skim = Skim::new(&static_graph, SkimConfig::default());
            black_box(skim.top_k(20).len())
        })
    });
    group.bench_function("pagerank", |b| {
        b.iter(|| black_box(pagerank_top_k(&static_graph, 20, &PageRankConfig::default()).len()))
    });
    group.bench_function("high_degree", |b| {
        b.iter(|| black_box(high_degree(&static_graph, 20).len()))
    });
    group.bench_function("smart_high_degree", |b| {
        b.iter(|| black_box(smart_high_degree(&static_graph, 20).len()))
    });
    group.finish();
}

fn bench_tcic(c: &mut Criterion) {
    let net = network();
    let window = net.window_from_percent(10.0);
    let seeds: Vec<NodeId> = (0..20).map(NodeId).collect();
    c.bench_function("tcic_single_run_20k_interactions", |b| {
        let cfg = TcicConfig::new(window, 0.5).with_runs(1).with_seed(3);
        b.iter(|| black_box(tcic_spread(&net, &seeds, &cfg)))
    });
}

criterion_group!(benches, bench_selection, bench_tcic);
criterion_main!(benches);
