//! Regenerates the paper's table3 (see DESIGN.md's experiment index).
fn main() {
    infprop_bench::experiments::table3::run(42);
}
