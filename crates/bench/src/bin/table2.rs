//! Regenerates the paper's table2 (see DESIGN.md's experiment index).
fn main() {
    infprop_bench::experiments::table2::run(42);
}
