//! Regenerates the paper's fig4 (see DESIGN.md's experiment index).
fn main() {
    infprop_bench::experiments::fig4::run(42);
}
