//! Regenerates the paper's table5 (see DESIGN.md's experiment index).
fn main() {
    infprop_bench::experiments::table5::run(42);
}
