//! Regenerates the paper's table6 (see DESIGN.md's experiment index).
fn main() {
    infprop_bench::experiments::table6::run(42);
}
