//! Regenerates the paper's ablation (see DESIGN.md's experiment index).
fn main() {
    infprop_bench::experiments::ablation::run(42);
}
