//! Runs every table and figure experiment in order (the full §6 suite).
use infprop_bench::experiments as ex;

fn main() {
    let seed = 42;
    ex::table2::run(seed);
    ex::shape::run(seed);
    ex::table3::run(seed);
    ex::table4::run(seed);
    ex::fig3::run(seed);
    ex::fig4::run(seed);
    ex::fig5::run(seed);
    ex::table5::run(seed);
    ex::table6::run(seed);
    ex::ablation::run(seed);
}
