//! Regenerates the paper's table4 (see DESIGN.md's experiment index).
fn main() {
    infprop_bench::experiments::table4::run(42);
}
