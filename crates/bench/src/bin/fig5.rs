//! Regenerates the paper's fig5 (see DESIGN.md's experiment index).
fn main() {
    infprop_bench::experiments::fig5::run(42);
}
