//! Perf-trajectory harness: runs fixed synthetic profiles through the hot
//! paths (exact + vHLL build, freeze into the contiguous arenas, oracle
//! queries, individual-influence sweeps serial vs. parallel, greedy top-k)
//! and writes `BENCH_core.json` so every future PR has a number to be held
//! accountable to.
//!
//! Query-path rows measure the **frozen** oracles (the production path
//! since the frozen-arena PR); the live-store serial numbers are kept as
//! `*_live_*` rows so the freeze win stays visible, and every frozen result
//! is asserted bit-identical to its live counterpart before timings are
//! reported.
//!
//! Usage: `cargo run --release -p infprop-bench --bin trajectory --
//!         [--out FILE] [--scale F]`
//!
//! * `--out`   output path (default `BENCH_core.json` in the CWD — run from
//!   the repo root to refresh the committed trajectory point).
//! * `--scale` profile size multiplier (default 1.0; CI smoke uses 0.05).
//!
//! The generators are deterministic (splitmix64 from fixed seeds), so two
//! runs at the same scale measure the same workload, and the checksums in
//! the JSON double as a correctness guard: they must not drift across PRs
//! unless an algorithm change is intended and called out.
//!
//! The `reference` block embeds the hot-path numbers captured on the
//! pre-dense-store tree (hash-map summaries, allocating merge path, serial
//! sweeps) at scale 1.0 on a single-core container — the "before" of the
//! dense-store PR. Compare apples to apples: same scale, same machine
//! class.

use infprop_core::serve::{Client, ServedOracle, Server, ServerConfig};
use infprop_core::{
    ApproxIrs, ArenaBytes, ExactIrs, FrozenExactOracle, HeapBytes, InfluenceOracle,
    MetricsRecorder, NoopRecorder, NoopTracer, RingTracer,
};
use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform_profile(n: u64, m: usize, span: u64, seed: u64) -> InteractionNetwork {
    let mut s = seed;
    InteractionNetwork::from_triples((0..m).map(|_| {
        let a = (splitmix64(&mut s) % n) as u32;
        let b = (splitmix64(&mut s) % n) as u32;
        let t = (splitmix64(&mut s) % span) as i64;
        (a, b, t)
    }))
}

fn hub_profile(n: u64, m: usize, span: u64, seed: u64) -> InteractionNetwork {
    let mut s = seed;
    InteractionNetwork::from_triples((0..m).map(|_| {
        let skew = splitmix64(&mut s) & 1 == 0;
        let a = if skew {
            (splitmix64(&mut s) % 32) as u32
        } else {
            (splitmix64(&mut s) % n) as u32
        };
        let b = (splitmix64(&mut s) % n) as u32;
        let t = (splitmix64(&mut s) % span) as i64;
        (a, b, t)
    }))
}

/// Min-of-N timing: the minimum is the least noise-contaminated estimate of
/// the true cost on a shared machine.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
        out = Some(v);
    }
    (best, out.unwrap())
}

struct ProfileReport {
    name: &'static str,
    nodes: usize,
    interactions: usize,
    exact_build_ns_per_interaction: f64,
    exact_total_entries: usize,
    vhll_build_ns_per_interaction: f64,
    vhll_total_entries: usize,
    /// Time to freeze the vHLL store into the flat register arena.
    freeze_ms: f64,
    /// Heap bytes of the frozen approx + exact arenas.
    frozen_bytes: usize,
    /// 8-seed query cost on the frozen arena (the production path).
    oracle_query_ns: f64,
    /// Same queries against the live (per-node-alloc) oracle.
    oracle_query_live_ns: f64,
    oracle_query_checksum: f64,
    /// `(threads, ns_per_query)` rows for the same 64 queries answered in
    /// one `influence_many_frozen` call (dedup + scratch amortized, GROUP
    /// interleaving), asserted bit-identical to per-query before timing.
    oracle_batch_query_ns: Vec<(usize, f64)>,
    /// The same 64-query batch answered through
    /// `influence_many_frozen_traced` with a live ring tracer at 1 thread,
    /// asserted bit-identical before timing. Per-element spans are lap
    /// records — one ring emit and one clock read per element, the
    /// information floor (N contiguous spans need N+1 boundary
    /// timestamps) — so the overhead over `oracle_query_ns` is dominated
    /// by one monotonic clock read per query; see NOTES.
    oracle_query_traced_ns: f64,
    /// Serial sweep over the live oracle — the pre-freeze baseline every
    /// speedup below is measured against.
    sweep_serial_ns_per_node: f64,
    /// Serial sweep over the frozen arena (precomputed `individual` table).
    sweep_frozen_ns_per_node: f64,
    sweep_checksum: f64,
    /// `(threads, ns_per_node, speedup_vs_live_serial)` rows on the frozen
    /// arena.
    sweep_parallel: Vec<(usize, f64, f64)>,
    /// CELF greedy on the frozen arena (the production path).
    greedy_k16_ms: f64,
    /// CELF greedy on the live oracle.
    greedy_k16_live_ms: f64,
    greedy_last_cumulative: f64,
    exact_sweep_checksum: f64,
    exact_greedy_last_cumulative: f64,
    /// Overlay rebuild (refresh) after appending the last 10% of the
    /// history onto a frozen base over the first 90%.
    layered_refresh_ms: f64,
    /// 8-seed query cost through the layered base ⊕ delta merge path,
    /// asserted bit-identical to the frozen full-history arena first.
    layered_query_ns: f64,
    /// One LSM-style re-freeze over the window-surviving log.
    compaction_ms: f64,
    /// Interactions surviving the window cut at compaction.
    compaction_survivors: usize,
    /// Metrics snapshot JSON from one recorded (untimed) pass over the
    /// profile: exact + vHLL builds and a serial oracle sweep.
    metrics_json: String,
}

fn run_profile(
    name: &'static str,
    net: &InteractionNetwork,
    window: Window,
    thread_counts: &[usize],
) -> ProfileReport {
    let m = net.num_interactions() as f64;
    let n = net.num_nodes();
    eprintln!("profile {name}: n={n} m={}", net.num_interactions());

    let (t_exact, exact) = best_of(3, || ExactIrs::compute(net, window));
    let (t_vhll, approx) = best_of(3, || ApproxIrs::compute_with_precision(net, window, 9));
    let oracle = approx.oracle();
    let (t_freeze, frozen) = best_of(3, || approx.freeze());
    let frozen_exact = exact.freeze();
    let frozen_bytes = frozen.heap_bytes() + frozen_exact.heap_bytes();

    // 64 fixed 8-seed queries, answered by both the frozen arena (the
    // production path) and the live oracle; totals must agree bitwise.
    let mut s = 0xDEAD_BEEFu64;
    let queries: Vec<Vec<NodeId>> = (0..64)
        .map(|_| {
            (0..8)
                .map(|_| NodeId((splitmix64(&mut s) % n.max(1) as u64) as u32))
                .collect()
        })
        .collect();
    // The frozen per-query loop and the true batch API run interleaved
    // under one rep loop: each iteration times the per-query pass and
    // every batch fan-out back to back, and each measurement keeps its
    // own minimum. Interleaving keeps the single-vs-batch comparison
    // honest when the box's effective clock drifts mid-run — both sides
    // sample the same machine states instead of whichever phase their
    // own timing block happened to land in.
    // The traced row rides the same rep loop for the same reason: its
    // headline is the overhead *ratio* against the per-query loop, which
    // clock drift between two separate phase loops would corrupt. The
    // ring is allocated once outside the loop (the CLI does the same for
    // `--trace-out`), so the row isolates per-span emit cost.
    let ring = RingTracer::new(1);
    let mut t_q = f64::INFINITY;
    let mut q_total = 0.0;
    let mut t_batch = vec![f64::INFINITY; thread_counts.len()];
    let mut batch_answers: Vec<Vec<f64>> = vec![Vec::new(); thread_counts.len()];
    let mut t_traced = f64::INFINITY;
    let mut traced_answers: Vec<f64> = Vec::new();
    for _ in 0..25 {
        let start = Instant::now();
        let mut acc = 0.0;
        for q in &queries {
            acc += frozen.influence(q);
        }
        t_q = t_q.min(start.elapsed().as_secs_f64());
        q_total = acc;
        for (slot, &threads) in thread_counts.iter().enumerate() {
            let start = Instant::now();
            let batch = frozen.influence_many_frozen(&queries, threads);
            t_batch[slot] = t_batch[slot].min(start.elapsed().as_secs_f64());
            batch_answers[slot] = batch;
        }
        let start = Instant::now();
        let batch = frozen.influence_many_frozen_traced(&queries, 1, &NoopRecorder, ring.lane(0));
        t_traced = t_traced.min(start.elapsed().as_secs_f64());
        traced_answers = batch;
    }
    let (t_q_live, q_total_live) = best_of(5, || {
        let mut acc = 0.0;
        for q in &queries {
            acc += oracle.influence(q);
        }
        acc
    });
    assert_eq!(
        q_total.to_bits(),
        q_total_live.to_bits(),
        "frozen queries must be bit-identical to live"
    );

    // Per-answer bits from the batch API must match the per-query loop at
    // every fan-out before any timing is reported.
    let per_query_bits: Vec<u64> = queries
        .iter()
        .map(|q| frozen.influence(q).to_bits())
        .collect();
    let mut oracle_batch_query_ns = Vec::new();
    for (slot, &threads) in thread_counts.iter().enumerate() {
        let batch_bits: Vec<u64> = batch_answers[slot].iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            batch_bits, per_query_bits,
            "batch queries must be bit-identical to per-query at {threads} threads"
        );
        oracle_batch_query_ns.push((threads, t_batch[slot] * 1e9 / 64.0));
    }

    // Traced answers must be bit-identical to the untraced per-query loop
    // before the timing is reported.
    let traced_bits: Vec<u64> = traced_answers.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        traced_bits, per_query_bits,
        "traced batch queries must be bit-identical to untraced"
    );

    let (t_sweep, sweep) = best_of(3, || oracle.individuals(1));
    let sweep_checksum: f64 = sweep.iter().sum();
    let (t_fsweep, fsweep) = best_of(3, || frozen.individuals(1));
    assert_eq!(fsweep, sweep, "frozen sweep must be byte-identical to live");
    let mut sweep_parallel = Vec::new();
    for &threads in thread_counts {
        let (t_par, par_sweep) = best_of(3, || frozen.individuals(threads));
        assert_eq!(par_sweep, sweep, "parallel sweep must be byte-identical");
        sweep_parallel.push((threads, t_par * 1e9 / n.max(1) as f64, t_sweep / t_par));
    }

    let (t_greedy, picks) = best_of(3, || infprop_core::greedy_top_k(&frozen, 16));
    let (t_greedy_live, live_picks) = best_of(3, || infprop_core::greedy_top_k(&oracle, 16));
    assert_eq!(
        picks.iter().map(|p| p.node).collect::<Vec<_>>(),
        live_picks.iter().map(|p| p.node).collect::<Vec<_>>(),
        "frozen greedy must pick the same seeds as live"
    );
    let eo = exact.oracle();
    let (_, esweep) = best_of(3, || frozen_exact.individuals(1));
    assert_eq!(
        esweep,
        eo.individuals(1),
        "frozen exact sweep must be byte-identical to live"
    );
    let exact_sweep_checksum: f64 = esweep.iter().sum();
    let (_, epicks) = best_of(3, || infprop_core::greedy_top_k(&frozen_exact, 16));

    // Layered-oracle rows: rebuild the same history as `frozen base over
    // the first 90% + forward appends of the last 10%`, then measure the
    // overlay rebuild, the base ⊕ delta query path (bit-identical to the
    // frozen full-history arena by the layered-correctness theorem), and
    // one LSM-style compaction.
    let ints = net.interactions();
    let split = ints.len() * 9 / 10;
    let base_net = InteractionNetwork::from_triples(
        ints[..split]
            .iter()
            .map(|i| (i.src.0, i.dst.0, i.time.get())),
    );
    let mut layered = ApproxIrs::compute_with_precision(&base_net, window, 9).layered(&base_net);
    for &i in &ints[split..] {
        layered
            .append(i)
            .expect("history suffix moves forward in time");
    }
    let (t_lrefresh, _) = best_of(3, || layered.refresh());
    let (t_lq, lq_total) = best_of(25, || {
        let mut acc = 0.0;
        for q in &queries {
            acc += layered.influence(q);
        }
        acc
    });
    assert_eq!(
        lq_total.to_bits(),
        q_total.to_bits(),
        "layered queries must be bit-identical to the frozen arena"
    );
    let layered_batch: Vec<u64> = layered
        .influence_many_frozen(&queries, 2)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(
        layered_batch, per_query_bits,
        "layered batch queries must be bit-identical to the frozen arena"
    );
    let t0 = Instant::now();
    layered.compact();
    let t_compact = t0.elapsed().as_secs_f64();
    assert_eq!(
        layered.generation(),
        1,
        "one compaction advances one generation"
    );
    let compaction_survivors = layered.delta().tail().len();

    // One recorded pass, outside the timed best-of loops, captures the
    // counter profile of this workload (merge-path mix, entries touched,
    // dominance prunes, union sizes, freeze footprint, parallel chunk
    // fan-out and scratch reuse) without contaminating the timings.
    let rec = MetricsRecorder::new();
    let recorded_exact = ExactIrs::compute_recorded(net, window, &rec);
    let recorded_approx = ApproxIrs::compute_with_precision_recorded(net, window, 9, &rec);
    let recorded_frozen = recorded_approx.freeze_recorded(&rec);
    let _ = recorded_exact.oracle().individuals_recorded(1, &rec);
    let _ = recorded_frozen.influence_many_recorded(&queries, 2, &rec);
    let _ = recorded_frozen.influence_many_frozen_recorded(&queries, 2, &rec);
    let metrics_json = rec.snapshot().to_json();

    ProfileReport {
        name,
        nodes: n,
        interactions: net.num_interactions(),
        exact_build_ns_per_interaction: t_exact * 1e9 / m.max(1.0),
        exact_total_entries: exact.total_entries(),
        vhll_build_ns_per_interaction: t_vhll * 1e9 / m.max(1.0),
        vhll_total_entries: approx.total_entries(),
        freeze_ms: t_freeze * 1e3,
        frozen_bytes,
        oracle_query_ns: t_q * 1e9 / 64.0,
        oracle_query_live_ns: t_q_live * 1e9 / 64.0,
        oracle_query_checksum: q_total,
        oracle_batch_query_ns,
        oracle_query_traced_ns: t_traced * 1e9 / 64.0,
        sweep_serial_ns_per_node: t_sweep * 1e9 / n.max(1) as f64,
        sweep_frozen_ns_per_node: t_fsweep * 1e9 / n.max(1) as f64,
        sweep_checksum,
        sweep_parallel,
        greedy_k16_ms: t_greedy * 1e3,
        greedy_k16_live_ms: t_greedy_live * 1e3,
        greedy_last_cumulative: picks.last().map(|p| p.cumulative).unwrap_or(0.0),
        exact_sweep_checksum,
        exact_greedy_last_cumulative: epicks.last().map(|p| p.cumulative).unwrap_or(0.0),
        layered_refresh_ms: t_lrefresh * 1e3,
        layered_query_ns: t_lq * 1e9 / 64.0,
        compaction_ms: t_compact * 1e3,
        compaction_survivors,
        metrics_json,
    }
}

fn profile_json(r: &ProfileReport) -> String {
    let mut sp = String::new();
    for (i, &(threads, ns, speedup)) in r.sweep_parallel.iter().enumerate() {
        if i > 0 {
            sp.push_str(", ");
        }
        let _ = write!(
            sp,
            "{{\"threads\": {threads}, \"ns_per_node\": {ns:.1}, \"speedup\": {speedup:.2}}}"
        );
    }
    let mut bq = String::new();
    for (i, &(threads, ns)) in r.oracle_batch_query_ns.iter().enumerate() {
        if i > 0 {
            bq.push_str(", ");
        }
        let _ = write!(bq, "{{\"threads\": {threads}, \"ns_per_query\": {ns:.1}}}");
    }
    // Re-indent the snapshot so the nested block lines up with the
    // surrounding profile object.
    let metrics = r.metrics_json.replace('\n', "\n      ");
    format!(
        "    {{\n      \"name\": \"{}\",\n      \"nodes\": {},\n      \"interactions\": {},\n      \
         \"exact_build_ns_per_interaction\": {:.1},\n      \"exact_total_entries\": {},\n      \
         \"vhll_build_ns_per_interaction\": {:.1},\n      \"vhll_total_entries\": {},\n      \
         \"freeze_ms\": {:.3},\n      \"frozen_bytes\": {},\n      \
         \"oracle_query_ns\": {:.1},\n      \"oracle_query_live_ns\": {:.1},\n      \
         \"oracle_query_checksum\": {:.1},\n      \
         \"oracle_batch_query_ns\": [{}],\n      \
         \"oracle_query_traced_ns\": {:.1},\n      \
         \"sweep_serial_ns_per_node\": {:.1},\n      \"sweep_frozen_ns_per_node\": {:.1},\n      \
         \"sweep_checksum\": {:.1},\n      \
         \"sweep_parallel\": [{}],\n      \
         \"greedy_k16_ms\": {:.3},\n      \"greedy_k16_live_ms\": {:.3},\n      \
         \"greedy_last_cumulative\": {:.1},\n      \
         \"exact_sweep_checksum\": {:.1},\n      \"exact_greedy_last_cumulative\": {:.1},\n      \
         \"layered_refresh_ms\": {:.3},\n      \"layered_query_ns\": {:.1},\n      \
         \"compaction_ms\": {:.3},\n      \"compaction_survivors\": {},\n      \
         \"metrics\": {}\n    }}",
        r.name,
        r.nodes,
        r.interactions,
        r.exact_build_ns_per_interaction,
        r.exact_total_entries,
        r.vhll_build_ns_per_interaction,
        r.vhll_total_entries,
        r.freeze_ms,
        r.frozen_bytes,
        r.oracle_query_ns,
        r.oracle_query_live_ns,
        r.oracle_query_checksum,
        bq,
        r.oracle_query_traced_ns,
        r.sweep_serial_ns_per_node,
        r.sweep_frozen_ns_per_node,
        r.sweep_checksum,
        sp,
        r.greedy_k16_ms,
        r.greedy_k16_live_ms,
        r.greedy_last_cumulative,
        r.exact_sweep_checksum,
        r.exact_greedy_last_cumulative,
        r.layered_refresh_ms,
        r.layered_query_ns,
        r.compaction_ms,
        r.compaction_survivors,
        metrics,
    )
}

/// Exact-rank percentile over an ascending latency sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One closed-loop serving measurement: `clients` concurrent connections,
/// each answering `BATCHES` influence frames of the same `queries` batch.
/// Every served answer is asserted bit-identical to `expected` (connect and
/// warm-up frames sit outside the timed window). Returns aggregate
/// queries/s plus the merged ascending per-frame latency sample.
fn drive_clients(
    sock: &Path,
    clients: usize,
    queries: &[Vec<NodeId>],
    expected: &[f64],
) -> (f64, Vec<u64>) {
    const BATCHES: usize = 128;
    const WARMUP: usize = 4;
    let per_client: Vec<(u64, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = connect_with_retry(sock);
                    for _ in 0..WARMUP {
                        client.influence_many(0, queries).expect("warm-up frame");
                    }
                    let mut lats = Vec::with_capacity(BATCHES);
                    let t0 = Instant::now();
                    for _ in 0..BATCHES {
                        let t = Instant::now();
                        let got = client.influence_many(0, queries).expect("timed frame");
                        lats.push(t.elapsed().as_nanos() as u64);
                        for (g, e) in got.iter().zip(expected) {
                            assert_eq!(g.to_bits(), e.to_bits(), "served answer diverged");
                        }
                    }
                    (t0.elapsed().as_nanos() as u64, lats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let total_queries = (clients * BATCHES * queries.len()) as f64;
    let slowest_s = per_client.iter().map(|(wall, _)| *wall).max().unwrap_or(1) as f64 / 1e9;
    let mut lats: Vec<u64> = per_client.into_iter().flat_map(|(_, l)| l).collect();
    lats.sort_unstable();
    (total_queries / slowest_s, lats)
}

fn connect_with_retry(sock: &Path) -> Client {
    for _ in 0..400 {
        if let Ok(c) = Client::connect_unix(sock) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("server socket never came up at {}", sock.display());
}

struct ServeRow {
    clients: usize,
    qps: f64,
    p50_ns: f64,
    p99_ns: f64,
    p999_ns: f64,
}

/// Serving-tier rows: the zero-copy load path against the unconditional
/// bulk copy and the streamed decoder, then closed-loop `serve_qps` /
/// `serve_query_ns` percentiles for 1, 2 and 4 concurrent clients over an
/// in-process Unix-socket server answering the uniform profile's exact
/// arena.
fn run_serving(net: &InteractionNetwork, window: Window) -> String {
    eprintln!("serving: load paths + closed-loop qps");
    let exact = ExactIrs::compute(net, window);
    let frozen = exact.freeze();
    let mut image = Vec::new();
    frozen.write_to(&mut image).expect("arena image");

    let dir = std::env::temp_dir().join(format!("infprop-bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    // tmp+rename: the mmap safety argument rests on never mutating a
    // published arena file in place.
    let tmp = dir.join("arena.ipfe.tmp");
    let path = dir.join("arena.ipfe");
    std::fs::write(&tmp, &image).expect("write arena");
    std::fs::rename(&tmp, &path).expect("publish arena");

    // Byte-path rows: `open` is the zero-copy mapping (`mmap(2)` under
    // --features mmap, one aligned bulk read otherwise); `read` is the
    // unconditional full copy. The oracle rows add structural decode on
    // top: `load` rides `open`, `read_from` is the legacy streamed decoder.
    let (t_open, mapped) = best_of(25, || ArenaBytes::open(&path).expect("arena open"));
    let mmap_backend = mapped.is_mapped();
    assert_eq!(
        mapped.as_slice(),
        image.as_slice(),
        "mapped bytes must equal the published file"
    );
    drop(mapped);
    let (t_read, bulk) = best_of(25, || ArenaBytes::read(&path).expect("arena read"));
    assert_eq!(bulk.as_slice(), image.as_slice());
    drop(bulk);
    let (t_load, loaded) = best_of(25, || FrozenExactOracle::load(&path).expect("oracle load"));
    loaded.validate().expect("loaded arena validates");
    let (t_streamed, streamed) = best_of(25, || {
        let f = std::fs::File::open(&path).expect("open arena file");
        FrozenExactOracle::read_from(&mut std::io::BufReader::new(f)).expect("streamed decode")
    });

    // 16 fixed 8-seed queries; both load paths and every served answer must
    // agree with the freshly frozen oracle bit for bit before any serving
    // number is reported.
    let n = loaded.num_nodes().max(1) as u64;
    let mut s = 0x5EED_CAFEu64;
    let queries: Vec<Vec<NodeId>> = (0..16)
        .map(|_| {
            (0..8)
                .map(|_| NodeId((splitmix64(&mut s) % n) as u32))
                .collect()
        })
        .collect();
    let expected = frozen.influence_many_frozen(&queries, 1);
    let expected_bits: Vec<u64> = expected.iter().map(|v| v.to_bits()).collect();
    for oracle in [&loaded, &streamed] {
        let bits: Vec<u64> = oracle
            .influence_many_frozen(&queries, 1)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            bits, expected_bits,
            "load paths must answer bit-identically"
        );
    }

    let sock: PathBuf = dir.join("serving-socket");
    let config = ServerConfig {
        unix_path: Some(sock.clone()),
        tcp_addr: None,
        threads: 1,
    };
    let served = ServedOracle::open_recorded(&path, &NoopRecorder).expect("served oracle");
    let server = Server::bind(&config, vec![served]).expect("server bind");
    let server_thread = std::thread::spawn(move || {
        server.run(&NoopRecorder, NoopTracer).expect("server run");
    });

    // Probe connection: assert bit-identity through the wire before timing.
    let mut probe = connect_with_retry(&sock);
    let over_wire: Vec<u64> = probe
        .influence_many(0, &queries)
        .expect("probe frame")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(
        over_wire, expected_bits,
        "served answers must be bit-identical to in-process"
    );
    drop(probe);

    let mut rows = Vec::new();
    for &clients in &[1usize, 2, 4] {
        let (qps, lats) = drive_clients(&sock, clients, &queries, &expected);
        let per_query = |q: f64| percentile(&lats, q) as f64 / queries.len() as f64;
        rows.push(ServeRow {
            clients,
            qps,
            p50_ns: per_query(0.50),
            p99_ns: per_query(0.99),
            p999_ns: per_query(0.999),
        });
    }

    connect_with_retry(&sock)
        .shutdown()
        .expect("shutdown frame");
    server_thread.join().expect("server thread");
    std::fs::remove_dir_all(&dir).ok();

    let mut cj = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            cj.push_str(",\n      ");
        }
        let _ = write!(
            cj,
            "{{\"clients\": {}, \"serve_qps\": {:.0}, \"serve_query_ns\": \
             {{\"p50\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1}}}}}",
            r.clients, r.qps, r.p50_ns, r.p99_ns, r.p999_ns
        );
    }
    format!(
        "{{\n    \"arena_bytes\": {},\n    \"mmap_backend\": {},\n    \
         \"arena_open_ns\": {:.0},\n    \"arena_bulk_read_ns\": {:.0},\n    \
         \"oracle_load_ns\": {:.0},\n    \"oracle_load_streamed_ns\": {:.0},\n    \
         \"queries_per_frame\": {},\n    \"clients\": [\n      {}\n    ]\n  }}",
        image.len(),
        mmap_backend,
        t_open * 1e9,
        t_read * 1e9,
        t_load * 1e9,
        t_streamed * 1e9,
        queries.len(),
        cj,
    )
}

/// Pre-change baseline (hash-map stores, allocating vHLL merges, serial
/// sweeps) measured at scale 1.0, 1 core, opt-level 3 — the "before" the
/// dense-store PR is compared against.
const REFERENCE: &str = r#"{
    "captured": "pre-dense-store tree, scale 1.0, 1 core, rustc -O",
    "uniform": {
      "exact_build_ns_per_interaction": 270.4,
      "vhll_build_ns_per_interaction": 2748.5,
      "oracle_query_ns": 3659.2,
      "sweep_serial_ns_per_node": 352.9,
      "greedy_k16_ms": 1.0
    },
    "hub": {
      "exact_build_ns_per_interaction": 360.1,
      "vhll_build_ns_per_interaction": 1995.2,
      "oracle_query_ns": 3760.3,
      "sweep_serial_ns_per_node": 334.5,
      "greedy_k16_ms": 3.0
    }
  }"#;

/// Hot-path numbers committed by the PR 4 tree (live per-node-alloc
/// oracles, pre-clamp parallel layer) at scale 1.0 on a 1-core container —
/// the direct "before" of the frozen-arena PR.
const REFERENCE_PR4: &str = r#"{
    "captured": "pre-frozen-arena tree (PR 4), scale 1.0, 1 core, rustc -O",
    "uniform": {
      "oracle_query_ns": 3614.3,
      "sweep_serial_ns_per_node": 370.0,
      "sweep_parallel_speedup": [1.08, 0.94, 0.79],
      "greedy_k16_ms": 1.824
    },
    "hub": {
      "oracle_query_ns": 3919.2,
      "sweep_serial_ns_per_node": 336.3,
      "sweep_parallel_speedup": [0.97, 0.87, 0.77],
      "greedy_k16_ms": 2.928
    }
  }"#;

/// Hot-path numbers committed by the PR 7 tree (scalar auto-vectorized
/// merge loop, per-query-only API) at scale 1.0 on a 1-core container —
/// the direct "before" of the vectorized-kernel/batch-API PR.
const REFERENCE_PR7: &str = r#"{
    "captured": "pre-vectorized-kernel tree (PR 7), scale 1.0, 1 core, rustc -O",
    "uniform": {
      "oracle_query_ns": 542.2,
      "layered_query_ns": 756.3,
      "greedy_k16_ms": 0.117
    },
    "hub": {
      "oracle_query_ns": 865.0,
      "layered_query_ns": 1216.3,
      "greedy_k16_ms": 4.020
    }
  }"#;

/// Free-form attribution notes carried in the JSON so a regression number
/// is never separated from its explanation.
const NOTES: &str = "Serving-tier PR: the serving block measures the zero-copy load path and the \
batched socket server. arena_open_ns is ArenaBytes::open (mmap(2) under --features mmap, one \
aligned bulk read otherwise — mmap_backend records which); arena_bulk_read_ns is the \
unconditional full copy; oracle_load_ns rides open plus structural decode (the production \
load), oracle_load_streamed_ns is the legacy streamed decoder over a BufReader. With the mmap \
feature on, oracle_load_ns sits orders of magnitude below arena_bulk_read_ns because the map \
defers page-in to first access and the decode only reads headers/offsets. The clients rows are \
closed-loop: N concurrent Unix-socket connections each answer 128 influence frames of the same \
16x8-seed batch against an in-process server (threads=1 — this container has 1 core); \
serve_qps aggregates over the slowest client's timed window, serve_query_ns divides per-frame \
latency percentiles by the 16 queries/frame. Every served answer is asserted bit-identical to \
the in-process influence_many_frozen result (probe connection plus every timed frame) before \
any number is reported, and both load paths are asserted bit-identical to the freshly frozen \
oracle. Per-query serving cost sits well above oracle_query_ns: a frame pays two syscall \
round-trips plus encode/decode, amortized across the batch — which is the point of batching. \
Causal-tracing PR: oracle_query_traced_ns answers the same 64-query batch \
through influence_many_frozen_traced with a live per-thread ring tracer (1 thread, ring \
allocated outside the rep loop, answers asserted bit-identical to the untraced loop first). \
Each query.element span is one lap record — one relaxed fetch_add, four relaxed stores, and \
ONE monotonic clock read (element i's end instant is element i+1's begin, so N contiguous \
spans need only N+1 timestamps; the begin/end pair is reconstructed at decode). That clock \
read is the whole story of the overhead: stubbing it out leaves +3% over oracle_query_ns \
(ring emit + loop bookkeeping), and one clock_gettime is ~55 ns on this virtualized runner — \
13% of a ~420 ns query by itself, so the <10% target is out of reach here by clock cost \
alone and the committed ~18% sits ~5% above the per-element-tracing floor; on hardware \
with a <=25 ns monotonic clock the same code meets the target. The untraced rows are \
unchanged because the NoopTracer instantiation compiles to the PR 8 code (proven \
allocation-free by the counting-allocator test in core). \
Vectorized-kernel PR: the frozen register merge is now vectorized by \
construction (portable 16-byte-lane byte-max always on, optional runtime-dispatched AVX2 under \
--features simd-avx2, both asserted bit-identical to the scalar reference); query kernels read \
node-major rows through compile-time-sized 64-byte tiles with beta-literal dispatch per common \
precision, a tile-major transposed arena is built alongside for column-order scans, and the new \
oracle_batch_query_ns rows measure influence_many_frozen: the \
same 64 queries answered in one call with seed dedup, per-worker scratch, and GROUP=4 \
query interleaving whose four estimator chains run in one out-of-line absorb loop (keeping the \
running sums register-resident is where the single-core batch win comes from — thread rows only \
help on multi-core runners). The per-query loop and every batch fan-out are timed interleaved \
in one rep loop so the single-vs-batch comparison samples the same machine states. Batch answers \
are asserted bit-identical to per-query answers at every fan-out, and all checksums are \
unchanged from PR 7 (reference_pr7 holds its query rows). \
Layered-oracle PR: rows layered_refresh_ms / layered_query_ns / \
compaction_ms / compaction_survivors measure the forward-delta overlay (frozen base over the \
first 90% of the history, last 10% appended then refreshed). layered_query_ns is asserted \
bit-identical to oracle_query_ns's frozen full-history arena before timing — the layered merge \
path (register-wise max of base and overlay blocks streamed into the same estimator) adds one \
extra max_into per seed block over the frozen kernel, so it should track oracle_query_ns within \
a small constant factor; a widening gap is a merge-path regression, not noise. \
layered_refresh_ms is a full overlay rebuild over tail+pending (the refresh contract re-runs \
the one-pass engine over the delta log, so it scales with window tail size, not total history). \
compaction_ms covers the expiry cut plus the re-freeze engine run over survivors. All \
pre-existing rows and checksums are unchanged from the frozen-arena PR; its analysis (fused \
block merge, thread clamping, hub merge traffic) lives in git history. \
Frozen-arena PR: query rows (oracle_query_ns, sweep_parallel, greedy_k16_ms) \
now measure the frozen CSR/register arenas, the production query path; the *_live_* rows keep \
the per-node-alloc oracles visible, and every frozen result is asserted bit-identical to live \
before timing. oracle_query_ns dropped ~6x vs PR 4 because the frozen arena answers influence() \
with a fused block merge + streaming estimator: seed register slices are max-merged 64 bytes at \
a time into a stack block (vectorizable, L1-resident) and streamed straight into the shared \
harmonic-mean kernel, with no union allocation and no second estimate pass. The PR 4 parallel \
sweep lost ground as threads grew (speedup 0.79-0.77 at 4 threads) for two root causes: this \
container exposes 1 core, and the old layer spawned one OS thread per requested worker \
regardless, paying spawn+join and context-switch overhead with zero available parallelism; and \
each worker allocated a fresh union accumulator per query. The par layer now clamps spawned \
threads to available_parallelism while keeping chunk granularity tied to the requested fan-out \
(par.chunks still reflects the request), and reuses one scratch accumulator per worker \
(par.scratch_reuse counts the saved allocations), so requested concurrency is never slower than \
serial on a starved machine. The frozen sweep reads the estimates precomputed at freeze time, \
so its speedup over the live serial baseline reflects table reads vs register scans; on a \
multi-core runner the sweep_parallel rows additionally scale with real cores. hub exact-build \
ns/interaction sits above the uniform profile because of per-merge entry traffic, not a tuning \
bug: ~109 entries touched per merge on hub vs ~22 on uniform, 62% of hub merges on the \
small-side splice path; inherent to sorted dense summaries under hub skew (see PR 2 notes).";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::from("BENCH_core.json");
    let mut scale = 1.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .expect("--scale needs a factor")
                    .parse()
                    .expect("--scale must be a float");
            }
            other => panic!("unknown flag {other} (expected --out/--scale)"),
        }
        i += 1;
    }
    assert!(scale > 0.0, "--scale must be positive");

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let thread_counts: [usize; 4] = [1, 2, 4, 8];

    let sz = |base: usize| ((base as f64 * scale) as usize).max(8);
    let uni = uniform_profile(sz(4000) as u64, sz(40_000), sz(100_000) as u64, 0xC0FFEE);
    let uni_window = Window((sz(10_000) as i64).max(1));
    let hub = hub_profile(sz(2000) as u64, sz(30_000), sz(60_000) as u64, 0xFACADE);
    let hub_window = Window((sz(6_000) as i64).max(1));

    let reports = [
        run_profile("uniform", &uni, uni_window, &thread_counts),
        run_profile("hub", &hub, hub_window, &thread_counts),
    ];

    let serving = run_serving(&uni, uni_window);

    let profiles: Vec<String> = reports.iter().map(profile_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"trajectory\",\n  \"scale\": {scale},\n  \"cores\": {cores},\n  \
         \"thread_counts\": [1, 2, 4, 8],\n  \"notes\": \"{}\",\n  \"profiles\": [\n{}\n  ],\n  \
         \"serving\": {},\n  \
         \"reference\": {},\n  \"reference_pr4\": {},\n  \"reference_pr7\": {}\n}}\n",
        NOTES,
        profiles.join(",\n"),
        serving,
        REFERENCE,
        REFERENCE_PR4,
        REFERENCE_PR7,
    );
    std::fs::write(&out, &json).expect("failed to write output file");
    eprintln!("wrote {out}");
    for r in &reports {
        eprintln!(
            "  {}: exact {:.1} ns/i, vhll {:.1} ns/i, query {:.1} ns, sweep {:.1} ns/node",
            r.name,
            r.exact_build_ns_per_interaction,
            r.vhll_build_ns_per_interaction,
            r.oracle_query_ns,
            r.sweep_serial_ns_per_node
        );
    }
}
