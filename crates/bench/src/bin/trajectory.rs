//! Perf-trajectory harness: runs fixed synthetic profiles through the hot
//! paths (exact + vHLL build, oracle queries, individual-influence sweeps
//! serial vs. parallel, greedy top-k) and writes `BENCH_core.json` so every
//! future PR has a number to be held accountable to.
//!
//! Usage: `cargo run --release -p infprop-bench --bin trajectory --
//!         [--out FILE] [--scale F]`
//!
//! * `--out`   output path (default `BENCH_core.json` in the CWD — run from
//!   the repo root to refresh the committed trajectory point).
//! * `--scale` profile size multiplier (default 1.0; CI smoke uses 0.05).
//!
//! The generators are deterministic (splitmix64 from fixed seeds), so two
//! runs at the same scale measure the same workload, and the checksums in
//! the JSON double as a correctness guard: they must not drift across PRs
//! unless an algorithm change is intended and called out.
//!
//! The `reference` block embeds the hot-path numbers captured on the
//! pre-dense-store tree (hash-map summaries, allocating merge path, serial
//! sweeps) at scale 1.0 on a single-core container — the "before" of the
//! dense-store PR. Compare apples to apples: same scale, same machine
//! class.

use infprop_core::{ApproxIrs, ExactIrs, InfluenceOracle, MetricsRecorder};
use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};
use std::fmt::Write as _;
use std::time::Instant;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform_profile(n: u64, m: usize, span: u64, seed: u64) -> InteractionNetwork {
    let mut s = seed;
    InteractionNetwork::from_triples((0..m).map(|_| {
        let a = (splitmix64(&mut s) % n) as u32;
        let b = (splitmix64(&mut s) % n) as u32;
        let t = (splitmix64(&mut s) % span) as i64;
        (a, b, t)
    }))
}

fn hub_profile(n: u64, m: usize, span: u64, seed: u64) -> InteractionNetwork {
    let mut s = seed;
    InteractionNetwork::from_triples((0..m).map(|_| {
        let skew = splitmix64(&mut s) & 1 == 0;
        let a = if skew {
            (splitmix64(&mut s) % 32) as u32
        } else {
            (splitmix64(&mut s) % n) as u32
        };
        let b = (splitmix64(&mut s) % n) as u32;
        let t = (splitmix64(&mut s) % span) as i64;
        (a, b, t)
    }))
}

/// Min-of-N timing: the minimum is the least noise-contaminated estimate of
/// the true cost on a shared machine.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
        out = Some(v);
    }
    (best, out.unwrap())
}

struct ProfileReport {
    name: &'static str,
    nodes: usize,
    interactions: usize,
    exact_build_ns_per_interaction: f64,
    exact_total_entries: usize,
    vhll_build_ns_per_interaction: f64,
    vhll_total_entries: usize,
    oracle_query_ns: f64,
    oracle_query_checksum: f64,
    sweep_serial_ns_per_node: f64,
    sweep_checksum: f64,
    /// `(threads, ns_per_node, speedup_vs_serial)` rows.
    sweep_parallel: Vec<(usize, f64, f64)>,
    greedy_k16_ms: f64,
    greedy_last_cumulative: f64,
    exact_sweep_checksum: f64,
    exact_greedy_last_cumulative: f64,
    /// Metrics snapshot JSON from one recorded (untimed) pass over the
    /// profile: exact + vHLL builds and a serial oracle sweep.
    metrics_json: String,
}

fn run_profile(
    name: &'static str,
    net: &InteractionNetwork,
    window: Window,
    thread_counts: &[usize],
) -> ProfileReport {
    let m = net.num_interactions() as f64;
    let n = net.num_nodes();
    eprintln!("profile {name}: n={n} m={}", net.num_interactions());

    let (t_exact, exact) = best_of(3, || ExactIrs::compute(net, window));
    let (t_vhll, approx) = best_of(3, || ApproxIrs::compute_with_precision(net, window, 9));
    let oracle = approx.oracle();

    // 64 fixed 8-seed queries.
    let mut s = 0xDEAD_BEEFu64;
    let queries: Vec<Vec<NodeId>> = (0..64)
        .map(|_| {
            (0..8)
                .map(|_| NodeId((splitmix64(&mut s) % n.max(1) as u64) as u32))
                .collect()
        })
        .collect();
    let (t_q, q_total) = best_of(5, || {
        let mut acc = 0.0;
        for q in &queries {
            acc += oracle.influence(q);
        }
        acc
    });

    let (t_sweep, sweep) = best_of(3, || oracle.individuals(1));
    let sweep_checksum: f64 = sweep.iter().sum();
    let mut sweep_parallel = Vec::new();
    for &threads in thread_counts {
        let (t_par, par_sweep) = best_of(3, || oracle.individuals(threads));
        assert_eq!(par_sweep, sweep, "parallel sweep must be byte-identical");
        sweep_parallel.push((threads, t_par * 1e9 / n.max(1) as f64, t_sweep / t_par));
    }

    let (t_greedy, picks) = best_of(3, || infprop_core::greedy_top_k(&oracle, 16));
    let eo = exact.oracle();
    let (_, esweep) = best_of(3, || eo.individuals(1));
    let exact_sweep_checksum: f64 = esweep.iter().sum();
    let (_, epicks) = best_of(3, || infprop_core::greedy_top_k(&eo, 16));

    // One recorded pass, outside the timed best-of loops, captures the
    // counter profile of this workload (merge-path mix, entries touched,
    // dominance prunes, union sizes) without contaminating the timings.
    let rec = MetricsRecorder::new();
    let recorded_exact = ExactIrs::compute_recorded(net, window, &rec);
    let _ = ApproxIrs::compute_with_precision_recorded(net, window, 9, &rec);
    let _ = recorded_exact.oracle().individuals_recorded(1, &rec);
    let metrics_json = rec.snapshot().to_json();

    ProfileReport {
        name,
        nodes: n,
        interactions: net.num_interactions(),
        exact_build_ns_per_interaction: t_exact * 1e9 / m.max(1.0),
        exact_total_entries: exact.total_entries(),
        vhll_build_ns_per_interaction: t_vhll * 1e9 / m.max(1.0),
        vhll_total_entries: approx.total_entries(),
        oracle_query_ns: t_q * 1e9 / 64.0,
        oracle_query_checksum: q_total,
        sweep_serial_ns_per_node: t_sweep * 1e9 / n.max(1) as f64,
        sweep_checksum,
        sweep_parallel,
        greedy_k16_ms: t_greedy * 1e3,
        greedy_last_cumulative: picks.last().map(|p| p.cumulative).unwrap_or(0.0),
        exact_sweep_checksum,
        exact_greedy_last_cumulative: epicks.last().map(|p| p.cumulative).unwrap_or(0.0),
        metrics_json,
    }
}

fn profile_json(r: &ProfileReport) -> String {
    let mut sp = String::new();
    for (i, &(threads, ns, speedup)) in r.sweep_parallel.iter().enumerate() {
        if i > 0 {
            sp.push_str(", ");
        }
        let _ = write!(
            sp,
            "{{\"threads\": {threads}, \"ns_per_node\": {ns:.1}, \"speedup\": {speedup:.2}}}"
        );
    }
    // Re-indent the snapshot so the nested block lines up with the
    // surrounding profile object.
    let metrics = r.metrics_json.replace('\n', "\n      ");
    format!(
        "    {{\n      \"name\": \"{}\",\n      \"nodes\": {},\n      \"interactions\": {},\n      \
         \"exact_build_ns_per_interaction\": {:.1},\n      \"exact_total_entries\": {},\n      \
         \"vhll_build_ns_per_interaction\": {:.1},\n      \"vhll_total_entries\": {},\n      \
         \"oracle_query_ns\": {:.1},\n      \"oracle_query_checksum\": {:.1},\n      \
         \"sweep_serial_ns_per_node\": {:.1},\n      \"sweep_checksum\": {:.1},\n      \
         \"sweep_parallel\": [{}],\n      \
         \"greedy_k16_ms\": {:.3},\n      \"greedy_last_cumulative\": {:.1},\n      \
         \"exact_sweep_checksum\": {:.1},\n      \"exact_greedy_last_cumulative\": {:.1},\n      \
         \"metrics\": {}\n    }}",
        r.name,
        r.nodes,
        r.interactions,
        r.exact_build_ns_per_interaction,
        r.exact_total_entries,
        r.vhll_build_ns_per_interaction,
        r.vhll_total_entries,
        r.oracle_query_ns,
        r.oracle_query_checksum,
        r.sweep_serial_ns_per_node,
        r.sweep_checksum,
        sp,
        r.greedy_k16_ms,
        r.greedy_last_cumulative,
        r.exact_sweep_checksum,
        r.exact_greedy_last_cumulative,
        metrics,
    )
}

/// Pre-change baseline (hash-map stores, allocating vHLL merges, serial
/// sweeps) measured at scale 1.0, 1 core, opt-level 3 — the "before" the
/// dense-store PR is compared against.
const REFERENCE: &str = r#"{
    "captured": "pre-dense-store tree, scale 1.0, 1 core, rustc -O",
    "uniform": {
      "exact_build_ns_per_interaction": 270.4,
      "vhll_build_ns_per_interaction": 2748.5,
      "oracle_query_ns": 3659.2,
      "sweep_serial_ns_per_node": 352.9,
      "greedy_k16_ms": 1.0
    },
    "hub": {
      "exact_build_ns_per_interaction": 360.1,
      "vhll_build_ns_per_interaction": 1995.2,
      "oracle_query_ns": 3760.3,
      "sweep_serial_ns_per_node": 334.5,
      "greedy_k16_ms": 3.0
    }
  }"#;

/// Free-form attribution notes carried in the JSON so a regression number
/// is never separated from its explanation.
const NOTES: &str = "hub exact-build ns/interaction sits above the uniform profile (and above \
the pre-dense-store reference ratio) because of per-merge entry traffic, not a tuning bug: \
the embedded counters show ~109 entries touched per merge on hub vs ~22 on uniform \
(exact.entries_touched / exact.merge_calls), with 62% of hub merges on the small-side \
splice path into large hub summaries and merge sources an order of magnitude larger \
(exact.merge_src_len p99 511 vs 63). A SMALL_SIDE_FACTOR sweep (2/4/8/16) moved the hub \
build by less than run-to-run noise, so the threshold stays at 4; the cost is inherent to \
sorted dense summaries under hub skew.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::from("BENCH_core.json");
    let mut scale = 1.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .expect("--scale needs a factor")
                    .parse()
                    .expect("--scale must be a float");
            }
            other => panic!("unknown flag {other} (expected --out/--scale)"),
        }
        i += 1;
    }
    assert!(scale > 0.0, "--scale must be positive");

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let thread_counts: [usize; 3] = [1, 2, 4];

    let sz = |base: usize| ((base as f64 * scale) as usize).max(8);
    let uni = uniform_profile(sz(4000) as u64, sz(40_000), sz(100_000) as u64, 0xC0FFEE);
    let uni_window = Window((sz(10_000) as i64).max(1));
    let hub = hub_profile(sz(2000) as u64, sz(30_000), sz(60_000) as u64, 0xFACADE);
    let hub_window = Window((sz(6_000) as i64).max(1));

    let reports = [
        run_profile("uniform", &uni, uni_window, &thread_counts),
        run_profile("hub", &hub, hub_window, &thread_counts),
    ];

    let profiles: Vec<String> = reports.iter().map(profile_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"trajectory\",\n  \"scale\": {scale},\n  \"cores\": {cores},\n  \
         \"thread_counts\": [1, 2, 4],\n  \"notes\": \"{}\",\n  \"profiles\": [\n{}\n  ],\n  \
         \"reference\": {}\n}}\n",
        NOTES,
        profiles.join(",\n"),
        REFERENCE,
    );
    std::fs::write(&out, &json).expect("failed to write output file");
    eprintln!("wrote {out}");
    for r in &reports {
        eprintln!(
            "  {}: exact {:.1} ns/i, vhll {:.1} ns/i, query {:.1} ns, sweep {:.1} ns/node",
            r.name,
            r.exact_build_ns_per_interaction,
            r.vhll_build_ns_per_interaction,
            r.oracle_query_ns,
            r.sweep_serial_ns_per_node
        );
    }
}
