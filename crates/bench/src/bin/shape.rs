//! Prints the dataset shape report (see DESIGN.md's substitution table).
fn main() {
    infprop_bench::experiments::shape::run(42);
}
