//! Regenerates the paper's fig3 (see DESIGN.md's experiment index).
fn main() {
    infprop_bench::experiments::fig3::run(42);
}
