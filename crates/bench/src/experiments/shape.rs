//! Dataset shape report: the measurable properties behind DESIGN.md §3's
//! substitution argument.
//!
//! For each generated profile, print the structural/temporal metrics the
//! paper's evaluation implicitly relies on — heavy-tailed activity (Gini),
//! contact repetition (interactions per static edge), reciprocity, and
//! burstiness — so the reader can check that the synthetic stand-ins carry
//! the intended shape (e.g. cascade profiles bursty, email profiles
//! repetition-heavy).

use crate::support::build_datasets;
use infprop_temporal_graph::metrics;

/// Runs the shape report.
pub fn run(seed: u64) {
    println!("Dataset shape report (substitution-argument metrics)");
    let header = format!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "Dataset", "deg Gini", "max degree", "repetition", "reciprocity", "burstiness"
    );
    println!("{header}");
    crate::support::rule(&header);
    for d in build_datasets(seed) {
        let net = &d.data.network;
        let deg = metrics::interaction_out_degree_summary(net);
        let profile = metrics::temporal_profile(net);
        println!(
            "{:<10} {:>10.3} {:>12} {:>12.2} {:>12.3} {:>10.3}",
            d.data.name,
            deg.gini,
            deg.max,
            metrics::contact_repetition(net),
            metrics::reciprocity(net),
            profile.burstiness
        );
    }
    println!();
}
