//! Table 6: time (seconds) to select the top-50 seeds with each method.
//!
//! The paper reports IRS(approx), SKIM, PageRank, HD, SHD and ConTinEst.
//! IRS timing includes the one-pass sketch construction (its preprocessing),
//! mirroring the paper's accounting, which likewise charges SKIM's DIMACS
//! conversion separately — our SKIM timing includes instance sampling.

use crate::experiments::methods::{select_seeds, Method};
use crate::support::{build_datasets, time_it};

/// Runs the Table 6 experiment.
pub fn run(seed: u64) {
    println!("Table 6: seconds to select top-50 seeds per method (w = 10%)");
    let methods = [
        Method::IrsApprox,
        Method::Skim,
        Method::PageRank,
        Method::HighDegree,
        Method::SmartHighDegree,
        Method::ConTinEst,
    ];
    let header = format!(
        "{:<10} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Dataset", "IRS", "SKIM", "PR", "HD", "SHD", "CTE"
    );
    println!("{header}");
    crate::support::rule(&header);
    for d in build_datasets(seed) {
        let net = &d.data.network;
        let window = net.window_from_percent(10.0);
        let mut cells = Vec::with_capacity(methods.len());
        for m in methods {
            let (_, took) = time_it(|| select_seeds(m, net, window, 50, seed));
            cells.push(took.as_secs_f64());
        }
        println!(
            "{:<10} {:>12.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            d.data.name, cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]
        );
    }
    println!();
}
