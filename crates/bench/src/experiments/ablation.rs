//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **vHLL vs plain HLL** — drop the version lists and merge whole
//!    sketches without the window filter: the estimate degenerates to
//!    *unwindowed* reachability and massively overcounts for small ω. This
//!    quantifies why the paper's versioning exists.
//! 2. **Reverse vs forward** — Lemma 1's point: the one-pass reverse scan
//!    vs recomputing forward temporal BFS per node.
//! 3. **Greedy vs top-k-by-size** — Algorithm 4's overlap-aware greedy vs
//!    naively taking the k nodes with the largest individual IRS.

use crate::support::{build_dataset, time_it};
use infprop_core::{brute_force_irs_all, greedy_top_k, ApproxIrs, ExactIrs, InfluenceOracle};
use infprop_diffusion::{tcic_spread, TcicConfig};
use infprop_hll::HyperLogLog;
use infprop_temporal_graph::{InteractionNetwork, NodeId, Timestamp, Window};

/// Plain-HLL variant of the approximate algorithm: same reverse scan, but
/// sketches carry no version timestamps, so the merge cannot filter by
/// window — every merge is a full union.
fn plain_hll_irs(net: &InteractionNetwork, precision: u8) -> Vec<HyperLogLog> {
    let n = net.num_nodes();
    let mut sketches: Vec<HyperLogLog> = (0..n).map(|_| HyperLogLog::new(precision)).collect();
    for e in net.iter_reverse() {
        let (u, v) = (e.src.index(), e.dst.index());
        let (a, b) = if u < v {
            let (lo, hi) = sketches.split_at_mut(v);
            (&mut lo[u], &hi[0])
        } else {
            let (lo, hi) = sketches.split_at_mut(u);
            (&mut hi[0], &lo[v])
        };
        a.add_u64(u64::from(e.dst.0));
        a.merge(b);
    }
    sketches
}

/// Ablation 1: estimate error of vHLL vs plain HLL against the exact IRS.
pub fn vhll_vs_plain(seed: u64) {
    println!("Ablation 1: versioned HLL vs plain HLL (w = 10%, beta = 512)");
    let header = format!(
        "{:<10} {:>16} {:>16}",
        "Dataset", "vHLL avg err", "plain-HLL avg err"
    );
    println!("{header}");
    crate::support::rule(&header);
    for name in ["Slashdot", "Higgs"] {
        let d = build_dataset(name, seed);
        let net = &d.data.network;
        let window = net.window_from_percent(10.0);
        let exact = ExactIrs::compute(net, window);
        let vhll = ApproxIrs::compute(net, window);
        let plain = plain_hll_irs(net, 9);
        let mut err_v = 0.0;
        let mut err_p = 0.0;
        for u in net.node_ids() {
            let truth = exact.irs_size(u) as f64;
            err_v += (vhll.irs_size_estimate(u) - truth).abs() / truth.max(1.0);
            err_p += (plain[u.index()].estimate() - truth).abs() / truth.max(1.0);
        }
        let n = net.num_nodes() as f64;
        println!("{:<10} {:>16.3} {:>16.3}", name, err_v / n, err_p / n);
    }
    println!();
}

/// Ablation 2: one-pass reverse scan vs per-node forward temporal BFS.
pub fn reverse_vs_forward(seed: u64) {
    println!("Ablation 2: reverse one-pass vs forward per-node recomputation");
    let d = build_dataset("Slashdot", seed);
    // Forward brute force is O(sum_out_deg * m): slice to keep it finite.
    let net = &d.data.network;
    let lo = net.min_time().unwrap_or(Timestamp(0));
    let cut = Timestamp(lo.get() + net.time_span() / 4);
    let sliced = net.slice_time(lo, cut);
    let window = Window((sliced.time_span() / 10).max(1));
    let (_, t_exact) = time_it(|| ExactIrs::compute(&sliced, window));
    let (_, t_brute) = time_it(|| brute_force_irs_all(&sliced, window));
    println!(
        "slice: {} interactions, {} nodes | reverse one-pass: {:.1} ms | forward brute: {:.1} ms ({:.0}x)",
        sliced.num_interactions(),
        sliced.num_nodes(),
        t_exact.as_secs_f64() * 1e3,
        t_brute.as_secs_f64() * 1e3,
        t_brute.as_secs_f64() / t_exact.as_secs_f64().max(1e-9)
    );
    println!();
}

/// Ablation 3: overlap-aware greedy vs naive top-k by individual IRS size.
///
/// The union objective |⋃ σω| models deterministic reach (p = 1), where
/// seed overlap is pure waste — greedy should win there. At p < 1 the
/// picture can invert: overlapping seeds buy *independent retries* over the
/// shared region, which the union objective does not model. Reporting both
/// probabilities makes the objective/model gap visible.
pub fn greedy_vs_topk(seed: u64) {
    println!("Ablation 3: greedy (Alg. 4) vs naive top-k by |IRS| (k = 25, w = 10%)");
    let header = format!(
        "{:<10} {:>5} {:>14} {:>14} {:>14}",
        "Dataset", "p", "greedy(exact)", "greedy(approx)", "naive top-k"
    );
    println!("{header}");
    crate::support::rule(&header);
    for name in ["Lkml", "Enron"] {
        let d = build_dataset(name, seed);
        let net = &d.data.network;
        let window = net.window_from_percent(10.0);
        let exact = ExactIrs::compute(net, window);
        let eo = exact.oracle();
        let greedy_exact: Vec<NodeId> = greedy_top_k(&eo, 25).into_iter().map(|s| s.node).collect();
        let approx = ApproxIrs::compute(net, window);
        let ao = approx.oracle();
        let greedy_approx: Vec<NodeId> =
            greedy_top_k(&ao, 25).into_iter().map(|s| s.node).collect();
        let mut naive: Vec<NodeId> = net.node_ids().collect();
        naive.sort_by(|&a, &b| {
            eo.individual(b)
                .total_cmp(&eo.individual(a))
                .then(a.cmp(&b))
        });
        naive.truncate(25);
        for p in [0.5, 1.0] {
            let cfg = TcicConfig::new(window, p)
                .with_runs(60)
                .with_seed(seed)
                .with_threads(4);
            println!(
                "{:<10} {:>5.1} {:>14.1} {:>14.1} {:>14.1}",
                name,
                p,
                tcic_spread(net, &greedy_exact, &cfg),
                tcic_spread(net, &greedy_approx, &cfg),
                tcic_spread(net, &naive, &cfg)
            );
        }
    }
    println!();
}

/// Ablation 4: model robustness — the paper positions the IRS as
/// "data-driven and model-independent"; check that IRS seeds keep beating
/// the static High-Degree seeds when the evaluation model switches from
/// TCIC (independent-cascade style) to TC-LT (linear-threshold style).
pub fn model_robustness(seed: u64) {
    use infprop_baselines::high_degree;
    use infprop_diffusion::{tclt_spread, LtWeights};
    println!("Ablation 4: IRS vs HD seeds under TCIC and TC-LT (k = 25, w = 10%)");
    let header = format!(
        "{:<10} {:<7} {:>12} {:>12}",
        "Dataset", "model", "IRS seeds", "HD seeds"
    );
    println!("{header}");
    crate::support::rule(&header);
    for name in ["Enron", "Facebook"] {
        let d = build_dataset(name, seed);
        let net = &d.data.network;
        let window = net.window_from_percent(10.0);
        let exact = ExactIrs::compute(net, window);
        let irs_seeds: Vec<NodeId> = greedy_top_k(&exact.oracle(), 25)
            .into_iter()
            .map(|s| s.node)
            .collect();
        let hd_seeds = high_degree(&net.to_static(), 25);
        let cfg = TcicConfig::new(window, 0.5)
            .with_runs(60)
            .with_seed(seed)
            .with_threads(4);
        println!(
            "{:<10} {:<7} {:>12.1} {:>12.1}",
            name,
            "TCIC",
            tcic_spread(net, &irs_seeds, &cfg),
            tcic_spread(net, &hd_seeds, &cfg)
        );
        let weights = LtWeights::from_network(net);
        println!(
            "{:<10} {:<7} {:>12.1} {:>12.1}",
            name,
            "TC-LT",
            tclt_spread(net, &weights, &irs_seeds, window, 60, seed),
            tclt_spread(net, &weights, &hd_seeds, window, 60, seed)
        );
    }
    println!();
}

/// Runs all four ablations.
pub fn run(seed: u64) {
    vhll_vs_plain(seed);
    reverse_vs_forward(seed);
    greedy_vs_topk(seed);
    model_robustness(seed);
}
