//! Figure 4: influence-oracle query time as a function of the seed-set
//! size, at ω = 20%.
//!
//! The paper's observation: query time is almost independent of the graph
//! size (an HLL union is O(β) per seed) and grows linearly in the number of
//! seeds, staying in single-digit milliseconds even for 10 000 seeds.

use crate::support::{build_datasets, time_it};
use infprop_core::{ApproxIrs, InfluenceOracle};
use infprop_temporal_graph::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seed-set sizes swept by the figure.
pub const SEED_COUNTS: [usize; 5] = [10, 100, 1_000, 5_000, 10_000];

/// Repetitions averaged per measurement.
const REPS: usize = 5;

/// Runs the Figure 4 experiment.
pub fn run(seed: u64) {
    println!("Figure 4: oracle query time vs seed-set size (w = 20%)");
    let header = format!(
        "{:<10} {:>8} {:>16} {:>14}",
        "Dataset", "seeds", "query (ms)", "influence"
    );
    println!("{header}");
    crate::support::rule(&header);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xF164);
    for d in build_datasets(seed) {
        let net = &d.data.network;
        let oracle = ApproxIrs::compute(net, net.window_from_percent(20.0)).oracle();
        let n = net.num_nodes();
        for &count in &SEED_COUNTS {
            let take = count.min(n);
            let seeds: Vec<NodeId> = (0..take)
                .map(|_| NodeId(rng.gen_range(0..n as u32)))
                .collect();
            let (inf, took) = time_it(|| {
                let mut last = 0.0;
                for _ in 0..REPS {
                    last = oracle.influence(&seeds);
                }
                last
            });
            println!(
                "{:<10} {:>8} {:>16.3} {:>14.0}",
                d.data.name,
                take,
                took.as_secs_f64() * 1_000.0 / REPS as f64,
                inf
            );
        }
    }
    println!();
}
