//! Table 2: characteristics of the interaction networks.

use crate::support::build_datasets;
use infprop_temporal_graph::NetworkStats;

/// Prints the Table 2 counterpart for the generated datasets.
pub fn run(seed: u64) {
    println!("Table 2: characteristics of interaction networks (generated profiles)");
    let header = format!(
        "{:<10} {:>10} {:>12} {:>8} {:>14} {:>7}",
        "Dataset", "|V| [.10^3]", "|E| [.10^3]", "Days", "static edges", "scale"
    );
    println!("{header}");
    crate::support::rule(&header);
    for d in build_datasets(seed) {
        let stats = NetworkStats::compute(&d.data.network, d.data.units_per_day);
        println!(
            "{:<10} {:>10.1} {:>12.1} {:>8.0} {:>14} {:>7.4}",
            d.data.name,
            stats.nodes_thousands(),
            stats.interactions_thousands(),
            stats.days,
            stats.num_static_edges,
            d.scale
        );
    }
    println!();
}
