//! Figure 5 (a–l): TCIC spread of the top-k seeds chosen by each method,
//! for k ∈ {5, …, 50}, ω ∈ {1, 20}% and infection probability ∈ {0.5, 1.0},
//! on the Lkml-, Enron- and Facebook-like datasets.
//!
//! Each method selects its top-50 once; prefixes give the smaller k values
//! (all methods here are prefix-consistent rankings or greedy sequences).
//! Spread is the Monte-Carlo average TCIC infection count.

use crate::experiments::methods::{select_seeds, Method};
use crate::support::{build_dataset, time_it};
use infprop_diffusion::{tcic_spread, TcicConfig};

/// The k values on the figure's x axis.
pub const K_VALUES: [usize; 10] = [5, 10, 15, 20, 25, 30, 35, 40, 45, 50];

/// Monte-Carlo replicates per spread estimate (p = 1 needs only one).
const RUNS: usize = 60;

/// Datasets in the paper's Figure 5.
pub const DATASETS: [&str; 3] = ["Lkml", "Enron", "Facebook"];

/// Window percentages and infection probabilities of the sub-figures.
pub const WINDOWS_PERCENT: [f64; 2] = [1.0, 20.0];
/// See [`WINDOWS_PERCENT`].
pub const PROBS: [f64; 2] = [0.5, 1.0];

/// Runs the full Figure 5 sweep.
pub fn run(seed: u64) {
    println!("Figure 5: TCIC spread of top-k seeds per method");
    let header = format!(
        "{:<10} {:>6} {:>5} {:>4} {:<12} {:>10} {:>12}",
        "Dataset", "w (%)", "p", "k", "method", "spread", "select (s)"
    );
    println!("{header}");
    crate::support::rule(&header);
    for name in DATASETS {
        let d = build_dataset(name, seed);
        let net = &d.data.network;
        for &pct in &WINDOWS_PERCENT {
            let window = net.window_from_percent(pct);
            // Selection is per (dataset, window); evaluation per p.
            for method in Method::all() {
                let (seeds, select_time) =
                    time_it(|| select_seeds(method, net, window, *K_VALUES.last().unwrap(), seed));
                for &p in &PROBS {
                    let cfg = TcicConfig::new(window, p)
                        .with_runs(RUNS)
                        .with_seed(seed)
                        .with_threads(4);
                    for &k in &K_VALUES {
                        let take = k.min(seeds.len());
                        let spread = tcic_spread(net, &seeds[..take], &cfg);
                        println!(
                            "{:<10} {:>6.0} {:>5.1} {:>4} {:<12} {:>10.1} {:>12.2}",
                            name,
                            pct,
                            p,
                            k,
                            method.label(),
                            spread,
                            select_time.as_secs_f64()
                        );
                    }
                }
            }
        }
    }
    println!();
}
