//! Figure 3: time to process all interactions (build the approximate IRS)
//! as a function of the window length ω, per dataset.
//!
//! The paper plots log(time) for ω from 1% to 100% and observes the curve
//! flattening once ω exceeds ~10% (the IRS stops changing much, so merges
//! stop growing).

use crate::support::{build_datasets, time_it};
use infprop_core::ApproxIrs;

/// Window percentages swept by the figure.
pub const SWEEP: [f64; 8] = [1.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0];

/// Runs the Figure 3 experiment; prints one row per (dataset, ω).
pub fn run(seed: u64) {
    println!("Figure 3: approximate-IRS build time vs window length");
    let header = format!(
        "{:<10} {:>8} {:>14} {:>14}",
        "Dataset", "w (%)", "time (ms)", "entries"
    );
    println!("{header}");
    crate::support::rule(&header);
    for d in build_datasets(seed) {
        let net = &d.data.network;
        for &pct in &SWEEP {
            let window = net.window_from_percent(pct);
            let (approx, took) = time_it(|| ApproxIrs::compute(net, window));
            println!(
                "{:<10} {:>8.0} {:>14.1} {:>14}",
                d.data.name,
                pct,
                took.as_secs_f64() * 1_000.0,
                approx.total_entries()
            );
        }
    }
    println!();
}
