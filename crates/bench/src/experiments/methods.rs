//! Seed-selection methods compared in §6.5 (Figure 5, Tables 5 & 6).

use infprop_baselines::{
    high_degree, pagerank_top_k, smart_high_degree, ConTinEst, ConTinEstConfig, PageRankConfig,
    Skim, SkimConfig,
};
use infprop_core::{greedy_top_k, ApproxIrs, ExactIrs};
use infprop_temporal_graph::{InteractionNetwork, NodeId, WeightedStaticGraph, Window};

/// The seven methods of Figure 5, in the paper's legend order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// PageRank on the reversed static graph.
    PageRank,
    /// Top-k static out-degree.
    HighDegree,
    /// Greedy distinct-neighbour coverage.
    SmartHighDegree,
    /// Cohen et al.'s sketch-based IM on the static graph.
    Skim,
    /// The paper's approximate (vHLL) IRS greedy.
    IrsApprox,
    /// The paper's exact IRS greedy.
    IrsExact,
    /// Du et al.'s continuous-time estimator.
    ConTinEst,
}

impl Method {
    /// All methods, in the paper's legend order (PR, HD, SHD, SKIM,
    /// IRS(Approx), IRS(Exact), ConTinEst).
    pub fn all() -> [Method; 7] {
        [
            Method::PageRank,
            Method::HighDegree,
            Method::SmartHighDegree,
            Method::Skim,
            Method::IrsApprox,
            Method::IrsExact,
            Method::ConTinEst,
        ]
    }

    /// Methods cheap enough for every table (excludes the exact IRS on
    /// large inputs when memory is a concern — callers decide).
    pub fn label(&self) -> &'static str {
        match self {
            Method::PageRank => "PR",
            Method::HighDegree => "HD",
            Method::SmartHighDegree => "SHD",
            Method::Skim => "SKIM",
            Method::IrsApprox => "IRS(Approx)",
            Method::IrsExact => "IRS(Exact)",
            Method::ConTinEst => "CTE",
        }
    }
}

/// Selects `k` seeds with the given method.
///
/// The window only affects the window-aware methods (the IRS pair and
/// ConTinEst, whose time budget is set to the absolute window length, as in
/// the paper's comparison); the static baselines ignore it, exactly as in
/// the paper.
pub fn select_seeds(
    method: Method,
    net: &InteractionNetwork,
    window: Window,
    k: usize,
    seed: u64,
) -> Vec<NodeId> {
    match method {
        Method::PageRank => pagerank_top_k(&net.to_static(), k, &PageRankConfig::default()),
        Method::HighDegree => high_degree(&net.to_static(), k),
        Method::SmartHighDegree => smart_high_degree(&net.to_static(), k),
        Method::Skim => {
            let skim = Skim::new(
                &net.to_static(),
                SkimConfig {
                    seed,
                    ..SkimConfig::default()
                },
            );
            skim.top_k(k)
        }
        Method::IrsApprox => {
            let irs = ApproxIrs::compute(net, window);
            greedy_top_k(&irs.oracle(), k)
                .into_iter()
                .map(|s| s.node)
                .collect()
        }
        Method::IrsExact => {
            let irs = ExactIrs::compute(net, window);
            greedy_top_k(&irs.oracle(), k)
                .into_iter()
                .map(|s| s.node)
                .collect()
        }
        Method::ConTinEst => {
            let weighted = WeightedStaticGraph::from_network(net);
            let cfg = ConTinEstConfig::new(window.get() as f64).with_seed(seed);
            ConTinEst::new(&weighted, &cfg).top_k(k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infprop_datasets::toy;

    #[test]
    fn every_method_selects_on_toy_graph() {
        let net = toy::figure1a();
        let w = Window(3);
        for m in Method::all() {
            let seeds = select_seeds(m, &net, w, 2, 7);
            assert!(!seeds.is_empty(), "{} selected nothing", m.label());
            assert!(seeds.len() <= 2);
            let mut d = seeds.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), seeds.len(), "{} duplicated seeds", m.label());
        }
    }

    #[test]
    fn labels_are_paper_names() {
        let labels: Vec<&str> = Method::all().iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec![
                "PR",
                "HD",
                "SHD",
                "SKIM",
                "IRS(Approx)",
                "IRS(Exact)",
                "CTE"
            ]
        );
    }
}
