//! Table 4: memory used by the approximate algorithm's sketches after
//! processing all interactions, per window length.
//!
//! The paper reports resident MB of its C++ process; we report exact heap
//! bytes held by the vHLL sketches (cell headers + version pairs), which
//! tracks the same trend without OS-level noise (see DESIGN.md's
//! substitution table).

use crate::support::{build_datasets, TABLE_WINDOWS_PERCENT};
use infprop_core::ApproxIrs;

/// Runs the Table 4 experiment.
pub fn run(seed: u64) {
    println!("Table 4: sketch memory (MB) after processing all interactions");
    let header = format!(
        "{:<10} {:>10} {:>10} {:>10} {:>14}",
        "Dataset", "w=1%", "w=10%", "w=20%", "entries(w=20%)"
    );
    println!("{header}");
    crate::support::rule(&header);
    for d in build_datasets(seed) {
        let net = &d.data.network;
        let mut mbs = Vec::new();
        let mut last_entries = 0usize;
        for &pct in &TABLE_WINDOWS_PERCENT {
            let approx = ApproxIrs::compute(net, net.window_from_percent(pct));
            mbs.push(approx.heap_bytes() as f64 / (1024.0 * 1024.0));
            last_entries = approx.total_entries();
        }
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>10.1} {:>14}",
            d.data.name, mbs[0], mbs[1], mbs[2], last_entries
        );
    }
    println!();
}
