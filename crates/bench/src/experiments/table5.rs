//! Table 5: number of common seeds among the top-10 selected at different
//! window lengths (1% vs 10%, 1% vs 20%, 10% vs 20%).
//!
//! The paper's point: small windows pick very different influencers than
//! large ones, so the window matters for influence maximization.

use crate::experiments::methods::{select_seeds, Method};
use crate::support::build_datasets;
use infprop_temporal_graph::NodeId;

/// Count of shared nodes between two seed lists.
pub fn common(a: &[NodeId], b: &[NodeId]) -> usize {
    a.iter().filter(|x| b.contains(x)).count()
}

/// Runs the Table 5 experiment with the approximate IRS method (the
/// paper's production configuration).
pub fn run(seed: u64) {
    println!("Table 5: common seeds between window lengths (top 10, IRS approx)");
    let header = format!(
        "{:<10} {:>10} {:>10} {:>10}",
        "Dataset", "1%-10%", "1%-20%", "10%-20%"
    );
    println!("{header}");
    crate::support::rule(&header);
    for d in build_datasets(seed) {
        let net = &d.data.network;
        let tops: Vec<Vec<NodeId>> = [1.0, 10.0, 20.0]
            .iter()
            .map(|&pct| {
                select_seeds(
                    Method::IrsApprox,
                    net,
                    net.window_from_percent(pct),
                    10,
                    seed,
                )
            })
            .collect();
        println!(
            "{:<10} {:>10} {:>10} {:>10}",
            d.data.name,
            common(&tops[0], &tops[1]),
            common(&tops[0], &tops[2]),
            common(&tops[1], &tops[2])
        );
    }
    println!();
}
