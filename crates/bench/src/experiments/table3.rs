//! Table 3: average relative error of the vHLL IRS-size estimate as a
//! function of β (number of cells) and window length.
//!
//! The paper measures on Higgs and Slashdot — the two datasets small enough
//! to run the exact algorithm — for β ∈ {16 … 512} and ω ∈ {1, 10, 20}%.

use crate::support::{build_dataset, TABLE_WINDOWS_PERCENT};
use infprop_core::{ApproxIrs, ExactIrs};
use infprop_temporal_graph::InteractionNetwork;

/// Average relative error of per-node IRS size estimates.
///
/// Nodes whose exact IRS is empty contribute their absolute estimate (an
/// empty set estimated as 0 is a 0 error; any spurious mass counts fully).
pub fn average_relative_error(
    net: &InteractionNetwork,
    exact: &ExactIrs,
    approx: &ApproxIrs,
) -> f64 {
    let mut total = 0.0f64;
    let n = net.num_nodes();
    if n == 0 {
        return 0.0;
    }
    for u in net.node_ids() {
        let truth = exact.irs_size(u) as f64;
        let est = approx.irs_size_estimate(u);
        total += (est - truth).abs() / truth.max(1.0);
    }
    total / n as f64
}

/// Runs the Table 3 experiment and prints per-(dataset, β, ω) errors.
pub fn run(seed: u64) {
    println!("Table 3: avg relative error of IRS size estimate vs beta and window");
    let header = format!(
        "{:<10} {:>6} {:>10} {:>10} {:>10}",
        "Dataset", "beta", "w=1%", "w=10%", "w=20%"
    );
    println!("{header}");
    crate::support::rule(&header);
    for name in ["Higgs", "Slashdot"] {
        let d = build_dataset(name, seed);
        let net = &d.data.network;
        // Exact summaries for all three windows in one shared reverse pass;
        // approx runs once per (β, window).
        let windows: Vec<_> = TABLE_WINDOWS_PERCENT
            .iter()
            .map(|&pct| net.window_from_percent(pct))
            .collect();
        let exacts: Vec<ExactIrs> = ExactIrs::compute_many(net, &windows);
        for precision in 4u8..=9 {
            let mut errors = Vec::with_capacity(TABLE_WINDOWS_PERCENT.len());
            for (i, &pct) in TABLE_WINDOWS_PERCENT.iter().enumerate() {
                let approx =
                    ApproxIrs::compute_with_precision(net, net.window_from_percent(pct), precision);
                errors.push(average_relative_error(net, &exacts[i], &approx));
            }
            println!(
                "{:<10} {:>6} {:>10.3} {:>10.3} {:>10.3}",
                name,
                1usize << precision,
                errors[0],
                errors[1],
                errors[2]
            );
        }
    }
    println!();
}
