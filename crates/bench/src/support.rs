//! Shared experiment plumbing: dataset construction, timing, formatting.

use infprop_datasets::profiles::{self, GeneratedDataset};
use infprop_temporal_graph::Window;
use std::time::{Duration, Instant};

/// Base per-profile scales chosen so every dataset lands around 15k–25k
/// interactions — large enough to show the paper's trends, small enough
/// that the full experiment suite runs in minutes on a laptop. The
/// `INFPROP_SCALE` environment variable multiplies all of them.
const BASE_SCALES: [(&str, f64); 6] = [
    ("Enron", 0.02),
    ("Lkml", 0.02),
    ("Facebook", 0.02),
    ("Higgs", 0.04),
    ("Slashdot", 0.10),
    ("US-2016", 0.0005),
];

/// A generated dataset plus the scale it was built at.
pub struct DatasetAtScale {
    /// The generated dataset (name, network, clock granularity).
    pub data: GeneratedDataset,
    /// Effective scale relative to the full Table 2 size.
    pub scale: f64,
}

/// Reads the global scale multiplier from `INFPROP_SCALE` (default 1.0).
pub fn scale_factor() -> f64 {
    std::env::var("INFPROP_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&v| v > 0.0)
        .unwrap_or(1.0)
}

/// Builds the six Table 2 dataset profiles at experiment scale.
pub fn build_datasets(seed: u64) -> Vec<DatasetAtScale> {
    let multiplier = scale_factor();
    profiles::all(seed)
        .into_iter()
        .map(|profile| {
            let base = BASE_SCALES
                .iter()
                .find(|(name, _)| *name == profile.name)
                .map(|&(_, s)| s)
                .expect("profile must have a base scale");
            let scale = (base * multiplier).min(1.0);
            DatasetAtScale {
                data: profile.build(scale),
                scale,
            }
        })
        .collect()
}

/// Builds one named profile at experiment scale.
pub fn build_dataset(name: &str, seed: u64) -> DatasetAtScale {
    build_datasets(seed)
        .into_iter()
        .find(|d| d.data.name == name)
        .unwrap_or_else(|| panic!("unknown dataset profile {name:?}"))
}

/// Times a closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// The window lengths (percent of time span) used throughout §6's tables.
pub const TABLE_WINDOWS_PERCENT: [f64; 3] = [1.0, 10.0, 20.0];

/// Converts a percent window for a dataset, mirroring the paper's
/// convention.
pub fn window_percent(data: &GeneratedDataset, percent: f64) -> Window {
    data.network.window_from_percent(percent)
}

/// Prints a horizontal rule sized to a header line.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Env-var mutations must not race across parallel tests.
    fn env_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap()
    }

    #[test]
    fn six_datasets_at_scale() {
        let _guard = env_lock();
        // Tiny scale so the test stays fast.
        std::env::set_var("INFPROP_SCALE", "0.05");
        let ds = build_datasets(0);
        std::env::remove_var("INFPROP_SCALE");
        assert_eq!(ds.len(), 6);
        for d in &ds {
            assert!(d.data.network.num_interactions() > 0, "{}", d.data.name);
            assert!(d.scale > 0.0 && d.scale <= 1.0);
        }
    }

    #[test]
    fn named_lookup_works() {
        let _guard = env_lock();
        std::env::set_var("INFPROP_SCALE", "0.05");
        let d = build_dataset("Slashdot", 0);
        std::env::remove_var("INFPROP_SCALE");
        assert_eq!(d.data.name, "Slashdot");
    }

    #[test]
    fn default_scale_is_one() {
        let _guard = env_lock();
        std::env::remove_var("INFPROP_SCALE");
        assert_eq!(scale_factor(), 1.0);
        std::env::set_var("INFPROP_SCALE", "2.5");
        assert_eq!(scale_factor(), 2.5);
        std::env::set_var("INFPROP_SCALE", "junk");
        assert_eq!(scale_factor(), 1.0);
        std::env::remove_var("INFPROP_SCALE");
    }

    #[test]
    fn timing_returns_value() {
        let (v, d) = time_it(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
