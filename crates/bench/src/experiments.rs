//! One experiment per paper artefact. Binaries in `src/bin/` are thin
//! wrappers over these functions so `run_all` can chain everything.

pub mod ablation;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod methods;
pub mod shape;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
