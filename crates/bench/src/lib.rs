//! Experiment harnesses regenerating every table and figure of the paper's
//! evaluation (§6), plus shared plumbing for the criterion benches.
//!
//! Each table/figure has a binary (`cargo run -p infprop-bench --release
//! --bin table3` etc.) and a library entry point (so `run_all` can chain
//! them). Experiments run on the six synthetic dataset profiles of
//! `infprop-datasets` at laptop scale; set the `INFPROP_SCALE` environment
//! variable to grow or shrink every dataset proportionally (default 1.0,
//! e.g. `INFPROP_SCALE=4` quadruples all sizes).
//!
//! The mapping from experiment to paper artefact is indexed in DESIGN.md;
//! EXPERIMENTS.md records paper-vs-measured outcomes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod support;

pub use support::{build_datasets, scale_factor, DatasetAtScale};
