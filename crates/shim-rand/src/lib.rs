//! Hermetic in-tree subset of the `rand` 0.8 API.
//!
//! The workspace builds with no registry access, so this crate stands in
//! for crates-io `rand`, implementing exactly the surface the workspace
//! uses — [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] for the primitive types, and [`Rng::gen_range`] over
//! integer and float ranges — with the **same algorithms as rand 0.8.5**:
//!
//! * `SmallRng` is xoshiro256++ (the 64-bit `small_rng` generator), with
//!   `next_u32` taking the upper 32 bits of `next_u64`.
//! * `seed_from_u64` expands the `u64` through the PCG32 stream
//!   `rand_core` 0.6 uses to fill the 32-byte seed.
//! * `gen::<f64>()`/`gen::<f32>()` sample the standard uniform `[0, 1)`
//!   from the top 53/24 bits.
//! * `gen_range` uses widening-multiply rejection sampling with the same
//!   zone computation per width class.
//!
//! Streams produced by any seed are therefore bit-identical to the
//! original dependency, keeping every deterministic fixture, baseline
//! selection, and committed benchmark checksum stable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The raw generator interface: a source of `u32`/`u64` words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a fixed-size byte seed or a single `u64`.
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands `state` into a full seed through the PCG32 stream used by
    /// `rand_core` 0.6, then seeds the generator — bit-compatible with
    /// the original `seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (full range for integers,
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range` (which must be non-empty).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their "standard" domain (the `Standard`
/// distribution of the original crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Same bit choice as rand 0.8: the highest bit of a u32 draw.
        (rng.next_u32() >> 31) == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit mantissa scale, identical to rand 0.8's `Standard`.
        let scale = 1.0 / ((1u64 << 53) as f64);
        scale * (rng.next_u64() >> 11) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u32 << 24) as f32);
        scale * (rng.next_u32() >> 8) as f32
    }
}

/// Range types accepted by [`Rng::gen_range`]. The element type is a
/// trait parameter (not an associated type) so inference can flow from
/// the call site into untyped range literals — `NodeId(rng.gen_range(0..n))`
/// picks `u32` exactly as it does with the original crate.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening-multiply rejection sampling for types whose "large" draw is a
/// full generator word (u32 path / u64 path), with rand 0.8.5's zone
/// formula `(range << range.leading_zeros()) - 1`.
macro_rules! uniform_large {
    ($($ty:ty => $uty:ty, $large:ty, $wide:ty, $draw:ident;)+) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = self.end.wrapping_sub(self.start) as $uty as $large;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $large = rng.$draw() as $large;
                    let wide = (v as $wide) * (range as $wide);
                    let hi = (wide >> <$large>::BITS) as $large;
                    let lo = wide as $large;
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    )+};
}

uniform_large! {
    u32 => u32, u32, u64, next_u32;
    i32 => u32, u32, u64, next_u32;
    u64 => u64, u64, u128, next_u64;
    i64 => i64, u64, u128, next_u64;
    usize => usize, u64, u128, next_u64;
    isize => isize, u64, u128, next_u64;
}

/// Sub-word types (u8/u16) sample through a u32 draw with the modulo zone
/// formula rand 0.8.5 uses for them.
macro_rules! uniform_small {
    ($($ty:ty => $uty:ty;)+) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = self.end.wrapping_sub(self.start) as $uty as u32;
                let ints_to_reject = (u32::MAX - range + 1) % range;
                let zone = u32::MAX - ints_to_reject;
                loop {
                    let v = rng.next_u32();
                    let wide = (v as u64) * (range as u64);
                    let hi = (wide >> 32) as u32;
                    let lo = wide as u32;
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    )+};
}

uniform_small! {
    u8 => u8;
    i8 => u8;
    u16 => u16;
    i16 => u16;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The small fast generator: xoshiro256++, exactly as `rand` 0.8.5
    /// configures `SmallRng` on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // The low bits of xoshiro256 have linear artifacts; take the
            // high half, as the original implementation does.
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            if seed.iter().all(|&b| b == 0) {
                // An all-zero xoshiro state would be a fixed point; fall
                // back to the expanded zero seed like the original.
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                *word = u64::from_le_bytes(b);
            }
            SmallRng { s }
        }
    }

    /// Alias of [`SmallRng`]: this shim has one generator, and the
    /// workspace only relies on `StdRng` being some deterministic
    /// seedable generator.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    /// The stream is deterministic per seed, distinct across seeds, and
    /// the all-zero byte seed falls back to the expanded zero seed rather
    /// than the xoshiro fixed point.
    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(0);
            (0..8).map(|_| rng.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(0);
            (0..8).map(|_| rng.gen::<u64>()).collect()
        };
        let c: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(1);
            (0..8).map(|_| rng.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        let zero_bytes: Vec<u64> = {
            let mut rng = SmallRng::from_seed([0u8; 32]);
            (0..8).map(|_| rng.gen::<u64>()).collect()
        };
        assert_eq!(zero_bytes, a);
        assert!(a.iter().any(|&x| x != 0));
    }

    #[test]
    fn floats_are_unit_interval_and_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x.to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let b = rng.gen_range(3u8..62);
            assert!((3..62).contains(&b));
        }
    }
}
