//! Core value types: node identifiers, timestamps and window durations.
//!
//! Nodes are dense `u32` indices (`0..n`), which keeps the hot data
//! structures of the IRS algorithms compact: an [`Interaction`] is 16 bytes
//! and per-node tables are plain vectors indexed by [`NodeId`].
//!
//! [`Interaction`]: crate::Interaction

use crate::GraphError;
use std::fmt;

/// A node identifier: a dense index in `0..n`.
///
/// Datasets with arbitrary string or sparse integer labels are mapped onto
/// dense ids by [`NodeInterner`](crate::NodeInterner) at load time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index, for vector-indexed per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (more than ~4.2 billion nodes).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range")) // xtask-allow: no-panic (documented panic: >2^32 nodes is a caller bug)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A discrete timestamp.
///
/// The paper models timestamps as natural numbers; we use `i64` so that both
/// Unix epochs (seconds or milliseconds) and small synthetic clocks fit
/// without conversion. Ordering is the plain integer ordering.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Raw value.
    #[inline]
    pub fn get(self) -> i64 {
        self.0
    }

    /// `self - other` as a signed number of time units.
    #[inline]
    pub fn delta(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Timestamp {
    #[inline]
    fn from(v: i64) -> Self {
        Timestamp(v)
    }
}

/// A maximal information-channel duration `ω`, in time units.
///
/// A channel `(u,n1,t1),…,(nk,v,tk)` has duration `tk − t1 + 1`; it is
/// admissible under window `ω` iff `tk − t1 + 1 ≤ ω`. The paper expresses
/// window lengths as a percentage of the dataset's total time span;
/// [`InteractionNetwork::window_from_percent`] performs that conversion.
///
/// [`InteractionNetwork::window_from_percent`]:
///     crate::InteractionNetwork::window_from_percent
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Window(pub i64);

impl Window {
    /// The window that admits only single-interaction channels
    /// (`dur(ic) = 1 ≤ 1`): direct out-neighbours within one time unit.
    pub const UNIT: Window = Window(1);

    /// Validated constructor: a window must span at least one time unit
    /// (`dur(ic) = tk − t1 + 1 ≥ 1` always, so anything shorter admits no
    /// channel and is a caller bug). This is the single validation point the
    /// IRS/diffusion entry points rely on.
    pub fn try_new(len: i64) -> Result<Window, GraphError> {
        if len >= 1 {
            Ok(Window(len))
        } else {
            Err(GraphError::InvalidWindow(len))
        }
    }

    /// Panicking counterpart of [`try_new`](Self::try_new) for code paths
    /// where a sub-unit window is a programming error, not an input error.
    ///
    /// # Panics
    ///
    /// Panics if `len < 1`.
    pub fn new(len: i64) -> Window {
        match Self::try_new(len) {
            Ok(w) => w,
            // xtask-allow: no-panic (documented panicking counterpart of try_new)
            Err(_) => panic!("window must be at least 1 time unit, got {len}"),
        }
    }

    /// Asserts the invariant [`try_new`](Self::try_new) establishes, for
    /// values built via the public tuple constructor. Entry points call this
    /// once instead of re-deriving the guard.
    ///
    /// # Panics
    ///
    /// Panics if the window is shorter than one time unit.
    #[inline]
    #[track_caller]
    pub fn assert_valid(self) {
        assert!(self.0 >= 1, "window must be at least 1 time unit");
    }

    /// Raw length in time units.
    #[inline]
    pub fn get(self) -> i64 {
        self.0
    }

    /// Does a channel starting at `start` and ending at `end` fit in the
    /// window? Equivalent to `end − start + 1 ≤ ω`.
    #[inline]
    pub fn admits(self, start: Timestamp, end: Timestamp) -> bool {
        end.0 - start.0 < self.0
    }

    /// An effectively unbounded window (admits every channel).
    #[inline]
    pub fn unbounded() -> Self {
        Window(i64::MAX / 4)
    }
}

impl fmt::Debug for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ω={}", self.0)
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Window {
    #[inline]
    fn from(v: i64) -> Self {
        Window(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id, NodeId(42));
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn node_id_ordering_is_numeric() {
        assert!(NodeId(2) < NodeId(10));
        assert_eq!(NodeId::default(), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32 range")]
    fn node_id_overflow_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn timestamp_delta() {
        assert_eq!(Timestamp(8).delta(Timestamp(5)), 3);
        assert_eq!(Timestamp(5).delta(Timestamp(8)), -3);
        assert_eq!(format!("{:?}", Timestamp(7)), "t7");
    }

    #[test]
    fn window_admits_inclusive_duration() {
        // Duration of a single interaction is 1.
        assert!(Window(1).admits(Timestamp(5), Timestamp(5)));
        // Duration 4 (t1=1, tk=4) needs ω ≥ 4.
        assert!(!Window(3).admits(Timestamp(1), Timestamp(4)));
        assert!(Window(4).admits(Timestamp(1), Timestamp(4)));
    }

    #[test]
    fn window_unbounded_admits_full_span() {
        let w = Window::unbounded();
        assert!(w.admits(Timestamp(0), Timestamp(i64::MAX / 8)));
    }

    #[test]
    fn window_from_i64() {
        let w: Window = 12.into();
        assert_eq!(w.get(), 12);
        assert_eq!(format!("{w:?}"), "ω=12");
    }

    #[test]
    fn window_try_new_validates() {
        assert!(matches!(Window::try_new(1), Ok(Window(1))));
        assert!(matches!(Window::try_new(40), Ok(Window(40))));
        assert!(matches!(
            Window::try_new(0),
            Err(GraphError::InvalidWindow(0))
        ));
        assert!(matches!(
            Window::try_new(-3),
            Err(GraphError::InvalidWindow(-3))
        ));
        Window::new(5).assert_valid();
    }

    #[test]
    #[should_panic(expected = "window must be at least 1 time unit")]
    fn window_new_panics_on_zero() {
        let _ = Window::new(0);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1 time unit")]
    fn window_assert_valid_panics_on_raw_zero() {
        Window(0).assert_valid();
    }
}
