//! Weighted static graph: the interaction → ConTinEst input transformation.
//!
//! §6 of the paper describes how interactions are fed to ConTinEst, which
//! expects a static graph whose edge weights are *transmission times*:
//!
//! > The first time a node `u` appears as the source of an interaction we
//! > assign the infection time `u_i` for the source node as the interaction
//! > time. Then each interaction `(u, v, t)` is transformed into a weighted
//! > edge `(u, v)` with the edge weight as the difference of the interaction
//! > time and the time when the source gets infected, i.e. `t − u_i`.
//!
//! When the same `(u, v)` pair recurs we keep the **smallest** observed
//! transmission time — the fastest channel the data exhibits; this choice is
//! documented here because the paper does not pin it down. Weights of zero
//! (the very first interaction of `u`) are clamped to 1 time unit so they can
//! parameterize an exponential transmission-time distribution.

use crate::network::InteractionNetwork;
use crate::types::{NodeId, Timestamp};

/// One weighted directed edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightedEdge {
    /// Destination node.
    pub dst: NodeId,
    /// Transmission-time weight (≥ 1.0, see module docs).
    pub weight: f64,
}

/// A directed static graph with per-edge transmission-time weights, in CSR
/// form (mirror of [`StaticGraph`](crate::StaticGraph) plus weights).
#[derive(Clone, Debug)]
pub struct WeightedStaticGraph {
    offsets: Vec<usize>,
    edges: Vec<WeightedEdge>,
}

impl WeightedStaticGraph {
    /// Applies the paper's interaction → weighted-graph transformation.
    pub fn from_network(net: &InteractionNetwork) -> Self {
        let n = net.num_nodes();
        // First-activity time of each node as a source, from the forward scan.
        let mut first_src_time: Vec<Option<Timestamp>> = vec![None; n];
        let mut weighted: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(net.num_interactions());
        for i in net.iter() {
            let u = i.src.index();
            let infected_at = *first_src_time[u].get_or_insert(i.time);
            let w = (i.time.delta(infected_at) as f64).max(1.0);
            weighted.push((i.src, i.dst, w));
        }
        // Keep the minimum transmission time per (src, dst) pair.
        weighted.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
        weighted.dedup_by_key(|e| (e.0, e.1));
        Self::from_weighted_edges(n, weighted)
    }

    /// Builds from explicit `(src, dst, weight)` triples (duplicates keep the
    /// smallest weight).
    pub fn from_weighted_edges(num_nodes: usize, mut triples: Vec<(NodeId, NodeId, f64)>) -> Self {
        triples.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
        triples.dedup_by_key(|e| (e.0, e.1));
        assert!(
            triples
                .iter()
                .all(|&(s, d, _)| s.index() < num_nodes && d.index() < num_nodes),
            "edge endpoint outside node universe"
        );
        let mut offsets = vec![0usize; num_nodes + 1];
        for &(src, _, _) in &triples {
            offsets[src.index() + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let edges = triples
            .into_iter()
            .map(|(_, dst, weight)| WeightedEdge { dst, weight })
            .collect();
        WeightedStaticGraph { offsets, edges }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of distinct directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Weighted out-edges of `u`, sorted by destination id.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> &[WeightedEdge] {
        &self.edges[self.offsets[u.index()]..self.offsets[u.index() + 1]]
    }

    /// The transpose, preserving weights (used by reverse Dijkstra sweeps).
    pub fn transpose(&self) -> WeightedStaticGraph {
        let mut triples = Vec::with_capacity(self.num_edges());
        for u in 0..self.num_nodes() {
            let u = NodeId::from_index(u);
            for e in self.out_edges(u) {
                triples.push((e.dst, u, e.weight));
            }
        }
        WeightedStaticGraph::from_weighted_edges(self.num_nodes(), triples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_transformation_weights() {
        // u=0 first sends at t=10 (u_i = 10), then at t=13 and t=15.
        let net = InteractionNetwork::from_triples([
            (0, 1, 10), // weight max(0,1) = 1 (clamped)
            (0, 2, 13), // weight 3
            (0, 1, 15), // weight 5, but (0,1) already has 1 -> min kept
            (2, 3, 14), // u=2 first source at 14, weight clamped to 1
        ]);
        let g = WeightedStaticGraph::from_network(&net);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        let e0 = g.out_edges(NodeId(0));
        assert_eq!(e0.len(), 2);
        assert_eq!(
            e0[0],
            WeightedEdge {
                dst: NodeId(1),
                weight: 1.0
            }
        );
        assert_eq!(
            e0[1],
            WeightedEdge {
                dst: NodeId(2),
                weight: 3.0
            }
        );
        assert_eq!(
            g.out_edges(NodeId(2)),
            &[WeightedEdge {
                dst: NodeId(3),
                weight: 1.0
            }]
        );
    }

    #[test]
    fn min_weight_kept_for_duplicates() {
        let g = WeightedStaticGraph::from_weighted_edges(
            2,
            vec![
                (NodeId(0), NodeId(1), 5.0),
                (NodeId(0), NodeId(1), 2.0),
                (NodeId(0), NodeId(1), 9.0),
            ],
        );
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_edges(NodeId(0))[0].weight, 2.0);
    }

    #[test]
    fn transpose_preserves_weights() {
        let g = WeightedStaticGraph::from_weighted_edges(
            3,
            vec![(NodeId(0), NodeId(1), 2.0), (NodeId(1), NodeId(2), 4.0)],
        );
        let t = g.transpose();
        assert_eq!(
            t.out_edges(NodeId(1)),
            &[WeightedEdge {
                dst: NodeId(0),
                weight: 2.0
            }]
        );
        assert_eq!(
            t.out_edges(NodeId(2)),
            &[WeightedEdge {
                dst: NodeId(1),
                weight: 4.0
            }]
        );
        assert_eq!(t.out_edges(NodeId(0)), &[]);
    }

    #[test]
    fn empty_and_isolated() {
        let g = WeightedStaticGraph::from_weighted_edges(3, vec![]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_edges(NodeId(2)), &[]);
    }

    #[test]
    #[should_panic(expected = "edge endpoint outside node universe")]
    fn out_of_range_panics() {
        let _ = WeightedStaticGraph::from_weighted_edges(1, vec![(NodeId(0), NodeId(3), 1.0)]);
    }
}
