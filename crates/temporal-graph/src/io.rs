//! Plain-text edge-list I/O for interaction networks.
//!
//! The supported format is the SNAP-style whitespace-separated triple
//! `src dst time`, one interaction per line; `#`-prefixed lines and blank
//! lines are comments. Node labels may be arbitrary tokens — they are mapped
//! to dense ids by a [`NodeInterner`]. Timestamps must parse as `i64`.
//!
//! Reading is buffered with a single reusable line buffer (no per-line
//! allocation for the numeric fast path), per the I/O guidance in the Rust
//! performance notes this workspace follows.

use crate::error::GraphError;
use crate::interaction::Interaction;
use crate::interner::NodeInterner;
use crate::network::{InteractionNetwork, InteractionNetworkBuilder};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Result of loading a labelled edge list: the network plus the label map.
#[derive(Debug)]
pub struct LoadedNetwork {
    /// The parsed network.
    pub network: InteractionNetwork,
    /// Label ↔ id mapping discovered while parsing.
    pub interner: NodeInterner,
}

/// Reads an interaction network from any `Read` source.
///
/// Each non-comment line must be `src dst time` (whitespace- or
/// comma-separated). Labels are interned in first-seen order.
pub fn read_interactions<R: Read>(reader: R) -> Result<LoadedNetwork, GraphError> {
    let mut reader = BufReader::new(reader);
    let mut interner = NodeInterner::new();
    let mut builder = InteractionNetworkBuilder::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|f| !f.is_empty());
        let (src, dst, time) = match (fields.next(), fields.next(), fields.next()) {
            (Some(s), Some(d), Some(t)) => (s, d, t),
            _ => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("expected `src dst time`, got {trimmed:?}"),
                })
            }
        };
        let time: i64 = time.parse().map_err(|_| GraphError::Parse {
            line: lineno,
            message: format!("invalid timestamp {time:?}"),
        })?;
        let src = interner.intern(src);
        let dst = interner.intern(dst);
        builder.push(Interaction::new(src, dst, time.into()));
    }
    let network = builder.build();
    network.check_invariants()?;
    Ok(LoadedNetwork { network, interner })
}

/// Reads an interaction network from a file path. See [`read_interactions`].
pub fn read_interactions_path<P: AsRef<Path>>(path: P) -> Result<LoadedNetwork, GraphError> {
    read_interactions(File::open(path)?)
}

/// Writes a network as `src dst time` lines (dense numeric ids), sorted by
/// ascending time. Round-trips through [`read_interactions`].
pub fn write_interactions<W: Write>(net: &InteractionNetwork, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    for i in net.iter() {
        writeln!(w, "{} {} {}", i.src, i.dst, i.time)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a network to a file path. See [`write_interactions`].
pub fn write_interactions_path<P: AsRef<Path>>(
    net: &InteractionNetwork,
    path: P,
) -> Result<(), GraphError> {
    write_interactions(net, File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{NodeId, Timestamp};

    #[test]
    fn parses_whitespace_and_comments() {
        let text = "# an email log\n\nalice bob 5\nbob  carol\t7\n";
        let loaded = read_interactions(text.as_bytes()).unwrap();
        assert_eq!(loaded.network.num_interactions(), 2);
        assert_eq!(loaded.network.num_nodes(), 3);
        assert_eq!(loaded.interner.get("alice"), Some(NodeId(0)));
        assert_eq!(loaded.interner.get("carol"), Some(NodeId(2)));
        let first = loaded.network.iter().next().unwrap();
        assert_eq!(first.time, Timestamp(5));
    }

    #[test]
    fn parses_comma_separated() {
        let text = "1,2,10\n2,3,20\n";
        let loaded = read_interactions(text.as_bytes()).unwrap();
        assert_eq!(loaded.network.num_interactions(), 2);
    }

    #[test]
    fn rejects_short_lines() {
        let err = read_interactions("a b\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_timestamp() {
        let err = read_interactions("a b xyz\n".as_bytes()).unwrap_err();
        assert!(format!("{err}").contains("invalid timestamp"));
    }

    #[test]
    fn negative_timestamps_allowed() {
        let loaded = read_interactions("a b -5\nb c 0\n".as_bytes()).unwrap();
        assert_eq!(loaded.network.min_time(), Some(Timestamp(-5)));
        assert_eq!(loaded.network.time_span(), 6);
    }

    #[test]
    fn roundtrip_write_read() {
        let net = InteractionNetwork::from_triples([(0, 1, 3), (1, 2, 1), (2, 0, 2)]);
        let mut buf = Vec::new();
        write_interactions(&net, &mut buf).unwrap();
        let reparsed = read_interactions(buf.as_slice()).unwrap().network;
        assert_eq!(reparsed.num_interactions(), net.num_interactions());
        let a: Vec<_> = net.iter().map(|i| i.time.0).collect();
        let b: Vec<_> = reparsed.iter().map(|i| i.time.0).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_yields_empty_network() {
        let loaded = read_interactions("# only comments\n".as_bytes()).unwrap();
        assert!(loaded.network.is_empty());
    }

    #[test]
    fn path_roundtrip() {
        let dir = std::env::temp_dir().join("infprop-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.txt");
        let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 2, 2)]);
        write_interactions_path(&net, &path).unwrap();
        let loaded = read_interactions_path(&path).unwrap();
        assert_eq!(loaded.network.num_interactions(), 2);
        std::fs::remove_file(&path).ok();
    }
}
