//! A single timestamped, directed interaction.

use crate::types::{NodeId, Timestamp};
use std::fmt;

/// A directed interaction `(src, dst, time)`: `src` contacted `dst` at `time`.
///
/// Interactions are the atoms of an
/// [`InteractionNetwork`](crate::InteractionNetwork). They are `Copy` and
/// 16 bytes, so slices of interactions stream through the one-pass IRS
/// algorithms cache-friendly.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interaction {
    /// Source node (the sender).
    pub src: NodeId,
    /// Destination node (the receiver).
    pub dst: NodeId,
    /// Time of the interaction.
    pub time: Timestamp,
}

impl Interaction {
    /// Creates an interaction from its parts.
    #[inline]
    pub fn new(src: NodeId, dst: NodeId, time: Timestamp) -> Self {
        Interaction { src, dst, time }
    }

    /// Creates an interaction from raw `(u32, u32, i64)` values.
    #[inline]
    pub fn from_raw(src: u32, dst: u32, time: i64) -> Self {
        Interaction {
            src: NodeId(src),
            dst: NodeId(dst),
            time: Timestamp(time),
        }
    }

    /// Is this a self-loop (`src == dst`)?
    ///
    /// Self-loops carry no propagation information (a node always "knows"
    /// its own message) and are dropped by the network builder.
    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.src == self.dst
    }

    /// The interaction with source and destination swapped, same time.
    #[inline]
    pub fn reversed(&self) -> Self {
        Interaction {
            src: self.dst,
            dst: self.src,
            time: self.time,
        }
    }
}

impl fmt::Debug for Interaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?} -> {:?} @ {:?})", self.src, self.dst, self.time)
    }
}

impl From<(u32, u32, i64)> for Interaction {
    #[inline]
    fn from((s, d, t): (u32, u32, i64)) -> Self {
        Interaction::from_raw(s, d, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interaction_is_16_bytes() {
        // Keep the hot streaming type compact; see perf notes in DESIGN.md.
        assert_eq!(std::mem::size_of::<Interaction>(), 16);
    }

    #[test]
    fn construction_and_accessors() {
        let i = Interaction::from_raw(1, 2, 8);
        assert_eq!(i.src, NodeId(1));
        assert_eq!(i.dst, NodeId(2));
        assert_eq!(i.time, Timestamp(8));
        assert!(!i.is_self_loop());
        assert!(Interaction::from_raw(3, 3, 1).is_self_loop());
    }

    #[test]
    fn reversed_swaps_endpoints_only() {
        let i = Interaction::from_raw(1, 2, 8);
        let r = i.reversed();
        assert_eq!(r, Interaction::from_raw(2, 1, 8));
        assert_eq!(r.reversed(), i);
    }

    #[test]
    fn debug_format() {
        let i = Interaction::from_raw(0, 5, 3);
        assert_eq!(format!("{i:?}"), "(n0 -> n5 @ t3)");
    }

    #[test]
    fn from_tuple() {
        let i: Interaction = (7, 9, 100).into();
        assert_eq!(i, Interaction::from_raw(7, 9, 100));
    }
}
