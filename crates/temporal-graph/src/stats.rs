//! Summary statistics of an interaction network (the Table 2 quantities).

use crate::network::InteractionNetwork;
use std::fmt;

/// The characteristics the paper reports per dataset in Table 2: node count,
/// interaction count, and the time span expressed in days.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkStats {
    /// `|V|` — number of nodes.
    pub num_nodes: usize,
    /// `|E|` — number of interactions (repeats included).
    pub num_interactions: usize,
    /// Total time span in raw time units (`max − min + 1`).
    pub time_span: i64,
    /// Time span expressed in days, given the units-per-day used by the
    /// dataset's clock.
    pub days: f64,
    /// Number of distinct static edges after flattening.
    pub num_static_edges: usize,
}

impl NetworkStats {
    /// Computes statistics for `net`, interpreting timestamps as having
    /// `units_per_day` ticks per day (e.g. `86_400` for Unix seconds, `1`
    /// for synthetic day-granularity clocks).
    pub fn compute(net: &InteractionNetwork, units_per_day: i64) -> Self {
        assert!(units_per_day > 0, "units_per_day must be positive");
        let span = net.time_span();
        NetworkStats {
            num_nodes: net.num_nodes(),
            num_interactions: net.num_interactions(),
            time_span: span,
            days: span as f64 / units_per_day as f64,
            num_static_edges: net.to_static().num_edges(),
        }
    }

    /// `|V|` in thousands — the unit Table 2 uses.
    pub fn nodes_thousands(&self) -> f64 {
        self.num_nodes as f64 / 1_000.0
    }

    /// `|E|` in thousands — the unit Table 2 uses.
    pub fn interactions_thousands(&self) -> f64 {
        self.num_interactions as f64 / 1_000.0
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={:.1}k |E|={:.1}k days={:.0} static-edges={}",
            self.nodes_thousands(),
            self.interactions_thousands(),
            self.days,
            self.num_static_edges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_table2_quantities() {
        // 3 nodes, 4 interactions (one repeated pair), span 10 units.
        let net = InteractionNetwork::from_triples([(0, 1, 1), (0, 1, 5), (1, 2, 8), (2, 0, 10)]);
        let s = NetworkStats::compute(&net, 1);
        assert_eq!(s.num_nodes, 3);
        assert_eq!(s.num_interactions, 4);
        assert_eq!(s.time_span, 10);
        assert_eq!(s.days, 10.0);
        assert_eq!(s.num_static_edges, 3);
    }

    #[test]
    fn seconds_per_day_conversion() {
        let net = InteractionNetwork::from_triples([(0, 1, 0), (1, 2, 86_400 * 2 - 1)]);
        let s = NetworkStats::compute(&net, 86_400);
        assert!((s.days - 2.0).abs() < 1e-9);
    }

    #[test]
    fn thousands_helpers_and_display() {
        let net = InteractionNetwork::from_triples((0..1500u32).map(|k| (k, k + 1, k as i64)));
        let s = NetworkStats::compute(&net, 1);
        assert!((s.nodes_thousands() - 1.501).abs() < 1e-9);
        assert!((s.interactions_thousands() - 1.5).abs() < 1e-9);
        let text = format!("{s}");
        assert!(text.contains("|V|=1.5k"));
    }

    #[test]
    #[should_panic(expected = "units_per_day must be positive")]
    fn zero_units_per_day_panics() {
        let net = InteractionNetwork::from_triples([(0, 1, 1)]);
        let _ = NetworkStats::compute(&net, 0);
    }
}
