//! Interaction-network substrate for the `infprop` workspace.
//!
//! An *interaction network* `G(V, E)` is a set of nodes `V` together with a
//! multiset `E` of timestamped, directed *interactions* `(u, v, t)`: node `u`
//! interacted with (e.g. sent a message to) node `v` at time `t`. This crate
//! provides:
//!
//! * the core value types ([`NodeId`], [`Timestamp`], [`Interaction`]),
//! * the [`InteractionNetwork`] container, which stores interactions sorted by
//!   ascending timestamp and exposes the **reverse-chronological iteration**
//!   that the one-pass IRS algorithms of Kumar & Calders (EDBT 2017) rely on,
//! * flattening into an unweighted [`StaticGraph`] (the view used by static
//!   baselines such as PageRank, High Degree and SKIM, which discard
//!   timestamps and repeated interactions),
//! * the [`WeightedStaticGraph`] transformation used to feed ConTinEst
//!   (edge weight = interaction time minus the source's first activity time),
//! * plain-text edge-list I/O compatible with SNAP-style datasets,
//! * a string [`NodeInterner`] for loading datasets with arbitrary node labels,
//! * summary [`NetworkStats`] (the quantities reported in Table 2 of the paper).
//!
//! # Example
//!
//! ```
//! use infprop_temporal_graph::{InteractionNetwork, NodeId, Timestamp};
//!
//! // The toy network of Figure 1a in the paper.
//! let net = InteractionNetwork::from_triples([
//!     (0, 3, 1), // a -> d @ 1
//!     (4, 5, 2), // e -> f @ 2
//!     (3, 4, 3), // d -> e @ 3
//!     (4, 1, 4), // e -> b @ 4
//!     (0, 1, 5), // a -> b @ 5
//!     (1, 4, 6), // b -> e @ 6
//!     (4, 2, 7), // e -> c @ 7
//!     (1, 2, 8), // b -> c @ 8
//! ]);
//! assert_eq!(net.num_nodes(), 6);
//! assert_eq!(net.num_interactions(), 8);
//! assert_eq!(net.time_span(), 8); // max - min + 1
//!
//! // Reverse-chronological scan: first interaction seen is (b, c, 8).
//! let first = net.iter_reverse().next().unwrap();
//! assert_eq!((first.src, first.dst, first.time),
//!            (NodeId(1), NodeId(2), Timestamp(8)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod interaction;
mod interner;
pub mod io;
pub mod metrics;
mod network;
mod static_graph;
mod stats;
mod types;
mod weighted;

pub use error::GraphError;
pub use interaction::Interaction;
pub use interner::NodeInterner;
pub use network::{InteractionNetwork, InteractionNetworkBuilder};
pub use static_graph::StaticGraph;
pub use stats::NetworkStats;
pub use types::{NodeId, Timestamp, Window};
pub use weighted::{WeightedEdge, WeightedStaticGraph};
