//! The [`InteractionNetwork`] container and its builder.

use crate::error::GraphError;
use crate::interaction::Interaction;
use crate::static_graph::StaticGraph;
use crate::types::{NodeId, Timestamp, Window};

/// A time-ordered interaction network `G(V, E)`.
///
/// Nodes are dense ids `0..num_nodes`. Interactions are stored sorted by
/// ascending timestamp (ties keep their insertion order), which makes both
/// the forward chronological scan (used by the TCIC simulator) and the
/// reverse scan (used by the one-pass IRS algorithms, per Lemma 1 of the
/// paper) a cache-friendly sweep over one contiguous slice.
///
/// Self-loops are dropped at construction: a node trivially "reaches" itself
/// and the paper's reachability sets never include the source.
#[derive(Clone, Debug)]
pub struct InteractionNetwork {
    num_nodes: usize,
    /// Sorted by ascending `time`; ties preserve insertion order.
    interactions: Vec<Interaction>,
}

impl InteractionNetwork {
    /// Builds a network from raw `(src, dst, time)` triples.
    ///
    /// Input may be in any time order; it is sorted once here. Self-loops are
    /// dropped. The node universe is `0..=max_id` over all endpoints.
    pub fn from_triples<I>(triples: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32, i64)>,
    {
        Self::from_interactions(triples.into_iter().map(Interaction::from).collect())
    }

    /// Builds a network from a vector of interactions (any time order).
    pub fn from_interactions(interactions: Vec<Interaction>) -> Self {
        InteractionNetworkBuilder::new()
            .extend(interactions)
            .build()
    }

    /// Starts an incremental [`InteractionNetworkBuilder`].
    pub fn builder() -> InteractionNetworkBuilder {
        InteractionNetworkBuilder::new()
    }

    /// Number of nodes `n = |V|` (dense universe, including isolated ids).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of interactions `m = |E|`.
    #[inline]
    pub fn num_interactions(&self) -> usize {
        self.interactions.len()
    }

    /// Whether the network has no interactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.interactions.is_empty()
    }

    /// All interactions, sorted by ascending timestamp.
    #[inline]
    pub fn interactions(&self) -> &[Interaction] {
        &self.interactions
    }

    /// Chronological (ascending time) iteration.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &Interaction> + '_ {
        self.interactions.iter()
    }

    /// Reverse-chronological (descending time) iteration — the processing
    /// order of the one-pass IRS algorithms.
    pub fn iter_reverse(&self) -> impl ExactSizeIterator<Item = &Interaction> + '_ {
        self.interactions.iter().rev()
    }

    /// Iterator over all node ids `0..n`.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.num_nodes).map(NodeId::from_index)
    }

    /// Earliest timestamp, or `None` for an empty network.
    #[inline]
    pub fn min_time(&self) -> Option<Timestamp> {
        self.interactions.first().map(|i| i.time)
    }

    /// Latest timestamp, or `None` for an empty network.
    #[inline]
    pub fn max_time(&self) -> Option<Timestamp> {
        self.interactions.last().map(|i| i.time)
    }

    /// Total time span `max − min + 1`, or 0 for an empty network.
    ///
    /// The `+1` mirrors the paper's inclusive channel-duration convention
    /// (`dur(ic) = tk − t1 + 1`): a network whose interactions all share one
    /// timestamp has span 1, not 0.
    pub fn time_span(&self) -> i64 {
        match (self.min_time(), self.max_time()) {
            (Some(lo), Some(hi)) => hi.0 - lo.0 + 1,
            _ => 0,
        }
    }

    /// Converts a window length expressed as a percentage of the total time
    /// span (the paper's convention in §6) into an absolute [`Window`].
    ///
    /// The result is rounded up and clamped to at least 1, so `ω = 0%` still
    /// admits single-interaction channels (the paper's `ω = 0` case is the
    /// Smart High Degree special case, reachable via [`Window::UNIT`]).
    pub fn window_from_percent(&self, percent: f64) -> Window {
        assert!(
            (0.0..=100.0).contains(&percent),
            "window percent must be within [0, 100], got {percent}"
        );
        let span = self.time_span() as f64;
        // `.ceil()` yields an integral f64; `as i64` saturates rather than
        // wraps, and spans are far below 2^53 so the value is exact.
        // xtask-allow: no-lossy-cast (ceil of span fraction, exact below 2^53, saturating)
        Window(((span * percent / 100.0).ceil() as i64).max(1))
    }

    /// Out-degree of every node, counting repeated interactions.
    pub fn interaction_out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes];
        for i in &self.interactions {
            deg[i.src.index()] += 1;
        }
        deg
    }

    /// Whether every interaction has a distinct timestamp — the paper's
    /// simplifying assumption. The algorithms in this workspace accept ties
    /// (see DESIGN.md), but generators in `infprop-datasets` produce distinct
    /// timestamps by default to match the paper's setting.
    pub fn has_distinct_timestamps(&self) -> bool {
        self.interactions.windows(2).all(|w| w[0].time < w[1].time)
    }

    /// Flattens into the unweighted static graph used by static baselines:
    /// repeated interactions collapse into a single directed edge and
    /// timestamps are discarded (the preprocessing the paper applies before
    /// running SKIM, PageRank and the degree heuristics).
    pub fn to_static(&self) -> StaticGraph {
        StaticGraph::from_network(self)
    }

    /// The network with every interaction's direction reversed (used for
    /// PageRank, which measures incoming importance; the paper reverses
    /// edges so that it measures outgoing influence instead).
    pub fn reversed(&self) -> InteractionNetwork {
        let mut rev: Vec<Interaction> = self
            .interactions
            .iter()
            .map(Interaction::reversed)
            .collect();
        // Reversal preserves timestamps, so the vector is still sorted.
        debug_assert!(rev.windows(2).all(|w| w[0].time <= w[1].time));
        rev.shrink_to_fit();
        InteractionNetwork {
            num_nodes: self.num_nodes,
            interactions: rev,
        }
    }

    /// Returns the sub-network containing only interactions with
    /// `time ∈ [from, to]` (inclusive), over the same node universe.
    pub fn slice_time(&self, from: Timestamp, to: Timestamp) -> InteractionNetwork {
        let start = self.interactions.partition_point(|i| i.time < from);
        let end = self.interactions.partition_point(|i| i.time <= to);
        InteractionNetwork {
            num_nodes: self.num_nodes,
            interactions: self.interactions[start..end].to_vec(),
        }
    }

    /// Validates basic structural invariants; used by tests and the I/O layer.
    pub(crate) fn check_invariants(&self) -> Result<(), GraphError> {
        if self
            .interactions
            .iter()
            .any(|i| i.src.index() >= self.num_nodes || i.dst.index() >= self.num_nodes)
        {
            return Err(GraphError::Parse {
                line: 0,
                message: "interaction endpoint outside node universe".into(),
            });
        }
        Ok(())
    }
}

/// Incremental builder for [`InteractionNetwork`].
///
/// Accepts interactions in any order, drops self-loops, can reserve a larger
/// node universe than the endpoints mention (for isolated nodes), and sorts
/// once at [`build`](InteractionNetworkBuilder::build) time.
#[derive(Clone, Debug, Default)]
pub struct InteractionNetworkBuilder {
    interactions: Vec<Interaction>,
    min_num_nodes: usize,
    dropped_self_loops: usize,
}

impl InteractionNetworkBuilder {
    /// A fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocates space for `m` interactions.
    pub fn with_capacity(m: usize) -> Self {
        InteractionNetworkBuilder {
            interactions: Vec::with_capacity(m),
            min_num_nodes: 0,
            dropped_self_loops: 0,
        }
    }

    /// Forces the node universe to contain at least `n` nodes, even if some
    /// never appear in an interaction.
    pub fn with_min_nodes(mut self, n: usize) -> Self {
        self.min_num_nodes = self.min_num_nodes.max(n);
        self
    }

    /// Adds one interaction. Self-loops are counted and dropped.
    pub fn push(&mut self, interaction: Interaction) {
        if interaction.is_self_loop() {
            self.dropped_self_loops += 1;
        } else {
            self.interactions.push(interaction);
        }
    }

    /// Adds one raw `(src, dst, time)` triple.
    pub fn push_raw(&mut self, src: u32, dst: u32, time: i64) {
        self.push(Interaction::from_raw(src, dst, time));
    }

    /// Adds many interactions; returns `self` for chaining.
    pub fn extend<I>(mut self, interactions: I) -> Self
    where
        I: IntoIterator<Item = Interaction>,
    {
        for i in interactions {
            self.push(i);
        }
        self
    }

    /// Number of self-loops dropped so far.
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Finishes: sorts by ascending timestamp (stable — ties keep insertion
    /// order) and fixes the node universe.
    pub fn build(mut self) -> InteractionNetwork {
        self.interactions.sort_by_key(|i| i.time);
        let max_endpoint = self
            .interactions
            .iter()
            .map(|i| i.src.index().max(i.dst.index()) + 1)
            .max()
            .unwrap_or(0);
        self.interactions.shrink_to_fit();
        InteractionNetwork {
            num_nodes: max_endpoint.max(self.min_num_nodes),
            interactions: self.interactions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1a toy network (a=0, b=1, c=2, d=3, e=4, f=5).
    fn figure1a() -> InteractionNetwork {
        InteractionNetwork::from_triples([
            (1, 2, 8),
            (4, 2, 7),
            (1, 4, 6),
            (0, 1, 5),
            (4, 1, 4),
            (3, 4, 3),
            (4, 5, 2),
            (0, 3, 1),
        ])
    }

    #[test]
    fn sorts_unsorted_input() {
        let net = figure1a();
        let times: Vec<i64> = net.iter().map(|i| i.time.0).collect();
        assert_eq!(times, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(net.has_distinct_timestamps());
    }

    #[test]
    fn reverse_iteration_order() {
        let net = figure1a();
        let times: Vec<i64> = net.iter_reverse().map(|i| i.time.0).collect();
        assert_eq!(times, vec![8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn counts_and_span() {
        let net = figure1a();
        assert_eq!(net.num_nodes(), 6);
        assert_eq!(net.num_interactions(), 8);
        assert_eq!(net.min_time(), Some(Timestamp(1)));
        assert_eq!(net.max_time(), Some(Timestamp(8)));
        assert_eq!(net.time_span(), 8);
    }

    #[test]
    fn empty_network() {
        let net = InteractionNetwork::from_triples(std::iter::empty());
        assert!(net.is_empty());
        assert_eq!(net.num_nodes(), 0);
        assert_eq!(net.time_span(), 0);
        assert_eq!(net.min_time(), None);
        assert!(net.has_distinct_timestamps());
    }

    #[test]
    fn self_loops_are_dropped() {
        let mut b = InteractionNetwork::builder();
        b.push_raw(0, 0, 1);
        b.push_raw(0, 1, 2);
        b.push_raw(1, 1, 3);
        assert_eq!(b.dropped_self_loops(), 2);
        let net = b.build();
        assert_eq!(net.num_interactions(), 1);
        assert_eq!(net.num_nodes(), 2);
    }

    #[test]
    fn min_nodes_extends_universe() {
        let net = InteractionNetworkBuilder::new()
            .extend([Interaction::from_raw(0, 1, 5)])
            .with_min_nodes(10)
            .build();
        assert_eq!(net.num_nodes(), 10);
        assert_eq!(net.node_ids().count(), 10);
    }

    #[test]
    fn window_from_percent_rounds_up_and_clamps() {
        let net = figure1a(); // span 8
        assert_eq!(net.window_from_percent(50.0), Window(4));
        assert_eq!(net.window_from_percent(1.0), Window(1)); // ceil(0.08) = 1
        assert_eq!(net.window_from_percent(0.0), Window(1)); // clamped
        assert_eq!(net.window_from_percent(100.0), Window(8));
        // 30% of 8 = 2.4 -> 3
        assert_eq!(net.window_from_percent(30.0), Window(3));
    }

    #[test]
    #[should_panic(expected = "window percent must be within")]
    fn window_percent_out_of_range_panics() {
        figure1a().window_from_percent(120.0);
    }

    #[test]
    fn interaction_out_degrees_count_repeats() {
        let net = InteractionNetwork::from_triples([(0, 1, 1), (0, 1, 2), (0, 2, 3), (1, 0, 4)]);
        assert_eq!(net.interaction_out_degrees(), vec![3, 1, 0]);
    }

    #[test]
    fn reversed_swaps_all_edges() {
        let net = figure1a();
        let rev = net.reversed();
        assert_eq!(rev.num_nodes(), net.num_nodes());
        assert_eq!(rev.num_interactions(), net.num_interactions());
        for (a, b) in net.iter().zip(rev.iter()) {
            assert_eq!(a.src, b.dst);
            assert_eq!(a.dst, b.src);
            assert_eq!(a.time, b.time);
        }
    }

    #[test]
    fn slice_time_is_inclusive() {
        let net = figure1a();
        let mid = net.slice_time(Timestamp(3), Timestamp(6));
        let times: Vec<i64> = mid.iter().map(|i| i.time.0).collect();
        assert_eq!(times, vec![3, 4, 5, 6]);
        assert_eq!(mid.num_nodes(), net.num_nodes());
        // Empty slice.
        assert!(net.slice_time(Timestamp(100), Timestamp(200)).is_empty());
    }

    #[test]
    fn ties_preserve_insertion_order() {
        let net = InteractionNetwork::from_triples([(0, 1, 5), (2, 3, 5), (4, 5, 5)]);
        let pairs: Vec<(u32, u32)> = net.iter().map(|i| (i.src.0, i.dst.0)).collect();
        assert_eq!(pairs, vec![(0, 1), (2, 3), (4, 5)]);
        assert!(!net.has_distinct_timestamps());
        assert_eq!(net.time_span(), 1);
    }

    #[test]
    fn invariants_hold_for_built_networks() {
        assert!(figure1a().check_invariants().is_ok());
    }
}
