//! Unweighted static flattening of an interaction network.
//!
//! The static view is what the paper's static baselines consume: "we convert
//! the interaction network data into the required static graph format by
//! removing repeated interactions and the time stamp of every interaction"
//! (§6). We store it in compressed sparse row (CSR) form: one offsets array
//! and one contiguous neighbour array, which makes BFS/PageRank sweeps
//! allocation-free and cache-friendly.

use crate::network::InteractionNetwork;
use crate::types::NodeId;

/// A directed, unweighted static graph in CSR form with deduplicated edges.
#[derive(Clone, Debug)]
pub struct StaticGraph {
    /// `offsets[u]..offsets[u+1]` indexes `targets` for node `u`'s out-edges.
    offsets: Vec<usize>,
    /// Concatenated, per-source-sorted, deduplicated out-neighbour lists.
    targets: Vec<NodeId>,
}

impl StaticGraph {
    /// Flattens an interaction network: repeated `(src, dst)` pairs collapse
    /// into one edge; timestamps are discarded; self-loops were already
    /// removed by the network builder.
    pub fn from_network(net: &InteractionNetwork) -> Self {
        let mut edges: Vec<(NodeId, NodeId)> = net.iter().map(|i| (i.src, i.dst)).collect();
        edges.sort_unstable();
        edges.dedup();
        Self::from_sorted_edges(net.num_nodes(), &edges)
    }

    /// Builds from an explicit edge list (any order, duplicates allowed).
    ///
    /// `num_nodes` must be at least `max endpoint + 1`.
    pub fn from_edges(num_nodes: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut edges: Vec<(NodeId, NodeId)> = edges.into_iter().collect();
        edges.sort_unstable();
        edges.dedup();
        Self::from_sorted_edges(num_nodes, &edges)
    }

    fn from_sorted_edges(num_nodes: usize, edges: &[(NodeId, NodeId)]) -> Self {
        if let Some(&(s, d)) = edges.last() {
            assert!(
                s.index() < num_nodes
                    && edges.iter().all(|e| e.1.index() < num_nodes)
                    && d.index() < num_nodes,
                "edge endpoint outside node universe"
            );
        }
        let mut offsets = vec![0usize; num_nodes + 1];
        for &(src, _) in edges {
            offsets[src.index() + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let targets: Vec<NodeId> = edges.iter().map(|&(_, dst)| dst).collect();
        StaticGraph { offsets, targets }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of distinct directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbours of `u`, sorted ascending, no duplicates.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[u.index()]..self.offsets[u.index() + 1]]
    }

    /// Out-degree of `u` in the deduplicated graph.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.offsets[u.index() + 1] - self.offsets[u.index()]
    }

    /// Out-degree of every node.
    pub fn out_degrees(&self) -> Vec<usize> {
        (0..self.num_nodes())
            .map(|u| self.out_degree(NodeId::from_index(u)))
            .collect()
    }

    /// The transpose (every edge reversed), e.g. for PageRank pull-style
    /// iteration or reverse reachability.
    pub fn transpose(&self) -> StaticGraph {
        let edges: Vec<(NodeId, NodeId)> = (0..self.num_nodes())
            .flat_map(|u| {
                let u = NodeId::from_index(u);
                self.neighbors(u).iter().map(move |&v| (v, u))
            })
            .collect();
        StaticGraph::from_edges(self.num_nodes(), edges)
    }

    /// Iterator over all edges `(src, dst)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes()).flat_map(move |u| {
            let u = NodeId::from_index(u);
            self.neighbors(u).iter().map(move |&v| (u, v))
        })
    }

    /// Nodes reachable from `src` (including `src`) by directed BFS.
    ///
    /// `scratch` is a reusable visited buffer of length `num_nodes`; it is
    /// cleared on entry. Returns the reached nodes in BFS order.
    pub fn bfs_reachable(&self, src: NodeId, scratch: &mut Vec<bool>) -> Vec<NodeId> {
        scratch.clear();
        scratch.resize(self.num_nodes(), false);
        let mut queue = std::collections::VecDeque::new();
        let mut order = Vec::new();
        scratch[src.index()] = true;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in self.neighbors(u) {
                if !scratch[v.index()] {
                    scratch[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::InteractionNetwork;

    fn diamond() -> StaticGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, with a repeated interaction 0->1.
        let net = InteractionNetwork::from_triples([
            (0, 1, 1),
            (0, 1, 9),
            (0, 2, 2),
            (1, 3, 3),
            (2, 3, 4),
        ]);
        net.to_static()
    }

    #[test]
    fn dedups_repeated_interactions() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.out_degree(NodeId(3)), 0);
    }

    #[test]
    fn out_degrees_vector() {
        assert_eq!(diamond().out_degrees(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        assert_eq!(t.neighbors(NodeId(3)), &[NodeId(1), NodeId(2)]);
        assert_eq!(t.neighbors(NodeId(0)), &[] as &[NodeId]);
        // Transposing twice gives the original edge set.
        let tt = t.transpose();
        let mut e1: Vec<_> = g.edges().collect();
        let mut e2: Vec<_> = tt.edges().collect();
        e1.sort_unstable();
        e2.sort_unstable();
        assert_eq!(e1, e2);
    }

    #[test]
    fn edges_iterator_matches_neighbors() {
        let g = diamond();
        let edges: Vec<_> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn bfs_reaches_diamond_sink() {
        let g = diamond();
        let mut scratch = Vec::new();
        let reach = g.bfs_reachable(NodeId(0), &mut scratch);
        assert_eq!(reach.len(), 4);
        assert_eq!(reach[0], NodeId(0));
        // Node 3 reaches only itself.
        assert_eq!(g.bfs_reachable(NodeId(3), &mut scratch), vec![NodeId(3)]);
    }

    #[test]
    fn empty_graph() {
        let g = StaticGraph::from_edges(0, std::iter::empty());
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_nodes_have_no_neighbors() {
        let g = StaticGraph::from_edges(5, [(NodeId(0), NodeId(1))]);
        assert_eq!(g.num_nodes(), 5);
        for u in 2..5 {
            assert_eq!(g.out_degree(NodeId(u)), 0);
        }
    }

    #[test]
    #[should_panic(expected = "edge endpoint outside node universe")]
    fn out_of_range_endpoint_panics() {
        let _ = StaticGraph::from_edges(2, [(NodeId(0), NodeId(5))]);
    }
}
