//! String-label → dense [`NodeId`] interner for dataset loading.

use crate::types::NodeId;
use std::collections::HashMap;

/// Maps arbitrary node labels (user names, sparse integer ids, …) onto the
/// dense `0..n` id space used by every algorithm in the workspace.
///
/// Ids are assigned in first-seen order, so loading the same file twice
/// yields identical ids — important for reproducible experiments.
#[derive(Clone, Debug, Default)]
pub struct NodeInterner {
    by_label: HashMap<String, NodeId>,
    labels: Vec<String>,
}

impl NodeInterner {
    /// A fresh, empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interner pre-sized for about `n` distinct labels.
    pub fn with_capacity(n: usize) -> Self {
        NodeInterner {
            by_label: HashMap::with_capacity(n),
            labels: Vec::with_capacity(n),
        }
    }

    /// Returns the id for `label`, allocating the next dense id on first use.
    pub fn intern(&mut self, label: &str) -> NodeId {
        if let Some(&id) = self.by_label.get(label) {
            return id;
        }
        let id = NodeId::from_index(self.labels.len());
        self.by_label.insert(label.to_owned(), id);
        self.labels.push(label.to_owned());
        id
    }

    /// Looks up an already-interned label.
    pub fn get(&self, label: &str) -> Option<NodeId> {
        self.by_label.get(label).copied()
    }

    /// The label behind an id, if the id was allocated by this interner.
    pub fn label(&self, id: NodeId) -> Option<&str> {
        self.labels.get(id.index()).map(String::as_str)
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_dense_ids_in_first_seen_order() {
        let mut it = NodeInterner::new();
        assert_eq!(it.intern("alice"), NodeId(0));
        assert_eq!(it.intern("bob"), NodeId(1));
        assert_eq!(it.intern("alice"), NodeId(0));
        assert_eq!(it.intern("carol"), NodeId(2));
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn lookup_and_reverse_lookup() {
        let mut it = NodeInterner::with_capacity(4);
        it.intern("x");
        it.intern("y");
        assert_eq!(it.get("x"), Some(NodeId(0)));
        assert_eq!(it.get("z"), None);
        assert_eq!(it.label(NodeId(1)), Some("y"));
        assert_eq!(it.label(NodeId(9)), None);
    }

    #[test]
    fn empty_state() {
        let it = NodeInterner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
    }
}
