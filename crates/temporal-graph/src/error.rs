//! Error type for the temporal-graph substrate.

use std::fmt;
use std::io;

/// Errors produced while building or loading interaction networks.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure while reading or writing an edge list.
    Io(io::Error),
    /// A malformed line in an edge-list file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of what was wrong.
        message: String,
    },
    /// The input contained no interactions where at least one was required.
    Empty,
    /// A window shorter than one time unit (admits no channel).
    InvalidWindow(i64),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Empty => write!(f, "interaction network is empty"),
            GraphError::InvalidWindow(len) => {
                write!(f, "window must be at least 1 time unit, got {len}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = GraphError::Parse {
            line: 3,
            message: "bad timestamp".into(),
        };
        assert_eq!(format!("{e}"), "parse error on line 3: bad timestamp");
        assert_eq!(
            format!("{}", GraphError::Empty),
            "interaction network is empty"
        );
        assert_eq!(
            format!("{}", GraphError::InvalidWindow(0)),
            "window must be at least 1 time unit, got 0"
        );
        let io_err = GraphError::from(io::Error::new(io::ErrorKind::NotFound, "nope"));
        assert!(format!("{io_err}").contains("nope"));
    }

    #[test]
    fn io_source_is_propagated() {
        use std::error::Error;
        let e = GraphError::from(io::Error::other("disk"));
        assert!(e.source().is_some());
        assert!(GraphError::Empty.source().is_none());
    }
}
