//! Temporal and structural metrics of interaction networks.
//!
//! These quantities characterize the *shape* of an interaction log — the
//! properties the synthetic generators in `infprop-datasets` are tuned to
//! reproduce and the evaluation narrative relies on: heavy-tailed activity,
//! repeated contacts, reciprocity, and bursty timing.

use crate::network::InteractionNetwork;
use crate::types::NodeId;

/// Summary of a non-negative integer distribution (degrees, counts).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistributionSummary {
    /// Largest value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Gini coefficient in `[0, 1]` (0 = perfectly even, → 1 = one node
    /// holds everything). The standard inequality measure for degree skew.
    pub gini: f64,
}

impl DistributionSummary {
    /// Computes the summary of a value vector (order irrelevant).
    pub fn of(values: &[u64]) -> Self {
        if values.is_empty() {
            return DistributionSummary {
                max: 0,
                mean: 0.0,
                gini: 0.0,
            };
        }
        let n = values.len() as f64;
        let total: u64 = values.iter().sum();
        let mean = total as f64 / n;
        let max = values.iter().max().copied().unwrap_or(0);
        let gini = if total == 0 {
            0.0
        } else {
            let mut sorted = values.to_vec();
            sorted.sort_unstable();
            // G = (2 Σ_i i·x_i) / (n Σ x) − (n + 1)/n, with 1-based ranks.
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
                .sum();
            (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
        };
        DistributionSummary { max, mean, gini }
    }
}

/// Temporal shape of a network: inter-arrival statistics and burstiness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TemporalProfile {
    /// Mean gap between consecutive interactions (global clock).
    pub mean_gap: f64,
    /// Standard deviation of the gaps.
    pub std_gap: f64,
    /// Goh–Barabási burstiness `B = (σ − μ) / (σ + μ)` of the inter-arrival
    /// gaps: −1 for perfectly regular, 0 for Poisson, → 1 for extreme bursts.
    pub burstiness: f64,
}

/// Out-degree distribution of the interaction multigraph (repeats counted).
pub fn interaction_out_degree_summary(net: &InteractionNetwork) -> DistributionSummary {
    let degs: Vec<u64> = net
        .interaction_out_degrees()
        .into_iter()
        .map(u64::from)
        .collect();
    DistributionSummary::of(&degs)
}

/// Fraction of distinct static edges `(u, v)` whose reverse `(v, u)` also
/// occurs — conversation-ness of the network.
pub fn reciprocity(net: &InteractionNetwork) -> f64 {
    let g = net.to_static();
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    if edges.is_empty() {
        return 0.0;
    }
    let set: std::collections::HashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
    let mutual = edges
        .iter()
        .filter(|&&(u, v)| set.contains(&(v, u)))
        .count();
    mutual as f64 / edges.len() as f64
}

/// Average number of interactions per distinct static edge — how strongly
/// repeated contacts collapse when flattening (≫ 1 for email networks).
pub fn contact_repetition(net: &InteractionNetwork) -> f64 {
    let static_edges = net.to_static().num_edges();
    if static_edges == 0 {
        return 0.0;
    }
    net.num_interactions() as f64 / static_edges as f64
}

/// Computes the temporal profile from consecutive interaction gaps.
pub fn temporal_profile(net: &InteractionNetwork) -> TemporalProfile {
    let times: Vec<i64> = net.iter().map(|i| i.time.get()).collect();
    if times.len() < 2 {
        return TemporalProfile {
            mean_gap: 0.0,
            std_gap: 0.0,
            burstiness: 0.0,
        };
    }
    let gaps: Vec<f64> = times.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
    let n = gaps.len() as f64;
    let mean = gaps.iter().sum::<f64>() / n;
    let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
    let std = var.sqrt();
    let burstiness = if std + mean == 0.0 {
        0.0
    } else {
        (std - mean) / (std + mean)
    };
    TemporalProfile {
        mean_gap: mean,
        std_gap: std,
        burstiness,
    }
}

/// Histogram of interaction counts over `bins` equal time slices.
pub fn activity_timeline(net: &InteractionNetwork, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "need at least one bin");
    let mut hist = vec![0usize; bins];
    let (Some(lo), span) = (net.min_time(), net.time_span()) else {
        return hist;
    };
    if span == 0 {
        return hist;
    }
    for i in net.iter() {
        // offset ∈ [0, span) since interactions are time-sorted, so the
        // quotient is < bins and converts back to usize losslessly.
        let offset = i.time.delta(lo);
        // xtask-allow: no-lossy-cast (0 ≤ offset < span widens into u128; quotient < bins fits usize)
        let b = ((offset as u128 * bins as u128) / span as u128) as usize;
        hist[b.min(bins - 1)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_summary_even_and_skewed() {
        let even = DistributionSummary::of(&[5, 5, 5, 5]);
        assert_eq!(even.max, 5);
        assert_eq!(even.mean, 5.0);
        assert!(even.gini.abs() < 1e-9);

        let skewed = DistributionSummary::of(&[0, 0, 0, 100]);
        assert_eq!(skewed.max, 100);
        assert!(skewed.gini > 0.7, "gini {}", skewed.gini);
        assert!(skewed.gini <= 1.0);
    }

    #[test]
    fn distribution_summary_edge_cases() {
        let empty = DistributionSummary::of(&[]);
        assert_eq!(
            empty,
            DistributionSummary {
                max: 0,
                mean: 0.0,
                gini: 0.0
            }
        );
        let zeros = DistributionSummary::of(&[0, 0]);
        assert_eq!(zeros.gini, 0.0);
    }

    #[test]
    fn reciprocity_counts_mutual_edges() {
        // 0<->1 mutual; 0->2 one-way.
        let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 0, 2), (0, 2, 3)]);
        let r = reciprocity(&net);
        assert!((r - 2.0 / 3.0).abs() < 1e-12, "r {r}");
        let empty = InteractionNetwork::from_triples(std::iter::empty());
        assert_eq!(reciprocity(&empty), 0.0);
    }

    #[test]
    fn contact_repetition_measures_collapse() {
        let net = InteractionNetwork::from_triples([(0, 1, 1), (0, 1, 2), (0, 1, 3), (1, 2, 4)]);
        assert_eq!(contact_repetition(&net), 2.0); // 4 interactions / 2 edges
    }

    #[test]
    fn regular_clock_has_negative_burstiness() {
        let net =
            InteractionNetwork::from_triples((0..100u32).map(|i| (0, 1 + i % 3, i as i64 * 10)));
        let p = temporal_profile(&net);
        assert_eq!(p.mean_gap, 10.0);
        assert!(p.burstiness < -0.99, "burstiness {}", p.burstiness);
    }

    #[test]
    fn bursty_clock_has_positive_burstiness() {
        // 50 interactions at consecutive ticks, then a huge gap, then 50 more.
        let mut triples = Vec::new();
        for i in 0..50u32 {
            triples.push((0, 1 + i % 3, i as i64));
        }
        for i in 0..50u32 {
            triples.push((1, 2 + i % 3, 1_000_000 + i as i64));
        }
        let p = temporal_profile(&InteractionNetwork::from_triples(triples));
        assert!(p.burstiness > 0.5, "burstiness {}", p.burstiness);
    }

    #[test]
    fn timeline_bins_sum_to_interactions() {
        let net =
            InteractionNetwork::from_triples((0..97u32).map(|i| (i % 5, (i + 1) % 5, i as i64)));
        let hist = activity_timeline(&net, 10);
        assert_eq!(hist.len(), 10);
        assert_eq!(hist.iter().sum::<usize>(), 97);
    }

    #[test]
    fn timeline_handles_tiny_networks() {
        let one = InteractionNetwork::from_triples([(0, 1, 5)]);
        let hist = activity_timeline(&one, 4);
        assert_eq!(hist.iter().sum::<usize>(), 1);
        let empty = InteractionNetwork::from_triples(std::iter::empty());
        assert_eq!(activity_timeline(&empty, 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn degree_summary_on_star() {
        let net = InteractionNetwork::from_triples((1..=20u32).map(|v| (0, v, v as i64)));
        let s = interaction_out_degree_summary(&net);
        assert_eq!(s.max, 20);
        assert!(s.gini > 0.9);
    }

    #[test]
    #[should_panic(expected = "need at least one bin")]
    fn zero_bins_panics() {
        let net = InteractionNetwork::from_triples([(0, 1, 1)]);
        let _ = activity_timeline(&net, 0);
    }
}
