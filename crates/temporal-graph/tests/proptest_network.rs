//! Property tests for the interaction-network substrate.

use infprop_temporal_graph::{
    io, InteractionNetwork, NodeId, StaticGraph, Timestamp, WeightedStaticGraph,
};
use proptest::prelude::*;

/// Strategy: a random interaction list over up to 20 nodes and timestamps
/// in [-50, 50], length 0..=120 (self-loops included on purpose — the
/// builder must drop them).
fn triples() -> impl Strategy<Value = Vec<(u32, u32, i64)>> {
    prop::collection::vec((0u32..20, 0u32..20, -50i64..=50), 0..120)
}

proptest! {
    /// Built networks are always sorted ascending by time.
    #[test]
    fn built_network_is_time_sorted(ts in triples()) {
        let net = InteractionNetwork::from_triples(ts);
        prop_assert!(net
            .interactions()
            .windows(2)
            .all(|w| w[0].time <= w[1].time));
    }

    /// No self-loop survives construction and every endpoint is in-universe.
    #[test]
    fn no_self_loops_and_endpoints_in_universe(ts in triples()) {
        let net = InteractionNetwork::from_triples(ts);
        for i in net.iter() {
            prop_assert_ne!(i.src, i.dst);
            prop_assert!(i.src.index() < net.num_nodes());
            prop_assert!(i.dst.index() < net.num_nodes());
        }
    }

    /// Reverse iteration is the exact reverse of forward iteration.
    #[test]
    fn reverse_is_reverse(ts in triples()) {
        let net = InteractionNetwork::from_triples(ts);
        let fwd: Vec<_> = net.iter().copied().collect();
        let mut rev: Vec<_> = net.iter_reverse().copied().collect();
        rev.reverse();
        prop_assert_eq!(fwd, rev);
    }

    /// Static flattening: edge count equals the number of distinct
    /// non-self-loop (src, dst) pairs, and neighbours are sorted/deduped.
    #[test]
    fn static_flattening_matches_distinct_pairs(ts in triples()) {
        let net = InteractionNetwork::from_triples(ts.clone());
        let g = net.to_static();
        let mut pairs: Vec<(u32, u32)> = ts
            .iter()
            .filter(|(s, d, _)| s != d)
            .map(|&(s, d, _)| (s, d))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        prop_assert_eq!(g.num_edges(), pairs.len());
        for u in 0..g.num_nodes() {
            let nb = g.neighbors(NodeId::from_index(u));
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Transpose twice is the identity on the edge set.
    #[test]
    fn transpose_involution(ts in triples()) {
        let net = InteractionNetwork::from_triples(ts);
        let g = net.to_static();
        let tt = g.transpose().transpose();
        let mut e1: Vec<_> = g.edges().collect();
        let mut e2: Vec<_> = tt.edges().collect();
        e1.sort_unstable();
        e2.sort_unstable();
        prop_assert_eq!(e1, e2);
    }

    /// Time-window slicing returns exactly the in-range interactions.
    #[test]
    fn slice_time_returns_range(ts in triples(), lo in -60i64..=60, len in 0i64..=40) {
        let net = InteractionNetwork::from_triples(ts);
        let hi = lo + len;
        let sliced = net.slice_time(Timestamp(lo), Timestamp(hi));
        let expect = net
            .iter()
            .filter(|i| i.time.0 >= lo && i.time.0 <= hi)
            .count();
        prop_assert_eq!(sliced.num_interactions(), expect);
    }

    /// Write → read round-trips the (src, dst, time) content exactly
    /// (ids are dense so the interner re-derives the same numbering).
    #[test]
    fn io_roundtrip(ts in triples()) {
        let net = InteractionNetwork::from_triples(ts);
        let mut buf = Vec::new();
        io::write_interactions(&net, &mut buf).unwrap();
        let loaded = io::read_interactions(buf.as_slice()).unwrap().network;
        prop_assert_eq!(loaded.num_interactions(), net.num_interactions());
        let a: Vec<i64> = net.iter().map(|i| i.time.0).collect();
        let b: Vec<i64> = loaded.iter().map(|i| i.time.0).collect();
        prop_assert_eq!(a, b);
    }

    /// The weighted (ConTinEst) transformation yields weights ≥ 1 and at most
    /// one edge per (src, dst) pair.
    #[test]
    fn weighted_transformation_invariants(ts in triples()) {
        let net = InteractionNetwork::from_triples(ts);
        let g = WeightedStaticGraph::from_network(&net);
        let mut seen = std::collections::HashSet::new();
        for u in 0..g.num_nodes() {
            let u = NodeId::from_index(u);
            for e in g.out_edges(u) {
                prop_assert!(e.weight >= 1.0);
                prop_assert!(seen.insert((u, e.dst)));
            }
        }
        prop_assert!(g.num_edges() <= net.to_static().num_edges());
    }

    /// BFS from any source visits each node at most once and always includes
    /// the source.
    #[test]
    fn bfs_visits_once(ts in triples(), src in 0u32..20) {
        let net = InteractionNetwork::from_triples(ts);
        if (src as usize) < net.num_nodes() {
            let g: StaticGraph = net.to_static();
            let mut scratch = Vec::new();
            let order = g.bfs_reachable(NodeId(src), &mut scratch);
            let mut uniq = order.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), order.len());
            prop_assert_eq!(order.first(), Some(&NodeId(src)));
        }
    }
}
