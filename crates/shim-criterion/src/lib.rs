//! Hermetic in-tree subset of the `criterion` 0.5 API.
//!
//! The workspace builds with no registry access, so this crate stands in
//! for crates-io `criterion`, implementing exactly the harness surface the
//! workspace's benches use: [`criterion_group!`]/[`criterion_main!`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `bench_function`/`bench_with_input`/`sample_size`/`finish`,
//! [`BenchmarkId`], [`Bencher::iter`], and [`black_box`].
//!
//! It is a deliberately small wall-clock harness: each benchmark runs a
//! short calibration to size an iteration batch, then reports the best
//! per-iteration time over a handful of samples on one line. It has no
//! statistical analysis, HTML reports, or baselines — the repository's
//! committed benchmark numbers come from the `trajectory` binary
//! (`BENCH_core.json`), not from this harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
// xtask-allow: no-raw-timing (this crate IS the bench timer; nothing here runs in library code paths)
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent per sample once calibrated.
const SAMPLE_BUDGET: Duration = Duration::from_millis(40);

/// The benchmark harness handle passed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 10, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark inside the group; the input is
    /// passed back to the closure by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group. The real harness emits summary output here; the
    /// shim prints per-benchmark lines eagerly, so this is a no-op.
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The per-benchmark timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`, keeping the result
    /// alive through [`black_box`] so the work is not optimised away.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now(); // xtask-allow: no-raw-timing (the bench harness is the timer)
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrates an iteration batch to roughly [`SAMPLE_BUDGET`], takes
/// `samples` timed batches, and prints the best per-iteration time.
fn run_benchmark<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: grow the batch until one batch costs ~the sample budget.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= SAMPLE_BUDGET || iters >= 1 << 30 {
            break;
        }
        let grow = if b.elapsed < SAMPLE_BUDGET / 8 { 8 } else { 2 };
        iters = iters.saturating_mul(grow);
    }

    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed < best {
            best = b.elapsed;
        }
    }
    let per_iter_ns = best.as_nanos() / u128::from(iters.max(1));
    // xtask-allow: no-print (bench harness output is its user interface)
    println!("{name:<48} time: {per_iter_ns} ns/iter ({iters} iters/sample, {samples} samples)");
}

/// Declares a benchmark group function, mirroring criterion's simple form:
/// `criterion_group!(benches, target_a, target_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_surface_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(2);
        group.bench_function("add", |b| b.iter(|| black_box(2u64 * 3)));
        group.bench_with_input(BenchmarkId::new("param", 4usize), &4usize, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.bench_with_input(BenchmarkId::from_parameter(9u64), &9u64, |b, &n| {
            b.iter(|| black_box(n + 1))
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("batch_x64", 8).id, "batch_x64/8");
        assert_eq!(BenchmarkId::from_parameter(50u64).id, "50");
    }
}
