//! Hermetic in-tree subset of the `proptest` 1.x API.
//!
//! The workspace builds with no registry access, so this crate stands in
//! for crates-io `proptest`, implementing the surface the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   multiple `fn name(pat in strategy, …) { … }` properties per block),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], and [`test_runner::TestCaseError`] for helper
//!   functions that return `Result<(), TestCaseError>`,
//! * strategies: integer and float ranges, tuples, [`strategy::Just`],
//!   [`arbitrary::any`], [`collection::vec`], and
//!   [`Strategy::prop_map`](strategy::Strategy::prop_map).
//!
//! Inputs are drawn from a SplitMix64 stream seeded from the property's
//! full module path and the case index, so every run of every property is
//! **deterministic** — a failure message's case number is enough to
//! reproduce it exactly. The trade-off against the original crate is no
//! shrinking: failures report the raw case, not a minimized input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-case errors and run configuration.
pub mod test_runner {
    use std::fmt;

    /// Why a generated test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property is false for this input: fail the test.
        Fail(String),
        /// The input does not satisfy a precondition: skip the case.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (skipped) case with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
                TestCaseError::Reject(msg) => write!(f, "rejected: {msg}"),
            }
        }
    }

    /// Run configuration: how many random cases each property executes.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The original crate's default case count.
            ProptestConfig { cases: 256 }
        }
    }
}

/// Value generation: the deterministic random source and the
/// [`Strategy`](strategy::Strategy) trait with its combinators.
pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Deterministic random source for one test case: a SplitMix64 stream
    /// seeded from the property name and case index.
    #[derive(Debug, Clone)]
    pub struct Gen {
        state: u64,
    }

    impl Gen {
        /// The generator for case `case` of the property named `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index, so every
            // property and every case draws an independent stream.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Gen {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; 0 when `bound` is 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }

        /// A uniform float in `[0, 1]`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
        }
    }

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, gen: &mut Gen) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, gen: &mut Gen) -> O {
            (self.f)(self.inner.generate(gen))
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _gen: &mut Gen) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),+) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, gen: &mut Gen) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(gen.below(span) as $ty)
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, gen: &mut Gen) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return gen.next_u64() as $ty;
                    }
                    lo.wrapping_add(gen.below(span + 1) as $ty)
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, gen: &mut Gen) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + gen.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, gen: &mut Gen) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + gen.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+);)+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, gen: &mut Gen) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(gen),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F2);
    }

    /// The full-domain strategy behind [`any`](crate::arbitrary::any).
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, gen: &mut Gen) -> T {
            T::arbitrary(gen)
        }
    }
}

/// `any::<T>()` — the whole-domain strategy for primitive types.
pub mod arbitrary {
    use crate::strategy::{Any, Gen};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(gen: &mut Gen) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),+) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(gen: &mut Gen) -> $ty {
                    gen.next_u64() as $ty
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(gen: &mut Gen) -> bool {
            gen.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(gen: &mut Gen) -> f64 {
            gen.unit_f64()
        }
    }

    /// A strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Gen, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// A length range for [`vec`], converted from the same argument types
    /// the original crate accepts at our call sites.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end().saturating_add(1).max(*r.start()),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    /// The strategy [`vec`] returns.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + gen.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(gen)).collect()
        }
    }

    /// A `Vec` strategy drawing each element from `element` and the length
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias of this crate, so strategy paths read `prop::collection::vec`
    /// exactly as with the original dependency.
    pub use crate as prop;
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expands each property fn into a
/// `#[test]` running the configured number of deterministic cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __gen = $crate::strategy::Gen::for_case(__name, __case as u64);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __gen);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        ::std::panic!(
                            "property {} failed at deterministic case {}/{}: {}",
                            __name,
                            __case,
                            __config.cases,
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
}

/// Fails the current test case (returns `Err(TestCaseError::Fail)`) if the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, "{}\n  both: {:?}", ::std::format!($($fmt)+), __l);
    }};
}

/// Skips the current test case (returns `Err(TestCaseError::Reject)`) if
/// the precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("precondition: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges, tuples, vec, prop_map, and any all generate in-domain
        /// values, and the macros thread through.
        fn shim_surface_works(
            a in 0usize..10,
            b in -5i64..5,
            pair in (0u32..4, 0.0f64..=1.0),
            mut xs in prop::collection::vec(any::<u8>(), 0..20),
            wrapped in (1u16..7).prop_map(|x| x * 2),
        ) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!(pair.0 < 4, "pair.0 = {}", pair.0);
            prop_assert!((0.0..=1.0).contains(&pair.1));
            prop_assert!(xs.len() < 20);
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(wrapped % 2, 0);
            prop_assert_ne!(wrapped, 1);
            prop_assume!(a != usize::MAX);
        }

        /// The same name and case index always draw the same values.
        fn generation_is_deterministic(seed in any::<u64>()) {
            let mut g1 = crate::strategy::Gen::for_case("x", seed);
            let mut g2 = crate::strategy::Gen::for_case("x", seed);
            prop_assert_eq!(g1.next_u64(), g2.next_u64());
        }
    }
}
