//! Interaction-network datasets for the `infprop` workspace.
//!
//! The paper evaluates on six real interaction networks (Table 2): Enron and
//! Lkml (email), Facebook, Slashdot and Higgs (social), and US-2016 (a
//! Twitter election crawl). Those datasets are not redistributable here, so
//! this crate provides:
//!
//! * [`toy`] — the deterministic example networks from the paper's figures,
//!   used throughout tests and documentation;
//! * [`synthetic`] — a seeded generator of realistic interaction networks
//!   (heavy-tailed activity and popularity, repeated contacts, optional
//!   activity bursts for cascade-style datasets);
//! * [`profiles`] — six named generator configurations mirroring each
//!   Table 2 dataset's shape (node/interaction counts scaled to laptop
//!   size, matching time spans and clock granularity).
//!
//! Real data in SNAP edge-list format (`src dst time` lines) can be loaded
//! with [`infprop_temporal_graph::io`] and used everywhere a generated
//! network is.
//!
//! # Example
//!
//! ```
//! use infprop_datasets::{synthetic::SyntheticConfig, profiles};
//!
//! let net = SyntheticConfig::new(500, 5_000, 1_000).with_seed(42).generate();
//! assert_eq!(net.num_nodes(), 500);
//! assert_eq!(net.num_interactions(), 5_000);
//! assert!(net.has_distinct_timestamps());
//!
//! // A laptop-scale Enron-shaped network:
//! let enron = profiles::enron_like(1).build(0.02); // 2% of full scale
//! assert!(enron.network.num_interactions() > 10_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod profiles;
pub mod synthetic;
pub mod toy;
