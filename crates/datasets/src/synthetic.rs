//! Seeded synthetic interaction-network generator.
//!
//! The generator reproduces the structural properties the paper's
//! evaluation depends on, without any real data:
//!
//! * **heavy-tailed activity**: a new interaction's source repeats a
//!   previous interaction's source with probability
//!   [`source_repeat`](SyntheticConfig::source_repeat) — sampling from the
//!   history is exactly preferential attachment on out-activity;
//! * **heavy-tailed popularity**: likewise for destinations
//!   ([`dest_preferential`](SyntheticConfig::dest_preferential));
//! * **repeated contacts**: with probability
//!   [`contact_locality`](SyntheticConfig::contact_locality) the destination
//!   is one of the source's previous contacts, so the interaction multigraph
//!   collapses heavily when flattened (the email-network effect: |E| of the
//!   static view ≪ number of interactions);
//! * **bursts**: cascade-style datasets (Higgs, US-2016) concentrate
//!   activity around a few moments; [`burstiness`](SyntheticConfig::burstiness)
//!   routes that fraction of timestamps into Gaussian bursts.
//!
//! Timestamps are strictly increasing (the paper's all-distinct assumption)
//! and everything is deterministic in [`seed`](SyntheticConfig::with_seed).

use infprop_temporal_graph::{Interaction, InteractionNetwork, InteractionNetworkBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic interaction-network generator.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of nodes `|V|` (isolated nodes are kept in the universe).
    pub num_nodes: usize,
    /// Number of interactions `|E|`.
    pub num_interactions: usize,
    /// Target time span (`max − min + 1` will be close to this, and is
    /// stretched if fewer units than interactions are requested, to keep
    /// timestamps distinct).
    pub time_span: i64,
    /// Probability the source is sampled from past sources (preferential
    /// out-activity). Remaining mass is uniform.
    pub source_repeat: f64,
    /// Probability the destination repeats one of the source's previous
    /// contacts.
    pub contact_locality: f64,
    /// Probability (after the locality roll fails) the destination is
    /// sampled from past destinations (preferential in-popularity).
    pub dest_preferential: f64,
    /// Fraction of timestamps concentrated into bursts (0 = uniform).
    pub burstiness: f64,
    /// Number of burst centres when `burstiness > 0`.
    pub num_bursts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// A balanced default shape: moderately skewed email-like traffic.
    pub fn new(num_nodes: usize, num_interactions: usize, time_span: i64) -> Self {
        SyntheticConfig {
            num_nodes,
            num_interactions,
            time_span,
            source_repeat: 0.6,
            contact_locality: 0.4,
            dest_preferential: 0.5,
            burstiness: 0.0,
            num_bursts: 4,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the preferential-attachment strengths.
    pub fn with_skew(mut self, source_repeat: f64, dest_preferential: f64) -> Self {
        self.source_repeat = source_repeat;
        self.dest_preferential = dest_preferential;
        self
    }

    /// Sets the repeated-contact probability.
    pub fn with_contact_locality(mut self, p: f64) -> Self {
        self.contact_locality = p;
        self
    }

    /// Sets burst concentration and count.
    pub fn with_bursts(mut self, burstiness: f64, num_bursts: usize) -> Self {
        self.burstiness = burstiness;
        self.num_bursts = num_bursts.max(1);
        self
    }

    /// Runs the generator.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 nodes or an invalid probability is configured.
    pub fn generate(&self) -> InteractionNetwork {
        assert!(self.num_nodes >= 2, "need at least 2 nodes");
        for (name, p) in [
            ("source_repeat", self.source_repeat),
            ("contact_locality", self.contact_locality),
            ("dest_preferential", self.dest_preferential),
            ("burstiness", self.burstiness),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0,1], got {p}");
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let m = self.num_interactions;
        let n = self.num_nodes;

        let times = self.generate_times(&mut rng);
        debug_assert_eq!(times.len(), m);

        // Interaction history drives preferential attachment; per-node
        // contact lists drive repeated contacts.
        let mut history: Vec<(u32, u32)> = Vec::with_capacity(m);
        let mut contacts: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut builder = InteractionNetworkBuilder::with_capacity(m);

        for &t in &times {
            let src = if !history.is_empty() && rng.gen::<f64>() < self.source_repeat {
                history[rng.gen_range(0..history.len())].0
            } else {
                rng.gen_range(0..n as u32)
            };
            let dst = self.pick_dest(src, &history, &contacts, &mut rng);
            history.push((src, dst));
            contacts[src as usize].push(dst);
            builder.push(Interaction::from_raw(src, dst, t));
        }
        builder.with_min_nodes(n).build()
    }

    fn pick_dest(
        &self,
        src: u32,
        history: &[(u32, u32)],
        contacts: &[Vec<u32>],
        rng: &mut SmallRng,
    ) -> u32 {
        let n = self.num_nodes as u32;
        let own = &contacts[src as usize];
        for _ in 0..8 {
            let candidate = if !own.is_empty() && rng.gen::<f64>() < self.contact_locality {
                own[rng.gen_range(0..own.len())]
            } else if !history.is_empty() && rng.gen::<f64>() < self.dest_preferential {
                history[rng.gen_range(0..history.len())].1
            } else {
                rng.gen_range(0..n)
            };
            if candidate != src {
                return candidate;
            }
        }
        // Deterministic fallback avoiding the self-loop.
        (src + 1) % n
    }

    /// Strictly increasing timestamps covering roughly `[0, time_span)`,
    /// with the configured fraction pulled into bursts.
    fn generate_times(&self, rng: &mut SmallRng) -> Vec<i64> {
        let m = self.num_interactions;
        if m == 0 {
            return Vec::new();
        }
        let span = self.time_span.max(m as i64);
        let mut raw: Vec<i64> = if self.burstiness == 0.0 {
            (0..m).map(|_| rng.gen_range(0..span)).collect()
        } else {
            let centres: Vec<f64> = (0..self.num_bursts)
                .map(|_| rng.gen_range(0.0..span as f64))
                .collect();
            let sigma = span as f64 / (self.num_bursts as f64 * 40.0).max(8.0);
            (0..m)
                .map(|_| {
                    if rng.gen::<f64>() < self.burstiness {
                        let c = centres[rng.gen_range(0..centres.len())];
                        // Sum of uniforms ≈ Gaussian around the burst centre.
                        let g: f64 = (0..4).map(|_| rng.gen::<f64>() - 0.5).sum::<f64>() * sigma;
                        (c + g).clamp(0.0, (span - 1) as f64) as i64
                    } else {
                        rng.gen_range(0..span)
                    }
                })
                .collect()
        };
        raw.sort_unstable();
        // Enforce strict monotonicity (the paper's distinct-timestamp
        // assumption); bumps can push slightly past `span`, which is fine.
        let mut prev = i64::MIN;
        for t in &mut raw {
            if *t <= prev {
                *t = prev + 1;
            }
            prev = *t;
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_requested_sizes() {
        let net = SyntheticConfig::new(100, 2_000, 10_000)
            .with_seed(7)
            .generate();
        assert_eq!(net.num_nodes(), 100);
        assert_eq!(net.num_interactions(), 2_000);
        assert!(net.has_distinct_timestamps());
        assert!(net.time_span() <= 11_000);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = SyntheticConfig::new(50, 500, 1_000).with_seed(9).generate();
        let b = SyntheticConfig::new(50, 500, 1_000).with_seed(9).generate();
        assert_eq!(a.interactions(), b.interactions());
        let c = SyntheticConfig::new(50, 500, 1_000)
            .with_seed(10)
            .generate();
        assert_ne!(a.interactions(), c.interactions());
    }

    #[test]
    fn no_self_loops() {
        let net = SyntheticConfig::new(10, 3_000, 5_000)
            .with_seed(3)
            .generate();
        assert_eq!(net.num_interactions(), 3_000);
        assert!(net.iter().all(|i| i.src != i.dst));
    }

    #[test]
    fn activity_is_heavy_tailed() {
        let net = SyntheticConfig::new(500, 10_000, 50_000)
            .with_seed(5)
            .with_skew(0.7, 0.6)
            .generate();
        let deg = net.interaction_out_degrees();
        let max = *deg.iter().max().unwrap() as f64;
        let avg = deg.iter().map(|&d| d as f64).sum::<f64>() / deg.len() as f64;
        assert!(max > 8.0 * avg, "expected skew: max {max} vs avg {avg}");
    }

    #[test]
    fn repeated_contacts_collapse_in_static_view() {
        let net = SyntheticConfig::new(200, 10_000, 50_000)
            .with_seed(2)
            .with_contact_locality(0.7)
            .generate();
        let static_edges = net.to_static().num_edges();
        assert!(
            (static_edges as f64) < 0.7 * net.num_interactions() as f64,
            "static edges {static_edges} vs interactions {}",
            net.num_interactions()
        );
    }

    #[test]
    fn bursts_concentrate_time() {
        let smooth = SyntheticConfig::new(100, 5_000, 100_000)
            .with_seed(4)
            .generate();
        let bursty = SyntheticConfig::new(100, 5_000, 100_000)
            .with_seed(4)
            .with_bursts(0.9, 3)
            .generate();
        // Count interactions falling in the busiest 5% slice of the span.
        let busiest = |net: &InteractionNetwork| {
            let lo = net.min_time().unwrap().get();
            let span = net.time_span();
            let slice = (span / 20).max(1);
            let mut hist = [0usize; 21];
            for i in net.iter() {
                let b = (((i.time.get() - lo) / slice) as usize).min(20);
                hist[b] += 1;
            }
            *hist.iter().max().unwrap()
        };
        assert!(
            busiest(&bursty) > 2 * busiest(&smooth),
            "bursty {} vs smooth {}",
            busiest(&bursty),
            busiest(&smooth)
        );
    }

    #[test]
    fn timestamps_stretch_when_span_too_small() {
        let net = SyntheticConfig::new(10, 1_000, 10).with_seed(1).generate();
        assert!(net.has_distinct_timestamps());
        assert_eq!(net.num_interactions(), 1_000);
    }

    #[test]
    #[should_panic(expected = "need at least 2 nodes")]
    fn one_node_panics() {
        let _ = SyntheticConfig::new(1, 10, 10).generate();
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn bad_probability_panics() {
        let mut cfg = SyntheticConfig::new(10, 10, 10);
        cfg.source_repeat = 1.5;
        let _ = cfg.generate();
    }
}
