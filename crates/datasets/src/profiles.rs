//! Named generator profiles mirroring the paper's six datasets (Table 2).
//!
//! Full-scale parameters follow Table 2 exactly:
//!
//! | Dataset  | \|V\| (k) | \|E\| (k) | Days  | Shape |
//! |----------|-----------|-----------|-------|-------|
//! | Enron    | 87.3      | 1 148.1   | 8 767 | email: strong contact repetition |
//! | Lkml     | 27.4      | 1 048.6   | 2 923 | email/list: very strong repetition, few hubs |
//! | Facebook | 46.9      | 877.0     | 1 592 | social wall posts |
//! | Higgs    | 304.7     | 526.2     | 7     | retweet cascade: extreme bursts |
//! | Slashdot | 51.1      | 140.8     | 978   | social replies |
//! | US-2016  | 4 468     | 44 638    | 16    | election tweets: bursts + hubs |
//!
//! [`DatasetProfile::build`] scales node and interaction counts by a factor
//! so experiments fit a laptop; the time span and clock granularity are kept
//! at full scale so *window percentages mean the same thing as in the
//! paper*. The default experiment scale in `infprop-bench` is 2% (e.g.
//! Enron-like: ~1.7k nodes, ~23k interactions).

use crate::synthetic::SyntheticConfig;
use infprop_temporal_graph::InteractionNetwork;

/// Seconds per day — the clock unit of every profile (real interaction logs
/// are second-granularity; a coarser clock could not keep timestamps
/// distinct on the dense datasets).
const DAY_SECONDS: i64 = 86_400;

/// A named dataset profile: generator shape plus full-scale Table 2 numbers.
#[derive(Clone, Debug)]
pub struct DatasetProfile {
    /// Dataset name as used in the paper's tables.
    pub name: &'static str,
    /// Full-scale node count.
    pub full_nodes: usize,
    /// Full-scale interaction count.
    pub full_interactions: usize,
    /// Time span in days (Table 2's "Days" column).
    pub days: i64,
    /// Clock ticks per day (1 = day-granularity logs, 86 400 = seconds).
    pub units_per_day: i64,
    /// Generator shape (probabilities, bursts); counts are filled by
    /// [`build`](Self::build).
    shape: SyntheticConfig,
}

/// A generated dataset: the network plus its provenance.
#[derive(Clone, Debug)]
pub struct GeneratedDataset {
    /// Profile name ("Enron", …).
    pub name: &'static str,
    /// The generated interaction network.
    pub network: InteractionNetwork,
    /// Clock ticks per day, for [`NetworkStats`](infprop_temporal_graph::NetworkStats).
    pub units_per_day: i64,
}

impl DatasetProfile {
    /// Generates the network at `scale` (1.0 = full Table 2 size). Node and
    /// interaction counts scale linearly; the time span stays full-scale.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale ≤ 1`.
    pub fn build(&self, scale: f64) -> GeneratedDataset {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let mut cfg = self.shape.clone();
        cfg.num_nodes = ((self.full_nodes as f64 * scale) as usize).max(2);
        cfg.num_interactions = ((self.full_interactions as f64 * scale) as usize).max(1);
        cfg.time_span = self.days * self.units_per_day;
        GeneratedDataset {
            name: self.name,
            network: cfg.generate(),
            units_per_day: self.units_per_day,
        }
    }
}

fn shape(seed: u64) -> SyntheticConfig {
    // Counts are overwritten by `build`; only shape parameters matter here.
    SyntheticConfig::new(2, 1, 1).with_seed(seed)
}

/// Enron email network: long span, strong contact repetition.
pub fn enron_like(seed: u64) -> DatasetProfile {
    DatasetProfile {
        name: "Enron",
        full_nodes: 87_300,
        full_interactions: 1_148_100,
        days: 8_767,
        units_per_day: DAY_SECONDS,
        shape: shape(seed).with_skew(0.65, 0.5).with_contact_locality(0.6),
    }
}

/// Linux-kernel mailing list: fewer nodes, very strong repetition and hubs.
pub fn lkml_like(seed: u64) -> DatasetProfile {
    DatasetProfile {
        name: "Lkml",
        full_nodes: 27_400,
        full_interactions: 1_048_600,
        days: 2_923,
        units_per_day: DAY_SECONDS,
        shape: shape(seed).with_skew(0.75, 0.6).with_contact_locality(0.7),
    }
}

/// Facebook wall posts: social, moderate skew.
pub fn facebook_like(seed: u64) -> DatasetProfile {
    DatasetProfile {
        name: "Facebook",
        full_nodes: 46_900,
        full_interactions: 877_000,
        days: 1_592,
        units_per_day: DAY_SECONDS,
        shape: shape(seed).with_skew(0.55, 0.45).with_contact_locality(0.5),
    }
}

/// Higgs retweet cascade: 7 days, second-granularity clock, extreme bursts.
pub fn higgs_like(seed: u64) -> DatasetProfile {
    DatasetProfile {
        name: "Higgs",
        full_nodes: 304_700,
        full_interactions: 526_200,
        days: 7,
        units_per_day: DAY_SECONDS,
        shape: shape(seed)
            .with_skew(0.6, 0.75)
            .with_contact_locality(0.15)
            .with_bursts(0.7, 3),
    }
}

/// Slashdot replies: smallest interaction count, social shape.
pub fn slashdot_like(seed: u64) -> DatasetProfile {
    DatasetProfile {
        name: "Slashdot",
        full_nodes: 51_100,
        full_interactions: 140_800,
        days: 978,
        units_per_day: DAY_SECONDS,
        shape: shape(seed).with_skew(0.5, 0.5).with_contact_locality(0.35),
    }
}

/// US-2016 election tweets: the scalability dataset — huge, bursty, hubby.
pub fn us2016_like(seed: u64) -> DatasetProfile {
    DatasetProfile {
        name: "US-2016",
        full_nodes: 4_468_000,
        full_interactions: 44_638_000,
        days: 16,
        units_per_day: DAY_SECONDS,
        shape: shape(seed)
            .with_skew(0.65, 0.8)
            .with_contact_locality(0.2)
            .with_bursts(0.75, 5),
    }
}

/// All six profiles, in the paper's Table 2 order.
pub fn all(seed: u64) -> Vec<DatasetProfile> {
    vec![
        enron_like(seed),
        lkml_like(seed),
        facebook_like(seed),
        higgs_like(seed),
        slashdot_like(seed),
        us2016_like(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use infprop_temporal_graph::NetworkStats;

    #[test]
    fn six_profiles_in_table2_order() {
        let names: Vec<&str> = all(0).iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["Enron", "Lkml", "Facebook", "Higgs", "Slashdot", "US-2016"]
        );
    }

    #[test]
    fn build_scales_counts_but_not_span() {
        let p = slashdot_like(3);
        let d = p.build(0.02);
        assert_eq!(d.network.num_nodes(), (51_100.0 * 0.02) as usize);
        assert_eq!(d.network.num_interactions(), (140_800.0 * 0.02) as usize);
        // Span stays near full scale (978 days, second granularity).
        let stats = NetworkStats::compute(&d.network, d.units_per_day);
        assert!(
            stats.days > 800.0 && stats.days < 1_100.0,
            "days {}",
            stats.days
        );
    }

    #[test]
    fn cascade_profiles_have_short_spans_in_days() {
        let d = higgs_like(1).build(0.005);
        let stats = NetworkStats::compute(&d.network, d.units_per_day);
        assert!(stats.days <= 9.0, "days {}", stats.days);
        assert!(d.network.has_distinct_timestamps());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = enron_like(5).build(0.005);
        let b = enron_like(5).build(0.005);
        assert_eq!(a.network.interactions(), b.network.interactions());
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn zero_scale_panics() {
        let _ = enron_like(0).build(0.0);
    }
}
