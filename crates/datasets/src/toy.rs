//! The paper's deterministic example networks.
//!
//! Node letters map to dense ids alphabetically: `a=0, b=1, c=2, d=3, e=4,
//! f=5`.

use infprop_temporal_graph::InteractionNetwork;

/// Figure 1a: the running example of the exact algorithm (Example 2).
///
/// Interactions: a→d@1, e→f@2, d→e@3, e→b@4, a→b@5, b→e@6, e→c@7, b→c@8.
pub fn figure1a() -> InteractionNetwork {
    InteractionNetwork::from_triples([
        (0, 3, 1),
        (4, 5, 2),
        (3, 4, 3),
        (4, 1, 4),
        (0, 1, 5),
        (1, 4, 6),
        (4, 2, 7),
        (1, 2, 8),
    ])
}

/// A reconstruction of Figure 2: multiple information channels between
/// c and f, window-sensitive reachability from a
/// (σ3(a) = {b, c, d}, σ5(a) = {b, c, d, f}).
///
/// Interactions: a→b@1, a→d@2, d→c@3, c→e@3, b→c@4, c→f@5, e→c@6, c→f@8.
pub fn figure2() -> InteractionNetwork {
    InteractionNetwork::from_triples([
        (0, 1, 1),
        (0, 3, 2),
        (3, 2, 3),
        (2, 4, 3),
        (1, 2, 4),
        (2, 5, 5),
        (4, 2, 6),
        (2, 5, 8),
    ])
}

/// A simple k-hop chain `0 → 1 → … → len` with unit time steps — handy for
/// window-threshold tests.
pub fn chain(len: usize) -> InteractionNetwork {
    InteractionNetwork::from_triples((0..len).map(|i| (i as u32, i as u32 + 1, i as i64 + 1)))
}

/// A star: node 0 contacts `1..=leaves` at times `1..=leaves`.
pub fn star(leaves: usize) -> InteractionNetwork {
    InteractionNetwork::from_triples((1..=leaves).map(|v| (0u32, v as u32, v as i64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use infprop_temporal_graph::{NodeId, Timestamp};

    #[test]
    fn figure1a_shape() {
        let net = figure1a();
        assert_eq!(net.num_nodes(), 6);
        assert_eq!(net.num_interactions(), 8);
        assert!(net.has_distinct_timestamps());
        assert_eq!(net.max_time(), Some(Timestamp(8)));
    }

    #[test]
    fn figure2_shape() {
        let net = figure2();
        assert_eq!(net.num_nodes(), 6);
        assert_eq!(net.num_interactions(), 8);
        // Figure 2 deliberately has a timestamp tie (d→c and c→e at t=3).
        assert!(!net.has_distinct_timestamps());
    }

    #[test]
    fn chain_and_star_shapes() {
        let c = chain(5);
        assert_eq!(c.num_nodes(), 6);
        assert_eq!(c.num_interactions(), 5);
        let s = star(10);
        assert_eq!(s.num_nodes(), 11);
        assert_eq!(s.interaction_out_degrees()[0], 10);
        assert_eq!(s.to_static().out_degree(NodeId(0)), 10);
    }
}
