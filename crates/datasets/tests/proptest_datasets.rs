//! Property tests for the synthetic dataset generator.

use infprop_datasets::synthetic::SyntheticConfig;
use infprop_temporal_graph::metrics;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The generator always hits the requested sizes exactly, with strictly
    /// increasing timestamps and no self-loops, for any shape parameters.
    #[test]
    fn generator_respects_contract(
        nodes in 2usize..200,
        interactions in 0usize..2_000,
        span in 1i64..50_000,
        source_repeat in 0.0f64..=1.0,
        locality in 0.0f64..=1.0,
        preferential in 0.0f64..=1.0,
        burstiness in 0.0f64..=1.0,
        bursts in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let net = SyntheticConfig::new(nodes, interactions, span)
            .with_seed(seed)
            .with_skew(source_repeat, preferential)
            .with_contact_locality(locality)
            .with_bursts(burstiness, bursts)
            .generate();
        prop_assert_eq!(net.num_nodes(), nodes);
        prop_assert_eq!(net.num_interactions(), interactions);
        prop_assert!(net.has_distinct_timestamps());
        prop_assert!(net.iter().all(|i| i.src != i.dst));
        prop_assert!(net.iter().all(|i| i.time.get() >= 0));
    }

    /// Determinism: identical configs generate identical networks; the seed
    /// actually matters for non-trivial sizes.
    #[test]
    fn generator_deterministic(seed in 0u64..500) {
        let make = |s| {
            SyntheticConfig::new(30, 300, 3_000)
                .with_seed(s)
                .generate()
        };
        let (a, b, c) = (make(seed), make(seed), make(seed.wrapping_add(1)));
        prop_assert_eq!(a.interactions(), b.interactions());
        prop_assert_ne!(a.interactions(), c.interactions());
    }

    /// Stronger contact locality ⇒ at most as many distinct static edges
    /// (more repetition), comparing extremes on the same seed.
    #[test]
    fn locality_increases_repetition(seed in 0u64..200) {
        let loose = SyntheticConfig::new(50, 2_000, 20_000)
            .with_seed(seed)
            .with_contact_locality(0.0)
            .generate();
        let tight = SyntheticConfig::new(50, 2_000, 20_000)
            .with_seed(seed)
            .with_contact_locality(0.9)
            .generate();
        prop_assert!(
            metrics::contact_repetition(&tight) >= metrics::contact_repetition(&loose),
            "tight {} loose {}",
            metrics::contact_repetition(&tight),
            metrics::contact_repetition(&loose)
        );
    }

    /// Higher source skew ⇒ higher out-degree inequality (Gini), comparing
    /// extremes on the same seed.
    #[test]
    fn skew_increases_gini(seed in 0u64..200) {
        let flat = SyntheticConfig::new(100, 3_000, 30_000)
            .with_seed(seed)
            .with_skew(0.0, 0.0)
            .generate();
        let skewed = SyntheticConfig::new(100, 3_000, 30_000)
            .with_seed(seed)
            .with_skew(0.9, 0.0)
            .generate();
        let g_flat = metrics::interaction_out_degree_summary(&flat).gini;
        let g_skewed = metrics::interaction_out_degree_summary(&skewed).gini;
        prop_assert!(g_skewed > g_flat, "skewed {} flat {}", g_skewed, g_flat);
    }
}
