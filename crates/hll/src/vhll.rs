//! The versioned HyperLogLog (vHLL) sketch — §3.2.2 of the paper.
//!
//! A plain HyperLogLog register keeps only the maximum ρ ever seen, which is
//! wrong for the IRS computation: when a sketch is merged into a
//! *predecessor* node's sketch at an earlier anchor time `t`, only the items
//! whose information channel ends within `[t, t + ω − 1]` may contribute. The
//! vHLL therefore keeps, per register, a **version list** of `(ρ, time)`
//! pairs under dominance pruning:
//!
//! > `(ρ′, t′)` *dominates* `(ρ, t)` iff `t′ ≤ t` and `ρ′ ≥ ρ`.
//!
//! A dominated pair can never be the in-window maximum for any anchor, so it
//! is dropped. The surviving list, sorted by **strictly increasing time, has
//! strictly increasing ρ** — the core invariant of this module (checked by
//! [`VersionedHll::check_invariants`] and property tests). Lemma 4 of the
//! paper shows the expected list length is `O(log ω)`.
//!
//! The sketch supports:
//!
//! * [`add_hash`](VersionedHll::add_hash) — insert an item observed at a time,
//! * [`merge_from`](VersionedHll::merge_from) — the window-filtered merge used
//!   when processing an interaction `(u, v, t)` in reverse time order
//!   (`φ(u) ← φ(u) ∪ {entries of φ(v) ending within ω of t}`),
//! * [`estimate`](VersionedHll::estimate) — cardinality of *all* items ever
//!   retained (the size of the node's IRS),
//! * [`estimate_window`](VersionedHll::estimate_window) — sliding-window
//!   cardinality at an arbitrary anchor (the sliding-window HLL view of
//!   Kumar et al., ECML-PKDD 2015, that inspired the sketch),
//! * [`to_hyperloglog`](VersionedHll::to_hyperloglog) — collapse to a plain
//!   HLL of per-cell maxima, enabling O(β) influence-oracle unions.

use crate::hash;
use crate::hyperloglog::split_hash;
use crate::hyperloglog::{estimate_from_registers, HyperLogLog, MAX_PRECISION, MIN_PRECISION};
use std::fmt;

/// Why a single version list fails the dominance-chain invariant.
///
/// Produced by [`check_entries`] (and wrapped with its cell index in
/// [`SketchInvariantError::Cell`] by
/// [`VersionedHll::check_dominance_chain`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryError {
    /// Entries `index − 1` and `index` are not in strictly increasing
    /// `(time, ρ)` order — one of them dominates, or should have evicted,
    /// the other (paper Alg. 3).
    Order {
        /// Index of the second entry of the offending adjacent pair.
        index: usize,
    },
    /// An entry's ρ lies outside `[1, 64 − k + 1]` — impossible for any
    /// `k`-bit-prefix hash split, so the list was not produced by
    /// `ApproxAdd`.
    RhoRange {
        /// Index of the offending entry.
        index: usize,
        /// The out-of-range ρ value.
        rho: u8,
        /// The maximal legal ρ (`64 − precision + 1`).
        max_rho: u8,
    },
}

impl fmt::Display for EntryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryError::Order { index } => write!(
                f,
                "entries {} and {index} violate the dominance chain \
                 (time and \u{3c1} must both strictly increase)",
                index.wrapping_sub(1)
            ),
            EntryError::RhoRange {
                index,
                rho,
                max_rho,
            } => write!(
                f,
                "entry {index} has \u{3c1} = {rho} outside [1, {max_rho}]"
            ),
        }
    }
}

/// Structural corruption detected in a [`VersionedHll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchInvariantError {
    /// Precision outside `[MIN_PRECISION, MAX_PRECISION]`.
    Precision(u8),
    /// The cell vector's length is not `2^precision`.
    CellCount {
        /// Expected `2^precision`.
        expected: usize,
        /// Actual number of cells supplied.
        got: usize,
    },
    /// A cell's version list fails [`check_entries`].
    Cell {
        /// Index of the corrupt cell.
        cell: usize,
        /// What is wrong with its version list.
        error: EntryError,
    },
}

impl fmt::Display for SketchInvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchInvariantError::Precision(p) => write!(
                f,
                "precision {p} outside [{MIN_PRECISION}, {MAX_PRECISION}]"
            ),
            SketchInvariantError::CellCount { expected, got } => {
                write!(f, "expected {expected} cells, got {got}")
            }
            SketchInvariantError::Cell { cell, error } => {
                write!(f, "cell {cell}: {error}")
            }
        }
    }
}

impl std::error::Error for SketchInvariantError {}

/// Validates one version list against the vHLL core invariant: entries
/// sorted by strictly increasing time **and** strictly increasing ρ (the
/// shape dominance pruning leaves behind, §3.2.2 / Alg. 3), with every ρ in
/// `[1, max_rho]`.
pub fn check_entries(entries: &[VersionEntry], max_rho: u8) -> Result<(), EntryError> {
    for (i, e) in entries.iter().enumerate() {
        if e.rho == 0 || e.rho > max_rho {
            return Err(EntryError::RhoRange {
                index: i,
                rho: e.rho,
                max_rho,
            });
        }
        if i > 0 {
            let p = entries[i - 1];
            if !(p.time < e.time && p.rho < e.rho) {
                return Err(EntryError::Order { index: i });
            }
        }
    }
    Ok(())
}

/// Hooks into the vHLL merge internals, for observability layers living
/// above this crate (the dependency arrow points core → hll, so core's
/// `Recorder` cannot be named here; instead core adapts it to this minimal
/// trait).
///
/// All methods take `&mut self` — a merge has exclusive access to its
/// observer — and a no-op implementation ([`NoopMergeObserver`]) must
/// monomorphize to nothing. Any work needed only to *compute* an observed
/// quantity (bitmap popcounts, before/after spill checks) is gated on
/// [`MergeObserver::ENABLED`], so the unobserved path pays zero cost.
pub trait MergeObserver {
    /// `true` iff the observer records anything; gates metric computation.
    const ENABLED: bool;

    /// Occupied source cells walked by one merge.
    fn cells_visited(&mut self, n: u64);

    /// Registers skipped by one merge thanks to the occupancy bitmap
    /// (`β` minus the source's populated cells).
    fn cells_skipped(&mut self, n: u64);

    /// Version entries read across both chains of the merged cells.
    fn entries_scanned(&mut self, n: u64);

    /// Version entries dropped by dominance during the linear merge.
    fn entries_pruned(&mut self, n: u64);

    /// Destination version lists that spilled inline→heap during the merge.
    fn spills(&mut self, n: u64);
}

/// The do-nothing [`MergeObserver`]: compiles away entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopMergeObserver;

impl MergeObserver for NoopMergeObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn cells_visited(&mut self, _n: u64) {}

    #[inline(always)]
    fn cells_skipped(&mut self, _n: u64) {}

    #[inline(always)]
    fn entries_scanned(&mut self, _n: u64) {}

    #[inline(always)]
    fn entries_pruned(&mut self, _n: u64) {}

    #[inline(always)]
    fn spills(&mut self, _n: u64) {}
}

/// One `(ρ, time)` version pair in a register's list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VersionEntry {
    /// Observation time (for IRS: the channel's earliest end time `λ`).
    pub time: i64,
    /// The ρ value (1-based least-significant-set-bit position).
    pub rho: u8,
}

const ZERO_ENTRY: VersionEntry = VersionEntry { time: 0, rho: 0 };

/// Storage of one register's version list: inline up to
/// [`VersionList::INLINE_CAP`] entries, spilled to a heap vector beyond.
#[derive(Clone, Debug)]
enum ListRepr {
    /// The common short-list case (Lemma 4: expected length `O(log ω)`)
    /// lives entirely inside the sketch's cell array — no heap allocation.
    Inline {
        /// Number of live entries in `buf[..len]`.
        len: u8,
        /// Fixed-capacity entry buffer; `buf[len..]` is unspecified filler.
        buf: [VersionEntry; VersionList::INLINE_CAP],
    },
    /// Lists that outgrow the inline buffer move to an ordinary vector.
    Spilled(Vec<VersionEntry>),
}

/// A register's dominance-pruned version list with a hand-rolled inline
/// small-buffer: lists of up to [`Self::INLINE_CAP`] entries are stored
/// inside the cell array itself, so the common short-list case (paper
/// Lemma 4 bounds the expected length by `O(log ω)`) performs zero heap
/// allocations. Longer lists spill to a heap vector transparently.
///
/// Equality compares the logical entry sequence, not the representation, so
/// an inline list and a spilled list with the same entries are equal.
#[derive(Clone, Debug)]
pub struct VersionList {
    repr: ListRepr,
}

impl Default for VersionList {
    fn default() -> Self {
        VersionList::new()
    }
}

impl PartialEq for VersionList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for VersionList {}

impl VersionList {
    /// Entries held without any heap allocation.
    pub const INLINE_CAP: usize = 3;

    /// An empty (inline) list.
    pub fn new() -> Self {
        VersionList {
            repr: ListRepr::Inline {
                len: 0,
                buf: [ZERO_ENTRY; Self::INLINE_CAP],
            },
        }
    }

    /// The live entries as a slice, in list order.
    #[inline]
    pub fn as_slice(&self) -> &[VersionEntry] {
        match &self.repr {
            ListRepr::Inline { len, buf } => &buf[..usize::from(*len)],
            ListRepr::Spilled(v) => v,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the list holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the list has spilled to a heap vector.
    #[inline]
    pub fn is_spilled(&self) -> bool {
        matches!(self.repr, ListRepr::Spilled(_))
    }

    /// Heap bytes owned by this list (zero while inline).
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            ListRepr::Inline { .. } => 0,
            ListRepr::Spilled(v) => v.capacity() * std::mem::size_of::<VersionEntry>(),
        }
    }

    /// Replaces the range `lo..hi` with the single entry `e` (the shape of
    /// every `ApproxAdd` mutation: evict a contiguous dominated run, insert
    /// the newcomer in its place).
    fn splice_one(&mut self, lo: usize, hi: usize, e: VersionEntry) {
        match &mut self.repr {
            ListRepr::Inline { len, buf } => {
                let l = usize::from(*len);
                debug_assert!(lo <= hi && hi <= l);
                let new_len = l - (hi - lo) + 1;
                if new_len <= Self::INLINE_CAP {
                    buf.copy_within(hi..l, lo + 1);
                    buf[lo] = e;
                    *len = new_len as u8; // xtask-allow: no-lossy-cast (new_len ≤ INLINE_CAP)
                } else {
                    // Only reachable with hi == lo and a full buffer: grow
                    // into a heap vector.
                    let mut v = Vec::with_capacity(Self::INLINE_CAP * 2 + 2);
                    v.extend_from_slice(&buf[..lo]);
                    v.push(e);
                    v.extend_from_slice(&buf[lo..l]);
                    self.repr = ListRepr::Spilled(v);
                }
            }
            ListRepr::Spilled(v) => {
                v.splice(lo..hi, std::iter::once(e));
            }
        }
    }

    /// Overwrites the list with `src` (used by the merge path to copy a
    /// scratch-merged chain back). An already-spilled list reuses its heap
    /// buffer; an inline list stays inline whenever `src` fits.
    fn replace_from(&mut self, src: &[VersionEntry]) {
        match &mut self.repr {
            ListRepr::Inline { len, buf } => {
                if src.len() <= Self::INLINE_CAP {
                    buf[..src.len()].copy_from_slice(src);
                    *len = src.len() as u8; // xtask-allow: no-lossy-cast (src.len() ≤ INLINE_CAP)
                } else {
                    self.repr = ListRepr::Spilled(src.to_vec());
                }
            }
            ListRepr::Spilled(v) => {
                v.clear();
                v.extend_from_slice(src);
            }
        }
    }

    /// Keeps only the entries satisfying `keep`, preserving order.
    fn retain(&mut self, mut keep: impl FnMut(&VersionEntry) -> bool) {
        match &mut self.repr {
            ListRepr::Inline { len, buf } => {
                let l = usize::from(*len);
                let mut w = 0usize;
                for r in 0..l {
                    if keep(&buf[r]) {
                        buf[w] = buf[r];
                        w += 1;
                    }
                }
                *len = w as u8; // xtask-allow: no-lossy-cast (w ≤ INLINE_CAP)
            }
            ListRepr::Spilled(v) => v.retain(keep),
        }
    }

    /// Builds a list from an entry vector (codec/constructor entry point).
    fn from_vec(v: Vec<VersionEntry>) -> Self {
        let mut list = VersionList::new();
        list.replace_from(&v);
        list
    }
}

/// A versioned HyperLogLog sketch with `β = 2^precision` registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionedHll {
    precision: u8,
    cells: Vec<VersionList>,
    /// Occupancy bitmap: bit `i` is set iff `cells[i]` is non-empty. Real
    /// sketches populate only a small fraction of their `β` cells (one per
    /// distinct hash prefix observed), so merge and prune walk the set bits
    /// instead of streaming the whole cell array — the dominant cost of the
    /// reverse scan's per-interaction `ApproxMerge`.
    occupied: Vec<u64>,
}

impl VersionedHll {
    /// Creates an empty sketch with `β = 2^precision` cells.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is outside `[4, 16]`.
    pub fn new(precision: u8) -> Self {
        assert!(
            (MIN_PRECISION..=MAX_PRECISION).contains(&precision),
            "precision must be in [{MIN_PRECISION}, {MAX_PRECISION}], got {precision}"
        );
        let cells = 1usize << precision;
        VersionedHll {
            precision,
            cells: vec![VersionList::new(); cells],
            occupied: vec![0; cells.div_ceil(64)],
        }
    }

    /// Marks cell `idx` as non-empty in the occupancy bitmap.
    #[inline]
    fn mark_occupied(occupied: &mut [u64], idx: usize) {
        occupied[idx / 64] |= 1 << (idx % 64);
    }

    /// The precision `k` (so `β = 2^k`).
    #[inline]
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Number of cells `β`.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Adds an already-hashed item observed at `time`.
    ///
    /// Returns `true` if the sketch changed (the pair was not dominated).
    #[inline]
    pub fn add_hash(&mut self, h: u64, time: i64) -> bool {
        let (idx, rho) = split_hash(h, self.precision);
        let changed = Self::insert_entry(&mut self.cells[idx], rho, time);
        if changed {
            Self::mark_occupied(&mut self.occupied, idx);
        }
        changed
    }

    /// Hashes and adds a `u64` item observed at `time`.
    #[inline]
    pub fn add_u64(&mut self, item: u64, time: i64) -> bool {
        self.add_hash(hash::hash64(item), time)
    }

    /// The `ApproxAdd` routine (paper Alg. 3): inserts `(ρ, time)` into a
    /// cell list unless dominated; removes every pair the new one dominates.
    ///
    /// The list is kept sorted by strictly increasing time with strictly
    /// increasing ρ, so both checks are binary searches (`O(log² ω)` per
    /// insertion over the Lemma 4 expected list length) plus a bounded scan.
    fn insert_entry(cell: &mut VersionList, rho: u8, time: i64) -> bool {
        let entries = cell.as_slice();
        // Dominated? Some (ρ′, t′) with t′ ≤ time has ρ′ ≥ rho. Since ρ grows
        // with t, the strongest candidate is the last entry with t′ ≤ time.
        let pos_le = entries.partition_point(|e| e.time <= time);
        if pos_le > 0 && entries[pos_le - 1].rho >= rho {
            return false;
        }
        // Remove pairs the newcomer dominates: t′ ≥ time and ρ′ ≤ rho — a
        // contiguous run starting at the first entry with t′ ≥ time. The
        // run's end is found by binary search too (ρ increases with time).
        let pos_lt = entries.partition_point(|e| e.time < time);
        let end = pos_lt + entries[pos_lt..].partition_point(|e| e.rho <= rho);
        cell.splice_one(pos_lt, end, VersionEntry { time, rho });
        true
    }

    /// The `ApproxMerge` routine (paper Alg. 3): folds `other` into `self`,
    /// keeping only pairs whose time lies within the window anchored at
    /// `anchor`, i.e. `e.time − anchor < window` (equivalently
    /// `e.time − anchor + 1 ≤ ω`).
    ///
    /// In the IRS reverse scan, `anchor` is the current interaction's
    /// timestamp and `other` is the destination node's sketch.
    ///
    /// # Panics
    ///
    /// Panics on precision mismatch.
    pub fn merge_from(&mut self, other: &VersionedHll, anchor: i64, window: i64) {
        let mut scratch = Vec::new();
        self.merge_from_with(other, anchor, window, &mut scratch);
    }

    /// [`merge_from`](Self::merge_from) with a caller-provided scratch
    /// buffer, so a long run of merges (the IRS reverse scan performs one
    /// per interaction) allocates nothing in the steady state.
    ///
    /// Each cell pair is combined with a **linear dominance merge**: both
    /// chains are sorted by strictly increasing time and ρ, so one pass that
    /// visits entries in time order (ties: larger ρ first) and keeps an
    /// entry exactly when its ρ exceeds the running maximum reproduces the
    /// canonical non-dominated set — the same list repeated `ApproxAdd`
    /// calls would build, in `O(|a| + |b|)` instead of `O(|b| log² ω)`.
    ///
    /// Only `other`'s occupied cells are visited (via its occupancy bitmap),
    /// so the per-merge cost scales with the number of *populated* cells
    /// rather than with `β`.
    ///
    /// # Panics
    ///
    /// Panics on precision mismatch.
    pub fn merge_from_with(
        &mut self,
        other: &VersionedHll,
        anchor: i64,
        window: i64,
        scratch: &mut Vec<VersionEntry>,
    ) {
        self.merge_from_observed(other, anchor, window, scratch, &mut NoopMergeObserver);
    }

    /// [`merge_from_with`](Self::merge_from_with) reporting its internals to
    /// a [`MergeObserver`]. With [`NoopMergeObserver`] this monomorphizes to
    /// exactly the unobserved merge.
    ///
    /// # Panics
    ///
    /// Panics on precision mismatch.
    pub fn merge_from_observed<O: MergeObserver>(
        &mut self,
        other: &VersionedHll,
        anchor: i64,
        window: i64,
        scratch: &mut Vec<VersionEntry>,
        obs: &mut O,
    ) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge vHLL sketches of different precision"
        );
        let limit = anchor.saturating_add(window);
        let VersionedHll {
            cells, occupied, ..
        } = self;
        if O::ENABLED {
            let populated: u64 = other
                .occupied
                .iter()
                .map(|w| u64::from(w.count_ones()))
                .sum();
            let total = u64::try_from(other.cells.len()).unwrap_or(u64::MAX);
            obs.cells_visited(populated);
            obs.cells_skipped(total.saturating_sub(populated));
        }
        // Walk only `other`'s occupied cells: a sketch populates one cell per
        // distinct hash prefix observed, so most of the β cells are empty and
        // never need to be touched.
        for (wi, &word) in other.occupied.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let idx = wi * 64 + bits.trailing_zeros() as usize; // xtask-allow: no-lossy-cast (bit index < 64 fits usize)
                bits &= bits - 1;
                let theirs = other.cells[idx].as_slice();
                // Times are increasing, so the in-window pairs form a prefix.
                let take = theirs.partition_point(|e| e.time < limit);
                if take == 0 {
                    continue;
                }
                let b = &theirs[..take];
                let mine = &mut cells[idx];
                let a = mine.as_slice();
                if a.is_empty() {
                    // b is already a valid dominance chain: copy it wholesale.
                    if O::ENABLED {
                        obs.entries_scanned(u64::try_from(b.len()).unwrap_or(u64::MAX));
                        if b.len() > VersionList::INLINE_CAP {
                            obs.spills(1);
                        }
                    }
                    mine.replace_from(b);
                    Self::mark_occupied(occupied, idx);
                    continue;
                }
                scratch.clear();
                let (mut i, mut j) = (0usize, 0usize);
                let mut max_rho = 0u8;
                while i < a.len() || j < b.len() {
                    // Next entry in (time asc, ρ desc) order: at equal times
                    // the larger ρ goes first so the smaller is seen as
                    // dominated.
                    let from_a = j >= b.len()
                        || (i < a.len()
                            && (a[i].time < b[j].time
                                || (a[i].time == b[j].time && a[i].rho >= b[j].rho)));
                    let e = if from_a {
                        i += 1;
                        a[i - 1]
                    } else {
                        j += 1;
                        b[j - 1]
                    };
                    if e.rho > max_rho {
                        max_rho = e.rho;
                        scratch.push(e);
                    }
                }
                if O::ENABLED {
                    let scanned = a.len() + b.len();
                    obs.entries_scanned(u64::try_from(scanned).unwrap_or(u64::MAX));
                    let pruned = scanned.saturating_sub(scratch.len());
                    if pruned > 0 {
                        obs.entries_pruned(u64::try_from(pruned).unwrap_or(u64::MAX));
                    }
                }
                if scratch.as_slice() != a {
                    if O::ENABLED && !mine.is_spilled() && scratch.len() > VersionList::INLINE_CAP {
                        obs.spills(1);
                    }
                    mine.replace_from(scratch);
                }
            }
        }
    }

    /// Unfiltered union of two version sketches (all pairs merged under
    /// dominance). Equivalent to `merge_from` with an unbounded window and
    /// an anchor at −∞.
    pub fn merge_all(&mut self, other: &VersionedHll) {
        self.merge_from(other, i64::MIN / 4, i64::MAX / 2);
    }

    /// Estimates the number of distinct items ever retained: the per-cell
    /// maximum ρ is the **last** list entry (the invariant makes it so), and
    /// the plain HLL estimator does the rest.
    pub fn estimate(&self) -> f64 {
        let registers: Vec<u8> = self
            .cells
            .iter()
            .map(|c| c.as_slice().last().map_or(0, |e| e.rho))
            .collect();
        estimate_from_registers(&registers)
    }

    /// Sliding-window estimate: the number of distinct items observed within
    /// `[anchor, anchor + window − 1]`.
    ///
    /// # Contract
    ///
    /// Like the paper's sliding-window sketch, this is sound under the
    /// **reverse-time discipline**: insertions arrive in non-increasing time
    /// order and the query `anchor` is at or before the earliest insertion
    /// time processed so far. Querying a *later* anchor after earlier-time
    /// insertions may undercount, because dominance pruning has already
    /// discarded pairs that only such out-of-discipline queries would need.
    /// ([`estimate`](Self::estimate), by contrast, is always exact w.r.t. the
    /// retained maxima: a dominating pair has ρ′ ≥ ρ, so per-cell maxima are
    /// unaffected by pruning.)
    pub fn estimate_window(&self, anchor: i64, window: i64) -> f64 {
        let limit = anchor.saturating_add(window);
        let registers: Vec<u8> = self
            .cells
            .iter()
            .map(|c| {
                let c = c.as_slice();
                let lo = c.partition_point(|e| e.time < anchor);
                let hi = c.partition_point(|e| e.time < limit);
                if hi > lo {
                    c[hi - 1].rho // ρ increases with time: last in range is max
                } else {
                    0
                }
            })
            .collect();
        estimate_from_registers(&registers)
    }

    /// Collapses to a plain [`HyperLogLog`] of per-cell maxima. The result
    /// estimates the same cardinality as [`estimate`](Self::estimate) and can
    /// be unioned in `O(β)` — the influence-oracle fast path (paper §4.1).
    pub fn to_hyperloglog(&self) -> HyperLogLog {
        HyperLogLog::from_registers(
            self.cells
                .iter()
                .map(|c| c.as_slice().last().map_or(0, |e| e.rho))
                .collect(),
        )
    }

    /// Writes the per-cell maxima of [`to_hyperloglog`](Self::to_hyperloglog)
    /// into a caller-provided slice instead of allocating — the export used
    /// when freezing a store of versioned sketches into one flat register
    /// arena (`β` bytes per node, no per-node `Vec`).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the cell count `2^precision`.
    pub fn collapse_registers_into(&self, out: &mut [u8]) {
        assert_eq!(
            out.len(),
            self.cells.len(),
            "collapse target length must equal the cell count"
        );
        for (slot, cell) in out.iter_mut().zip(&self.cells) {
            *slot = cell.as_slice().last().map_or(0, |e| e.rho);
        }
    }

    /// Streaming-window maintenance (paper §3.2.2: "periodically entries
    /// (r, t) with t − tcurrent + 1 > ω are removed"): drops pairs too far in
    /// the future of `anchor` to ever fall inside the window again.
    ///
    /// Not used by the reverse-scan IRS algorithm (whose pairs stay valid for
    /// the anchors already processed), but part of the sliding-window sketch.
    pub fn prune_outside(&mut self, anchor: i64, window: i64) {
        let limit = anchor.saturating_add(window);
        let VersionedHll {
            cells, occupied, ..
        } = self;
        for (wi, word) in occupied.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let idx = wi * 64 + bits.trailing_zeros() as usize; // xtask-allow: no-lossy-cast (bit index < 64 fits usize)
                bits &= bits - 1;
                let cell = &mut cells[idx];
                cell.retain(|e| e.time < limit);
                if cell.is_empty() {
                    *word &= !(1u64 << (idx % 64));
                }
            }
        }
    }

    /// Total number of version pairs across all cells.
    pub fn total_entries(&self) -> usize {
        self.cells.iter().map(VersionList::len).sum()
    }

    /// Whether no item was ever retained.
    pub fn is_empty(&self) -> bool {
        self.cells.iter().all(VersionList::is_empty)
    }

    /// Heap bytes held by the sketch (cell headers + spilled version lists),
    /// used by the Table 4 memory accounting. Inline lists cost nothing
    /// beyond the cell array itself.
    pub fn heap_bytes(&self) -> usize {
        self.cells.capacity() * std::mem::size_of::<VersionList>()
            + self
                .cells
                .iter()
                .map(VersionList::heap_bytes)
                .sum::<usize>()
    }

    /// Number of cells whose version list has spilled past the inline
    /// buffer to the heap (memory diagnostics).
    pub fn spilled_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.is_spilled()).count()
    }

    /// Read-only view of a cell's version list (tests, debugging).
    pub fn cell(&self, idx: usize) -> &[VersionEntry] {
        self.cells[idx].as_slice()
    }

    /// The maximal legal ρ for this precision: `64 − k + 1` (a `k`-bit
    /// prefix leaves `64 − k` suffix bits, so the 1-based first-set-bit
    /// position is at most `64 − k + 1`).
    #[inline]
    pub fn max_rho(&self) -> u8 {
        64 - self.precision + 1
    }

    /// Full structural validation of the sketch — the `check_dominance_chain`
    /// invariant checker of the paper-verification layer.
    ///
    /// Verifies that the precision is in range, the cell count is
    /// `2^precision`, and every cell's version list is a proper dominance
    /// chain per [`check_entries`]: strictly increasing time, strictly
    /// increasing ρ, ρ within `[1, 64 − k + 1]`. Any other shape cannot have
    /// been produced by `ApproxAdd`/`ApproxMerge` (Alg. 3) and would silently
    /// bias window estimates.
    pub fn check_dominance_chain(&self) -> Result<(), SketchInvariantError> {
        if !(MIN_PRECISION..=MAX_PRECISION).contains(&self.precision) {
            return Err(SketchInvariantError::Precision(self.precision));
        }
        let expected = 1usize << self.precision;
        if self.cells.len() != expected {
            return Err(SketchInvariantError::CellCount {
                expected,
                got: self.cells.len(),
            });
        }
        let max_rho = self.max_rho();
        for (i, cell) in self.cells.iter().enumerate() {
            check_entries(cell.as_slice(), max_rho)
                .map_err(|error| SketchInvariantError::Cell { cell: i, error })?;
        }
        Ok(())
    }

    /// Verifies the core invariant: every cell is sorted by strictly
    /// increasing time with strictly increasing ρ. Returns the offending
    /// cell index on failure.
    ///
    /// Thin compatibility wrapper over
    /// [`check_dominance_chain`](Self::check_dominance_chain), which also
    /// reports *why* a cell is corrupt. Structural errors that have no cell
    /// index (impossible via this type's own constructors) map to cell 0.
    pub fn check_invariants(&self) -> Result<(), usize> {
        self.check_dominance_chain().map_err(|e| match e {
            SketchInvariantError::Cell { cell, .. } => cell,
            SketchInvariantError::Precision(_) | SketchInvariantError::CellCount { .. } => 0,
        })
    }

    /// Validating constructor from raw cell lists: accepts exactly the
    /// sketches [`check_dominance_chain`](Self::check_dominance_chain) would
    /// pass, and rejects everything else. This is the only way to build a
    /// sketch from externally supplied version lists, so corrupted-by-
    /// construction input cannot enter the system silently.
    pub fn from_cells(
        precision: u8,
        cells: Vec<Vec<VersionEntry>>,
    ) -> Result<Self, SketchInvariantError> {
        let cells: Vec<VersionList> = cells.into_iter().map(VersionList::from_vec).collect();
        let mut occupied = vec![0u64; cells.len().div_ceil(64)];
        for (i, c) in cells.iter().enumerate() {
            if !c.is_empty() {
                Self::mark_occupied(&mut occupied, i);
            }
        }
        let sketch = VersionedHll {
            precision,
            cells,
            occupied,
        };
        sketch.check_dominance_chain()?;
        Ok(sketch)
    }

    /// Direct cell-level insertion for tests that need to script exact
    /// `(cell, ρ, time)` sequences (like the paper's worked examples).
    pub fn insert_raw(&mut self, cell_idx: usize, rho: u8, time: i64) -> bool {
        let changed = Self::insert_entry(&mut self.cells[cell_idx], rho, time);
        if changed {
            Self::mark_occupied(&mut self.occupied, cell_idx);
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(sketch: &VersionedHll, idx: usize) -> Vec<(u8, i64)> {
        sketch.cell(idx).iter().map(|e| (e.rho, e.time)).collect()
    }

    /// The paper's Example 3: reverse-processing the stream e,d,c,a,b,a.
    #[test]
    fn paper_example_3_add_sequence() {
        let mut s = VersionedHll::new(4); // 16 cells; example uses 4, ids 0..3
                                          // (item, ι, ρ, t): processed in reverse order of original stream.
        let updates = [
            (1usize, 3u8, 6i64), // a @ t6
            (3, 1, 5),           // b @ t5
            (1, 3, 4),           // a @ t4 — earlier copy replaces (3, t6)
            (3, 2, 3),           // c @ t3 — dominates (1, t5)
            (2, 2, 2),           // d @ t2
            (2, 1, 1),           // e @ t1 — kept alongside (2, t2)
        ];
        for (cell, rho, t) in updates {
            s.insert_raw(cell, rho, t);
        }
        assert_eq!(entries(&s, 0), vec![]);
        assert_eq!(entries(&s, 1), vec![(3, 4)]);
        assert_eq!(entries(&s, 2), vec![(1, 1), (2, 2)]);
        assert_eq!(entries(&s, 3), vec![(2, 3)]);
        assert!(s.check_invariants().is_ok());
    }

    /// The paper's Example 4: merging two version sketches.
    #[test]
    fn paper_example_4_merge() {
        let mut a = VersionedHll::new(4);
        a.insert_raw(1, 3, 4);
        a.insert_raw(2, 1, 1);
        a.insert_raw(2, 2, 2);
        a.insert_raw(3, 2, 3);

        let mut b = VersionedHll::new(4);
        b.insert_raw(0, 5, 1);
        b.insert_raw(1, 3, 2);
        b.insert_raw(2, 4, 3);
        b.insert_raw(3, 1, 4);

        a.merge_all(&b);
        assert_eq!(entries(&a, 0), vec![(5, 1)]);
        assert_eq!(entries(&a, 1), vec![(3, 2)]); // (3,t2) dominates (3,t4)
        assert_eq!(entries(&a, 2), vec![(1, 1), (2, 2), (4, 3)]);
        assert_eq!(entries(&a, 3), vec![(2, 3)]); // (2,t3) dominates (1,t4)
        assert!(a.check_invariants().is_ok());
    }

    #[test]
    fn dominated_insert_is_rejected() {
        let mut s = VersionedHll::new(4);
        assert!(s.insert_raw(0, 5, 10));
        // Same ρ, later time: dominated.
        assert!(!s.insert_raw(0, 5, 12));
        // Smaller ρ, later time: dominated.
        assert!(!s.insert_raw(0, 3, 11));
        // Same time, smaller ρ: dominated.
        assert!(!s.insert_raw(0, 4, 10));
        assert_eq!(entries(&s, 0), vec![(5, 10)]);
    }

    #[test]
    fn newcomer_evicts_dominated_entries() {
        let mut s = VersionedHll::new(4);
        s.insert_raw(0, 1, 10);
        s.insert_raw(0, 2, 20);
        s.insert_raw(0, 7, 30);
        // (4, 5) dominates (1,10) and (2,20) but not (7,30).
        assert!(s.insert_raw(0, 4, 5));
        assert_eq!(entries(&s, 0), vec![(4, 5), (7, 30)]);
        // Same time, larger ρ evicts the equal-time entry.
        assert!(s.insert_raw(0, 5, 5));
        assert_eq!(entries(&s, 0), vec![(5, 5), (7, 30)]);
    }

    #[test]
    fn merge_respects_window_filter() {
        let mut dst = VersionedHll::new(4);
        let mut src = VersionedHll::new(4);
        src.insert_raw(0, 2, 10);
        src.insert_raw(0, 4, 50);
        // anchor 8, window 5 → keep times < 13 only.
        dst.merge_from(&src, 8, 5);
        assert_eq!(entries(&dst, 0), vec![(2, 10)]);
        // Unbounded keeps everything.
        let mut dst2 = VersionedHll::new(4);
        dst2.merge_all(&src);
        assert_eq!(entries(&dst2, 0), vec![(2, 10), (4, 50)]);
    }

    #[test]
    fn estimate_counts_distinct_items() {
        let mut s = VersionedHll::new(10);
        let n = 20_000u64;
        for v in 0..n {
            s.add_u64(v, (v % 100) as i64);
        }
        let est = s.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.15, "relative error {rel}");
        // Duplicates at later times change nothing.
        let snapshot = s.clone();
        for v in 0..n {
            s.add_u64(v, 1_000);
        }
        assert_eq!(s, snapshot);
    }

    #[test]
    fn estimate_matches_collapsed_hll() {
        let mut s = VersionedHll::new(8);
        for v in 0..5_000u64 {
            s.add_u64(v, (v as i64) % 37);
        }
        let hll = s.to_hyperloglog();
        assert_eq!(s.estimate(), hll.estimate());
    }

    #[test]
    fn estimate_window_sees_only_in_window_items() {
        // Reverse-time discipline: the late batch (times 100..110) is
        // inserted first, queries anchor at the current frontier.
        let mut s = VersionedHll::new(10);
        for v in 1000..2000u64 {
            s.add_u64(v, 100 + (v % 10) as i64);
        }
        let late = s.estimate_window(100, 50);
        assert!((late - 1000.0).abs() / 1000.0 < 0.2, "late {late}");

        for v in 0..1000u64 {
            s.add_u64(v, (v % 10) as i64);
        }
        // Window [0, 50) sees only the early batch.
        let early = s.estimate_window(0, 50);
        assert!((early - 1000.0).abs() / 1000.0 < 0.2, "early {early}");
        // A window covering everything sees both batches: eviction only ever
        // removes a pair in favour of a dominating pair inside any window
        // that contained it, so per-cell maxima are preserved.
        let all = s.estimate_window(0, 1000);
        assert!((all - 2000.0).abs() / 2000.0 < 0.2, "all {all}");
        assert_eq!(s.estimate_window(500, 10), 0.0);
    }

    #[test]
    fn prune_outside_drops_future_entries() {
        let mut s = VersionedHll::new(4);
        s.insert_raw(0, 1, 5);
        s.insert_raw(0, 3, 30);
        s.prune_outside(0, 10); // keep times < 10
        assert_eq!(entries(&s, 0), vec![(1, 5)]);
    }

    #[test]
    fn empty_sketch_properties() {
        let s = VersionedHll::new(6);
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
        assert_eq!(s.total_entries(), 0);
        assert!(s.check_invariants().is_ok());
        assert!(s.heap_bytes() >= 64 * std::mem::size_of::<Vec<VersionEntry>>());
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_precision_mismatch_panics() {
        let mut a = VersionedHll::new(4);
        let b = VersionedHll::new(5);
        a.merge_all(&b);
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = VersionedHll::new(6);
        let mut b = VersionedHll::new(6);
        for v in 0..200u64 {
            b.add_u64(v, (v % 40) as i64);
        }
        a.merge_all(&b);
        let once = a.clone();
        a.merge_all(&b);
        assert_eq!(a, once);
    }

    #[test]
    fn check_entries_accepts_chains_and_names_the_offender() {
        let good = [
            VersionEntry { time: 1, rho: 2 },
            VersionEntry { time: 3, rho: 5 },
            VersionEntry { time: 9, rho: 6 },
        ];
        assert_eq!(check_entries(&good, 61), Ok(()));
        assert_eq!(check_entries(&[], 61), Ok(()));

        let equal_time = [
            VersionEntry { time: 3, rho: 2 },
            VersionEntry { time: 3, rho: 5 },
        ];
        assert_eq!(
            check_entries(&equal_time, 61),
            Err(EntryError::Order { index: 1 })
        );

        let non_increasing_rho = [
            VersionEntry { time: 1, rho: 5 },
            VersionEntry { time: 2, rho: 5 },
        ];
        assert_eq!(
            check_entries(&non_increasing_rho, 61),
            Err(EntryError::Order { index: 1 })
        );

        let zero_rho = [VersionEntry { time: 1, rho: 0 }];
        assert!(matches!(
            check_entries(&zero_rho, 61),
            Err(EntryError::RhoRange {
                index: 0,
                rho: 0,
                ..
            })
        ));
        let big_rho = [VersionEntry { time: 1, rho: 62 }];
        assert!(matches!(
            check_entries(&big_rho, 61),
            Err(EntryError::RhoRange {
                index: 0,
                rho: 62,
                ..
            })
        ));
    }

    #[test]
    fn from_cells_rejects_corruption() {
        // A valid two-cell-populated sketch round-trips.
        let mut cells = vec![Vec::new(); 16];
        cells[2] = vec![
            VersionEntry { time: 1, rho: 1 },
            VersionEntry { time: 4, rho: 3 },
        ];
        let s = VersionedHll::from_cells(4, cells.clone()).unwrap();
        assert_eq!(s.cell(2).len(), 2);
        assert!(s.check_dominance_chain().is_ok());

        // Swapped order in one cell is rejected, naming the cell.
        cells[9] = vec![
            VersionEntry { time: 7, rho: 4 },
            VersionEntry { time: 2, rho: 6 },
        ];
        let err = VersionedHll::from_cells(4, cells).unwrap_err();
        assert_eq!(
            err,
            SketchInvariantError::Cell {
                cell: 9,
                error: EntryError::Order { index: 1 }
            }
        );
        assert!(err.to_string().contains("cell 9"));

        // Wrong cell count and precision are structural errors.
        assert_eq!(
            VersionedHll::from_cells(4, vec![Vec::new(); 8]).unwrap_err(),
            SketchInvariantError::CellCount {
                expected: 16,
                got: 8
            }
        );
        assert_eq!(
            VersionedHll::from_cells(3, vec![Vec::new(); 8]).unwrap_err(),
            SketchInvariantError::Precision(3)
        );
    }

    #[test]
    fn random_streams_keep_the_dominance_chain() {
        let mut s = VersionedHll::new(6);
        // Deterministic pseudo-random insertions, including repeats and
        // decreasing/increasing time mixes.
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let time = (x % 1_000) as i64;
            s.add_u64(x, time);
            debug_assert!(s.check_dominance_chain().is_ok());
        }
        assert!(s.check_dominance_chain().is_ok());
        assert_eq!(s.check_invariants(), Ok(()));
    }

    #[test]
    fn total_entries_and_heap_bytes_grow() {
        let mut s = VersionedHll::new(4);
        let before = s.heap_bytes();
        // Decreasing times with increasing rho stack up (none dominates).
        for i in 0..10u8 {
            s.insert_raw(0, 10 - i, i64::from(i));
        }
        // With decreasing rho over increasing... here times 0..9 and rho 10..1:
        // each later (smaller-rho, larger-time) insert is dominated.
        assert_eq!(s.total_entries(), 1);
        for i in 0..10u8 {
            s.insert_raw(1, i + 1, -i64::from(i));
        }
        // Each newcomer (earlier time, larger rho) dominates the previous.
        assert_eq!(s.cell(1).len(), 1);
        s.insert_raw(2, 1, 0);
        s.insert_raw(2, 2, 1);
        s.insert_raw(2, 3, 2);
        assert_eq!(s.cell(2).len(), 3);
        // Three entries still fit the inline buffer: no heap growth yet.
        assert_eq!(s.spilled_cells(), 0);
        assert_eq!(s.heap_bytes(), before);
        // A fourth chain entry spills the cell to the heap.
        s.insert_raw(2, 4, 3);
        assert_eq!(s.cell(2).len(), 4);
        assert_eq!(s.spilled_cells(), 1);
        assert!(s.heap_bytes() > before);
    }

    #[test]
    fn inline_buffer_spills_and_stays_correct() {
        let mut list_like = VersionedHll::new(4);
        // Build a long chain in one cell: times 0..8 with rho 1..=8.
        for i in 0..8u8 {
            assert!(list_like.insert_raw(5, i + 1, i64::from(i)));
        }
        assert_eq!(
            entries(&list_like, 5),
            (0..8).map(|i| (i + 1, i64::from(i))).collect::<Vec<_>>()
        );
        assert!(list_like.check_dominance_chain().is_ok());
        // A dominating newcomer prunes the spilled list back down.
        assert!(list_like.insert_raw(5, 7, -1));
        assert_eq!(entries(&list_like, 5), vec![(7, -1), (8, 7)]);
        assert!(list_like.check_dominance_chain().is_ok());
    }

    #[test]
    fn equality_ignores_spill_representation() {
        // Same logical chain, one built inline, one via a spilled list that
        // was pruned back under the inline capacity.
        let mut a = VersionedHll::new(4);
        a.insert_raw(0, 7, -1);
        a.insert_raw(0, 8, 7);
        let mut b = VersionedHll::new(4);
        for i in 0..8u8 {
            b.insert_raw(0, i + 1, i64::from(i));
        }
        b.insert_raw(0, 7, -1);
        assert_eq!(a, b);
        assert_eq!(b.spilled_cells(), 1); // representation differs…
        assert_eq!(a.spilled_cells(), 0); // …but equality is logical
    }

    /// The linear dominance merge (scratch path) must produce exactly the
    /// chain repeated `ApproxAdd` insertions would: merge results are the
    /// canonical non-dominated set either way.
    #[test]
    fn merge_with_scratch_matches_insert_loop() {
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..50 {
            let mut a = VersionedHll::new(4);
            let mut b = VersionedHll::new(4);
            for _ in 0..30 {
                let r = next();
                a.add_u64(r, (r % 64) as i64);
                let r2 = next();
                b.add_u64(r2, (r2 % 64) as i64);
            }
            let anchor = (round % 32) as i64;
            let window = 1 + (round % 40) as i64;
            // Reference: per-entry insert loop over the window prefix.
            let mut reference = a.clone();
            for cell in 0..b.num_cells() {
                let limit = anchor + window;
                for e in b.cell(cell).iter().filter(|e| e.time < limit) {
                    reference.insert_raw(cell, e.rho, e.time);
                }
            }
            let mut scratch = Vec::new();
            a.merge_from_with(&b, anchor, window, &mut scratch);
            assert_eq!(a, reference, "round {round}");
            assert!(a.check_dominance_chain().is_ok());
        }
    }

    /// The occupancy bitmap mirrors cell non-emptiness through every
    /// mutation path: insert, merge, prune, and the validating constructor.
    #[test]
    fn occupancy_bitmap_tracks_non_empty_cells() {
        fn check(s: &VersionedHll) {
            for (i, c) in s.cells.iter().enumerate() {
                let bit = (s.occupied[i / 64] >> (i % 64)) & 1 == 1;
                assert_eq!(bit, !c.is_empty(), "cell {i}");
            }
        }
        let mut s = VersionedHll::new(4);
        assert!(s.occupied.iter().all(|&w| w == 0));
        s.insert_raw(3, 2, 5);
        s.insert_raw(9, 1, 2);
        check(&s);

        // Merging into an empty sketch must set bits for the copied cells.
        let mut t = VersionedHll::new(4);
        t.merge_from(&s, 0, 100);
        check(&t);
        assert_eq!(t, s);

        // Pruning a cell to empty must clear its bit.
        t.prune_outside(0, 1);
        check(&t);
        assert!(t.is_empty());

        // The validating constructor rebuilds the bitmap from the lists.
        let raw: Vec<Vec<VersionEntry>> = (0..16)
            .map(|i| {
                if i == 3 {
                    vec![VersionEntry { time: 5, rho: 2 }]
                } else {
                    Vec::new()
                }
            })
            .collect();
        let u = VersionedHll::from_cells(4, raw).unwrap();
        check(&u);
        assert_eq!(u.total_entries(), 1);
    }
}
