//! The versioned HyperLogLog (vHLL) sketch — §3.2.2 of the paper.
//!
//! A plain HyperLogLog register keeps only the maximum ρ ever seen, which is
//! wrong for the IRS computation: when a sketch is merged into a
//! *predecessor* node's sketch at an earlier anchor time `t`, only the items
//! whose information channel ends within `[t, t + ω − 1]` may contribute. The
//! vHLL therefore keeps, per register, a **version list** of `(ρ, time)`
//! pairs under dominance pruning:
//!
//! > `(ρ′, t′)` *dominates* `(ρ, t)` iff `t′ ≤ t` and `ρ′ ≥ ρ`.
//!
//! A dominated pair can never be the in-window maximum for any anchor, so it
//! is dropped. The surviving list, sorted by **strictly increasing time, has
//! strictly increasing ρ** — the core invariant of this module (checked by
//! [`VersionedHll::check_invariants`] and property tests). Lemma 4 of the
//! paper shows the expected list length is `O(log ω)`.
//!
//! The sketch supports:
//!
//! * [`add_hash`](VersionedHll::add_hash) — insert an item observed at a time,
//! * [`merge_from`](VersionedHll::merge_from) — the window-filtered merge used
//!   when processing an interaction `(u, v, t)` in reverse time order
//!   (`φ(u) ← φ(u) ∪ {entries of φ(v) ending within ω of t}`),
//! * [`estimate`](VersionedHll::estimate) — cardinality of *all* items ever
//!   retained (the size of the node's IRS),
//! * [`estimate_window`](VersionedHll::estimate_window) — sliding-window
//!   cardinality at an arbitrary anchor (the sliding-window HLL view of
//!   Kumar et al., ECML-PKDD 2015, that inspired the sketch),
//! * [`to_hyperloglog`](VersionedHll::to_hyperloglog) — collapse to a plain
//!   HLL of per-cell maxima, enabling O(β) influence-oracle unions.

use crate::hash;
use crate::hyperloglog::split_hash;
use crate::hyperloglog::{estimate_from_registers, HyperLogLog, MAX_PRECISION, MIN_PRECISION};
use std::fmt;

/// Why a single version list fails the dominance-chain invariant.
///
/// Produced by [`check_entries`] (and wrapped with its cell index in
/// [`SketchInvariantError::Cell`] by
/// [`VersionedHll::check_dominance_chain`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryError {
    /// Entries `index − 1` and `index` are not in strictly increasing
    /// `(time, ρ)` order — one of them dominates, or should have evicted,
    /// the other (paper Alg. 3).
    Order {
        /// Index of the second entry of the offending adjacent pair.
        index: usize,
    },
    /// An entry's ρ lies outside `[1, 64 − k + 1]` — impossible for any
    /// `k`-bit-prefix hash split, so the list was not produced by
    /// `ApproxAdd`.
    RhoRange {
        /// Index of the offending entry.
        index: usize,
        /// The out-of-range ρ value.
        rho: u8,
        /// The maximal legal ρ (`64 − precision + 1`).
        max_rho: u8,
    },
}

impl fmt::Display for EntryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryError::Order { index } => write!(
                f,
                "entries {} and {index} violate the dominance chain \
                 (time and \u{3c1} must both strictly increase)",
                index.wrapping_sub(1)
            ),
            EntryError::RhoRange {
                index,
                rho,
                max_rho,
            } => write!(
                f,
                "entry {index} has \u{3c1} = {rho} outside [1, {max_rho}]"
            ),
        }
    }
}

/// Structural corruption detected in a [`VersionedHll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchInvariantError {
    /// Precision outside `[MIN_PRECISION, MAX_PRECISION]`.
    Precision(u8),
    /// The cell vector's length is not `2^precision`.
    CellCount {
        /// Expected `2^precision`.
        expected: usize,
        /// Actual number of cells supplied.
        got: usize,
    },
    /// A cell's version list fails [`check_entries`].
    Cell {
        /// Index of the corrupt cell.
        cell: usize,
        /// What is wrong with its version list.
        error: EntryError,
    },
}

impl fmt::Display for SketchInvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchInvariantError::Precision(p) => write!(
                f,
                "precision {p} outside [{MIN_PRECISION}, {MAX_PRECISION}]"
            ),
            SketchInvariantError::CellCount { expected, got } => {
                write!(f, "expected {expected} cells, got {got}")
            }
            SketchInvariantError::Cell { cell, error } => {
                write!(f, "cell {cell}: {error}")
            }
        }
    }
}

impl std::error::Error for SketchInvariantError {}

/// Validates one version list against the vHLL core invariant: entries
/// sorted by strictly increasing time **and** strictly increasing ρ (the
/// shape dominance pruning leaves behind, §3.2.2 / Alg. 3), with every ρ in
/// `[1, max_rho]`.
pub fn check_entries(entries: &[VersionEntry], max_rho: u8) -> Result<(), EntryError> {
    for (i, e) in entries.iter().enumerate() {
        if e.rho == 0 || e.rho > max_rho {
            return Err(EntryError::RhoRange {
                index: i,
                rho: e.rho,
                max_rho,
            });
        }
        if i > 0 {
            let p = entries[i - 1];
            if !(p.time < e.time && p.rho < e.rho) {
                return Err(EntryError::Order { index: i });
            }
        }
    }
    Ok(())
}

/// One `(ρ, time)` version pair in a register's list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VersionEntry {
    /// Observation time (for IRS: the channel's earliest end time `λ`).
    pub time: i64,
    /// The ρ value (1-based least-significant-set-bit position).
    pub rho: u8,
}

/// A versioned HyperLogLog sketch with `β = 2^precision` registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionedHll {
    precision: u8,
    cells: Vec<Vec<VersionEntry>>,
}

impl VersionedHll {
    /// Creates an empty sketch with `β = 2^precision` cells.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is outside `[4, 16]`.
    pub fn new(precision: u8) -> Self {
        assert!(
            (MIN_PRECISION..=MAX_PRECISION).contains(&precision),
            "precision must be in [{MIN_PRECISION}, {MAX_PRECISION}], got {precision}"
        );
        VersionedHll {
            precision,
            cells: vec![Vec::new(); 1 << precision],
        }
    }

    /// The precision `k` (so `β = 2^k`).
    #[inline]
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Number of cells `β`.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Adds an already-hashed item observed at `time`.
    ///
    /// Returns `true` if the sketch changed (the pair was not dominated).
    #[inline]
    pub fn add_hash(&mut self, h: u64, time: i64) -> bool {
        let (idx, rho) = split_hash(h, self.precision);
        Self::insert_entry(&mut self.cells[idx], rho, time)
    }

    /// Hashes and adds a `u64` item observed at `time`.
    #[inline]
    pub fn add_u64(&mut self, item: u64, time: i64) -> bool {
        self.add_hash(hash::hash64(item), time)
    }

    /// The `ApproxAdd` routine (paper Alg. 3): inserts `(ρ, time)` into a
    /// cell list unless dominated; removes every pair the new one dominates.
    ///
    /// The list is kept sorted by strictly increasing time with strictly
    /// increasing ρ, so both checks are binary searches plus a bounded scan.
    fn insert_entry(cell: &mut Vec<VersionEntry>, rho: u8, time: i64) -> bool {
        // Dominated? Some (ρ′, t′) with t′ ≤ time has ρ′ ≥ rho. Since ρ grows
        // with t, the strongest candidate is the last entry with t′ ≤ time.
        let pos_le = cell.partition_point(|e| e.time <= time);
        if pos_le > 0 && cell[pos_le - 1].rho >= rho {
            return false;
        }
        // Remove pairs the newcomer dominates: t′ ≥ time and ρ′ ≤ rho — a
        // contiguous run starting at the first entry with t′ ≥ time.
        let pos_lt = cell.partition_point(|e| e.time < time);
        let mut end = pos_lt;
        while end < cell.len() && cell[end].rho <= rho {
            end += 1;
        }
        cell.splice(pos_lt..end, std::iter::once(VersionEntry { time, rho }));
        true
    }

    /// The `ApproxMerge` routine (paper Alg. 3): folds `other` into `self`,
    /// keeping only pairs whose time lies within the window anchored at
    /// `anchor`, i.e. `e.time − anchor < window` (equivalently
    /// `e.time − anchor + 1 ≤ ω`).
    ///
    /// In the IRS reverse scan, `anchor` is the current interaction's
    /// timestamp and `other` is the destination node's sketch.
    ///
    /// # Panics
    ///
    /// Panics on precision mismatch.
    pub fn merge_from(&mut self, other: &VersionedHll, anchor: i64, window: i64) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge vHLL sketches of different precision"
        );
        let limit = anchor.saturating_add(window);
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            // Times are increasing, so the in-window pairs form a prefix.
            let take = theirs.partition_point(|e| e.time < limit);
            for e in &theirs[..take] {
                Self::insert_entry(mine, e.rho, e.time);
            }
        }
    }

    /// Unfiltered union of two version sketches (all pairs merged under
    /// dominance). Equivalent to `merge_from` with an unbounded window and
    /// an anchor at −∞.
    pub fn merge_all(&mut self, other: &VersionedHll) {
        self.merge_from(other, i64::MIN / 4, i64::MAX / 2);
    }

    /// Estimates the number of distinct items ever retained: the per-cell
    /// maximum ρ is the **last** list entry (the invariant makes it so), and
    /// the plain HLL estimator does the rest.
    pub fn estimate(&self) -> f64 {
        let registers: Vec<u8> = self
            .cells
            .iter()
            .map(|c| c.last().map_or(0, |e| e.rho))
            .collect();
        estimate_from_registers(&registers)
    }

    /// Sliding-window estimate: the number of distinct items observed within
    /// `[anchor, anchor + window − 1]`.
    ///
    /// # Contract
    ///
    /// Like the paper's sliding-window sketch, this is sound under the
    /// **reverse-time discipline**: insertions arrive in non-increasing time
    /// order and the query `anchor` is at or before the earliest insertion
    /// time processed so far. Querying a *later* anchor after earlier-time
    /// insertions may undercount, because dominance pruning has already
    /// discarded pairs that only such out-of-discipline queries would need.
    /// ([`estimate`](Self::estimate), by contrast, is always exact w.r.t. the
    /// retained maxima: a dominating pair has ρ′ ≥ ρ, so per-cell maxima are
    /// unaffected by pruning.)
    pub fn estimate_window(&self, anchor: i64, window: i64) -> f64 {
        let limit = anchor.saturating_add(window);
        let registers: Vec<u8> = self
            .cells
            .iter()
            .map(|c| {
                let lo = c.partition_point(|e| e.time < anchor);
                let hi = c.partition_point(|e| e.time < limit);
                if hi > lo {
                    c[hi - 1].rho // ρ increases with time: last in range is max
                } else {
                    0
                }
            })
            .collect();
        estimate_from_registers(&registers)
    }

    /// Collapses to a plain [`HyperLogLog`] of per-cell maxima. The result
    /// estimates the same cardinality as [`estimate`](Self::estimate) and can
    /// be unioned in `O(β)` — the influence-oracle fast path (paper §4.1).
    pub fn to_hyperloglog(&self) -> HyperLogLog {
        HyperLogLog::from_registers(
            self.cells
                .iter()
                .map(|c| c.last().map_or(0, |e| e.rho))
                .collect(),
        )
    }

    /// Streaming-window maintenance (paper §3.2.2: "periodically entries
    /// (r, t) with t − tcurrent + 1 > ω are removed"): drops pairs too far in
    /// the future of `anchor` to ever fall inside the window again.
    ///
    /// Not used by the reverse-scan IRS algorithm (whose pairs stay valid for
    /// the anchors already processed), but part of the sliding-window sketch.
    pub fn prune_outside(&mut self, anchor: i64, window: i64) {
        let limit = anchor.saturating_add(window);
        for cell in &mut self.cells {
            cell.retain(|e| e.time < limit);
        }
    }

    /// Total number of version pairs across all cells.
    pub fn total_entries(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }

    /// Whether no item was ever retained.
    pub fn is_empty(&self) -> bool {
        self.cells.iter().all(Vec::is_empty)
    }

    /// Heap bytes held by the sketch (cell headers + version pairs), used by
    /// the Table 4 memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.cells.capacity() * std::mem::size_of::<Vec<VersionEntry>>()
            + self
                .cells
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<VersionEntry>())
                .sum::<usize>()
    }

    /// Read-only view of a cell's version list (tests, debugging).
    pub fn cell(&self, idx: usize) -> &[VersionEntry] {
        &self.cells[idx]
    }

    /// The maximal legal ρ for this precision: `64 − k + 1` (a `k`-bit
    /// prefix leaves `64 − k` suffix bits, so the 1-based first-set-bit
    /// position is at most `64 − k + 1`).
    #[inline]
    pub fn max_rho(&self) -> u8 {
        64 - self.precision + 1
    }

    /// Full structural validation of the sketch — the `check_dominance_chain`
    /// invariant checker of the paper-verification layer.
    ///
    /// Verifies that the precision is in range, the cell count is
    /// `2^precision`, and every cell's version list is a proper dominance
    /// chain per [`check_entries`]: strictly increasing time, strictly
    /// increasing ρ, ρ within `[1, 64 − k + 1]`. Any other shape cannot have
    /// been produced by `ApproxAdd`/`ApproxMerge` (Alg. 3) and would silently
    /// bias window estimates.
    pub fn check_dominance_chain(&self) -> Result<(), SketchInvariantError> {
        if !(MIN_PRECISION..=MAX_PRECISION).contains(&self.precision) {
            return Err(SketchInvariantError::Precision(self.precision));
        }
        let expected = 1usize << self.precision;
        if self.cells.len() != expected {
            return Err(SketchInvariantError::CellCount {
                expected,
                got: self.cells.len(),
            });
        }
        let max_rho = self.max_rho();
        for (i, cell) in self.cells.iter().enumerate() {
            check_entries(cell, max_rho)
                .map_err(|error| SketchInvariantError::Cell { cell: i, error })?;
        }
        Ok(())
    }

    /// Verifies the core invariant: every cell is sorted by strictly
    /// increasing time with strictly increasing ρ. Returns the offending
    /// cell index on failure.
    ///
    /// Thin compatibility wrapper over
    /// [`check_dominance_chain`](Self::check_dominance_chain), which also
    /// reports *why* a cell is corrupt. Structural errors that have no cell
    /// index (impossible via this type's own constructors) map to cell 0.
    pub fn check_invariants(&self) -> Result<(), usize> {
        self.check_dominance_chain().map_err(|e| match e {
            SketchInvariantError::Cell { cell, .. } => cell,
            SketchInvariantError::Precision(_) | SketchInvariantError::CellCount { .. } => 0,
        })
    }

    /// Validating constructor from raw cell lists: accepts exactly the
    /// sketches [`check_dominance_chain`](Self::check_dominance_chain) would
    /// pass, and rejects everything else. This is the only way to build a
    /// sketch from externally supplied version lists, so corrupted-by-
    /// construction input cannot enter the system silently.
    pub fn from_cells(
        precision: u8,
        cells: Vec<Vec<VersionEntry>>,
    ) -> Result<Self, SketchInvariantError> {
        let sketch = VersionedHll { precision, cells };
        sketch.check_dominance_chain()?;
        Ok(sketch)
    }

    /// Direct cell-level insertion for tests that need to script exact
    /// `(cell, ρ, time)` sequences (like the paper's worked examples).
    pub fn insert_raw(&mut self, cell_idx: usize, rho: u8, time: i64) -> bool {
        Self::insert_entry(&mut self.cells[cell_idx], rho, time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(sketch: &VersionedHll, idx: usize) -> Vec<(u8, i64)> {
        sketch.cell(idx).iter().map(|e| (e.rho, e.time)).collect()
    }

    /// The paper's Example 3: reverse-processing the stream e,d,c,a,b,a.
    #[test]
    fn paper_example_3_add_sequence() {
        let mut s = VersionedHll::new(4); // 16 cells; example uses 4, ids 0..3
                                          // (item, ι, ρ, t): processed in reverse order of original stream.
        let updates = [
            (1usize, 3u8, 6i64), // a @ t6
            (3, 1, 5),           // b @ t5
            (1, 3, 4),           // a @ t4 — earlier copy replaces (3, t6)
            (3, 2, 3),           // c @ t3 — dominates (1, t5)
            (2, 2, 2),           // d @ t2
            (2, 1, 1),           // e @ t1 — kept alongside (2, t2)
        ];
        for (cell, rho, t) in updates {
            s.insert_raw(cell, rho, t);
        }
        assert_eq!(entries(&s, 0), vec![]);
        assert_eq!(entries(&s, 1), vec![(3, 4)]);
        assert_eq!(entries(&s, 2), vec![(1, 1), (2, 2)]);
        assert_eq!(entries(&s, 3), vec![(2, 3)]);
        assert!(s.check_invariants().is_ok());
    }

    /// The paper's Example 4: merging two version sketches.
    #[test]
    fn paper_example_4_merge() {
        let mut a = VersionedHll::new(4);
        a.insert_raw(1, 3, 4);
        a.insert_raw(2, 1, 1);
        a.insert_raw(2, 2, 2);
        a.insert_raw(3, 2, 3);

        let mut b = VersionedHll::new(4);
        b.insert_raw(0, 5, 1);
        b.insert_raw(1, 3, 2);
        b.insert_raw(2, 4, 3);
        b.insert_raw(3, 1, 4);

        a.merge_all(&b);
        assert_eq!(entries(&a, 0), vec![(5, 1)]);
        assert_eq!(entries(&a, 1), vec![(3, 2)]); // (3,t2) dominates (3,t4)
        assert_eq!(entries(&a, 2), vec![(1, 1), (2, 2), (4, 3)]);
        assert_eq!(entries(&a, 3), vec![(2, 3)]); // (2,t3) dominates (1,t4)
        assert!(a.check_invariants().is_ok());
    }

    #[test]
    fn dominated_insert_is_rejected() {
        let mut s = VersionedHll::new(4);
        assert!(s.insert_raw(0, 5, 10));
        // Same ρ, later time: dominated.
        assert!(!s.insert_raw(0, 5, 12));
        // Smaller ρ, later time: dominated.
        assert!(!s.insert_raw(0, 3, 11));
        // Same time, smaller ρ: dominated.
        assert!(!s.insert_raw(0, 4, 10));
        assert_eq!(entries(&s, 0), vec![(5, 10)]);
    }

    #[test]
    fn newcomer_evicts_dominated_entries() {
        let mut s = VersionedHll::new(4);
        s.insert_raw(0, 1, 10);
        s.insert_raw(0, 2, 20);
        s.insert_raw(0, 7, 30);
        // (4, 5) dominates (1,10) and (2,20) but not (7,30).
        assert!(s.insert_raw(0, 4, 5));
        assert_eq!(entries(&s, 0), vec![(4, 5), (7, 30)]);
        // Same time, larger ρ evicts the equal-time entry.
        assert!(s.insert_raw(0, 5, 5));
        assert_eq!(entries(&s, 0), vec![(5, 5), (7, 30)]);
    }

    #[test]
    fn merge_respects_window_filter() {
        let mut dst = VersionedHll::new(4);
        let mut src = VersionedHll::new(4);
        src.insert_raw(0, 2, 10);
        src.insert_raw(0, 4, 50);
        // anchor 8, window 5 → keep times < 13 only.
        dst.merge_from(&src, 8, 5);
        assert_eq!(entries(&dst, 0), vec![(2, 10)]);
        // Unbounded keeps everything.
        let mut dst2 = VersionedHll::new(4);
        dst2.merge_all(&src);
        assert_eq!(entries(&dst2, 0), vec![(2, 10), (4, 50)]);
    }

    #[test]
    fn estimate_counts_distinct_items() {
        let mut s = VersionedHll::new(10);
        let n = 20_000u64;
        for v in 0..n {
            s.add_u64(v, (v % 100) as i64);
        }
        let est = s.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.15, "relative error {rel}");
        // Duplicates at later times change nothing.
        let snapshot = s.clone();
        for v in 0..n {
            s.add_u64(v, 1_000);
        }
        assert_eq!(s, snapshot);
    }

    #[test]
    fn estimate_matches_collapsed_hll() {
        let mut s = VersionedHll::new(8);
        for v in 0..5_000u64 {
            s.add_u64(v, (v as i64) % 37);
        }
        let hll = s.to_hyperloglog();
        assert_eq!(s.estimate(), hll.estimate());
    }

    #[test]
    fn estimate_window_sees_only_in_window_items() {
        // Reverse-time discipline: the late batch (times 100..110) is
        // inserted first, queries anchor at the current frontier.
        let mut s = VersionedHll::new(10);
        for v in 1000..2000u64 {
            s.add_u64(v, 100 + (v % 10) as i64);
        }
        let late = s.estimate_window(100, 50);
        assert!((late - 1000.0).abs() / 1000.0 < 0.2, "late {late}");

        for v in 0..1000u64 {
            s.add_u64(v, (v % 10) as i64);
        }
        // Window [0, 50) sees only the early batch.
        let early = s.estimate_window(0, 50);
        assert!((early - 1000.0).abs() / 1000.0 < 0.2, "early {early}");
        // A window covering everything sees both batches: eviction only ever
        // removes a pair in favour of a dominating pair inside any window
        // that contained it, so per-cell maxima are preserved.
        let all = s.estimate_window(0, 1000);
        assert!((all - 2000.0).abs() / 2000.0 < 0.2, "all {all}");
        assert_eq!(s.estimate_window(500, 10), 0.0);
    }

    #[test]
    fn prune_outside_drops_future_entries() {
        let mut s = VersionedHll::new(4);
        s.insert_raw(0, 1, 5);
        s.insert_raw(0, 3, 30);
        s.prune_outside(0, 10); // keep times < 10
        assert_eq!(entries(&s, 0), vec![(1, 5)]);
    }

    #[test]
    fn empty_sketch_properties() {
        let s = VersionedHll::new(6);
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
        assert_eq!(s.total_entries(), 0);
        assert!(s.check_invariants().is_ok());
        assert!(s.heap_bytes() >= 64 * std::mem::size_of::<Vec<VersionEntry>>());
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_precision_mismatch_panics() {
        let mut a = VersionedHll::new(4);
        let b = VersionedHll::new(5);
        a.merge_all(&b);
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = VersionedHll::new(6);
        let mut b = VersionedHll::new(6);
        for v in 0..200u64 {
            b.add_u64(v, (v % 40) as i64);
        }
        a.merge_all(&b);
        let once = a.clone();
        a.merge_all(&b);
        assert_eq!(a, once);
    }

    #[test]
    fn check_entries_accepts_chains_and_names_the_offender() {
        let good = [
            VersionEntry { time: 1, rho: 2 },
            VersionEntry { time: 3, rho: 5 },
            VersionEntry { time: 9, rho: 6 },
        ];
        assert_eq!(check_entries(&good, 61), Ok(()));
        assert_eq!(check_entries(&[], 61), Ok(()));

        let equal_time = [
            VersionEntry { time: 3, rho: 2 },
            VersionEntry { time: 3, rho: 5 },
        ];
        assert_eq!(
            check_entries(&equal_time, 61),
            Err(EntryError::Order { index: 1 })
        );

        let non_increasing_rho = [
            VersionEntry { time: 1, rho: 5 },
            VersionEntry { time: 2, rho: 5 },
        ];
        assert_eq!(
            check_entries(&non_increasing_rho, 61),
            Err(EntryError::Order { index: 1 })
        );

        let zero_rho = [VersionEntry { time: 1, rho: 0 }];
        assert!(matches!(
            check_entries(&zero_rho, 61),
            Err(EntryError::RhoRange {
                index: 0,
                rho: 0,
                ..
            })
        ));
        let big_rho = [VersionEntry { time: 1, rho: 62 }];
        assert!(matches!(
            check_entries(&big_rho, 61),
            Err(EntryError::RhoRange {
                index: 0,
                rho: 62,
                ..
            })
        ));
    }

    #[test]
    fn from_cells_rejects_corruption() {
        // A valid two-cell-populated sketch round-trips.
        let mut cells = vec![Vec::new(); 16];
        cells[2] = vec![
            VersionEntry { time: 1, rho: 1 },
            VersionEntry { time: 4, rho: 3 },
        ];
        let s = VersionedHll::from_cells(4, cells.clone()).unwrap();
        assert_eq!(s.cell(2).len(), 2);
        assert!(s.check_dominance_chain().is_ok());

        // Swapped order in one cell is rejected, naming the cell.
        cells[9] = vec![
            VersionEntry { time: 7, rho: 4 },
            VersionEntry { time: 2, rho: 6 },
        ];
        let err = VersionedHll::from_cells(4, cells).unwrap_err();
        assert_eq!(
            err,
            SketchInvariantError::Cell {
                cell: 9,
                error: EntryError::Order { index: 1 }
            }
        );
        assert!(err.to_string().contains("cell 9"));

        // Wrong cell count and precision are structural errors.
        assert_eq!(
            VersionedHll::from_cells(4, vec![Vec::new(); 8]).unwrap_err(),
            SketchInvariantError::CellCount {
                expected: 16,
                got: 8
            }
        );
        assert_eq!(
            VersionedHll::from_cells(3, vec![Vec::new(); 8]).unwrap_err(),
            SketchInvariantError::Precision(3)
        );
    }

    #[test]
    fn random_streams_keep_the_dominance_chain() {
        let mut s = VersionedHll::new(6);
        // Deterministic pseudo-random insertions, including repeats and
        // decreasing/increasing time mixes.
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let time = (x % 1_000) as i64; // xtask-allow: no-lossy-cast (value < 1000)
            s.add_u64(x, time);
            debug_assert!(s.check_dominance_chain().is_ok());
        }
        assert!(s.check_dominance_chain().is_ok());
        assert_eq!(s.check_invariants(), Ok(()));
    }

    #[test]
    fn total_entries_and_heap_bytes_grow() {
        let mut s = VersionedHll::new(4);
        let before = s.heap_bytes();
        // Decreasing times with increasing rho stack up (none dominates).
        for i in 0..10u8 {
            s.insert_raw(0, 10 - i, i64::from(i));
        }
        // With decreasing rho over increasing... here times 0..9 and rho 10..1:
        // each later (smaller-rho, larger-time) insert is dominated.
        assert_eq!(s.total_entries(), 1);
        for i in 0..10u8 {
            s.insert_raw(1, i + 1, -i64::from(i));
        }
        // Each newcomer (earlier time, larger rho) dominates the previous.
        assert_eq!(s.cell(1).len(), 1);
        s.insert_raw(2, 1, 0);
        s.insert_raw(2, 2, 1);
        s.insert_raw(2, 3, 2);
        assert_eq!(s.cell(2).len(), 3);
        assert!(s.heap_bytes() > before);
    }
}
