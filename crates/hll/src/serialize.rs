//! Compact binary serialization for sketches.
//!
//! The influence oracle is a build-once / query-many structure: computing
//! the per-node sketches takes one pass over the (possibly huge) interaction
//! log, but the sketches themselves are small. This module provides a tiny,
//! dependency-free binary codec so oracles can be persisted and reloaded:
//!
//! * [`HyperLogLog`]: `"IPHL"` magic, format version, precision, raw
//!   register bytes.
//! * [`VersionedHll`]: `"IPVH"` magic, format version, precision, per-cell
//!   entry counts and `(time: i64 LE, ρ: u8)` pairs.
//!
//! All integers are little-endian. Readers validate magic, version,
//! precision bounds and structural invariants, so corrupted or truncated
//! inputs fail loudly instead of producing broken sketches.

use crate::hyperloglog::{HyperLogLog, MAX_PRECISION, MIN_PRECISION};
use crate::vhll::{VersionEntry, VersionedHll};
use std::fmt;
use std::io::{self, Read, Write};

/// Current on-disk format version.
pub const FORMAT_VERSION: u8 = 1;

const HLL_MAGIC: &[u8; 4] = b"IPHL";
const VHLL_MAGIC: &[u8; 4] = b"IPVH";

/// Errors produced while decoding a sketch.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure (including truncation).
    Io(io::Error),
    /// The input does not start with the expected magic bytes.
    BadMagic,
    /// The input uses an unsupported format version.
    BadVersion(u8),
    /// The input was written by a *newer* major format version than this
    /// build supports. Distinct from [`BadVersion`](Self::BadVersion) so
    /// callers (and operators staring at generation-stamped arena files) can
    /// tell "upgrade the binary" apart from "the file is broken".
    FutureVersion(u8),
    /// Structurally invalid content (precision out of range, broken
    /// invariants, implausible lengths).
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
            CodecError::BadMagic => write!(f, "bad magic bytes (not a sketch file)"),
            CodecError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::FutureVersion(v) => write!(
                f,
                "format version {v} is newer than this build supports \
                 (max {FORMAT_VERSION}); upgrade the binary to read this file"
            ),
            CodecError::Corrupt(what) => write!(f, "corrupt sketch data: {what}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

fn read_exact<const N: usize>(r: &mut impl Read) -> Result<[u8; N], CodecError> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Checks a decoded format version against [`FORMAT_VERSION`]: versions
/// newer than this build map to [`CodecError::FutureVersion`] (the file is
/// fine, the binary is old), every other mismatch to
/// [`CodecError::BadVersion`]. Shared by every `IP??` codec in the
/// workspace, so the distinction stays uniform across file formats.
pub fn validate_version(version: u8) -> Result<(), CodecError> {
    if version == FORMAT_VERSION {
        Ok(())
    } else if version > FORMAT_VERSION {
        Err(CodecError::FutureVersion(version))
    } else {
        Err(CodecError::BadVersion(version))
    }
}

fn check_header(r: &mut impl Read, magic: &[u8; 4]) -> Result<u8, CodecError> {
    let got: [u8; 4] = read_exact(r)?;
    if &got != magic {
        return Err(CodecError::BadMagic);
    }
    let [version] = read_exact::<1>(r)?;
    validate_version(version)?;
    let [precision] = read_exact::<1>(r)?;
    if !(MIN_PRECISION..=MAX_PRECISION).contains(&precision) {
        return Err(CodecError::Corrupt("precision out of range"));
    }
    Ok(precision)
}

impl HyperLogLog {
    /// Writes the sketch in the `IPHL` format.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(HLL_MAGIC)?;
        w.write_all(&[FORMAT_VERSION, self.precision()])?;
        w.write_all(self.registers())?;
        Ok(())
    }

    /// Reads a sketch written by [`write_to`](Self::write_to).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let precision = check_header(r, HLL_MAGIC)?;
        let mut registers = vec![0u8; 1usize << precision];
        r.read_exact(&mut registers)?;
        let max_rho = 64 - precision + 1;
        if registers.iter().any(|&b| b > max_rho) {
            return Err(CodecError::Corrupt("register exceeds maximal rho"));
        }
        Ok(HyperLogLog::from_registers(registers))
    }

    /// Serializes to an owned byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6 + self.num_registers());
        self.write_to(&mut out).expect("writing to Vec cannot fail"); // xtask-allow: no-panic (Vec<u8> Write is infallible)
        out
    }

    /// Deserializes from a byte slice.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, CodecError> {
        Self::read_from(&mut bytes)
    }
}

impl VersionedHll {
    /// Writes the sketch in the `IPVH` format.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(VHLL_MAGIC)?;
        w.write_all(&[FORMAT_VERSION, self.precision()])?;
        for cell in 0..self.num_cells() {
            let entries = self.cell(cell);
            let len = u32::try_from(entries.len())
                .map_err(|_| CodecError::Corrupt("cell list too long to encode"))?;
            w.write_all(&len.to_le_bytes())?;
            for e in entries {
                w.write_all(&e.time.to_le_bytes())?;
                w.write_all(&[e.rho])?;
            }
        }
        Ok(())
    }

    /// Reads a sketch written by [`write_to`](Self::write_to); validates
    /// the dominance invariant on every cell.
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let precision = check_header(r, VHLL_MAGIC)?;
        let mut sketch = VersionedHll::new(precision);
        let max_rho = 64 - precision + 1;
        for cell in 0..sketch.num_cells() {
            let len = u32::from_le_bytes(read_exact(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
            if len > 1 << 20 {
                return Err(CodecError::Corrupt("implausible cell length"));
            }
            let mut prev: Option<VersionEntry> = None;
            for _ in 0..len {
                let time = i64::from_le_bytes(read_exact(r)?);
                let [rho] = read_exact::<1>(r)?;
                if rho == 0 || rho > max_rho {
                    return Err(CodecError::Corrupt("rho out of range"));
                }
                if let Some(p) = prev {
                    if !(p.time < time && p.rho < rho) {
                        return Err(CodecError::Corrupt("dominance invariant violated"));
                    }
                }
                prev = Some(VersionEntry { time, rho });
                if !sketch.insert_raw(cell, rho, time) {
                    return Err(CodecError::Corrupt("redundant version entry"));
                }
            }
        }
        Ok(sketch)
    }

    /// Serializes to an owned byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out).expect("writing to Vec cannot fail"); // xtask-allow: no-panic (Vec<u8> Write is infallible)
        out
    }

    /// Deserializes from a byte slice.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, CodecError> {
        Self::read_from(&mut bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hll_roundtrip() {
        let mut s = HyperLogLog::new(7);
        for v in 0..5_000u64 {
            s.add_u64(v);
        }
        let bytes = s.to_bytes();
        let back = HyperLogLog::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(bytes.len(), 6 + 128);
    }

    #[test]
    fn vhll_roundtrip() {
        let mut s = VersionedHll::new(6);
        for v in 0..2_000u64 {
            s.add_u64(v, 5_000 - v as i64);
        }
        let back = VersionedHll::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
        assert!(back.check_invariants().is_ok());
    }

    #[test]
    fn empty_sketches_roundtrip() {
        let h = HyperLogLog::new(4);
        assert_eq!(HyperLogLog::from_bytes(&h.to_bytes()).unwrap(), h);
        let v = VersionedHll::new(4);
        assert_eq!(VersionedHll::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = HyperLogLog::new(5).to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            HyperLogLog::from_bytes(&bytes),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        // A version newer than this build is a FutureVersion, not corruption.
        let mut bytes = VersionedHll::new(5).to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            VersionedHll::from_bytes(&bytes),
            Err(CodecError::FutureVersion(99))
        ));
        // Version 0 predates every release: plain BadVersion.
        bytes[4] = 0;
        assert!(matches!(
            VersionedHll::from_bytes(&bytes),
            Err(CodecError::BadVersion(0))
        ));
    }

    #[test]
    fn validate_version_splits_past_and_future() {
        assert!(validate_version(FORMAT_VERSION).is_ok());
        assert!(matches!(
            validate_version(FORMAT_VERSION + 1),
            Err(CodecError::FutureVersion(v)) if v == FORMAT_VERSION + 1
        ));
        assert!(matches!(
            validate_version(0),
            Err(CodecError::BadVersion(0))
        ));
        let msg = CodecError::FutureVersion(9).to_string();
        assert!(msg.contains("newer") && msg.contains('9'));
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = {
            let mut s = HyperLogLog::new(6);
            s.add_u64(9);
            s.to_bytes()
        };
        assert!(matches!(
            HyperLogLog::from_bytes(&bytes[..bytes.len() - 3]),
            Err(CodecError::Io(_))
        ));
    }

    #[test]
    fn corrupt_register_is_rejected() {
        let mut bytes = HyperLogLog::new(4).to_bytes();
        let last = bytes.len() - 1;
        bytes[last] = 255; // rho cannot exceed 61 at precision 4
        assert!(matches!(
            HyperLogLog::from_bytes(&bytes),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn broken_invariant_is_rejected() {
        // Hand-craft a vHLL payload whose cell violates the invariant:
        // two entries with non-increasing rho.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"IPVH");
        bytes.push(FORMAT_VERSION);
        bytes.push(4); // precision -> 16 cells
                       // cell 0: 2 entries (t=1, rho=5), (t=2, rho=5)
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&1i64.to_le_bytes());
        bytes.push(5);
        bytes.extend_from_slice(&2i64.to_le_bytes());
        bytes.push(5);
        for _ in 1..16 {
            bytes.extend_from_slice(&0u32.to_le_bytes());
        }
        assert!(matches!(
            VersionedHll::from_bytes(&bytes),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::BadVersion(3).to_string().contains('3'));
        let io_err = CodecError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(io_err.source().is_some());
        assert!(CodecError::Corrupt("x").source().is_none());
    }
}
