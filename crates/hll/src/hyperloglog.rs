//! Classic HyperLogLog cardinality sketch (Flajolet et al., AofA 2007).
//!
//! A HyperLogLog with precision `k` keeps `β = 2^k` one-byte registers. For
//! each incoming 64-bit hash `h`, the low `k` bits pick a register `ι(h)`
//! and `ρ(h)` — the 1-based position of the least-significant set bit of the
//! remaining bits (the convention used in the paper, §3.2.1) — updates the
//! register to `max(register, ρ)`. The harmonic-mean estimator with
//! small-range (linear-counting) correction recovers the number of distinct
//! items within a relative standard error of about `1.04 / sqrt(β)`.
//!
//! Unions are lossless: register-wise max of two sketches equals the sketch
//! of the union of the two streams — the property the influence oracle
//! (paper §4.1) exploits.

use crate::hash;

/// Supported precision range: `β = 2^k` registers for `k ∈ [4, 16]`.
pub const MIN_PRECISION: u8 = 4;
/// See [`MIN_PRECISION`].
pub const MAX_PRECISION: u8 = 16;

/// A classic HyperLogLog sketch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
}

/// Splits a 64-bit hash into `(register index, ρ)` for precision `k`.
///
/// The low `k` bits index the register; ρ is the position (1-based) of the
/// least-significant 1 bit of the remaining `64 − k` bits, capped at
/// `64 − k + 1` when those bits are all zero.
#[inline]
pub(crate) fn split_hash(h: u64, precision: u8) -> (usize, u8) {
    // Masked to the low `precision ≤ 16` bits, so the value fits any usize.
    let idx = (h & ((1u64 << precision) - 1)) as usize; // xtask-allow: no-lossy-cast (≤16 masked bits)
    let rest = h >> precision;
    let max_rho = 64 - u32::from(precision) + 1;
    let rho = if rest == 0 {
        max_rho
    } else {
        rest.trailing_zeros() + 1
    };
    // ρ ≤ 64 − k + 1 ≤ 61 fits comfortably in a byte.
    (idx, rho as u8) // xtask-allow: no-lossy-cast (ρ ≤ 61)
}

/// The bias-correction constant `α_β` from the HLL paper.
#[inline]
fn alpha(num_registers: usize) -> f64 {
    match num_registers {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        m => 0.7213 / (1.0 + 1.079 / m as f64),
    }
}

/// `INV_POW2[r] = 2^-r`, exact in `f64` (exponent-only bit patterns).
///
/// Every register value `r ≤ 64 − k + 1 ≤ 61` indexes in range. The table
/// is **bit-identical** to the previous `1.0 / (1u64 << r) as f64` form:
/// `1u64 << r` is a power of two ≤ 2^61, exactly representable in `f64`,
/// and dividing 1.0 by an exact power of two yields the exact power
/// `2^-r` — the same value `f64::from_bits((1023 − r) << 52)` encodes
/// directly. The lookup replaces an int→float convert plus a divide per
/// register on the estimator hot loop without perturbing any estimate.
const INV_POW2: [f64; 64] = {
    let mut table = [0.0f64; 64];
    let mut r = 0usize;
    while r < 64 {
        // r < 64 so the cast is lossless and the biased exponent positive.
        table[r] = f64::from_bits((1023 - r as u64) << 52); // xtask-allow: no-lossy-cast (r < 64)
        r += 1;
    }
    table
};

/// Applies the harmonic-mean estimator with small-range correction to an
/// accumulated `(Σ 2^-r, #zero registers)` pair for `m` registers.
#[inline]
// xtask-contract: alloc-free, kernel
fn finish_estimate(m_usize: usize, sum: f64, zeros: usize) -> f64 {
    let m = m_usize as f64;
    let raw = alpha(m_usize) * m * m / sum;
    // Small-range correction: fall back to linear counting while registers
    // remain empty. (No large-range correction is needed with 64-bit hashes.)
    if raw <= 2.5 * m && zeros > 0 {
        m * (m / zeros as f64).ln()
    } else {
        raw
    }
}

/// Estimates cardinality from a register array (shared by [`HyperLogLog`],
/// the versioned sketch — whose per-cell maxima form the same array — and
/// the frozen oracle arenas, which store registers as flat slices).
// xtask-contract: alloc-free, kernel
pub fn estimate_from_registers(registers: &[u8]) -> f64 {
    let mut sum = 0.0f64;
    let mut zeros = 0usize;
    for &r in registers {
        // r ≤ 64 − k + 1 ≤ 61, so the table lookup is in range.
        sum += INV_POW2[usize::from(r)];
        if r == 0 {
            zeros += 1;
        }
    }
    finish_estimate(registers.len(), sum, zeros)
}

/// Streaming version of [`estimate_from_registers`]: absorb merged
/// registers in ascending position order — in chunks of any size — then
/// [`finish`](Self::finish). Because the per-register accumulation and the
/// final harmonic-mean correction are the exact same operations in the
/// exact same order, the result is bit-identical to materializing all the
/// registers and calling [`estimate_from_registers`].
///
/// This is the estimator kernel for callers that compute a k-way union on
/// the fly (e.g. the frozen oracle arena merging seed slices block by
/// block) and never want to allocate the merged register array.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningEstimator {
    sum: f64,
    zeros: usize,
    m: usize,
}

impl RunningEstimator {
    /// An estimator that has absorbed no registers yet.
    #[inline]
    // xtask-contract: alloc-free, no-panic
    pub fn new() -> Self {
        RunningEstimator::default()
    }

    /// Absorbs the next `regs.len()` registers (positions
    /// `self.count()..`).
    #[inline]
    // xtask-contract: alloc-free, kernel
    pub fn absorb_registers(&mut self, regs: &[u8]) {
        for &r in regs {
            // r ≤ 64 − k + 1 ≤ 61, so the table lookup is in range.
            self.sum += INV_POW2[usize::from(r)];
            if r == 0 {
                self.zeros += 1;
            }
        }
        self.m += regs.len();
    }

    /// Absorbs one register block into each of four estimators at once —
    /// the batch kernel's GROUP-interleaved absorb. Per estimator this
    /// performs exactly the operations of
    /// [`absorb_registers`](Self::absorb_registers) on its own block, in
    /// the same order, so every estimator's state is bit-identical to four
    /// separate calls. Fusing the loops interleaves the four serial `sum`
    /// dependency chains — the latency floor of a lone absorb — so the
    /// adds issue back to back instead of waiting on one chain.
    ///
    /// # Panics
    ///
    /// Panics if the four blocks differ in length.
    ///
    /// Deliberately **not** inlined: inside the callers' merge loops the
    /// four running sums' live ranges cross the vector-register-hungry
    /// merge phase and get spilled to stack slots, serializing the adds
    /// through one register and a store-forward round trip each. As a
    /// standalone function the loop owns the register file and the four
    /// chains stay resident (one call per tile amortizes to noise).
    #[inline(never)]
    // xtask-contract: alloc-free, kernel
    pub fn absorb_x4(ests: &mut [RunningEstimator; 4], blocks: [&[u8]; 4]) {
        let [b0, b1, b2, b3] = blocks;
        assert!(
            b0.len() == b1.len() && b0.len() == b2.len() && b0.len() == b3.len(),
            "absorb_x4 blocks must share one length"
        );
        let [e0, e1, e2, e3] = ests;
        let (mut s0, mut s1, mut s2, mut s3) = (e0.sum, e1.sum, e2.sum, e3.sum);
        let (mut z0, mut z1, mut z2, mut z3) = (e0.zeros, e1.zeros, e2.zeros, e3.zeros);
        for (i, &r0) in b0.iter().enumerate() {
            // Registers are ≤ 64 − k + 1 ≤ 61, so the lookups are in range.
            let (r1, r2, r3) = (b1[i], b2[i], b3[i]);
            s0 += INV_POW2[usize::from(r0)];
            s1 += INV_POW2[usize::from(r1)];
            s2 += INV_POW2[usize::from(r2)];
            s3 += INV_POW2[usize::from(r3)];
            z0 += usize::from(r0 == 0);
            z1 += usize::from(r1 == 0);
            z2 += usize::from(r2 == 0);
            z3 += usize::from(r3 == 0);
        }
        (e0.sum, e1.sum, e2.sum, e3.sum) = (s0, s1, s2, s3);
        (e0.zeros, e1.zeros, e2.zeros, e3.zeros) = (z0, z1, z2, z3);
        e0.m += b0.len();
        e1.m += b1.len();
        e2.m += b2.len();
        e3.m += b3.len();
    }

    /// Registers absorbed so far.
    #[inline]
    // xtask-contract: alloc-free, no-panic
    pub fn count(&self) -> usize {
        self.m
    }

    /// The cardinality estimate over every register absorbed so far.
    #[inline]
    // xtask-contract: alloc-free, kernel
    pub fn finish(&self) -> f64 {
        finish_estimate(self.m, self.sum, self.zeros)
    }
}

/// Estimates the cardinality of the union of two register arrays without
/// materializing the merged array. Lengths must match; summation order is
/// the sequential register order, identical to
/// [`estimate_from_registers`] over the register-wise maxima.
// xtask-contract: alloc-free, kernel
fn estimate_union_slices(a: &[u8], b: &[u8]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0.0f64;
    let mut zeros = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        let r = x.max(y);
        sum += INV_POW2[usize::from(r)];
        if r == 0 {
            zeros += 1;
        }
    }
    finish_estimate(a.len(), sum, zeros)
}

impl HyperLogLog {
    /// Creates an empty sketch with `β = 2^precision` registers.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is outside `[4, 16]`.
    pub fn new(precision: u8) -> Self {
        assert!(
            (MIN_PRECISION..=MAX_PRECISION).contains(&precision),
            "precision must be in [{MIN_PRECISION}, {MAX_PRECISION}], got {precision}"
        );
        HyperLogLog {
            precision,
            registers: vec![0; 1 << precision],
        }
    }

    /// The precision `k` (so `β = 2^k`).
    #[inline]
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Number of registers `β`.
    #[inline]
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Adds an already-hashed item.
    #[inline]
    pub fn add_hash(&mut self, h: u64) {
        let (idx, rho) = split_hash(h, self.precision);
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// Hashes and adds a `u64` item.
    #[inline]
    pub fn add_u64(&mut self, item: u64) {
        self.add_hash(hash::hash64(item));
    }

    /// Estimates the number of distinct items added.
    pub fn estimate(&self) -> f64 {
        estimate_from_registers(&self.registers)
    }

    /// The theoretical relative standard error `≈ 1.04 / sqrt(β)`.
    pub fn relative_error(&self) -> f64 {
        1.04 / (self.num_registers() as f64).sqrt()
    }

    /// Union: register-wise maximum. Both sketches must share a precision.
    ///
    /// # Panics
    ///
    /// Panics on precision mismatch.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge HLL sketches of different precision"
        );
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// Estimates the cardinality of the union of `self` and `other` without
    /// materializing the merged sketch — the hot operation of greedy
    /// influence maximization (one marginal-gain probe per candidate).
    ///
    /// # Panics
    ///
    /// Panics on precision mismatch.
    pub fn estimate_union(&self, other: &HyperLogLog) -> f64 {
        assert_eq!(
            self.precision, other.precision,
            "cannot union HLL sketches of different precision"
        );
        estimate_union_slices(&self.registers, &other.registers)
    }

    /// Union with a raw register slice (register-wise maximum) — the absorb
    /// operation of the frozen oracle arena, where per-node registers live
    /// in one flat array and are never materialized as sketches.
    ///
    /// # Panics
    ///
    /// Panics if `registers.len()` differs from this sketch's `β`.
    pub fn merge_registers(&mut self, registers: &[u8]) {
        assert_eq!(
            self.registers.len(),
            registers.len(),
            "cannot merge a register slice of different length"
        );
        for (a, &b) in self.registers.iter_mut().zip(registers) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// [`estimate_union`](Self::estimate_union) against a raw register
    /// slice — the marginal-gain probe of the frozen oracle arena.
    ///
    /// # Panics
    ///
    /// Panics if `registers.len()` differs from this sketch's `β`.
    pub fn estimate_union_registers(&self, registers: &[u8]) -> f64 {
        assert_eq!(
            self.registers.len(),
            registers.len(),
            "cannot union a register slice of different length"
        );
        estimate_union_slices(&self.registers, registers)
    }

    /// Whether no item has ever been added.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Resets all registers to zero.
    pub fn clear(&mut self) {
        self.registers.fill(0);
    }

    /// Direct access to the register array (read-only).
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Builds a sketch from an explicit register array.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two in `[2^4, 2^16]`.
    pub fn from_registers(registers: Vec<u8>) -> Self {
        let len = registers.len();
        assert!(
            len.is_power_of_two() && ((1 << MIN_PRECISION)..=(1 << MAX_PRECISION)).contains(&len),
            "register array length must be a power of two in [16, 65536]"
        );
        HyperLogLog {
            // The assert above bounds len ≤ 2^16, so trailing_zeros ≤ 16.
            precision: len.trailing_zeros() as u8, // xtask-allow: no-lossy-cast (≤ 16 after assert)
            registers,
        }
    }

    /// Heap bytes used by the sketch (for memory accounting, Table 4).
    pub fn heap_bytes(&self) -> usize {
        self.registers.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_hash_uses_low_bits_for_index() {
        // k = 4: low 4 bits index, then trailing zeros of the rest + 1.
        // h = 0b...101_0110: idx = 0b0110 = 6, rest = ...101 -> rho = 1.
        let (idx, rho) = split_hash(0b101_0110, 4);
        assert_eq!(idx, 6);
        assert_eq!(rho, 1);
        // rest with two trailing zeros -> rho 3.
        let (_, rho) = split_hash(0b100_0000, 4);
        assert_eq!(rho, 3);
        // all-zero rest saturates at 64 - k + 1.
        let (idx, rho) = split_hash(0b1111, 4);
        assert_eq!(idx, 15);
        assert_eq!(rho, 61);
    }

    #[test]
    fn empty_estimates_zero() {
        let s = HyperLogLog::new(9);
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn duplicates_do_not_change_sketch() {
        let mut s = HyperLogLog::new(8);
        s.add_u64(42);
        let snapshot = s.clone();
        for _ in 0..100 {
            s.add_u64(42);
        }
        assert_eq!(s, snapshot);
    }

    #[test]
    fn small_cardinalities_are_near_exact() {
        let mut s = HyperLogLog::new(10);
        for v in 0..100u64 {
            s.add_u64(v);
        }
        let est = s.estimate();
        assert!((est - 100.0).abs() < 10.0, "estimate {est}");
    }

    #[test]
    fn large_cardinality_within_error_bound() {
        for &precision in &[6u8, 9, 12] {
            let mut s = HyperLogLog::new(precision);
            let n = 50_000u64;
            for v in 0..n {
                s.add_u64(v);
            }
            let est = s.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            // Allow 5 standard errors.
            assert!(
                rel < 5.0 * s.relative_error(),
                "k={precision}: rel err {rel} vs bound {}",
                5.0 * s.relative_error()
            );
        }
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(9);
        let mut b = HyperLogLog::new(9);
        let mut u = HyperLogLog::new(9);
        for v in 0..3000u64 {
            a.add_u64(v);
            u.add_u64(v);
        }
        for v in 2000..6000u64 {
            b.add_u64(v);
            u.add_u64(v);
        }
        a.merge(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn inv_pow2_table_is_bit_identical_to_divide() {
        for r in 0..64u32 {
            let divide = 1.0 / (1u64 << r) as f64;
            assert_eq!(
                INV_POW2[r as usize].to_bits(),
                divide.to_bits(),
                "2^-{r} mismatch"
            );
        }
    }

    #[test]
    fn register_slice_apis_match_sketch_apis() {
        let mut a = HyperLogLog::new(8);
        let mut b = HyperLogLog::new(8);
        for v in 0..2500u64 {
            a.add_u64(v);
        }
        for v in 2000..7000u64 {
            b.add_u64(v);
        }
        assert_eq!(
            a.estimate_union_registers(b.registers()).to_bits(),
            a.estimate_union(&b).to_bits()
        );
        let mut via_slice = a.clone();
        via_slice.merge_registers(b.registers());
        let mut via_sketch = a.clone();
        via_sketch.merge(&b);
        assert_eq!(via_slice, via_sketch);
        assert_eq!(
            estimate_from_registers(via_slice.registers()).to_bits(),
            via_sketch.estimate().to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "different length")]
    fn merge_registers_length_mismatch_panics() {
        let mut a = HyperLogLog::new(8);
        a.merge_registers(&[0u8; 16]);
    }

    #[test]
    fn running_estimator_matches_batch_in_any_chunking() {
        let mut a = HyperLogLog::new(8);
        for v in 0..5000u64 {
            a.add_u64(v);
        }
        let regs = a.registers();
        let batch = estimate_from_registers(regs).to_bits();
        for chunk in [1usize, 7, 64, 256, regs.len()] {
            let mut est = RunningEstimator::new();
            for block in regs.chunks(chunk) {
                est.absorb_registers(block);
            }
            assert_eq!(est.count(), regs.len());
            assert_eq!(est.finish().to_bits(), batch, "chunk size {chunk}");
        }
    }

    #[test]
    fn estimate_union_matches_materialized_merge() {
        let mut a = HyperLogLog::new(9);
        let mut b = HyperLogLog::new(9);
        for v in 0..4000u64 {
            a.add_u64(v);
        }
        for v in 3000..9000u64 {
            b.add_u64(v);
        }
        let lazy = a.estimate_union(&b);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(lazy, merged.estimate());
        // Union with an empty sketch is the original estimate.
        assert_eq!(a.estimate_union(&HyperLogLog::new(9)), a.estimate());
    }

    #[test]
    fn merge_is_idempotent_and_commutative() {
        let mut a = HyperLogLog::new(7);
        let mut b = HyperLogLog::new(7);
        for v in 0..500u64 {
            if v % 2 == 0 {
                a.add_u64(v);
            } else {
                b.add_u64(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut abb = ab.clone();
        abb.merge(&b);
        assert_eq!(abb, ab);
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_precision_mismatch_panics() {
        let mut a = HyperLogLog::new(8);
        let b = HyperLogLog::new(9);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "precision must be in")]
    fn bad_precision_panics() {
        let _ = HyperLogLog::new(3);
    }

    #[test]
    fn clear_resets() {
        let mut s = HyperLogLog::new(6);
        s.add_u64(1);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn from_registers_roundtrip() {
        let mut s = HyperLogLog::new(5);
        for v in 0..200u64 {
            s.add_u64(v);
        }
        let rebuilt = HyperLogLog::from_registers(s.registers().to_vec());
        assert_eq!(rebuilt, s);
        assert_eq!(rebuilt.precision(), 5);
    }

    #[test]
    fn paper_example_sketch_updates() {
        // §3.2.1 example: 4 cells, arrivals (c3,2), (c1,3), (c0,7), (c2,2),
        // (c1,2) yield registers [7, 3, 2, 2].
        let mut regs = vec![0u8; 4];
        for (cell, rho) in [(3, 2), (1, 3), (0, 7), (2, 2), (1, 2)] {
            if rho > regs[cell] {
                regs[cell] = rho;
            }
        }
        assert_eq!(regs, vec![7, 3, 2, 2]);
    }
}
