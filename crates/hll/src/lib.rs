//! From-scratch cardinality sketches for the `infprop` workspace.
//!
//! Three pieces live here:
//!
//! * [`hash`] — deterministic 64-bit mixing (splitmix64 family) used to hash
//!   node ids into sketches, plus a fast non-cryptographic [`std::hash::Hasher`]
//!   for node-keyed hash maps (HashDoS is not a threat model for an offline
//!   analytics library, so we trade SipHash for speed, the same reasoning as
//!   `rustc-hash`).
//! * [`HyperLogLog`] — the classic Flajolet–Fusy–Gandouet–Meunier sketch:
//!   `β = 2^k` one-byte registers, harmonic-mean estimator with small-range
//!   correction, lossless unions by register-wise max.
//! * [`VersionedHll`] — the paper's contribution at the sketch level
//!   (§3.2.2): each register holds a *time-versioned list* of `(ρ, t)` pairs
//!   under dominance pruning, so the sketch can be merged into a predecessor
//!   node's sketch **at an earlier anchor time** while honouring the maximal
//!   channel duration ω. This is the engine of the approximate IRS algorithm.
//!
//! # Example
//!
//! ```
//! use infprop_hll::{hash, HyperLogLog};
//!
//! let mut sketch = HyperLogLog::new(9); // β = 512 registers, paper default
//! for v in 0u64..10_000 {
//!     sketch.add_hash(hash::hash64(v));
//! }
//! let est = sketch.estimate();
//! assert!((est - 10_000.0).abs() / 10_000.0 < 0.10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hash;
mod hyperloglog;
mod serialize;
mod vhll;

pub use hyperloglog::{estimate_from_registers, HyperLogLog, RunningEstimator};
pub use serialize::{validate_version, CodecError, FORMAT_VERSION};
pub use vhll::{
    check_entries, EntryError, MergeObserver, NoopMergeObserver, SketchInvariantError,
    VersionEntry, VersionList, VersionedHll,
};
