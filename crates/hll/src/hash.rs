//! Deterministic 64-bit hashing and fast hash-map building blocks.
//!
//! All sketches in this workspace hash node ids with [`hash64`] (a
//! splitmix64 finalizer), which passes avalanche tests and is fully
//! deterministic across runs and platforms — a requirement for reproducible
//! experiments. [`FastHashMap`]/[`FastHashSet`] provide `HashMap`s keyed by
//! small integers with an Fx-style multiply-xor hasher instead of SipHash.

// The one sanctioned import of the std collections: this module *defines*
// the fast aliases the rest of the workspace must use instead.
use std::collections::{HashMap, HashSet}; // xtask-allow: no-default-hashmap (alias definition site)
use std::hash::{BuildHasherDefault, Hasher};

/// The splitmix64 finalizer: a bijective 64-bit mixer with full avalanche.
///
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014); constants from Sebastiano Vigna's public-domain
/// implementation.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes an arbitrary 64-bit value to a uniformly distributed 64-bit value.
#[inline]
pub fn hash64(x: u64) -> u64 {
    splitmix64(x)
}

/// Hashes with an explicit seed: distinct seeds give independent hash
/// functions (used by sketches that need several, e.g. repeated experiments).
#[inline]
pub fn hash64_seeded(x: u64, seed: u64) -> u64 {
    splitmix64(x ^ splitmix64(seed))
}

/// An Fx-style hasher: fast multiply-xor mixing, suitable for integer keys.
///
/// Not HashDoS-resistant by design — do not use for attacker-controlled keys.
#[derive(Clone, Default)]
pub struct FxLikeHasher {
    state: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxLikeHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxLikeHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One extra round so low-entropy single-word keys still spread into
        // the high bits hashbrown uses for its control bytes.
        splitmix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // `chunks_exact(8)` guarantees 8-byte slices; copy into a fixed
            // array rather than fallibly converting.
            let mut word = [0u8; 8];
            word.copy_from_slice(c);
            self.mix(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64); // xtask-allow: no-lossy-cast (usize ≤ 64 bits on every supported target)
    }
}

/// `BuildHasher` for [`FxLikeHasher`].
pub type FastBuildHasher = BuildHasherDefault<FxLikeHasher>;

/// A `HashMap` using the fast integer hasher.
// xtask-allow: no-default-hashmap (alias definition site)
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using the fast integer hasher.
// xtask-allow: no-default-hashmap (alias definition site)
pub type FastHashSet<K> = HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn splitmix_known_vectors() {
        // First outputs of Vigna's reference splitmix64 stream seeded with
        // 0 and 1 respectively (0xE220A8397B1DCDAF, 0x910A2DEC89025CC1).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn seeded_hashes_differ_across_seeds() {
        let a = hash64_seeded(42, 1);
        let b = hash64_seeded(42, 2);
        assert_ne!(a, b);
        assert_eq!(hash64_seeded(42, 1), a);
    }

    #[test]
    fn hash64_bits_look_uniform() {
        // Crude avalanche check: average popcount over many inputs ≈ 32.
        let total: u32 = (0..4096u64).map(|i| hash64(i).count_ones()).sum();
        let avg = total as f64 / 4096.0;
        assert!((avg - 32.0).abs() < 1.0, "avg popcount {avg}");
    }

    #[test]
    fn fast_hashmap_basic_ops() {
        let mut m: FastHashMap<u32, u32> = FastHashMap::default();
        for k in 0..1000 {
            m.insert(k, k * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
        let mut s: FastHashSet<u64> = FastHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }

    #[test]
    fn hasher_mixes_partial_chunks() {
        use std::hash::Hasher;
        let mut h1 = FxLikeHasher::default();
        h1.write(&[1, 2, 3]);
        let mut h2 = FxLikeHasher::default();
        h2.write(&[1, 2, 4]);
        assert_ne!(h1.finish(), h2.finish());
        // 8-byte path and u64 path agree with themselves deterministically.
        let mut h3 = FxLikeHasher::default();
        h3.write_u64(0xdead_beef);
        let mut h4 = FxLikeHasher::default();
        h4.write_u64(0xdead_beef);
        assert_eq!(h3.finish(), h4.finish());
    }

    #[test]
    fn distinct_u32_keys_spread() {
        use std::hash::BuildHasher;
        let bh = FastBuildHasher::default();
        let mut outs = std::collections::HashSet::new();
        for k in 0u32..10_000 {
            outs.insert(bh.hash_one(k));
        }
        assert_eq!(outs.len(), 10_000, "collisions among small keys");
    }
}
