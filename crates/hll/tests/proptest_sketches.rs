//! Property tests for the HyperLogLog and versioned-HLL sketches.

use infprop_hll::{HyperLogLog, VersionedHll};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random `(item, time)` streams in decreasing time order (the reverse-scan
/// discipline the IRS algorithm uses).
fn reverse_stream() -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0u64..500, 0i64..1000), 0..300).prop_map(|mut v| {
        v.sort_by_key(|&(_, t)| std::cmp::Reverse(t));
        v
    })
}

proptest! {
    /// HLL merge equals the sketch of the concatenated streams.
    #[test]
    fn hll_merge_is_union(
        xs in prop::collection::vec(any::<u64>(), 0..500),
        ys in prop::collection::vec(any::<u64>(), 0..500),
    ) {
        let mut a = HyperLogLog::new(6);
        let mut b = HyperLogLog::new(6);
        let mut u = HyperLogLog::new(6);
        for &x in &xs { a.add_u64(x); u.add_u64(x); }
        for &y in &ys { b.add_u64(y); u.add_u64(y); }
        a.merge(&b);
        prop_assert_eq!(a, u);
    }

    /// HLL is insertion-order independent and duplicate-insensitive.
    #[test]
    fn hll_order_independent(mut xs in prop::collection::vec(any::<u64>(), 0..300)) {
        let mut fwd = HyperLogLog::new(7);
        for &x in &xs { fwd.add_u64(x); }
        xs.reverse();
        xs.extend_from_slice(&xs.clone()); // duplicates
        let mut rev = HyperLogLog::new(7);
        for &x in &xs { rev.add_u64(x); }
        prop_assert_eq!(fwd, rev);
    }

    /// HLL estimate is within loose statistical bounds of the true count.
    #[test]
    fn hll_estimate_reasonable(xs in prop::collection::vec(0u64..100_000, 1..2000)) {
        let truth = xs.iter().collect::<HashSet<_>>().len() as f64;
        let mut s = HyperLogLog::new(10);
        for &x in &xs { s.add_u64(x); }
        let est = s.estimate();
        // 10 standard errors at k=10 (±3.3%) → about ±33%; generous so the
        // property never flakes while still catching broken estimators.
        prop_assert!((est - truth).abs() <= truth.max(8.0) * 0.33 + 8.0,
            "est {} truth {}", est, truth);
    }

    /// vHLL invariant (strictly increasing time ⇒ strictly increasing ρ)
    /// survives arbitrary insertion sequences.
    #[test]
    fn vhll_invariant_holds(stream in prop::collection::vec((0u64..500, -200i64..200), 0..400)) {
        let mut s = VersionedHll::new(4);
        for (item, t) in stream {
            s.add_u64(item, t);
        }
        prop_assert!(s.check_invariants().is_ok());
    }

    /// vHLL `estimate` equals the plain-HLL estimate of the same item set,
    /// whatever the timestamps: versioning never loses per-cell maxima.
    #[test]
    fn vhll_estimate_matches_plain_hll(stream in prop::collection::vec((0u64..1000, -100i64..100), 0..500)) {
        let mut v = VersionedHll::new(6);
        let mut h = HyperLogLog::new(6);
        for &(item, t) in &stream {
            v.add_u64(item, t);
            h.add_u64(item);
        }
        prop_assert_eq!(v.estimate(), h.estimate());
        prop_assert_eq!(v.to_hyperloglog(), h);
    }

    /// Unfiltered vHLL merge equals inserting both streams into one sketch.
    #[test]
    fn vhll_merge_all_is_union(
        xs in prop::collection::vec((0u64..300, -50i64..50), 0..200),
        ys in prop::collection::vec((0u64..300, -50i64..50), 0..200),
    ) {
        let mut a = VersionedHll::new(5);
        let mut b = VersionedHll::new(5);
        let mut u = VersionedHll::new(5);
        for &(x, t) in &xs { a.add_u64(x, t); u.add_u64(x, t); }
        for &(y, t) in &ys { b.add_u64(y, t); u.add_u64(y, t); }
        a.merge_all(&b);
        prop_assert_eq!(a.to_hyperloglog(), u.to_hyperloglog());
        prop_assert!(a.check_invariants().is_ok());
    }

    /// Window-filtered merge only admits in-window pairs: the merged sketch
    /// never exceeds (per cell) what inserting the filtered pairs produces.
    #[test]
    fn vhll_merge_filter_equals_manual_filter(
        xs in prop::collection::vec((0u64..300, 0i64..100), 0..200),
        anchor in 0i64..100,
        window in 1i64..100,
    ) {
        let mut src = VersionedHll::new(5);
        for &(x, t) in &xs { src.add_u64(x, t); }
        let mut merged = VersionedHll::new(5);
        merged.merge_from(&src, anchor, window);
        // Manual: re-insert only the retained pairs that pass the filter.
        let mut manual = VersionedHll::new(5);
        for c in 0..src.num_cells() {
            for e in src.cell(c) {
                if e.time - anchor < window {
                    manual.insert_raw(c, e.rho, e.time);
                }
            }
        }
        prop_assert_eq!(merged, manual);
    }

    /// Under the reverse-time discipline, the windowed estimate anchored at
    /// the stream frontier tracks the true windowed distinct count.
    #[test]
    fn vhll_windowed_estimate_under_discipline(stream in reverse_stream(), window in 1i64..500) {
        let mut s = VersionedHll::new(10);
        for &(item, t) in &stream {
            s.add_u64(item, t);
        }
        if let Some(&(_, frontier)) = stream.last() {
            let truth = stream
                .iter()
                .filter(|&&(_, t)| t - frontier < window)
                .map(|&(item, _)| item)
                .collect::<HashSet<_>>()
                .len() as f64;
            let est = s.estimate_window(frontier, window);
            prop_assert!((est - truth).abs() <= truth.max(8.0) * 0.35 + 8.0,
                "est {} truth {}", est, truth);
        }
    }

    /// Dominance: inserting any pair twice (second time with a later or
    /// equal timestamp) leaves the sketch unchanged.
    #[test]
    fn vhll_duplicate_later_is_noop(stream in prop::collection::vec((0u64..200, 0i64..100), 1..200), delta in 0i64..50) {
        let mut s = VersionedHll::new(5);
        for &(item, t) in &stream { s.add_u64(item, t); }
        let snapshot = s.clone();
        for &(item, t) in &stream { s.add_u64(item, t + delta); }
        prop_assert_eq!(s, snapshot);
    }
}

/// The dominance-chain validators: sketches built by the algorithms always
/// pass, and corrupted-by-construction version lists are always rejected.
mod invariant_checks {
    use infprop_hll::{check_entries, VersionEntry, VersionedHll};
    use proptest::prelude::*;

    /// A sketch built from a random insertion stream.
    fn random_sketch() -> impl Strategy<Value = VersionedHll> {
        prop::collection::vec((0u64..500, -200i64..200), 0..400).prop_map(|stream| {
            let mut s = VersionedHll::new(4);
            for (item, t) in stream {
                s.add_u64(item, t);
            }
            s
        })
    }

    proptest! {
        /// Random streams never trip the checker, and the validating
        /// constructor accepts exactly what the algorithms build.
        #[test]
        fn random_streams_pass_and_roundtrip(s in random_sketch()) {
            prop_assert_eq!(s.check_dominance_chain(), Ok(()));
            let cells: Vec<Vec<VersionEntry>> =
                (0..s.num_cells()).map(|c| s.cell(c).to_vec()).collect();
            let rebuilt = VersionedHll::from_cells(s.precision(), cells);
            prop_assert_eq!(rebuilt.as_ref().map(|r| r == &s), Ok(true));
        }

        /// Swapping any two adjacent entries of a ≥2-entry list breaks the
        /// strict (time, ρ) ordering, and the checker always says so.
        #[test]
        fn swapped_adjacent_entries_are_rejected(s in random_sketch(), cell_seed in any::<usize>(), pos_seed in any::<usize>()) {
            let candidates: Vec<usize> =
                (0..s.num_cells()).filter(|&c| s.cell(c).len() >= 2).collect();
            prop_assume!(!candidates.is_empty());
            let cell = candidates[cell_seed % candidates.len()];
            let pos = pos_seed % (s.cell(cell).len() - 1);
            let mut cells: Vec<Vec<VersionEntry>> =
                (0..s.num_cells()).map(|c| s.cell(c).to_vec()).collect();
            cells[cell].swap(pos, pos + 1);
            prop_assert!(VersionedHll::from_cells(s.precision(), cells).is_err());
        }

        /// ρ outside `[1, 64 − k + 1]` is rejected wherever it is planted.
        #[test]
        fn out_of_range_rho_is_rejected(s in random_sketch(), cell_seed in any::<usize>(), big in 62u8..255) {
            let cell = cell_seed % s.num_cells();
            let mut cells: Vec<Vec<VersionEntry>> =
                (0..s.num_cells()).map(|c| s.cell(c).to_vec()).collect();
            cells[cell].insert(0, VersionEntry { time: i64::MIN, rho: 0 });
            prop_assert!(VersionedHll::from_cells(s.precision(), cells.clone()).is_err());
            cells[cell][0] = VersionEntry { time: i64::MIN, rho: big };
            prop_assert!(VersionedHll::from_cells(s.precision(), cells).is_err());
        }

        /// Duplicated times (or duplicated ρ) violate strictness: doubling
        /// any entry is always caught by the entry-level checker.
        #[test]
        fn duplicated_entries_are_rejected(
            mut entries in prop::collection::vec((1u8..62, -100i64..100), 1..20),
            dup_seed in any::<usize>(),
        ) {
            entries.sort();
            entries.dedup();
            let list: Vec<VersionEntry> = entries
                .iter()
                .enumerate()
                .map(|(i, &(rho, _))| VersionEntry { time: i as i64, rho })
                .collect();
            // A strictly increasing (time, ρ) chain passes…
            let chain: Vec<VersionEntry> = list
                .iter()
                .scan(0u8, |max, e| {
                    if e.rho > *max {
                        *max = e.rho;
                        Some(Some(*e))
                    } else {
                        Some(None)
                    }
                })
                .flatten()
                .collect();
            prop_assert_eq!(check_entries(&chain, 61), Ok(()));
            // …and duplicating any one entry always fails.
            prop_assume!(!chain.is_empty());
            let mut corrupt = chain.clone();
            let at = dup_seed % chain.len();
            corrupt.insert(at, chain[at]);
            prop_assert!(check_entries(&corrupt, 61).is_err());
        }
    }
}

/// Codec robustness: decoders must return clean errors — never panic —
/// whatever bytes they are fed.
mod codec_fuzz {
    use infprop_hll::{HyperLogLog, VersionedHll};
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary garbage never panics either decoder.
        #[test]
        fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
            let _ = HyperLogLog::from_bytes(&bytes);
            let _ = VersionedHll::from_bytes(&bytes);
        }

        /// Single-byte mutations of a valid HLL payload either round-trip
        /// (the byte was redundant or still valid) or fail cleanly.
        #[test]
        fn mutated_hll_never_panics(
            items in prop::collection::vec(any::<u64>(), 0..200),
            pos_seed in any::<usize>(),
            new_byte in any::<u8>(),
        ) {
            let mut s = HyperLogLog::new(5);
            for &x in &items {
                s.add_u64(x);
            }
            let mut bytes = s.to_bytes();
            let pos = pos_seed % bytes.len();
            bytes[pos] = new_byte;
            let _ = HyperLogLog::from_bytes(&bytes);
        }

        /// Same for the versioned sketch (richer structure, richer ways to
        /// be corrupt).
        #[test]
        fn mutated_vhll_never_panics(
            items in prop::collection::vec((any::<u64>(), -1000i64..1000), 0..200),
            pos_seed in any::<usize>(),
            new_byte in any::<u8>(),
        ) {
            let mut s = VersionedHll::new(4);
            for &(x, t) in &items {
                s.add_u64(x, t);
            }
            let mut bytes = s.to_bytes();
            let pos = pos_seed % bytes.len();
            bytes[pos] = new_byte;
            let _ = VersionedHll::from_bytes(&bytes);
        }

        /// Truncation at any point fails cleanly.
        #[test]
        fn truncated_vhll_never_panics(
            items in prop::collection::vec((any::<u64>(), 0i64..100), 1..100),
            cut_seed in any::<usize>(),
        ) {
            let mut s = VersionedHll::new(4);
            for &(x, t) in &items {
                s.add_u64(x, t);
            }
            let bytes = s.to_bytes();
            let cut = cut_seed % bytes.len();
            let _ = VersionedHll::from_bytes(&bytes[..cut]);
        }
    }
}
