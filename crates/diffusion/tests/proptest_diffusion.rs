//! Property tests for the cascade models.

use infprop_diffusion::{tcic_run, tcic_spread, tclt_run, LtWeights, TcicConfig};
use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn networks() -> impl Strategy<Value = InteractionNetwork> {
    prop::collection::vec((0u32..12, 0u32..12), 1..60).prop_map(|pairs| {
        InteractionNetwork::from_triples(
            pairs
                .into_iter()
                .enumerate()
                .map(|(i, (s, d))| (s, d, i as i64)),
        )
    })
}

proptest! {
    /// Every infected node is either a seed with an outgoing interaction or
    /// the destination of some interaction; seeds without activity stay out.
    #[test]
    fn tcic_infections_are_explainable(net in networks(), w in 1i64..80, s in 0u32..12, p in 0.0f64..=1.0) {
        if (s as usize) >= net.num_nodes() {
            return Ok(());
        }
        let seed = NodeId(s);
        let out = tcic_run(&net, &[seed], Window(w), p, &mut SmallRng::seed_from_u64(1));
        let has_out = net.iter().any(|i| i.src == seed);
        for (v, &active) in out.active.iter().enumerate() {
            if !active {
                continue;
            }
            let v = NodeId::from_index(v);
            if v == seed {
                prop_assert!(has_out, "inactive seed got infected");
            } else {
                prop_assert!(
                    net.iter().any(|i| i.dst == v),
                    "{v:?} infected without any incoming interaction"
                );
            }
        }
        // Active nodes always carry an anchor.
        for (v, &active) in out.active.iter().enumerate() {
            if active {
                prop_assert!(out.anchor[v].is_some());
            }
        }
    }

    /// Monotonicity in p on averages: spread at higher infection
    /// probability dominates (same replicate count and seeds).
    #[test]
    fn tcic_spread_monotone_in_probability(net in networks(), w in 1i64..80, s in 0u32..12) {
        if (s as usize) >= net.num_nodes() {
            return Ok(());
        }
        let lo = tcic_spread(
            &net,
            &[NodeId(s)],
            &TcicConfig::new(Window(w), 0.2).with_runs(80).with_seed(9),
        );
        let hi = tcic_spread(
            &net,
            &[NodeId(s)],
            &TcicConfig::new(Window(w), 0.9).with_runs(80).with_seed(9),
        );
        // Per-replicate RNG streams differ once draws diverge, so compare
        // averages with slack for Monte-Carlo noise.
        prop_assert!(hi + 1.0 >= lo, "hi {} lo {}", hi, lo);
    }

    /// The p = 1 cascade from a seed set equals the union of the single-seed
    /// p = 1 cascades (deterministic reachability unions).
    #[test]
    fn tcic_deterministic_cascades_union(net in networks(), w in 1i64..80, a in 0u32..12, b in 0u32..12) {
        let n = net.num_nodes() as u32;
        if a >= n || b >= n {
            return Ok(());
        }
        let mut rng = SmallRng::seed_from_u64(0);
        let ra = tcic_run(&net, &[NodeId(a)], Window(w), 1.0, &mut rng);
        let rb = tcic_run(&net, &[NodeId(b)], Window(w), 1.0, &mut rng);
        let rab = tcic_run(&net, &[NodeId(a), NodeId(b)], Window(w), 1.0, &mut rng);
        for v in 0..net.num_nodes() {
            prop_assert_eq!(
                rab.active[v],
                ra.active[v] || rb.active[v],
                "node {} differs", v
            );
        }
    }

    /// TC-LT activations are explainable too, and the cascade is contained
    /// in the TCIC p = 1 cascade (thresholds can only lose activations).
    #[test]
    fn tclt_contained_in_tcic(net in networks(), w in 1i64..80, s in 0u32..12, rng_seed in 0u64..20) {
        if (s as usize) >= net.num_nodes() {
            return Ok(());
        }
        let weights = LtWeights::from_network(&net);
        let lt = tclt_run(
            &net,
            &weights,
            &[NodeId(s)],
            Window(w),
            &mut SmallRng::seed_from_u64(rng_seed),
        );
        let ic = tcic_run(
            &net,
            &[NodeId(s)],
            Window(w),
            1.0,
            &mut SmallRng::seed_from_u64(rng_seed),
        );
        for v in 0..net.num_nodes() {
            prop_assert!(
                !lt.active[v] || ic.active[v],
                "TC-LT infected {} that TCIC(p=1) cannot reach", v
            );
        }
    }

    /// LT weights into any node sum to 1 (or the node has no incoming
    /// interaction at all).
    #[test]
    fn lt_weights_normalized(net in networks()) {
        let weights = LtWeights::from_network(&net);
        for v in net.node_ids() {
            let total: f64 = net
                .node_ids()
                .map(|u| weights.weight(u, v))
                .sum();
            let has_in = net.iter().any(|i| i.dst == v);
            if has_in {
                prop_assert!((total - 1.0).abs() < 1e-9, "node {:?} sums to {}", v, total);
            } else {
                prop_assert_eq!(total, 0.0);
            }
        }
    }
}
