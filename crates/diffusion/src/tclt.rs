//! Time-Constrained Linear Threshold (TC-LT) — an extension cascade model.
//!
//! The paper derives its TCIC model from Independent Cascade and notes that
//! the classic static models (IC **and LT**) "no longer suffice as they do
//! not take the temporal aspect into account". TCIC covers the IC side;
//! this module supplies the analogous Linear-Threshold adaptation, useful
//! for checking that IRS-selected seeds are robust to the diffusion model
//! (a model-independence claim the paper makes for the IRS approach).
//!
//! Semantics (forward chronological sweep, mirroring Algorithm 1's shape):
//!
//! * every node `v` draws a threshold `θ_v ~ U(0, 1]` once per cascade;
//! * seeds activate at their first outgoing interaction and re-anchor at
//!   each one, exactly like TCIC seeds;
//! * an interaction `(u, v, t)` with `u` active and `t − anchor(u) ≤ ω`
//!   adds `u`'s **influence weight** `w(u→v)` to `v`'s accumulated
//!   pressure; each active in-neighbour contributes at most once;
//! * `v` activates when its accumulated pressure reaches `θ_v`, inheriting
//!   the later of the contributing anchors (the same window-inheritance
//!   rule as TCIC).
//!
//! Influence weights follow the standard LT normalization: `w(u→v) =
//! c(u, v) / c(·, v)` where `c` counts interactions, so the weights into
//! each node sum to 1.

use crate::tcic::CascadeOutcome;
use infprop_hll::hash::FastHashMap;
use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};
use rand::Rng;

/// Precomputed LT influence weights: `w(u→v)` per interacting pair.
#[derive(Clone, Debug)]
pub struct LtWeights {
    /// `(src, dst) → weight`, with `Σ_u w(u→v) = 1` for every `v` that has
    /// any incoming interaction.
    weights: FastHashMap<(NodeId, NodeId), f64>,
}

impl LtWeights {
    /// Derives weights from interaction counts.
    pub fn from_network(net: &InteractionNetwork) -> Self {
        let mut pair_counts: FastHashMap<(NodeId, NodeId), u32> = FastHashMap::default();
        let mut in_counts = vec![0u32; net.num_nodes()];
        for i in net.iter() {
            *pair_counts.entry((i.src, i.dst)).or_insert(0) += 1;
            in_counts[i.dst.index()] += 1;
        }
        let weights = pair_counts
            .into_iter()
            .map(|((u, v), c)| ((u, v), f64::from(c) / f64::from(in_counts[v.index()])))
            .collect();
        LtWeights { weights }
    }

    /// The weight `w(u→v)`, zero if the pair never interacted.
    pub fn weight(&self, u: NodeId, v: NodeId) -> f64 {
        self.weights.get(&(u, v)).copied().unwrap_or(0.0)
    }

    /// Number of weighted pairs.
    pub fn num_pairs(&self) -> usize {
        self.weights.len()
    }
}

/// Runs one TC-LT cascade; returns the full outcome (same shape as TCIC's).
pub fn tclt_run(
    net: &InteractionNetwork,
    weights: &LtWeights,
    seeds: &[NodeId],
    window: Window,
    rng: &mut impl Rng,
) -> CascadeOutcome {
    window.assert_valid();
    let n = net.num_nodes();
    let mut active = vec![false; n];
    let mut anchor: Vec<Option<i64>> = vec![None; n];
    let mut is_seed = vec![false; n];
    for &s in seeds {
        assert!(s.index() < n, "seed {s:?} outside node universe");
        is_seed[s.index()] = true;
    }
    // θ_v ~ U(0, 1]: a zero threshold would activate v with no pressure.
    let thresholds: Vec<f64> = (0..n).map(|_| 1.0 - rng.gen::<f64>()).collect();
    let mut pressure = vec![0.0f64; n];
    // Which active in-neighbours already contributed to v (each counts once).
    let mut contributed: FastHashMap<(NodeId, NodeId), ()> = FastHashMap::default();

    for i in net.iter() {
        let (u, v, t) = (i.src.index(), i.dst.index(), i.time.get());
        if is_seed[u] {
            active[u] = true;
            anchor[u] = Some(t);
        }
        if !active[u] {
            continue;
        }
        // xtask-allow: no-panic (activation always sets the anchor alongside the flag)
        let a = anchor[u].expect("active node carries an anchor");
        if t - a > window.get() {
            continue;
        }
        if active[v] {
            // Already active: only the anchor-inheritance rule applies.
            if anchor[u] > anchor[v] {
                anchor[v] = anchor[u];
            }
            continue;
        }
        if contributed.insert((i.src, i.dst), ()).is_none() {
            pressure[v] += weights.weight(i.src, i.dst);
        }
        if pressure[v] >= thresholds[v] {
            active[v] = true;
            if anchor[u] > anchor[v] {
                anchor[v] = anchor[u];
            }
        }
    }

    CascadeOutcome { active, anchor }
}

/// Average TC-LT spread of `seeds` over `runs` replicates (seeded).
pub fn tclt_spread(
    net: &InteractionNetwork,
    weights: &LtWeights,
    seeds: &[NodeId],
    window: Window,
    runs: usize,
    seed: u64,
) -> f64 {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    if runs == 0 {
        return 0.0;
    }
    let total: usize = (0..runs)
        .map(|i| {
            let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(i as u64));
            tclt_run(net, weights, seeds, window, &mut rng).spread()
        })
        .sum();
    total as f64 / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xACE)
    }

    #[test]
    fn weights_normalize_per_destination() {
        let net = InteractionNetwork::from_triples([(0, 2, 1), (0, 2, 3), (1, 2, 2), (3, 4, 5)]);
        let w = LtWeights::from_network(&net);
        assert!((w.weight(NodeId(0), NodeId(2)) - 2.0 / 3.0).abs() < 1e-12);
        assert!((w.weight(NodeId(1), NodeId(2)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(w.weight(NodeId(3), NodeId(4)), 1.0);
        assert_eq!(w.weight(NodeId(2), NodeId(0)), 0.0);
        assert_eq!(w.num_pairs(), 3);
    }

    #[test]
    fn sole_influencer_always_activates_target() {
        // v's only in-neighbour has weight 1 ≥ any θ ∈ (0, 1].
        let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 2, 2)]);
        let w = LtWeights::from_network(&net);
        for s in 0..20 {
            let mut r = SmallRng::seed_from_u64(s);
            let out = tclt_run(&net, &w, &[NodeId(0)], Window(10), &mut r);
            assert_eq!(out.spread(), 3, "seed {s}");
        }
    }

    #[test]
    fn window_blocks_late_pressure() {
        let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 2, 50)]);
        let w = LtWeights::from_network(&net);
        let out = tclt_run(&net, &w, &[NodeId(0)], Window(5), &mut rng());
        assert!(out.active[1]);
        assert!(!out.active[2]); // 50 − 1 > 5 from the inherited anchor
    }

    #[test]
    fn partial_influence_activates_probabilistically() {
        // Node 2 has two in-neighbours with weight 1/2 each; seeding only
        // one of them activates 2 iff θ_2 ≤ 0.5 — about half the runs.
        let net = InteractionNetwork::from_triples([(0, 2, 1), (1, 2, 2), (0, 2, 3)]);
        // weights: 0->2 = 2/3, 1->2 = 1/3.
        let w = LtWeights::from_network(&net);
        let avg = tclt_spread(&net, &w, &[NodeId(0)], Window(10), 600, 7);
        // Spread is 1 (seed) + P(θ ≤ 2/3).
        assert!((avg - (1.0 + 2.0 / 3.0)).abs() < 0.1, "avg {avg}");
    }

    #[test]
    fn each_pair_contributes_once() {
        // Repeated interactions from the same active neighbour must not
        // stack pressure: 0->2 has weight 2/3 < some thresholds even after
        // two interactions.
        let net = InteractionNetwork::from_triples([(0, 2, 1), (0, 2, 2), (1, 2, 3)]);
        let w = LtWeights::from_network(&net);
        let mut activated = 0;
        let runs = 400;
        for s in 0..runs as u64 {
            let mut r = SmallRng::seed_from_u64(s);
            if tclt_run(&net, &w, &[NodeId(0)], Window(10), &mut r).active[2] {
                activated += 1;
            }
        }
        let frac = activated as f64 / runs as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.1, "activation rate {frac}");
    }

    #[test]
    fn zero_runs_and_empty_seeds() {
        let net = InteractionNetwork::from_triples([(0, 1, 1)]);
        let w = LtWeights::from_network(&net);
        assert_eq!(tclt_spread(&net, &w, &[NodeId(0)], Window(5), 0, 1), 0.0);
        assert_eq!(tclt_run(&net, &w, &[], Window(5), &mut rng()).spread(), 0);
    }
}
