//! The Time-Constrained Information Cascade (TCIC) model — paper §2,
//! Algorithm 1 — and the Monte-Carlo harness that evaluates seed sets
//! under it.
//!
//! TCIC is the paper's ground-truth diffusion model for comparing seed
//! selections (Figure 5): a variation of the Independent Cascade model for
//! interaction networks. Seeds activate at their interactions; an active
//! node passes the infection along each of its interactions with a fixed
//! probability `p`, but only while the interaction still falls within the
//! window `ω` of the carried activation anchor.
//!
//! The simulator is a single forward chronological sweep over the
//! interaction list — `O(m)` per run — and fully deterministic given a seed
//! for the random number generator. [`MonteCarlo`] averages many runs,
//! optionally fanning replicates out across scoped `std::thread` workers
//! (replicate `i` always uses RNG seed `base_seed + i`, so the average is
//! identical whatever the thread count).
//!
//! # Example
//!
//! ```
//! use infprop_diffusion::{tcic_simulate_once, tcic_spread, TcicConfig};
//! use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 2, 2), (2, 3, 3)]);
//! // p = 1.0: the cascade is deterministic and reaches everyone in window.
//! let mut rng = SmallRng::seed_from_u64(7);
//! let infected = tcic_simulate_once(&net, &[NodeId(0)], Window(10), 1.0, &mut rng);
//! assert_eq!(infected, 4); // seed + 3 downstream nodes
//!
//! let cfg = TcicConfig::new(Window(10), 1.0).with_runs(8).with_seed(42);
//! assert_eq!(tcic_spread(&net, &[NodeId(0)], &cfg), 4.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod monte_carlo;
mod tcic;
mod tclt;

pub use monte_carlo::{tcic_spread, MonteCarlo, TcicConfig};
pub use tcic::{tcic_run, tcic_simulate_once, CascadeOutcome};
pub use tclt::{tclt_run, tclt_spread, LtWeights};
