//! A single TCIC cascade simulation (paper Algorithm 1).

use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};
use rand::Rng;

/// Full outcome of one cascade: which nodes ended up active and when each
/// activation was anchored.
#[derive(Clone, Debug)]
pub struct CascadeOutcome {
    /// `active[v]` — whether node `v` was infected.
    pub active: Vec<bool>,
    /// `anchor[v]` — the activation anchor timestamp carried by `v`
    /// (`None` when inactive or never anchored).
    pub anchor: Vec<Option<i64>>,
}

impl CascadeOutcome {
    /// Number of infected nodes (seeds included), Algorithm 1's return value.
    pub fn spread(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// The infected nodes in id order.
    pub fn infected(&self) -> Vec<NodeId> {
        self.active
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }
}

/// Runs Algorithm 1 once and returns the full [`CascadeOutcome`].
///
/// Implements the paper's pseudocode literally:
///
/// * every interaction of a seed re-activates it and re-anchors its clock
///   at that interaction's time (seeds never "expire");
/// * an active node `u` infects the destination of its interaction at time
///   `t` with probability `p`, **iff** `t − u.anchor ≤ ω`;
/// * on infection, `v` inherits `u`'s anchor when it is later than `v`'s
///   own, so downstream hops are constrained by the original activation
///   window, not re-anchored at each hop.
///
/// The interaction list is swept once in chronological order.
pub fn tcic_run(
    net: &InteractionNetwork,
    seeds: &[NodeId],
    window: Window,
    infection_prob: f64,
    rng: &mut impl Rng,
) -> CascadeOutcome {
    assert!(
        (0.0..=1.0).contains(&infection_prob),
        "infection probability must be within [0, 1], got {infection_prob}"
    );
    window.assert_valid();
    let n = net.num_nodes();
    let mut active = vec![false; n];
    let mut anchor: Vec<Option<i64>> = vec![None; n];
    let mut is_seed = vec![false; n];
    for &s in seeds {
        assert!(s.index() < n, "seed {s:?} outside node universe");
        is_seed[s.index()] = true;
    }

    for i in net.iter() {
        let (u, v, t) = (i.src.index(), i.dst.index(), i.time.get());
        if is_seed[u] {
            active[u] = true;
            anchor[u] = Some(t);
        }
        if active[u] {
            // xtask-allow: no-panic (activation always sets the anchor alongside the flag)
            let a = anchor[u].expect("active node always carries an anchor");
            if t - a <= window.get() {
                // Bernoulli(p) infection trial. Drawing even when v is
                // already active keeps the RNG stream aligned with the
                // paper's pseudocode (which rolls unconditionally).
                if infection_prob >= 1.0 || rng.gen::<f64>() < infection_prob {
                    active[v] = true;
                    if anchor[u] > anchor[v] {
                        anchor[v] = anchor[u];
                    }
                }
            }
        }
    }

    CascadeOutcome { active, anchor }
}

/// Runs Algorithm 1 once and returns only the spread (infected node count).
pub fn tcic_simulate_once(
    net: &InteractionNetwork,
    seeds: &[NodeId],
    window: Window,
    infection_prob: f64,
    rng: &mut impl Rng,
) -> usize {
    tcic_run(net, seeds, window, infection_prob, rng).spread()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn deterministic_chain_full_probability() {
        let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 2, 2), (2, 3, 3)]);
        let out = tcic_run(&net, &[NodeId(0)], Window(10), 1.0, &mut rng());
        assert_eq!(out.spread(), 4);
        assert_eq!(
            out.infected(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn window_cuts_off_late_hops() {
        // Seed anchored at t=1; hop at t=5 violates ω=3 (5-1 > 3).
        let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 2, 5)]);
        let out = tcic_run(&net, &[NodeId(0)], Window(3), 1.0, &mut rng());
        assert_eq!(out.spread(), 2); // 0 and 1 only
        assert!(!out.active[2]);
        // ω = 4 admits it (5 − 1 ≤ 4).
        let out = tcic_run(&net, &[NodeId(0)], Window(4), 1.0, &mut rng());
        assert_eq!(out.spread(), 3);
    }

    #[test]
    fn anchor_is_inherited_not_reset() {
        // 0 seeds at t=1; infects 1 at t=1 with anchor 1. The hop 1→2 at
        // t=10 is outside ω=5 of the inherited anchor even though it is
        // within 5 of node 1's own infection time... (same thing here), and
        // crucially 2→3 at t=12 must measure from anchor 1, not from t=10.
        let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 2, 4), (2, 3, 12)]);
        let out = tcic_run(&net, &[NodeId(0)], Window(5), 1.0, &mut rng());
        assert!(out.active[2]); // 4 − 1 ≤ 5
        assert!(!out.active[3]); // 12 − 1 > 5
        assert_eq!(out.anchor[2], Some(1)); // inherited from the seed
    }

    #[test]
    fn seed_reanchors_at_every_interaction() {
        // Seed 0 interacts at t=1 and t=100: its second interaction spreads
        // even though 100 − 1 ≫ ω, because seeds re-anchor (Algorithm 1).
        let net = InteractionNetwork::from_triples([(0, 1, 1), (0, 2, 100)]);
        let out = tcic_run(&net, &[NodeId(0)], Window(3), 1.0, &mut rng());
        assert!(out.active[1]);
        assert!(out.active[2]);
        assert_eq!(out.anchor[0], Some(100));
    }

    #[test]
    fn zero_probability_infects_only_seeds() {
        let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 2, 2)]);
        let out = tcic_run(&net, &[NodeId(0)], Window(10), 0.0, &mut rng());
        assert_eq!(out.spread(), 1);
        assert!(out.active[0]);
    }

    #[test]
    fn seeds_without_interactions_do_not_count() {
        // Node 3 is isolated (in-universe via min_nodes) and seeded: it never
        // appears as a source, so Algorithm 1 never activates it.
        let net = InteractionNetwork::builder()
            .extend([infprop_temporal_graph::Interaction::from_raw(0, 1, 1)])
            .with_min_nodes(4)
            .build();
        let out = tcic_run(&net, &[NodeId(3)], Window(5), 1.0, &mut rng());
        assert_eq!(out.spread(), 0);
    }

    #[test]
    fn multiple_seeds_union_their_cascades() {
        let net = InteractionNetwork::from_triples([(0, 1, 1), (2, 3, 2)]);
        let out = tcic_run(&net, &[NodeId(0), NodeId(2)], Window(5), 1.0, &mut rng());
        assert_eq!(out.spread(), 4);
    }

    #[test]
    fn same_rng_seed_reproduces_cascade() {
        let net =
            InteractionNetwork::from_triples((0..200u32).map(|i| (i % 20, (i + 7) % 20, i as i64)));
        let a = tcic_run(
            &net,
            &[NodeId(0)],
            Window(50),
            0.5,
            &mut SmallRng::seed_from_u64(1),
        );
        let b = tcic_run(
            &net,
            &[NodeId(0)],
            Window(50),
            0.5,
            &mut SmallRng::seed_from_u64(1),
        );
        assert_eq!(a.active, b.active);
        let c = tcic_run(
            &net,
            &[NodeId(0)],
            Window(50),
            0.5,
            &mut SmallRng::seed_from_u64(2),
        );
        // A different RNG seed yields a different cascade on this input
        // (pinned: 200 Bernoulli(0.5) trials collide with prob ~2^-200).
        assert_ne!(a.active, c.active);
    }

    #[test]
    #[should_panic(expected = "infection probability")]
    fn bad_probability_panics() {
        let net = InteractionNetwork::from_triples([(0, 1, 1)]);
        let _ = tcic_run(&net, &[NodeId(0)], Window(1), 1.5, &mut rng());
    }

    #[test]
    #[should_panic(expected = "outside node universe")]
    fn out_of_range_seed_panics() {
        let net = InteractionNetwork::from_triples([(0, 1, 1)]);
        let _ = tcic_run(&net, &[NodeId(9)], Window(1), 1.0, &mut rng());
    }
}
