//! Monte-Carlo averaging of TCIC cascades.

use crate::tcic::tcic_simulate_once;
use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for a Monte-Carlo TCIC evaluation.
#[derive(Clone, Copy, Debug)]
pub struct TcicConfig {
    /// Maximal window ω of the cascade model.
    pub window: Window,
    /// Per-interaction infection probability `p` (the paper uses 0.5 and 1.0).
    pub infection_prob: f64,
    /// Number of independent cascade replicates to average.
    pub runs: usize,
    /// Base RNG seed; replicate `i` uses `seed + i`, so results do not
    /// depend on the thread count.
    pub seed: u64,
    /// Worker threads (1 = run inline on the caller's thread).
    pub threads: usize,
}

impl TcicConfig {
    /// A config with the given window and infection probability,
    /// 100 replicates, seed 0, single-threaded.
    pub fn new(window: Window, infection_prob: f64) -> Self {
        TcicConfig {
            window,
            infection_prob,
            runs: 100,
            seed: 0,
            threads: 1,
        }
    }

    /// Sets the number of replicates.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the base RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// Reusable Monte-Carlo evaluator bound to one network.
pub struct MonteCarlo<'a> {
    net: &'a InteractionNetwork,
    config: TcicConfig,
}

impl<'a> MonteCarlo<'a> {
    /// Binds a configuration to a network.
    pub fn new(net: &'a InteractionNetwork, config: TcicConfig) -> Self {
        MonteCarlo { net, config }
    }

    /// Average spread of `seeds` over `config.runs` replicates.
    ///
    /// Deterministic in `(config.seed, config.runs)` regardless of
    /// `config.threads`: replicate `i` always draws from
    /// `SmallRng::seed_from_u64(seed + i)`.
    pub fn average_spread(&self, seeds: &[NodeId]) -> f64 {
        let cfg = &self.config;
        if cfg.runs == 0 {
            return 0.0;
        }
        // p = 1 is deterministic: one replicate suffices.
        let runs = if cfg.infection_prob >= 1.0 {
            1
        } else {
            cfg.runs
        };
        let total: u64 = if cfg.threads <= 1 || runs == 1 {
            (0..runs)
                .map(|i| {
                    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(i as u64));
                    tcic_simulate_once(self.net, seeds, cfg.window, cfg.infection_prob, &mut rng)
                        as u64
                })
                .sum()
        } else {
            self.parallel_total(seeds, runs)
        };
        total as f64 / runs as f64
    }

    fn parallel_total(&self, seeds: &[NodeId], runs: usize) -> u64 {
        let cfg = &self.config;
        let threads = cfg.threads.min(runs);
        let chunk = runs.div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(runs);
                    scope.spawn(move || {
                        (lo..hi)
                            .map(|i| {
                                let mut rng =
                                    SmallRng::seed_from_u64(cfg.seed.wrapping_add(i as u64));
                                tcic_simulate_once(
                                    self.net,
                                    seeds,
                                    cfg.window,
                                    cfg.infection_prob,
                                    &mut rng,
                                ) as u64
                            })
                            .sum::<u64>()
                    })
                })
                .collect();
            handles
                .into_iter()
                // xtask-allow: no-panic (re-raising a worker panic is the correct propagation)
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        })
    }
}

/// One-shot convenience: average TCIC spread of `seeds` under `config`.
pub fn tcic_spread(net: &InteractionNetwork, seeds: &[NodeId], config: &TcicConfig) -> f64 {
    MonteCarlo::new(net, *config).average_spread(seeds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> InteractionNetwork {
        InteractionNetwork::from_triples([(0, 1, 1), (1, 2, 2), (2, 3, 3)])
    }

    #[test]
    fn deterministic_at_full_probability() {
        let net = chain();
        let cfg = TcicConfig::new(Window(10), 1.0).with_runs(5);
        assert_eq!(tcic_spread(&net, &[NodeId(0)], &cfg), 4.0);
    }

    #[test]
    fn average_lies_between_extremes() {
        let net = chain();
        let cfg = TcicConfig::new(Window(10), 0.5).with_runs(400).with_seed(7);
        let avg = tcic_spread(&net, &[NodeId(0)], &cfg);
        assert!((1.0..=4.0).contains(&avg), "avg {avg}");
        // Expected value: 1 + 1/2 + 1/4 + 1/8 = 1.875; allow wide noise.
        assert!((avg - 1.875).abs() < 0.25, "avg {avg}");
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let net = InteractionNetwork::from_triples(
            (0..300u32).map(|i| (i % 30, (i * 7 + 1) % 30, i as i64)),
        );
        let base = TcicConfig::new(Window(100), 0.5).with_runs(64).with_seed(3);
        let serial = tcic_spread(&net, &[NodeId(0), NodeId(5)], &base.with_threads(1));
        let parallel = tcic_spread(&net, &[NodeId(0), NodeId(5)], &base.with_threads(4));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_runs_yields_zero() {
        let net = chain();
        let cfg = TcicConfig::new(Window(10), 0.5).with_runs(0);
        assert_eq!(tcic_spread(&net, &[NodeId(0)], &cfg), 0.0);
    }

    #[test]
    fn empty_seed_set_spreads_nothing() {
        let net = chain();
        let cfg = TcicConfig::new(Window(10), 1.0);
        assert_eq!(tcic_spread(&net, &[], &cfg), 0.0);
    }

    #[test]
    fn more_seeds_never_hurt_on_average() {
        let net = InteractionNetwork::from_triples(
            (0..200u32).map(|i| (i % 25, (i * 3 + 2) % 25, i as i64)),
        );
        let cfg = TcicConfig::new(Window(80), 0.5)
            .with_runs(200)
            .with_seed(11);
        let one = tcic_spread(&net, &[NodeId(0)], &cfg);
        let two = tcic_spread(&net, &[NodeId(0), NodeId(1)], &cfg);
        assert!(two + 1e-9 >= one, "one={one} two={two}");
    }
}
