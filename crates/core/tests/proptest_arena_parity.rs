//! Load-path parity property tests for the zero-copy arena loaders: an
//! oracle loaded from disk through [`FrozenExactOracle::load`] /
//! [`FrozenApproxOracle::load`] (an `ArenaBytes` mapping — `mmap(2)` under
//! `--features mmap`, one aligned bulk read otherwise) must answer every
//! query **bit-identically** to the same file decoded through the
//! streaming `read_from` path *and* to the live oracle it was frozen
//! from, at 1, 2, and 8 threads.
//!
//! This is the guard behind serving arenas zero-copy: the server borrows
//! offsets/entries/registers straight out of the mapping, so any layout
//! or alignment mistake would show up here as a parity break between the
//! three load paths.

use infprop_core::{ApproxIrs, ExactIrs, FrozenApproxOracle, FrozenExactOracle, InfluenceOracle};
use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Random networks with timestamp ties (same shape as the frozen-parity
/// suite, so the two suites stress the same layouts).
fn networks() -> impl Strategy<Value = InteractionNetwork> {
    prop::collection::vec((0u32..16, 0u32..16, 0i64..30), 1..70)
        .prop_map(InteractionNetwork::from_triples)
}

/// Seed sets drawn over the same node-id range as the networks.
fn seed_sets() -> impl Strategy<Value = Vec<Vec<NodeId>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..16).prop_map(NodeId), 0..6),
        0..12,
    )
}

/// A per-test scratch directory under the system tmpdir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("infprop-arena-parity-{}-{tag}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Writes `write` into `dir/name` with the tmp+rename discipline the
/// persist layer uses (the mmap safety argument rests on never mutating a
/// published arena file in place).
fn publish(scratch: &Scratch, name: &str, bytes: &[u8]) -> PathBuf {
    let tmp = scratch.file(&format!("{name}.tmp"));
    let path = scratch.file(name);
    fs::write(&tmp, bytes).unwrap();
    fs::rename(&tmp, &path).unwrap();
    path
}

proptest! {
    /// Exact arenas: mapped load == streamed load == live oracle, for
    /// `influence_many`, `individuals`, and per-node summaries, at every
    /// thread count.
    #[test]
    fn exact_load_paths_bit_identical(
        net in networks(),
        seeds in seed_sets(),
        w in 1i64..40,
    ) {
        let n = net.num_nodes() as u32;
        let seeds: Vec<Vec<NodeId>> = seeds
            .into_iter()
            .map(|s| s.into_iter().filter(|v| v.0 < n).collect())
            .collect();
        let exact = ExactIrs::compute(&net, Window(w));
        let live = exact.oracle();
        let frozen = exact.freeze();

        let mut image = Vec::new();
        frozen.write_to(&mut image).unwrap();
        let scratch = Scratch::new("exact");
        let path = publish(&scratch, "arena.ipfe", &image);

        let mapped = FrozenExactOracle::load(&path).unwrap();
        let streamed = FrozenExactOracle::read_from(&mut image.as_slice()).unwrap();
        prop_assert_eq!(mapped.validate(), Ok(()));

        let reference: Vec<f64> = seeds.iter().map(|s| live.influence(s)).collect();
        let live_ind: Vec<f64> = (0..live.num_nodes())
            .map(|i| live.individual(NodeId::from_index(i)))
            .collect();
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&mapped.influence_many_frozen(&seeds, threads), &reference);
            prop_assert_eq!(&streamed.influence_many_frozen(&seeds, threads), &reference);
            prop_assert_eq!(&mapped.individuals(threads), &live_ind);
            prop_assert_eq!(&streamed.individuals(threads), &live_ind);
        }
        for i in 0..mapped.num_nodes() {
            let v = NodeId::from_index(i);
            prop_assert_eq!(mapped.summary(v).to_vec(), streamed.summary(v).to_vec());
        }
    }

    /// Approx (register) arenas: mapped load == streamed load == live
    /// sketch oracle, bit for bit, at every thread count.
    #[test]
    fn approx_load_paths_bit_identical(
        net in networks(),
        seeds in seed_sets(),
        w in 1i64..40,
    ) {
        let n = net.num_nodes() as u32;
        let seeds: Vec<Vec<NodeId>> = seeds
            .into_iter()
            .map(|s| s.into_iter().filter(|v| v.0 < n).collect())
            .collect();
        let approx = ApproxIrs::compute_with_precision(&net, Window(w), 5);
        let live = approx.oracle();
        let frozen = approx.freeze();

        let mut image = Vec::new();
        frozen.write_to(&mut image).unwrap();
        let scratch = Scratch::new("approx");
        let path = publish(&scratch, "arena.ipfa", &image);

        let mapped = FrozenApproxOracle::load(&path).unwrap();
        let streamed = FrozenApproxOracle::read_from(&mut image.as_slice()).unwrap();
        prop_assert_eq!(mapped.validate(), Ok(()));

        let reference: Vec<f64> = seeds.iter().map(|s| live.influence(s)).collect();
        let live_ind: Vec<f64> = (0..live.num_nodes())
            .map(|i| live.individual(NodeId::from_index(i)))
            .collect();
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&mapped.influence_many_frozen(&seeds, threads), &reference);
            prop_assert_eq!(&streamed.influence_many_frozen(&seeds, threads), &reference);
            prop_assert_eq!(&mapped.individuals(threads), &live_ind);
            prop_assert_eq!(&streamed.individuals(threads), &live_ind);
        }
    }
}

/// The mapped loader actually maps when the feature is on: `load` must
/// report a borrowed (mmap) arena with `--features mmap` and an owned one
/// otherwise, and either way the image bytes must equal the file.
#[test]
fn load_backend_matches_build_features() {
    let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 2, 2), (2, 3, 3)]);
    let frozen = ExactIrs::compute(&net, Window(5)).freeze();
    let mut image = Vec::new();
    frozen.write_to(&mut image).unwrap();
    let scratch = Scratch::new("backend");
    let path = publish(&scratch, "arena.ipfe", &image);
    let mapped = FrozenExactOracle::load(&path).unwrap();
    assert_eq!(mapped.image().as_slice(), image.as_slice());
    assert_eq!(mapped.image().is_mapped(), cfg!(feature = "mmap"));
}
