//! Parity property tests for the vectorized frozen query kernel (PR 8):
//!
//! * the wide-lane merge paths — scalar reference, 16-byte lane blocks,
//!   portable SWAR words, and the optional AVX2 dispatch — must write
//!   **bit-identical** accumulator bytes for arbitrary inputs and lengths
//!   (including ragged tails the arenas never produce);
//! * the true batch API (`influence_many_frozen`) must answer
//!   bit-identically to per-query `influence` on the frozen arena and to
//!   the live oracle, at 1, 2, and 8 threads, for arbitrary tie-heavy
//!   networks and seed sets with duplicates — including precision 4, where
//!   `β = 16` is smaller than the 64-byte merge tile.

use infprop_core::kernel::{
    max_u8x8, merge_max, merge_max_lanes, merge_max_scalar, merge_max_swar, try_merge_max_avx2,
};
use infprop_core::{ApproxIrs, ExactIrs, InfluenceOracle, LayeredApproxOracle};
use infprop_temporal_graph::{Interaction, InteractionNetwork, NodeId, Window};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Random networks with timestamp ties.
fn networks() -> impl Strategy<Value = InteractionNetwork> {
    prop::collection::vec((0u32..16, 0u32..16, 0i64..30), 1..70)
        .prop_map(InteractionNetwork::from_triples)
}

/// Seed sets over the same id range, duplicates allowed (the batch path
/// dedups; answers must not change).
fn seed_sets() -> impl Strategy<Value = Vec<Vec<NodeId>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..16).prop_map(NodeId), 0..8),
        0..14,
    )
}

proptest! {
    /// All merge paths agree bytewise with the scalar reference for any
    /// accumulator/source contents and any (possibly ragged) length.
    #[test]
    fn merge_paths_are_bit_identical(
        acc in prop::collection::vec(any::<u8>(), 0..200),
        src in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut scalar = acc.clone();
        merge_max_scalar(&mut scalar, &src);
        let mut swar = acc.clone();
        merge_max_swar(&mut swar, &src);
        prop_assert_eq!(&swar, &scalar);
        let mut lanes = acc.clone();
        merge_max_lanes(&mut lanes, &src);
        prop_assert_eq!(&lanes, &scalar);
        let mut dispatched = acc.clone();
        merge_max(&mut dispatched, &src);
        prop_assert_eq!(&dispatched, &scalar);
        let mut avx2 = acc.clone();
        if try_merge_max_avx2(&mut avx2, &src) {
            prop_assert_eq!(&avx2, &scalar);
        } else {
            // Compiled out or unsupported CPU: acc must be untouched.
            prop_assert_eq!(&avx2, &acc);
        }
    }

    /// The packed SWAR byte-max equals the lane-by-lane scalar max for
    /// arbitrary words (exercises every high-bit/low-bits combination the
    /// guard-bit subtraction must get right).
    #[test]
    fn swar_word_max_matches_scalar_lanes(x in any::<u64>(), y in any::<u64>()) {
        let got = max_u8x8(x, y).to_le_bytes();
        let xb = x.to_le_bytes();
        let yb = y.to_le_bytes();
        for i in 0..8 {
            prop_assert_eq!(got[i], xb[i].max(yb[i]), "lane {}", i);
        }
    }

    /// Frozen batch answers == per-query frozen answers == live oracle
    /// answers, bitwise, at every thread count and at both a precision
    /// where β fills multiple tiles (9) and one where β = 16 < TILE (4).
    #[test]
    fn frozen_batch_matches_per_query_and_live(
        net in networks(),
        seeds in seed_sets(),
        w in 1i64..40,
    ) {
        let n = net.num_nodes() as u32;
        let seeds: Vec<Vec<NodeId>> = seeds
            .into_iter()
            .map(|s| s.into_iter().filter(|v| v.0 < n).collect())
            .collect();
        for precision in [4u8, 9] {
            let irs = ApproxIrs::compute_with_precision(&net, Window(w), precision);
            let frozen = irs.freeze();
            let live = irs.oracle();
            let per_query: Vec<u64> = seeds
                .iter()
                .map(|s| frozen.influence(s).to_bits())
                .collect();
            let live_ref: Vec<u64> = seeds
                .iter()
                .map(|s| live.influence(s).to_bits())
                .collect();
            prop_assert_eq!(&per_query, &live_ref, "frozen != live, k={}", precision);
            for threads in THREAD_COUNTS {
                let batch: Vec<u64> = frozen
                    .influence_many_frozen(&seeds, threads)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                prop_assert_eq!(&batch, &per_query, "k={} threads={}", precision, threads);
            }
        }
    }

    /// The exact frozen batch (with its sorted-slice fast paths for ≤ 2
    /// deduplicated seeds) matches per-query answers at every thread count.
    #[test]
    fn exact_frozen_batch_matches_per_query(
        net in networks(),
        seeds in seed_sets(),
        w in 1i64..40,
    ) {
        let n = net.num_nodes() as u32;
        let seeds: Vec<Vec<NodeId>> = seeds
            .into_iter()
            .map(|s| s.into_iter().filter(|v| v.0 < n).collect())
            .collect();
        let frozen = ExactIrs::compute(&net, Window(w)).freeze();
        let per_query: Vec<u64> = seeds
            .iter()
            .map(|s| frozen.influence(s).to_bits())
            .collect();
        for threads in THREAD_COUNTS {
            let batch: Vec<u64> = frozen
                .influence_many_frozen(&seeds, threads)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            prop_assert_eq!(&batch, &per_query, "threads={}", threads);
        }
    }

    /// The layered (base ⊕ overlay) batch path stays dominance-correct:
    /// after splitting history into a frozen base and appended delta, the
    /// batch answers equal per-query layered answers *and* a from-scratch
    /// frozen arena over the full history, bitwise.
    #[test]
    fn layered_batch_matches_scratch(
        triples in prop::collection::vec((0u32..12, 0u32..12, 0i64..40), 2..60),
        seeds in seed_sets(),
        w in 1i64..20,
        split_pct in 0usize..100,
    ) {
        let mut sorted = triples;
        sorted.sort_by_key(|&(_, _, t)| t);
        let split = sorted.len() * split_pct / 100;
        let net = InteractionNetwork::from_triples(sorted.iter().copied());
        let n = net.num_nodes() as u32;
        let seeds: Vec<Vec<NodeId>> = seeds
            .into_iter()
            .map(|s| s.into_iter().filter(|v| v.0 < n).collect())
            .collect();
        let base_net = InteractionNetwork::from_triples(sorted[..split].iter().copied());
        let mut layered = LayeredApproxOracle::from_network_with_precision(&base_net, Window(w), 5);
        for &(s, d, t) in &sorted[split..] {
            layered.append(Interaction::from_raw(s, d, t)).unwrap();
        }
        layered.refresh();
        let scratch = ApproxIrs::compute_with_precision(&net, Window(w), 5).freeze();
        let per_query: Vec<u64> = seeds
            .iter()
            .map(|s| layered.influence(s).to_bits())
            .collect();
        let scratch_ref: Vec<u64> = seeds
            .iter()
            .map(|s| scratch.influence(s).to_bits())
            .collect();
        prop_assert_eq!(&per_query, &scratch_ref, "layered != scratch");
        for threads in THREAD_COUNTS {
            let batch: Vec<u64> = layered
                .influence_many_frozen(&seeds, threads)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            prop_assert_eq!(&batch, &per_query, "threads={}", threads);
        }
    }
}
