//! Observability-parity property tests: running the engine, oracles, and
//! greedy selection with a live [`MetricsRecorder`] must produce results
//! byte-identical to the default [`NoopRecorder`] path — instrumentation
//! observes, it never steers. Sweeps run at 1/2/8 worker threads so the
//! parallel chunking instrumentation is exercised too.

use infprop_core::engine::{ExactStore, ReversePassEngine, VhllStore};
use infprop_core::{
    greedy_top_k_recorded, greedy_top_k_threads, ApproxIrs, ExactIrs, InfluenceOracle,
    MetricsRecorder,
};
use infprop_temporal_graph::{InteractionNetwork, Window};
use proptest::prelude::*;

/// Tie-heavy networks: up to 12 nodes, up to 80 interactions, timestamps in
/// `0..6`, so equal-timestamp batches dominate and every merge path runs.
fn tie_heavy_networks() -> impl Strategy<Value = InteractionNetwork> {
    prop::collection::vec((0u32..12, 0u32..12, 0i64..6), 0..80)
        .prop_map(InteractionNetwork::from_triples)
}

proptest! {
    /// Exact backend: recorded and noop runs yield identical summaries,
    /// and the recorded run actually counted the work it saw.
    #[test]
    fn exact_recorded_matches_noop(net in tie_heavy_networks(), w in 1i64..12) {
        let window = Window(w);
        let plain = ExactIrs::compute(&net, window);
        let rec = MetricsRecorder::new();
        let recorded = ExactIrs::compute_recorded(&net, window, &rec);
        for u in net.node_ids() {
            prop_assert_eq!(recorded.summary(u), plain.summary(u));
        }
        let snap = rec.snapshot();
        let interactions = snap
            .counters
            .iter()
            .find(|(name, _)| name == "engine.interactions")
            .map_or(0, |&(_, v)| v);
        prop_assert_eq!(interactions, net.num_interactions() as u64);
    }

    /// vHLL backend: recorded and noop runs yield identical sketches.
    #[test]
    fn vhll_recorded_matches_noop(net in tie_heavy_networks(), w in 1i64..12) {
        let window = Window(w);
        let precision = 6u8;
        let plain = ApproxIrs::compute_with_precision(&net, window, precision);
        let rec = MetricsRecorder::new();
        let recorded = ApproxIrs::compute_with_precision_recorded(&net, window, precision, &rec);
        for u in net.node_ids() {
            prop_assert_eq!(recorded.sketch(u), plain.sketch(u));
        }
    }

    /// Generic engine front-end: a recorded run over a recorded store is
    /// entry-identical to the noop-store run.
    #[test]
    fn engine_recorded_store_parity(net in tie_heavy_networks(), w in 1i64..12) {
        let window = Window(w);
        let rec = MetricsRecorder::new();
        let noop = ReversePassEngine::run(
            &net,
            window,
            ExactStore::with_nodes(net.num_nodes()),
        );
        let live = ReversePassEngine::run_recorded(
            &net,
            window,
            ExactStore::with_nodes_recorded(net.num_nodes(), &rec),
            &rec,
        );
        prop_assert_eq!(live.summaries(), noop.summaries());

        let noop_v = ReversePassEngine::run(
            &net,
            window,
            VhllStore::with_nodes(6, net.num_nodes()),
        );
        let live_v = ReversePassEngine::run_recorded(
            &net,
            window,
            VhllStore::with_nodes_recorded(6, net.num_nodes(), &rec),
            &rec,
        );
        prop_assert_eq!(live_v.sketches(), noop_v.sketches());
    }

    /// Oracle sweeps and greedy selection: recorded vs noop, serial and
    /// parallel (1/2/8 threads) all byte-identical.
    #[test]
    fn oracle_and_greedy_recorded_parity(net in tie_heavy_networks(), w in 1i64..12) {
        let window = Window(w);
        let irs = ExactIrs::compute(&net, window);
        let oracle = irs.oracle();
        let rec = MetricsRecorder::new();
        let base = oracle.individuals(1);
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(oracle.individuals_recorded(threads, &rec), base.clone());
        }
        let k = 4usize;
        let noop_picks = greedy_top_k_threads(&oracle, k, 2);
        for threads in [1usize, 2, 8] {
            let live_picks = greedy_top_k_recorded(&oracle, k, threads, &rec);
            prop_assert_eq!(live_picks.len(), noop_picks.len());
            for (a, b) in live_picks.iter().zip(noop_picks.iter()) {
                prop_assert_eq!(a.node, b.node);
                prop_assert_eq!(a.marginal.to_bits(), b.marginal.to_bits());
                prop_assert_eq!(a.cumulative.to_bits(), b.cumulative.to_bits());
            }
        }
    }
}
