//! Traced/untraced parity property tests for the causal tracing subsystem:
//! threading a live [`RingTracer`] through the frozen batch query kernels,
//! the layered delta-overlay oracles, LSM-style compaction, and greedy seed
//! selection must not perturb a single bit of any result, at 1, 2, and 8
//! threads, on arbitrary tie-heavy networks. Tracing observes; it never
//! participates.
//!
//! A second property checks well-formedness of what tracing observes: every
//! harvested ring exports a Chrome-trace JSON document that passes the
//! crate's own structural validator (balanced per-lane begin/end stacks,
//! registry-known event names, parents that refer to begun spans).

use infprop_core::{
    greedy_top_k_threads, greedy_top_k_traced, trace_to_json, validate_trace_json, ApproxIrs,
    ExactIrs, InfluenceOracle, LayeredApproxOracle, LayeredExactOracle, NoopRecorder, NoopTracer,
    RingTracer,
};
use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const PRECISION: u8 = 5;

/// Random networks with timestamp ties.
fn networks() -> impl Strategy<Value = InteractionNetwork> {
    prop::collection::vec((0u32..12, 0u32..12, 0i64..20), 1..60)
        .prop_map(InteractionNetwork::from_triples)
}

/// Seed sets drawn over the same node-id range as the networks.
fn seed_sets() -> impl Strategy<Value = Vec<Vec<NodeId>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..12).prop_map(NodeId), 0..5),
        0..10,
    )
}

/// Clamps generated seed sets to the network universe.
fn clamp_seeds(seeds: Vec<Vec<NodeId>>, n: usize) -> Vec<Vec<NodeId>> {
    seeds
        .into_iter()
        .map(|s| s.into_iter().filter(|v| v.index() < n).collect())
        .collect()
}

/// Asserts two batch-query answer vectors are bit-identical.
fn assert_bits_eq(traced: &[f64], untraced: &[f64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(traced.len(), untraced.len());
    for (t, u) in traced.iter().zip(untraced) {
        prop_assert_eq!(t.to_bits(), u.to_bits());
    }
    Ok(())
}

/// Harvests a ring and asserts the exported Chrome trace passes the
/// structural validator with at least `min_spans` matched span pairs.
fn assert_ring_well_formed(ring: &RingTracer, min_spans: usize) -> Result<(), TestCaseError> {
    let records = ring.records();
    let json = trace_to_json(&records);
    let stats = validate_trace_json(&json);
    prop_assert!(
        stats.is_ok(),
        "exported trace failed validation: {:?}",
        stats.as_ref().err()
    );
    let stats = stats.unwrap();
    prop_assert!(
        stats.spans >= min_spans,
        "expected at least {} spans, validator saw {}",
        min_spans,
        stats.spans
    );
    Ok(())
}

proptest! {
    /// Frozen batch queries answer bit-identically with a live ring tracer
    /// attached, on both backends, at every thread count — and each traced
    /// run's harvest exports a structurally valid trace with one
    /// `query.element` span per batch element.
    #[test]
    fn traced_frozen_batch_queries_match_untraced(
        net in networks(),
        seeds in seed_sets(),
        w in 1i64..25,
    ) {
        let seeds = clamp_seeds(seeds, net.num_nodes());
        let exact = ExactIrs::compute(&net, Window(w));
        let approx = ApproxIrs::compute_with_precision(&net, Window(w), PRECISION);
        let fe = exact.freeze();
        let fa = approx.freeze();

        for threads in THREAD_COUNTS {
            let e_ref = fe.influence_many(&seeds, threads);
            let a_ref = fa.influence_many(&seeds, threads);

            // NoopTracer threading is the existing call path — identical by
            // construction, asserted anyway as the monomorphization anchor.
            let e_noop =
                fe.influence_many_frozen_traced(&seeds, threads, &NoopRecorder, NoopTracer);
            assert_bits_eq(&e_noop, &e_ref)?;

            let ring = RingTracer::new(threads);
            let e_traced =
                fe.influence_many_frozen_traced(&seeds, threads, &NoopRecorder, ring.lane(0));
            assert_bits_eq(&e_traced, &e_ref)?;
            // One query.batch span plus one query.element span per element.
            assert_ring_well_formed(&ring, 1 + seeds.len())?;

            let ring = RingTracer::new(threads);
            let a_traced =
                fa.influence_many_frozen_traced(&seeds, threads, &NoopRecorder, ring.lane(0));
            assert_bits_eq(&a_traced, &a_ref)?;
            assert_ring_well_formed(&ring, 1 + seeds.len())?;
        }
    }

    /// Layered oracles (delta overlay over a frozen base) answer batch
    /// queries bit-identically under tracing, and a traced compaction
    /// produces an oracle whose answers match an untraced compaction's,
    /// at every thread count.
    #[test]
    fn traced_layered_queries_and_compaction_match_untraced(
        net in networks(),
        seeds in seed_sets(),
        w in 1i64..25,
        split_seed in any::<usize>(),
    ) {
        let w = Window(w);
        let ints = net.interactions();
        let split = split_seed % (ints.len() + 1);
        let seeds = clamp_seeds(seeds, net.num_nodes());
        let base = InteractionNetwork::from_triples(
            ints[..split].iter().map(|i| (i.src.0, i.dst.0, i.time.get())),
        );

        let build_exact = || {
            let mut layered = LayeredExactOracle::from_network(&base, w);
            for &i in &ints[split..] {
                layered.append(i).expect("suffix appends move forward in time");
            }
            layered.refresh();
            layered
        };
        let build_approx = || {
            let mut layered = LayeredApproxOracle::from_network_with_precision(&base, w, PRECISION);
            for &i in &ints[split..] {
                layered.append(i).expect("suffix appends move forward in time");
            }
            layered.refresh();
            layered
        };

        let mut exact_ref = build_exact();
        let mut exact_traced = build_exact();
        let mut approx_ref = build_approx();
        let mut approx_traced = build_approx();

        for threads in THREAD_COUNTS {
            let ring = RingTracer::new(threads);
            let e_ref = exact_ref.influence_many(&seeds, threads);
            let e_traced = exact_traced
                .influence_many_frozen_traced(&seeds, threads, &NoopRecorder, ring.lane(0));
            assert_bits_eq(&e_traced, &e_ref)?;
            assert_ring_well_formed(&ring, 1 + seeds.len())?;

            let ring = RingTracer::new(threads);
            let a_ref = approx_ref.influence_many(&seeds, threads);
            let a_traced = approx_traced
                .influence_many_frozen_traced(&seeds, threads, &NoopRecorder, ring.lane(0));
            assert_bits_eq(&a_traced, &a_ref)?;
            assert_ring_well_formed(&ring, 1 + seeds.len())?;
        }

        // Traced compaction: same base arena, same answers afterwards. The
        // compact.run span nests a rebuild and an overlay refresh.
        let ring = RingTracer::new(1);
        exact_ref.compact();
        exact_traced.compact_traced(&NoopRecorder, ring.lane(0));
        assert_ring_well_formed(&ring, 3)?;
        prop_assert_eq!(exact_traced.base().offsets(), exact_ref.base().offsets());
        prop_assert_eq!(exact_traced.base().entries(), exact_ref.base().entries());

        let ring = RingTracer::new(1);
        approx_ref.compact();
        approx_traced.compact_traced(&NoopRecorder, ring.lane(0));
        assert_ring_well_formed(&ring, 3)?;
        prop_assert_eq!(
            approx_traced.base().registers(),
            approx_ref.base().registers()
        );

        for threads in THREAD_COUNTS {
            let e_ref = exact_ref.influence_many(&seeds, threads);
            let e_traced = exact_traced.influence_many(&seeds, threads);
            assert_bits_eq(&e_traced, &e_ref)?;
            let a_ref = approx_ref.influence_many(&seeds, threads);
            let a_traced = approx_traced.influence_many(&seeds, threads);
            assert_bits_eq(&a_traced, &a_ref)?;
        }
    }

    /// Greedy seed selection under a live tracer picks the same seeds with
    /// the same gains as the untraced thread-fanned path, on both backends,
    /// at every thread count — and emits a well-formed greedy.selection
    /// span tree with one greedy.round instant per fresh pick.
    #[test]
    fn traced_greedy_matches_untraced(net in networks(), w in 1i64..25, k in 0usize..6) {
        let exact = ExactIrs::compute(&net, Window(w));
        let approx = ApproxIrs::compute_with_precision(&net, Window(w), PRECISION);
        let fe = exact.freeze();
        let fa = approx.freeze();

        for threads in THREAD_COUNTS {
            let e_ref = greedy_top_k_threads(&fe, k, threads);
            let a_ref = greedy_top_k_threads(&fa, k, threads);

            let ring = RingTracer::new(threads);
            let e_traced = greedy_top_k_traced(&fe, k, threads, &NoopRecorder, ring.lane(0));
            prop_assert_eq!(&e_traced, &e_ref);
            assert_ring_well_formed(&ring, 1)?;

            let ring = RingTracer::new(threads);
            let a_traced = greedy_top_k_traced(&fa, k, threads, &NoopRecorder, ring.lane(0));
            prop_assert_eq!(&a_traced, &a_ref);
            assert_ring_well_formed(&ring, 1)?;
        }
    }
}
