//! Property tests for the paper-invariant verification layer
//! (`infprop_core::invariants`): summaries produced by the real algorithms
//! must always pass the validators, and corrupted-by-construction summaries
//! must always be rejected.

use infprop_core::invariants::{self, validate_exact_summaries, InvariantViolation};
use infprop_core::{
    ApproxIrs, ApproxIrsStream, ExactIrs, ExactIrsStream, ExactStore, ExactSummary,
    ReversePassEngine, SummaryStore, VhllStore,
};
use infprop_temporal_graph::{Interaction, InteractionNetwork, NodeId, Timestamp, Window};
use proptest::prelude::*;

/// Random networks with timestamp ties (exercises the two-phase batch path).
fn networks() -> impl Strategy<Value = InteractionNetwork> {
    prop::collection::vec((0u32..14, 0u32..14, 0i64..40), 0..60)
        .prop_map(InteractionNetwork::from_triples)
}

proptest! {
    /// Exact summaries from random streams always satisfy self-exclusion
    /// and the frontier bound — via the wrapper's `validate()`, the store's
    /// trait method, and the module-level entry point.
    #[test]
    fn exact_random_streams_never_trip_validators(net in networks(), w in 1i64..50) {
        let irs = ExactIrs::compute(&net, Window(w));
        prop_assert_eq!(irs.validate(), Ok(()));

        let store = ReversePassEngine::run(&net, Window(w), ExactStore::with_nodes(net.num_nodes()));
        let frontier = net.interactions().first().map(|i| i.time);
        prop_assert_eq!(store.validate(frontier), Ok(()));
        prop_assert_eq!(invariants::validate(&store, frontier), Ok(()));
    }

    /// Sketched summaries from random streams always keep their dominance
    /// chains and the frontier bound.
    #[test]
    fn approx_random_streams_never_trip_validators(net in networks(), w in 1i64..50) {
        let irs = ApproxIrs::compute_with_precision(&net, Window(w), 4);
        prop_assert_eq!(irs.validate(), Ok(()));

        let store = ReversePassEngine::run(
            &net,
            Window(w),
            VhllStore::with_nodes(4, net.num_nodes()),
        );
        let frontier = net.interactions().first().map(|i| i.time);
        prop_assert_eq!(invariants::validate(&store, frontier), Ok(()));
    }

    /// The streaming builders maintain the invariants at every prefix of the
    /// (reverse-ordered) stream, not just at the end.
    #[test]
    fn streaming_prefixes_never_trip_validators(net in networks(), w in 1i64..50) {
        let mut exact = ExactIrsStream::new(Window(w));
        let mut approx = ApproxIrsStream::with_precision(Window(w), 4);
        for i in net.iter_reverse() {
            exact.push(*i).expect("reverse iteration is ordered");
            approx.push(*i).expect("reverse iteration is ordered");
        }
        prop_assert_eq!(exact.finish().validate(), Ok(()));
        prop_assert_eq!(approx.finish().validate(), Ok(()));
    }

    /// Feeding the stream forwards (increasing time) is rejected by the
    /// engine's ordering contract as soon as the time increases.
    #[test]
    fn out_of_order_pushes_are_rejected(t0 in 0i64..100, dt in 1i64..100) {
        let mut s = ExactIrsStream::new(Window(10));
        prop_assert!(s.push(Interaction::from_raw(0, 1, t0)).is_ok());
        prop_assert!(s.push(Interaction::from_raw(1, 2, t0 + dt)).is_err());
    }

    /// Corrupted-by-construction exact summaries are always rejected: a
    /// self-entry planted at any node is found and named.
    #[test]
    fn planted_self_entry_is_always_found(
        n in 1usize..12,
        victim_seed in any::<usize>(),
        lambda in 0i64..100,
    ) {
        let victim = victim_seed % n;
        let mut summaries: Vec<ExactSummary> = vec![Vec::new(); n];
        summaries[victim].push((NodeId::from_index(victim), Timestamp(lambda)));
        prop_assert_eq!(
            validate_exact_summaries(&summaries, None),
            Err(InvariantViolation::SelfEntry { node: NodeId::from_index(victim) })
        );
    }

    /// Corrupted-by-construction end times are always rejected: any entry
    /// pushed below the frontier trips the stale-end-time check.
    #[test]
    fn planted_stale_end_time_is_always_found(
        frontier in 0i64..100,
        below in 1i64..50,
    ) {
        let summary: ExactSummary = vec![(NodeId(1), Timestamp(frontier - below))];
        let store = ExactStore::from_summaries(vec![summary]);
        prop_assert_eq!(
            invariants::validate(&store, Some(Timestamp(frontier))),
            Err(InvariantViolation::StaleEndTime {
                node: NodeId(0),
                end_time: Timestamp(frontier - below),
                frontier: Timestamp(frontier),
            })
        );
    }
}
