//! Zero-overhead smoke test: the [`NoopRecorder`] path must never touch the
//! heap. A counting global allocator wraps the system allocator; driving
//! every recorder entry point through a `NoopRecorder` in a hot loop must
//! leave the allocation counter untouched. This is the observable half of
//! the zero-cost claim — the other half (identical results) is covered by
//! the `proptest_obs_parity` suite.

use infprop_core::obs::{Counter, Gauge, Hist, NoopRecorder, Recorder, Span};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator with an allocation counter bolted on.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
#[allow(clippy::assertions_on_constants)]
fn noop_recorder_is_zero_sized() {
    assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
    assert!(!NoopRecorder::ENABLED);
}

#[test]
fn noop_recorder_calls_never_allocate() {
    let rec = NoopRecorder;
    // Warm up once so any lazy runtime setup (test harness buffers etc.)
    // cannot be misattributed to the recorder.
    rec.add(Counter::EngineInteractions, 1);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..100_000u64 {
        rec.add(Counter::EngineInteractions, i);
        rec.add(Counter::ExactMergeCalls, 1);
        rec.gauge(Gauge::StoreHeapBytes, i);
        rec.record(Hist::ExactMergeSrcLen, i);
        let start = rec.span_start();
        rec.span_end(Span::EngineRun, start);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "NoopRecorder performed {} heap allocations in the hot loop",
        after - before
    );
}

#[test]
fn noop_span_start_skips_the_clock() {
    let rec = NoopRecorder;
    let start = rec.span_start();
    // A disabled span carries no timestamp at all, so there is nothing to
    // compute at span_end either.
    assert_eq!(start.elapsed_ns(), None);
}
