//! Frozen/live parity property tests for the CSR oracle arenas
//! (`FrozenExactOracle`, `FrozenApproxOracle`): every query-path operation —
//! `individuals`, `influence_many`, and greedy seed selection — must return
//! results **byte-identical** to the live per-node-allocation oracles, on
//! both backends, at 1, 2, and 8 threads, on arbitrary tie-heavy networks.
//!
//! The frozen exact oracle answers unions from a contiguous entry arena and
//! the frozen approx oracle fuses register merging with the harmonic-mean
//! estimator, so these tests are the guard that neither layout nor kernel
//! change perturbs a single bit of any estimate the paper's algorithms see.

use infprop_core::{
    greedy_top_k, greedy_top_k_paper, greedy_top_k_paper_threads, greedy_top_k_threads, ApproxIrs,
    ExactIrs, InfluenceOracle,
};
use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Random networks with timestamp ties.
fn networks() -> impl Strategy<Value = InteractionNetwork> {
    prop::collection::vec((0u32..16, 0u32..16, 0i64..30), 1..70)
        .prop_map(InteractionNetwork::from_triples)
}

/// Seed sets drawn over the same node-id range as the networks.
fn seed_sets() -> impl Strategy<Value = Vec<Vec<NodeId>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..16).prop_map(NodeId), 0..6),
        0..12,
    )
}

proptest! {
    /// Frozen oracles answer `influence`, `influence_many`, and
    /// `individuals` bit-identically to the live oracles at every thread
    /// count, on both backends. This covers the fused block-merge estimator
    /// in `FrozenApproxOracle::influence` against the live materialized
    /// union, including the empty-seed and duplicate-seed shapes.
    #[test]
    fn frozen_batch_queries_match_live(
        net in networks(),
        seeds in seed_sets(),
        w in 1i64..40,
    ) {
        let n = net.num_nodes() as u32;
        let seeds: Vec<Vec<NodeId>> = seeds
            .into_iter()
            .map(|s| s.into_iter().filter(|v| v.0 < n).collect())
            .collect();
        let exact = ExactIrs::compute(&net, Window(w));
        let approx = ApproxIrs::compute_with_precision(&net, Window(w), 5);
        let eo = exact.oracle();
        let ao = approx.oracle();
        let fe = exact.freeze();
        let fa = approx.freeze();

        let e_serial: Vec<f64> = seeds.iter().map(|s| eo.influence(s)).collect();
        let a_serial: Vec<f64> = seeds.iter().map(|s| ao.influence(s)).collect();
        let fe_serial: Vec<f64> = seeds.iter().map(|s| fe.influence(s)).collect();
        let fa_serial: Vec<f64> = seeds.iter().map(|s| fa.influence(s)).collect();
        prop_assert_eq!(&fe_serial, &e_serial);
        prop_assert_eq!(&fa_serial, &a_serial);

        let e_ind: Vec<f64> = (0..eo.num_nodes())
            .map(|i| eo.individual(NodeId::from_index(i)))
            .collect();
        let a_ind: Vec<f64> = (0..ao.num_nodes())
            .map(|i| ao.individual(NodeId::from_index(i)))
            .collect();
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&fe.influence_many(&seeds, threads), &e_serial);
            prop_assert_eq!(&fa.influence_many(&seeds, threads), &a_serial);
            prop_assert_eq!(&fe.individuals(threads), &e_ind);
            prop_assert_eq!(&fa.individuals(threads), &a_ind);
        }
    }

    /// Greedy seed selection over frozen oracles — both the CELF path and
    /// the paper's Algorithm 4, serial and thread-fanned — picks the same
    /// seeds with the same gains as the live oracles.
    #[test]
    fn frozen_greedy_matches_live(net in networks(), w in 1i64..40, k in 0usize..8) {
        let exact = ExactIrs::compute(&net, Window(w));
        let approx = ApproxIrs::compute_with_precision(&net, Window(w), 5);
        let eo = exact.oracle();
        let ao = approx.oracle();
        let fe = exact.freeze();
        let fa = approx.freeze();

        let e_lazy = greedy_top_k(&eo, k);
        let e_paper = greedy_top_k_paper(&eo, k);
        let a_lazy = greedy_top_k(&ao, k);
        let a_paper = greedy_top_k_paper(&ao, k);
        prop_assert_eq!(&greedy_top_k(&fe, k), &e_lazy);
        prop_assert_eq!(&greedy_top_k_paper(&fe, k), &e_paper);
        prop_assert_eq!(&greedy_top_k(&fa, k), &a_lazy);
        prop_assert_eq!(&greedy_top_k_paper(&fa, k), &a_paper);
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&greedy_top_k_threads(&fe, k, threads), &e_lazy);
            prop_assert_eq!(&greedy_top_k_paper_threads(&fe, k, threads), &e_paper);
            prop_assert_eq!(&greedy_top_k_threads(&fa, k, threads), &a_lazy);
            prop_assert_eq!(&greedy_top_k_paper_threads(&fa, k, threads), &a_paper);
        }
    }

    /// Freezing preserves the paper invariants the live stores satisfy: the
    /// frozen exact arena re-validates cleanly (serial and fanned), and the
    /// frozen register arena round-trips every per-node summary estimate.
    #[test]
    fn frozen_arenas_validate_clean(net in networks(), w in 1i64..40) {
        let exact = ExactIrs::compute(&net, Window(w));
        let approx = ApproxIrs::compute_with_precision(&net, Window(w), 5);
        let fe = exact.freeze();
        let fa = approx.freeze();
        prop_assert_eq!(fe.validate(), Ok(()));
        prop_assert_eq!(fa.validate(), Ok(()));
        for threads in THREAD_COUNTS {
            prop_assert_eq!(fe.validate_threads(threads), Ok(()));
        }
        let ao = approx.oracle();
        for i in 0..ao.num_nodes() {
            let v = NodeId::from_index(i);
            prop_assert_eq!(fa.individual(v).to_bits(), ao.individual(v).to_bits());
        }
    }
}
