//! Engine-parity property tests: the three ways of driving the one-pass IRS
//! computation — batch `compute`, streamed `push`/`finish`, and the generic
//! [`ReversePassEngine`] used directly — must produce identical summaries
//! for both the exact and the vHLL backend, on tie-heavy interaction lists
//! (timestamps drawn from a tiny range so equal-timestamp batches dominate
//! and the two-phase snapshot path is exercised constantly).

use infprop_core::engine::{ExactStore, ReversePassEngine, VhllStore};
use infprop_core::{ApproxIrs, ApproxIrsStream, ExactIrs, ExactIrsStream};
use infprop_temporal_graph::{InteractionNetwork, Window};
use proptest::prelude::*;

/// Tie-heavy networks: up to 12 nodes, up to 80 interactions, timestamps in
/// `0..6` — almost every timestamp is shared by many interactions.
fn tie_heavy_networks() -> impl Strategy<Value = InteractionNetwork> {
    prop::collection::vec((0u32..12, 0u32..12, 0i64..6), 0..80)
        .prop_map(InteractionNetwork::from_triples)
}

proptest! {
    /// Exact backend: batch ≡ streamed ≡ generic engine, entry for entry.
    #[test]
    fn exact_backend_parity(net in tie_heavy_networks(), w in 1i64..12) {
        let window = Window(w);
        let batch = ExactIrs::compute(&net, window);

        let mut stream = ExactIrsStream::new(window);
        for i in net.iter_reverse() {
            stream.push(*i).unwrap();
        }
        let streamed = stream.finish();

        let generic = ReversePassEngine::run(
            &net,
            window,
            ExactStore::with_nodes(net.num_nodes()),
        );
        let generic_summaries = generic.into_summaries();

        for u in net.node_ids() {
            prop_assert_eq!(streamed.irs_sorted(u), batch.irs_sorted(u));
            let direct = &generic_summaries[u.index()];
            prop_assert_eq!(direct.len(), batch.irs_size(u));
            for &(v, t) in batch.summary(u) {
                prop_assert_eq!(streamed.lambda(u, v), Some(t));
                prop_assert!(direct.binary_search(&(v, t)).is_ok());
            }
        }
    }

    /// vHLL backend: batch ≡ streamed ≡ generic engine, sketch for sketch.
    #[test]
    fn approx_backend_parity(net in tie_heavy_networks(), w in 1i64..12) {
        let window = Window(w);
        let precision = 6u8;
        let batch = ApproxIrs::compute_with_precision(&net, window, precision);

        let mut stream = ApproxIrsStream::with_precision(window, precision);
        for i in net.iter_reverse() {
            stream.push(*i).unwrap();
        }
        let streamed = stream.finish();

        let generic = ReversePassEngine::run(
            &net,
            window,
            VhllStore::with_nodes(precision, net.num_nodes()),
        );
        let generic_sketches = generic.into_sketches();

        for u in net.node_ids() {
            prop_assert_eq!(streamed.sketch(u), batch.sketch(u));
            prop_assert_eq!(&generic_sketches[u.index()], batch.sketch(u));
            prop_assert!(batch.sketch(u).check_invariants().is_ok());
        }
    }

    /// Streaming the engine directly over a pre-batched scan and over a
    /// one-at-a-time feed agree even when every interaction shares one
    /// timestamp (a single giant tie batch).
    #[test]
    fn single_timestamp_batch_parity(
        edges in prop::collection::vec((0u32..10, 0u32..10), 1..40),
        w in 1i64..12,
    ) {
        let net = InteractionNetwork::from_triples(
            edges.into_iter().map(|(s, d)| (s, d, 7i64)),
        );
        let window = Window(w);
        let batch = ExactIrs::compute(&net, window);
        let mut engine = ReversePassEngine::new(window, ExactStore::with_nodes(0));
        for i in net.iter_reverse() {
            engine.push(*i).unwrap();
        }
        let store = engine.finish();
        for u in net.node_ids() {
            let direct: Vec<_> = store.summaries()[u.index()]
                .iter()
                .map(|&(v, _)| v)
                .collect();
            prop_assert_eq!(direct, batch.irs_sorted(u));
        }
    }
}
