//! Zero-cost proof for [`NoopTracer`]: the disabled tracer is a zero-sized
//! type whose every operation compiles to nothing, so threading tracing
//! hooks through the hot query/build paths costs untraced callers exactly
//! zero heap traffic. A counting global allocator makes that claim a test
//! instead of a comment: a hot loop of a hundred thousand span begin/end,
//! instant, trace-id-allocation, and worker-lane claims must perform zero
//! allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use infprop_core::trace::{NoopTracer, SpanId, TraceEvent, TraceId, Tracer};

/// Forwarding allocator that counts every allocation (and reallocation).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
#[allow(clippy::assertions_on_constants)]
fn noop_tracer_is_zero_sized_and_disabled() {
    assert_eq!(std::mem::size_of::<NoopTracer>(), 0);
    assert!(!NoopTracer::ENABLED);
}

#[test]
fn noop_tracer_hot_loop_never_allocates() {
    let tracer = NoopTracer;

    // Warm up once outside the measured window so any lazy runtime
    // initialization (formatting machinery, TLS) cannot be charged to the
    // tracer itself.
    let sp = tracer.begin(TraceId(1), SpanId::NONE, TraceEvent::QueryBatch);
    tracer.end(sp, TraceEvent::QueryBatch, 0);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..100_000u64 {
        let trace = TraceId(tracer.alloc_traces(2));
        let batch = tracer.begin(trace, SpanId::NONE, TraceEvent::QueryBatch);
        let worker = tracer.worker();
        let el = worker.begin(TraceId(trace.0 + 1), batch, TraceEvent::QueryElement);
        worker.instant(trace, el, TraceEvent::GreedyRound, i);
        worker.end(el, TraceEvent::QueryElement, i);
        tracer.end(batch, TraceEvent::QueryBatch, i);
        assert_eq!(batch, SpanId::NONE);
        assert_eq!(el, SpanId::NONE);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "NoopTracer allocated on the hot emit path"
    );
}

#[test]
fn noop_tracer_returns_null_ids() {
    let tracer = NoopTracer;
    assert_eq!(tracer.alloc_traces(17), 0);
    assert_eq!(
        tracer.begin(TraceId(9), SpanId(3), TraceEvent::CompactRun),
        SpanId::NONE
    );
}
