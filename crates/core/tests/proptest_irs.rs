//! Property tests for the IRS algorithms: the one-pass reverse-scan
//! algorithms must agree with brute-force forward temporal BFS on random
//! interaction networks, across random windows — including timestamp ties.

use infprop_core::{
    brute_force_irs, greedy_top_k, greedy_top_k_paper, ApproxIrs, ExactIrs, InfluenceOracle,
};
use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};
use proptest::prelude::*;

/// Random networks: up to 14 nodes, up to 60 interactions, timestamps in a
/// narrow range so ties and dense temporal paths actually occur.
fn networks() -> impl Strategy<Value = InteractionNetwork> {
    prop::collection::vec((0u32..14, 0u32..14, 0i64..40), 0..60)
        .prop_map(InteractionNetwork::from_triples)
}

/// Distinct-timestamp networks (the paper's assumption).
fn distinct_networks() -> impl Strategy<Value = InteractionNetwork> {
    prop::collection::vec((0u32..14, 0u32..14), 0..60).prop_map(|pairs| {
        InteractionNetwork::from_triples(
            pairs
                .into_iter()
                .enumerate()
                .map(|(i, (s, d))| (s, d, i as i64)),
        )
    })
}

proptest! {
    /// THE core correctness property: Algorithm 2 ≡ brute force, for every
    /// node and window, with distinct timestamps.
    #[test]
    fn exact_equals_brute_force_distinct(net in distinct_networks(), w in 1i64..50) {
        let exact = ExactIrs::compute(&net, Window(w));
        for u in net.node_ids() {
            let mut brute: Vec<NodeId> =
                brute_force_irs(&net, u, Window(w)).into_iter().collect();
            brute.sort_unstable();
            prop_assert_eq!(exact.irs_sorted(u), brute, "node {:?} ω={}", u, w);
        }
    }

    /// Same property with timestamp ties present (two-phase batch path).
    #[test]
    fn exact_equals_brute_force_with_ties(net in networks(), w in 1i64..50) {
        let exact = ExactIrs::compute(&net, Window(w));
        for u in net.node_ids() {
            let mut brute: Vec<NodeId> =
                brute_force_irs(&net, u, Window(w)).into_iter().collect();
            brute.sort_unstable();
            prop_assert_eq!(exact.irs_sorted(u), brute, "node {:?} ω={}", u, w);
        }
    }

    /// λ(u, v) really is the minimum end time: no admissible channel ends
    /// earlier (validated by shrinking the window just below λ − start).
    #[test]
    fn lambda_entries_are_admissible(net in distinct_networks(), w in 1i64..50) {
        let exact = ExactIrs::compute(&net, Window(w));
        for u in net.node_ids() {
            for &(v, lambda) in exact.summary(u) {
                // There must exist a channel ending exactly at a time ≤ any
                // other; at minimum, v is brute-force reachable.
                prop_assert!(brute_force_irs(&net, u, Window(w)).contains(&v));
                // λ is the end time of some interaction into v.
                prop_assert!(net.iter().any(|i| i.dst == v && i.time == lambda));
            }
        }
    }

    /// IRS is monotone in the window: σω ⊆ σω′ for ω ≤ ω′.
    #[test]
    fn irs_monotone_in_window(net in networks(), w in 1i64..30, extra in 0i64..30) {
        let small = ExactIrs::compute(&net, Window(w));
        let large = ExactIrs::compute(&net, Window(w + extra));
        for u in net.node_ids() {
            for v in small.irs_sorted(u) {
                prop_assert!(large.reaches(u, v), "lost {:?} -> {:?}", u, v);
            }
        }
    }

    /// The sketch-based IRS never misses a node the exact IRS reaches (its
    /// per-cell maxima dominate), and on small graphs with high precision
    /// the estimate is within self-cycle slack of the truth.
    #[test]
    fn approx_tracks_exact(net in networks(), w in 1i64..50) {
        let exact = ExactIrs::compute(&net, Window(w));
        let approx = ApproxIrs::compute_with_precision(&net, Window(w), 12);
        for u in net.node_ids() {
            let est = approx.irs_size_estimate(u);
            let truth = exact.irs_size(u) as f64;
            // +1 slack: sketches may count the source's own cycle.
            prop_assert!(est >= truth - 0.5 && est <= truth + 1.5,
                "node {:?} ω={}: est {} truth {}", u, w, est, truth);
        }
    }

    /// Oracle influence equals the true union size of exact IRS sets.
    #[test]
    fn oracle_influence_is_union(net in networks(), w in 1i64..50, picks in prop::collection::vec(0u32..14, 0..6)) {
        let exact = ExactIrs::compute(&net, Window(w));
        let oracle = exact.oracle();
        let seeds: Vec<NodeId> = picks
            .into_iter()
            .filter(|&p| (p as usize) < net.num_nodes())
            .map(NodeId)
            .collect();
        let mut union = std::collections::HashSet::new();
        for &s in &seeds {
            union.extend(exact.irs_sorted(s));
        }
        prop_assert_eq!(oracle.influence(&seeds), union.len() as f64);
    }

    /// Lazy CELF greedy and the paper's Algorithm 4 produce identical
    /// selections on exact oracles.
    #[test]
    fn lazy_greedy_equals_paper_greedy(net in networks(), w in 1i64..50, k in 0usize..6) {
        let exact = ExactIrs::compute(&net, Window(w));
        let oracle = exact.oracle();
        prop_assert_eq!(greedy_top_k(&oracle, k), greedy_top_k_paper(&oracle, k));
    }

    /// Greedy at k=1 is optimal, and each marginal equals the realized
    /// cumulative increment.
    #[test]
    fn greedy_invariants(net in networks(), w in 1i64..50) {
        let exact = ExactIrs::compute(&net, Window(w));
        let oracle = exact.oracle();
        let picks = greedy_top_k(&oracle, 4);
        if let Some(first) = picks.first() {
            let best = net
                .node_ids()
                .map(|u| exact.irs_size(u))
                .max()
                .unwrap_or(0) as f64;
            prop_assert_eq!(first.marginal, best);
        }
        let mut prev = 0.0;
        for s in &picks {
            prop_assert!((s.cumulative - prev - s.marginal).abs() < 1e-9);
            prev = s.cumulative;
        }
    }

    /// Submodularity (Lemma 8) on random seed pairs: marginal gain w.r.t. a
    /// subset is at least the gain w.r.t. a superset.
    #[test]
    fn submodularity(net in networks(), w in 1i64..50, a in 0u32..14, b in 0u32..14, x in 0u32..14) {
        let n = net.num_nodes() as u32;
        if a < n && b < n && x < n {
            let exact = ExactIrs::compute(&net, Window(w));
            let oracle = exact.oracle();
            let mut small = oracle.empty_union();
            oracle.absorb(&mut small, NodeId(a));
            let mut large = small.clone();
            oracle.absorb(&mut large, NodeId(b));
            prop_assert!(
                oracle.marginal_gain(&small, NodeId(x)) + 1e-9
                    >= oracle.marginal_gain(&large, NodeId(x))
            );
        }
    }
}

proptest! {
    /// Witness extraction agrees with the one-pass summaries: a channel
    /// witness exists iff λ(u, v) does, it is valid per Definition 1, and
    /// its end time equals λ(u, v).
    #[test]
    fn witnesses_match_summaries(net in distinct_networks(), w in 1i64..50) {
        use infprop_core::find_channel;
        let exact = ExactIrs::compute(&net, Window(w));
        for u in net.node_ids() {
            for v in net.node_ids() {
                if u == v {
                    continue; // IRS excludes self; cycles may still witness
                }
                let witness = find_channel(&net, u, v, Window(w));
                match exact.lambda(u, v) {
                    Some(lambda) => {
                        let c = witness.expect("missing witness");
                        prop_assert!(c.is_valid(Window(w)));
                        prop_assert_eq!(c.source(), u);
                        prop_assert_eq!(c.destination(), v);
                        prop_assert_eq!(c.end_time(), lambda.get());
                    }
                    None => prop_assert!(witness.is_none(), "spurious {:?}->{:?}", u, v),
                }
            }
        }
    }
}

proptest! {
    /// Streamed construction (reverse feed with tie buffering) produces
    /// byte-identical results to batch construction — ties included.
    #[test]
    fn streamed_equals_batch(net in networks(), w in 1i64..50) {
        use infprop_core::{ApproxIrsStream, ExactIrsStream};
        let batch = ExactIrs::compute(&net, Window(w));
        let mut es = ExactIrsStream::new(Window(w));
        for i in net.iter_reverse() {
            es.push(*i).unwrap();
        }
        let streamed = es.finish();
        for u in net.node_ids() {
            prop_assert_eq!(streamed.irs_sorted(u), batch.irs_sorted(u));
        }

        let abatch = ApproxIrs::compute_with_precision(&net, Window(w), 5);
        let mut as_ = ApproxIrsStream::with_precision(Window(w), 5);
        for i in net.iter_reverse() {
            as_.push(*i).unwrap();
        }
        let astreamed = as_.finish();
        for u in net.node_ids() {
            prop_assert_eq!(astreamed.sketch(u), abatch.sketch(u));
        }
    }
}
