//! Parallel/serial parity property tests for the deterministic query layer
//! (`infprop_core::par` and its consumers): batch oracle queries, the
//! thread-fanned greedy maximizers, and parallel invariant validation must
//! return results **byte-identical** to the serial path at 1, 2, and 8
//! threads, on arbitrary tie-heavy networks.

use infprop_core::invariants::{self, validate_all};
use infprop_core::{
    greedy_top_k, greedy_top_k_paper, greedy_top_k_paper_threads, greedy_top_k_threads, ApproxIrs,
    ExactIrs, ExactStore, InfluenceOracle, ReversePassEngine, SummaryStore,
};
use infprop_temporal_graph::{InteractionNetwork, NodeId, Window};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Random networks with timestamp ties.
fn networks() -> impl Strategy<Value = InteractionNetwork> {
    prop::collection::vec((0u32..16, 0u32..16, 0i64..30), 1..70)
        .prop_map(InteractionNetwork::from_triples)
}

/// Seed sets drawn over the same node-id range as the networks.
fn seed_sets() -> impl Strategy<Value = Vec<Vec<NodeId>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..16).prop_map(NodeId), 0..6),
        0..12,
    )
}

proptest! {
    /// `influence_many` and `individuals` are bit-identical to the serial
    /// query loop at every thread count, on both oracles.
    #[test]
    fn batch_queries_match_serial(
        net in networks(),
        seeds in seed_sets(),
        w in 1i64..40,
    ) {
        let n = net.num_nodes() as u32;
        let seeds: Vec<Vec<NodeId>> = seeds
            .into_iter()
            .map(|s| s.into_iter().filter(|v| v.0 < n).collect())
            .collect();
        let exact = ExactIrs::compute(&net, Window(w));
        let approx = ApproxIrs::compute_with_precision(&net, Window(w), 5);
        let eo = exact.oracle();
        let ao = approx.oracle();

        let e_serial: Vec<f64> = seeds.iter().map(|s| eo.influence(s)).collect();
        let a_serial: Vec<f64> = seeds.iter().map(|s| ao.influence(s)).collect();
        let e_ind: Vec<f64> = (0..eo.num_nodes())
            .map(|i| eo.individual(NodeId::from_index(i)))
            .collect();
        let a_ind: Vec<f64> = (0..ao.num_nodes())
            .map(|i| ao.individual(NodeId::from_index(i)))
            .collect();
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&eo.influence_many(&seeds, threads), &e_serial);
            prop_assert_eq!(&ao.influence_many(&seeds, threads), &a_serial);
            prop_assert_eq!(&eo.individuals(threads), &e_ind);
            prop_assert_eq!(&ao.individuals(threads), &a_ind);
        }
    }

    /// Thread-fanned greedy selection (both the CELF path and the paper's
    /// Algorithm 4) picks the same seeds with the same gains as serial
    /// greedy at every thread count.
    #[test]
    fn parallel_greedy_matches_serial(net in networks(), w in 1i64..40, k in 0usize..8) {
        let exact = ExactIrs::compute(&net, Window(w));
        let approx = ApproxIrs::compute_with_precision(&net, Window(w), 5);
        let eo = exact.oracle();
        let ao = approx.oracle();
        let e_lazy = greedy_top_k(&eo, k);
        let e_paper = greedy_top_k_paper(&eo, k);
        let a_lazy = greedy_top_k(&ao, k);
        let a_paper = greedy_top_k_paper(&ao, k);
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&greedy_top_k_threads(&eo, k, threads), &e_lazy);
            prop_assert_eq!(&greedy_top_k_paper_threads(&eo, k, threads), &e_paper);
            prop_assert_eq!(&greedy_top_k_threads(&ao, k, threads), &a_lazy);
            prop_assert_eq!(&greedy_top_k_paper_threads(&ao, k, threads), &a_paper);
        }
    }

    /// Parallel `validate_all` agrees with serial validation — `Ok` on clean
    /// stores, and the *same first* violation on corrupted ones — at every
    /// thread count.
    #[test]
    fn parallel_validate_all_matches_serial(
        net in networks(),
        w in 1i64..40,
        victim_seed in any::<usize>(),
    ) {
        let store = ReversePassEngine::run(
            &net,
            Window(w),
            ExactStore::with_nodes(net.num_nodes()),
        );
        let frontier = net.interactions().first().map(|i| i.time);
        let serial = store.validate(frontier);
        prop_assert_eq!(&serial, &Ok(()));
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&validate_all(&store, frontier, threads), &serial);
        }

        // Plant a self-entry and re-check: every thread count reports the
        // same violation the serial sweep finds first.
        let n = store.num_nodes();
        if n > 0 {
            let mut summaries = store.into_summaries();
            let victim = victim_seed % n;
            summaries[victim] = vec![(
                NodeId::from_index(victim),
                frontier.unwrap_or(infprop_temporal_graph::Timestamp(0)),
            )];
            let corrupt = ExactStore::from_summaries(summaries);
            let serial = invariants::validate(&corrupt, frontier);
            prop_assert!(serial.is_err());
            for threads in THREAD_COUNTS {
                prop_assert_eq!(&validate_all(&corrupt, frontier, threads), &serial);
            }
        }
    }
}
