//! Layered/from-scratch parity property tests for the delta-overlay
//! architecture (`DeltaOverlay` + `LayeredExactOracle` /
//! `LayeredApproxOracle`): splitting an arbitrary tie-heavy history at a
//! random point into `frozen base + forward appends` must answer every
//! query **bit-identically** to a from-scratch build over the full
//! history, serially and at 1, 2, and 8 threads, before and after
//! LSM-style compaction.

use infprop_core::{
    ApproxIrs, ExactIrs, ExactStore, InfluenceOracle, LayeredApproxOracle, LayeredExactOracle,
    ReversePassEngine, SummaryStore, VhllStore,
};
use infprop_temporal_graph::{Interaction, InteractionNetwork, NodeId, Timestamp, Window};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const PRECISION: u8 = 5;

/// Random networks with timestamp ties (and self-loops, which pad the
/// universe without producing summary entries).
fn networks() -> impl Strategy<Value = InteractionNetwork> {
    prop::collection::vec((0u32..16, 0u32..16, 0i64..30), 1..70)
        .prop_map(InteractionNetwork::from_triples)
}

/// Seed sets drawn over the same node-id range as the networks.
fn seed_sets() -> impl Strategy<Value = Vec<Vec<NodeId>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..16).prop_map(NodeId), 0..6),
        0..12,
    )
}

/// Splits the (time-sorted) history of `net` at `split` and rebuilds it as
/// `frozen base over the prefix + appended suffix`, refreshed.
fn layered_exact_at(net: &InteractionNetwork, split: usize, w: Window) -> LayeredExactOracle {
    let ints = net.interactions();
    let base = InteractionNetwork::from_triples(
        ints[..split]
            .iter()
            .map(|i| (i.src.0, i.dst.0, i.time.get())),
    );
    let mut layered = LayeredExactOracle::from_network(&base, w);
    for &i in &ints[split..] {
        layered
            .append(i)
            .expect("suffix appends move forward in time");
    }
    layered.refresh();
    layered
}

/// The approx counterpart of [`layered_exact_at`].
fn layered_approx_at(net: &InteractionNetwork, split: usize, w: Window) -> LayeredApproxOracle {
    let ints = net.interactions();
    let base = InteractionNetwork::from_triples(
        ints[..split]
            .iter()
            .map(|i| (i.src.0, i.dst.0, i.time.get())),
    );
    let mut layered = LayeredApproxOracle::from_network_with_precision(&base, w, PRECISION);
    for &i in &ints[split..] {
        layered
            .append(i)
            .expect("suffix appends move forward in time");
    }
    layered.refresh();
    layered
}

/// Asserts bit-identical answers between a layered oracle and a reference
/// oracle across the whole query surface, serially and thread-fanned.
fn assert_query_parity<L, F>(
    layered: &L,
    reference: &F,
    seeds: &[Vec<NodeId>],
) -> Result<(), TestCaseError>
where
    L: InfluenceOracle + Sync,
    F: InfluenceOracle + Sync,
{
    let n = reference.num_nodes();
    prop_assert_eq!(layered.num_nodes(), n);
    let ind: Vec<f64> = (0..n)
        .map(|i| reference.individual(NodeId::from_index(i)))
        .collect();
    let inf: Vec<f64> = seeds.iter().map(|s| reference.influence(s)).collect();
    for (i, expected) in ind.iter().enumerate() {
        prop_assert_eq!(
            layered.individual(NodeId::from_index(i)).to_bits(),
            expected.to_bits(),
            "individual({i})"
        );
    }
    for (s, expect) in seeds.iter().zip(&inf) {
        prop_assert_eq!(layered.influence(s).to_bits(), expect.to_bits());
    }
    for threads in THREAD_COUNTS {
        prop_assert_eq!(&layered.individuals(threads), &ind);
        prop_assert_eq!(&layered.influence_many(seeds, threads), &inf);
    }
    Ok(())
}

/// Clamps generated seed sets to the network universe.
fn clamp_seeds(seeds: Vec<Vec<NodeId>>, n: usize) -> Vec<Vec<NodeId>> {
    seeds
        .into_iter()
        .map(|s| s.into_iter().filter(|v| v.index() < n).collect())
        .collect()
}

proptest! {
    /// A layered oracle split at a random point (including mid tie-batch)
    /// answers bit-identically to the from-scratch frozen arena, for both
    /// the exact and sketch backends, at every thread count.
    #[test]
    fn layered_matches_scratch_at_random_splits(
        net in networks(),
        seeds in seed_sets(),
        w in 1i64..40,
        split_seed in any::<usize>(),
    ) {
        let w = Window(w);
        let split = split_seed % (net.interactions().len() + 1);
        let seeds = clamp_seeds(seeds, net.num_nodes());

        let exact_ref = ExactIrs::compute(&net, w).freeze();
        let exact = layered_exact_at(&net, split, w);
        prop_assert!(!exact.is_stale());
        assert_query_parity(&exact, &exact_ref, &seeds)?;
        for u in 0..exact_ref.num_nodes() {
            let u = NodeId::from_index(u);
            prop_assert_eq!(exact.summary(u), exact_ref.summary(u).to_vec());
        }

        let approx_ref = ApproxIrs::compute_with_precision(&net, w, PRECISION).freeze();
        let approx = layered_approx_at(&net, split, w);
        assert_query_parity(&approx, &approx_ref, &seeds)?;
    }

    /// Compacting a layered oracle produces a base arena — and answers —
    /// bit-identical to a from-scratch engine run over the
    /// window-surviving suffix with the same node universe, at every
    /// split point and thread count.
    #[test]
    fn compaction_matches_scratch_over_survivors(
        net in networks(),
        seeds in seed_sets(),
        w in 1i64..40,
        split_seed in any::<usize>(),
    ) {
        let w = Window(w);
        let ints = net.interactions();
        let split = split_seed % (ints.len() + 1);
        let mut exact = layered_exact_at(&net, split, w);
        let mut approx = layered_approx_at(&net, split, w);
        let universe = exact.delta().universe();
        let seeds = clamp_seeds(seeds, universe);

        let frontier = ints.last().map(|i| i.time).unwrap_or(Timestamp(0));
        let cut = ints.partition_point(|i| frontier.delta(i.time) >= w.get());
        let surviving = &ints[cut..];

        let mut store = ExactStore::with_nodes(0);
        store.ensure_nodes(universe);
        let exact_ref = ReversePassEngine::run_slice(surviving, w, store).freeze(w);
        let mut store = VhllStore::with_nodes(PRECISION, 0);
        store.ensure_nodes(universe);
        let approx_ref = ReversePassEngine::run_slice(surviving, w, store).freeze();

        exact.compact();
        approx.compact();
        prop_assert_eq!(exact.generation(), 1);
        prop_assert_eq!(exact.base().offsets(), exact_ref.offsets());
        prop_assert_eq!(exact.base().entries(), exact_ref.entries());
        prop_assert_eq!(approx.base().registers(), approx_ref.registers());
        // The survivors become the next generation's tail; pending empties.
        prop_assert_eq!(exact.delta().pending().len(), 0);
        prop_assert_eq!(exact.delta().tail(), surviving);
        assert_query_parity(&exact, &exact_ref, &seeds)?;
        assert_query_parity(&approx, &approx_ref, &seeds)?;
    }

    /// Expiry correctness: every retained log entry is inside the window
    /// of the new frontier, everything expired is outside it, and appends
    /// behind the frontier are rejected with the offending timestamps.
    #[test]
    fn expiry_and_stale_append_contracts(
        net in networks(),
        w in 1i64..40,
        gap in 0i64..100,
    ) {
        let w = Window(w);
        let mut layered = LayeredExactOracle::from_network(&net, w);
        let frontier = layered.frontier().unwrap_or(Timestamp(0));

        // Backwards appends are rejected and leave the oracle untouched.
        let behind = Interaction::from_raw(0, 1, frontier.get() - 1);
        let err = layered.append(behind).unwrap_err();
        prop_assert_eq!(err.got, behind.time);
        prop_assert_eq!(err.frontier, frontier);
        prop_assert!(!layered.is_stale());

        // A forward append `gap` past the frontier, then compaction:
        // survivors are exactly the entries within `w` of the new frontier.
        let ahead = Interaction::from_raw(2, 3, frontier.get() + gap);
        layered.append(ahead).unwrap();
        let expected: Vec<Interaction> = layered
            .delta()
            .log()
            .iter()
            .copied()
            .filter(|i| ahead.time.delta(i.time) < w.get())
            .collect();
        layered.compact();
        prop_assert_eq!(layered.delta().tail(), expected.as_slice());
        prop_assert_eq!(layered.frontier(), Some(ahead.time));
        prop_assert_eq!(layered.delta().base_frontier(), Some(ahead.time));
    }
}
