//! The exact one-pass IRS algorithm (paper Algorithm 2).
//!
//! The reverse scan, tie batching and `Add`/`Merge` mechanics live in the
//! shared [`engine`](crate::engine) module; this type is the public face of
//! running that engine with an [`ExactStore`] backend and querying the
//! resulting summaries.

use crate::engine::{self, ExactStore, ExactSummary, ReversePassEngine};
use crate::obs::{metric_u64, Gauge, HeapBytes, Recorder};
use infprop_temporal_graph::{InteractionNetwork, NodeId, Timestamp, Window};

/// Exact influence-reachability summaries `φω(u)` for every node.
///
/// `φω(u)` maps every node `v` reachable from `u` through an information
/// channel of duration ≤ ω to `λ(u, v)` — the earliest end time over all
/// such channels (paper Definition 4). The IRS itself is the key set:
/// `σω(u) = {v | (v, ·) ∈ φω(u)}`.
#[derive(Clone, Debug)]
pub struct ExactIrs {
    window: Window,
    summaries: Vec<ExactSummary>,
}

impl ExactIrs {
    /// Runs Algorithm 2: one reverse-chronological pass over the network,
    /// via [`ReversePassEngine`] with an [`ExactStore`] backend.
    ///
    /// # Timestamp ties
    ///
    /// Interactions sharing a timestamp are handled as a two-phase batch:
    /// all merges within the batch read the summaries **as they were before
    /// the batch**, so a channel can never chain two hops with equal
    /// timestamps (the paper's strict `t1 < t2 < …` requirement). With
    /// all-distinct timestamps (the paper's assumption) every batch has size
    /// one and the code follows Algorithm 2 verbatim.
    pub fn compute(net: &InteractionNetwork, window: Window) -> Self {
        let store = ReversePassEngine::run(net, window, ExactStore::with_nodes(net.num_nodes()));
        ExactIrs {
            window,
            summaries: store.into_summaries(),
        }
    }

    /// [`compute`](Self::compute) with full instrumentation: the engine and
    /// the [`ExactStore`] merge kernel report into `rec` (the `engine.*` and
    /// `exact.*` catalogues in [`crate::obs`]), and the finished store's
    /// size is published through the `store.*` gauges.
    pub fn compute_recorded<R: Recorder>(
        net: &InteractionNetwork,
        window: Window,
        rec: &R,
    ) -> Self {
        let store = ExactStore::with_nodes_recorded(net.num_nodes(), rec);
        let store = ReversePassEngine::run_recorded(net, window, store, rec);
        let irs = ExactIrs {
            window,
            summaries: store.into_summaries(),
        };
        if R::ENABLED {
            rec.gauge(Gauge::StoreHeapBytes, metric_u64(irs.heap_bytes()));
            rec.gauge(Gauge::StoreNodes, metric_u64(irs.num_nodes()));
            rec.gauge(Gauge::StoreEntries, metric_u64(irs.total_entries()));
        }
        irs
    }

    /// Computes exact summaries for several windows in **one** shared
    /// reverse pass — the experiment harness's favourite shape (Table 3
    /// needs ω ∈ {1, 10, 20}% on the same network). Results are identical
    /// to calling [`compute`](Self::compute) per window; only the scan and
    /// its cache traffic are amortized.
    pub fn compute_many(net: &InteractionNetwork, windows: &[Window]) -> Vec<ExactIrs> {
        for w in windows {
            w.assert_valid();
        }
        let n = net.num_nodes();
        let mut stores: Vec<ExactStore> =
            windows.iter().map(|_| ExactStore::with_nodes(n)).collect();
        engine::for_each_tie_batch(net.interactions(), |batch| {
            for (store, &window) in stores.iter_mut().zip(windows) {
                engine::apply_batch(store, batch, window);
            }
        });
        stores
            .into_iter()
            .zip(windows)
            .map(|(store, &window)| ExactIrs {
                window,
                summaries: store.into_summaries(),
            })
            .collect()
    }

    /// Reassembles summaries from parts (streaming builder's and the
    /// persistence codec's exit point). Each summary must be sorted by
    /// `NodeId` — [`ExactStore::into_summaries`] and the codec both
    /// guarantee this.
    pub(crate) fn from_parts(window: Window, summaries: Vec<ExactSummary>) -> Self {
        debug_assert!(summaries
            .iter()
            .all(|s| s.windows(2).all(|w| w[0].0 < w[1].0)));
        ExactIrs { window, summaries }
    }

    /// The window ω the summaries were computed for.
    #[inline]
    pub fn window(&self) -> Window {
        self.window
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.summaries.len()
    }

    /// The summary `φω(u)` as `(v, λ(u, v))` pairs sorted by `NodeId`.
    #[inline]
    pub fn summary(&self, u: NodeId) -> &[(NodeId, Timestamp)] {
        &self.summaries[u.index()]
    }

    /// `λ(u, v)`: the earliest end time of an admissible channel `u → v`.
    /// `O(log |φ(u)|)` binary search over the sorted summary.
    pub fn lambda(&self, u: NodeId, v: NodeId) -> Option<Timestamp> {
        let s = &self.summaries[u.index()];
        s.binary_search_by_key(&v, |&(x, _)| x).ok().map(|i| s[i].1)
    }

    /// `|σω(u)|` — the exact IRS size of `u`.
    #[inline]
    pub fn irs_size(&self, u: NodeId) -> usize {
        self.summaries[u.index()].len()
    }

    /// The IRS `σω(u)` as a sorted vector (deterministic order for tests
    /// and output). Summaries are already `NodeId`-sorted, so this is a
    /// straight projection.
    pub fn irs_sorted(&self, u: NodeId) -> Vec<NodeId> {
        self.summaries[u.index()].iter().map(|&(v, _)| v).collect()
    }

    /// Does `u` have an admissible channel to `v`?
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        self.summaries[u.index()]
            .binary_search_by_key(&v, |&(x, _)| x)
            .is_ok()
    }

    /// Total number of `(v, λ)` entries across all summaries — the paper's
    /// `O(n²)` worst-case memory driver.
    pub fn total_entries(&self) -> usize {
        self.summaries.iter().map(Vec::len).sum()
    }

    /// Approximate heap bytes held by the summaries (Table 4 accounting).
    pub fn heap_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(NodeId, Timestamp)>();
        self.summaries.len() * std::mem::size_of::<ExactSummary>()
            + self
                .summaries
                .iter()
                .map(|s| s.capacity() * entry)
                .sum::<usize>()
    }

    /// Wraps the summaries in an exact [`InfluenceOracle`].
    ///
    /// [`InfluenceOracle`]: crate::InfluenceOracle
    pub fn oracle(&self) -> crate::ExactOracle<'_> {
        crate::ExactOracle::new(self)
    }

    /// Freezes the summaries into a contiguous CSR arena
    /// ([`FrozenExactOracle`](crate::FrozenExactOracle)) — the read-only
    /// layout the query path prefers. Answers are bit-identical to
    /// [`oracle`](Self::oracle).
    pub fn freeze(&self) -> crate::FrozenExactOracle {
        crate::FrozenExactOracle::from_summaries(self.window, &self.summaries)
    }

    /// [`freeze`](Self::freeze), publishing the arena size to the
    /// `frozen.bytes` gauge of `rec`.
    pub fn freeze_recorded<R: crate::Recorder>(&self, rec: &R) -> crate::FrozenExactOracle {
        let frozen = self.freeze();
        crate::frozen::record_frozen_bytes(&frozen, rec);
        frozen
    }

    /// Freezes the summaries into the base arena of a
    /// [`LayeredExactOracle`](crate::LayeredExactOracle), exporting the
    /// window tail of `net` (the suffix still inside `ω` of the last
    /// interaction) as the delta seed so forward appends can combine with
    /// frozen history. `net` must be the network this IRS was computed
    /// from.
    pub fn layered(&self, net: &InteractionNetwork) -> crate::LayeredExactOracle {
        let base = self.freeze();
        let frontier = net.interactions().last().map(|i| i.time);
        let tail = match frontier {
            Some(f) => crate::delta::window_tail(net.interactions(), f, self.window),
            None => Vec::new(),
        };
        crate::LayeredExactOracle::from_parts(base, frontier, tail, Vec::new(), 0)
    }

    /// Checks the structural invariants of every summary (no self-entries,
    /// end times inside the interaction range) — the on-demand entry point
    /// of the [`invariants`](crate::invariants) verification layer.
    pub fn validate(&self) -> Result<(), crate::InvariantViolation> {
        crate::invariants::validate_exact_summaries(&self.summaries, None)
    }
}

impl HeapBytes for ExactIrs {
    fn heap_bytes(&self) -> usize {
        ExactIrs::heap_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1a (a..f = 0..5): the running example of the paper.
    fn figure1a() -> InteractionNetwork {
        InteractionNetwork::from_triples([
            (0, 3, 1),
            (4, 5, 2),
            (3, 4, 3),
            (4, 1, 4),
            (0, 1, 5),
            (1, 4, 6),
            (4, 2, 7),
            (1, 2, 8),
        ])
    }

    /// Figure 2 (a..f = 0..5).
    fn figure2() -> InteractionNetwork {
        InteractionNetwork::from_triples([
            (0, 1, 1), // a -> b @ 1
            (0, 3, 2), // a -> d @ 2
            (3, 2, 3), // d -> c @ 3
            (2, 4, 3), // c -> e @ 3
            (1, 2, 4), // b -> c @ 4
            (2, 5, 5), // c -> f @ 5
            (4, 2, 6), // e -> c @ 6
            (2, 5, 8), // c -> f @ 8
        ])
    }

    fn entries(irs: &ExactIrs, u: u32) -> Vec<(u32, i64)> {
        irs.summary(NodeId(u))
            .iter()
            .map(|&(n, t)| (n.0, t.0))
            .collect()
    }

    /// Example 2 of the paper: the final summaries for Figure 1a at ω = 3.
    #[test]
    fn paper_example_2_final_summaries() {
        let irs = ExactIrs::compute(&figure1a(), Window(3));
        // a: {(b,5), (c,7), (e,3)... } final row: a = (b,5),(c,7),(e,3),(d,1)
        assert_eq!(entries(&irs, 0), vec![(1, 5), (2, 7), (3, 1), (4, 3)]);
        // b = (c,7),(e,6)
        assert_eq!(entries(&irs, 1), vec![(2, 7), (4, 6)]);
        // c = {}
        assert_eq!(entries(&irs, 2), vec![]);
        // d = (e,3),(b,4)
        assert_eq!(entries(&irs, 3), vec![(1, 4), (4, 3)]);
        // e = (c,7),(b,4),(f,2)
        assert_eq!(entries(&irs, 4), vec![(1, 4), (2, 7), (5, 2)]);
        // f = {}
        assert_eq!(entries(&irs, 5), vec![]);
    }

    /// Example 1 of the paper, on our Figure 2 reconstruction: φ3(a)
    /// contains b, c, d; φ3(c) = {(e,3), (f,5)}; and λ(c,f) = 5 — the
    /// earlier-ending of the two information channels c → f (the other
    /// ends at 8).
    #[test]
    fn paper_example_1_summaries() {
        let irs = ExactIrs::compute(&figure2(), Window(3));
        // a → b direct @1; a → d direct @2; a → c via (a,d,2),(d,c,3).
        assert_eq!(entries(&irs, 0), vec![(1, 1), (2, 3), (3, 2)]);
        assert_eq!(entries(&irs, 2), vec![(4, 3), (5, 5)]);
        assert_eq!(irs.lambda(NodeId(2), NodeId(5)), Some(Timestamp(5)));
    }

    /// Figure 2 discussion: σ3(a) = {b, c, d} and σ5(a) = {b, c, d, f}.
    #[test]
    fn paper_figure2_window_sensitivity() {
        let irs3 = ExactIrs::compute(&figure2(), Window(3));
        assert_eq!(
            irs3.irs_sorted(NodeId(0)),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        let irs5 = ExactIrs::compute(&figure2(), Window(5));
        assert_eq!(
            irs5.irs_sorted(NodeId(0)),
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(5)]
        );
    }

    /// Figure 1a intro claim: there is a channel a → e but none a → f.
    #[test]
    fn paper_intro_reachability_claim() {
        let irs = ExactIrs::compute(&figure1a(), Window::unbounded());
        assert!(irs.reaches(NodeId(0), NodeId(4)));
        assert!(!irs.reaches(NodeId(0), NodeId(5)));
    }

    #[test]
    fn unit_window_is_direct_neighbours() {
        let irs = ExactIrs::compute(&figure1a(), Window(1));
        // Only single interactions qualify (duration exactly 1).
        assert_eq!(entries(&irs, 0), vec![(1, 5), (3, 1)]);
        assert_eq!(entries(&irs, 4), vec![(1, 4), (2, 7), (5, 2)]);
    }

    #[test]
    fn growing_window_is_monotone() {
        let net = figure2();
        let mut prev = 0usize;
        for w in 1..=10 {
            let irs = ExactIrs::compute(&net, Window(w));
            let total = irs.total_entries();
            assert!(total >= prev, "ω={w}: {total} < {prev}");
            prev = total;
        }
    }

    #[test]
    fn ties_never_chain() {
        // u -> v and v -> w at the same timestamp: no channel u -> w.
        let net = InteractionNetwork::from_triples([(0, 1, 5), (1, 2, 5)]);
        let irs = ExactIrs::compute(&net, Window(10));
        assert!(irs.reaches(NodeId(0), NodeId(1)));
        assert!(irs.reaches(NodeId(1), NodeId(2)));
        assert!(!irs.reaches(NodeId(0), NodeId(2)));
    }

    #[test]
    fn ties_with_later_hop_still_chain() {
        // Equal-time edges exist, but the u->v @5, v->w @6 path must chain.
        let net = InteractionNetwork::from_triples([(0, 1, 5), (3, 4, 5), (1, 2, 6)]);
        let irs = ExactIrs::compute(&net, Window(10));
        assert!(irs.reaches(NodeId(0), NodeId(2)));
    }

    #[test]
    fn tie_batch_where_source_is_also_destination() {
        // Batch at t=5 contains (0->1) and (1->2): node 1 is both a source
        // and a destination. 1's pre-batch summary {3: t7} must flow to 0
        // (if within window), but 1's new entry (2,5) must not.
        let net = InteractionNetwork::from_triples([(0, 1, 5), (1, 2, 5), (1, 3, 7)]);
        let irs = ExactIrs::compute(&net, Window(10));
        assert_eq!(entries(&irs, 0), vec![(1, 5), (3, 7)]);
        assert_eq!(entries(&irs, 1), vec![(2, 5), (3, 7)]);
    }

    #[test]
    fn cycles_never_reach_self() {
        // A node does not influence itself, even through a cycle (see the
        // paper's Example 2 trace: the channel e → b → e never enters φ(e)).
        let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 0, 2)]);
        let irs = ExactIrs::compute(&net, Window(5));
        assert!(!irs.reaches(NodeId(0), NodeId(0)));
        assert!(!irs.reaches(NodeId(1), NodeId(1)));
        assert!(irs.reaches(NodeId(0), NodeId(1)));
        assert!(irs.reaches(NodeId(1), NodeId(0)));
    }

    #[test]
    fn repeated_interactions_keep_earliest_end() {
        let net = InteractionNetwork::from_triples([(0, 1, 3), (0, 1, 7)]);
        let irs = ExactIrs::compute(&net, Window(5));
        assert_eq!(irs.lambda(NodeId(0), NodeId(1)), Some(Timestamp(3)));
    }

    #[test]
    fn window_filter_blocks_long_channels() {
        // Path 0 -> 1 -> 2 with times 1, 10: duration 10 needs ω ≥ 10.
        let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 2, 10)]);
        assert!(!ExactIrs::compute(&net, Window(9)).reaches(NodeId(0), NodeId(2)));
        assert!(ExactIrs::compute(&net, Window(10)).reaches(NodeId(0), NodeId(2)));
    }

    #[test]
    fn empty_network_has_no_summaries() {
        let net = InteractionNetwork::from_triples(std::iter::empty());
        let irs = ExactIrs::compute(&net, Window(3));
        assert_eq!(irs.num_nodes(), 0);
        assert_eq!(irs.total_entries(), 0);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_panics() {
        let _ = ExactIrs::compute(&figure1a(), Window(0));
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_panics_in_compute_many() {
        let _ = ExactIrs::compute_many(&figure1a(), &[Window(3), Window(0)]);
    }

    #[test]
    fn compute_many_matches_individual_computes() {
        let net = figure1a();
        let windows = [Window(1), Window(3), Window(8)];
        let many = ExactIrs::compute_many(&net, &windows);
        assert_eq!(many.len(), 3);
        for (irs, &w) in many.iter().zip(&windows) {
            let single = ExactIrs::compute(&net, w);
            assert_eq!(irs.window(), w);
            for u in net.node_ids() {
                assert_eq!(irs.irs_sorted(u), single.irs_sorted(u), "ω={w:?}");
                for &(v, t) in single.summary(u) {
                    assert_eq!(irs.lambda(u, v), Some(t));
                }
            }
        }
        assert!(ExactIrs::compute_many(&net, &[]).is_empty());
    }

    #[test]
    fn heap_bytes_nonzero_after_compute() {
        let irs = ExactIrs::compute(&figure1a(), Window(3));
        assert!(irs.heap_bytes() > 0);
        assert_eq!(irs.total_entries(), 11); // from Example 2's final table
    }
}
