//! Owned arena byte storage: the backing store of the frozen oracles.
//!
//! [`ArenaBytes`] owns one contiguous read-only byte image — a frozen
//! arena file (IPFE v2 / IPFA v3, see the `persist` layer) or an image
//! built in memory by `freeze()` — and hands out `&[u8]` views the frozen
//! oracles borrow their sections from. Two acquisition paths exist:
//!
//! * **Bulk read** ([`ArenaBytes::read`], and [`ArenaBytes::open`] on the
//!   default build): one `read_exact` into a heap buffer over-allocated by
//!   [`ARENA_ALIGN`] so the image starts on a cache-line boundary — the
//!   same alignment the on-disk section layout guarantees, so borrowed
//!   register tiles sit exactly where the 64-byte merge kernels want them.
//! * **Memory map** ([`ArenaBytes::open`] with `--features mmap` on unix):
//!   the file is mapped `PROT_READ | MAP_PRIVATE` and borrowed in place —
//!   no copy, no per-section allocation, pages fault in on first touch.
//!   The `unsafe` lives in one cfg-gated module mirroring the `simd-avx2`
//!   precedent in `kernel.rs`; everything else in the workspace stays
//!   `forbid(unsafe_code)`.
//!
//! Safety of the mapped variant rests on the persist layer's write
//! discipline: arena files are written whole to a temporary and atomically
//! renamed into place, never truncated or rewritten in place, so a live
//! mapping can never observe a shrinking file (the SIGBUS hazard of
//! mapping mutable files). See DESIGN.md §15 for the full argument.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// Alignment (bytes) of every section inside a frozen arena image, and of
/// the image itself in memory: one cache line. Register rows borrowed from
/// an [`ArenaBytes`] therefore keep the alignment the tile kernels' 64-byte
/// blocks are shaped around.
pub const ARENA_ALIGN: usize = 64;

/// One contiguous, immutable, cache-line-aligned byte image (see module
/// docs). Cheap to share by reference; [`Clone`] copies the bytes into a
/// fresh owned buffer.
pub struct ArenaBytes {
    repr: Repr,
}

enum Repr {
    /// Heap copy, aligned by over-allocation: the image lives at
    /// `buf[start .. start + len]` with `start` chosen so the first byte
    /// is [`ARENA_ALIGN`]-aligned.
    Owned {
        buf: Vec<u8>,
        start: usize,
        len: usize,
    },
    /// A read-only private file mapping (zero-copy load path).
    #[cfg(all(feature = "mmap", unix))]
    Mapped(mmap_impl::Mapping),
}

impl ArenaBytes {
    /// Wraps in-memory image bytes (the `freeze()` construction path).
    /// Realigns into a fresh buffer only when the vector's allocation is
    /// not already [`ARENA_ALIGN`]-aligned.
    pub fn from_vec(bytes: Vec<u8>) -> ArenaBytes {
        if bytes.as_ptr().align_offset(ARENA_ALIGN) == 0 {
            let len = bytes.len();
            ArenaBytes {
                repr: Repr::Owned {
                    buf: bytes,
                    start: 0,
                    len,
                },
            }
        } else {
            ArenaBytes::copy_aligned(&bytes)
        }
    }

    /// Copies `bytes` into a fresh aligned owned buffer.
    fn copy_aligned(bytes: &[u8]) -> ArenaBytes {
        let len = bytes.len();
        let mut buf = vec![0u8; len + ARENA_ALIGN];
        // `align_offset` on `*const u8` always succeeds for power-of-two
        // alignments in practice; the modulo keeps a hypothetical `MAX`
        // sentinel in bounds (alignment is a performance nicety, never a
        // soundness requirement — all decoding is byte-based).
        let start = buf.as_ptr().align_offset(ARENA_ALIGN) % ARENA_ALIGN;
        buf[start..start + len].copy_from_slice(bytes);
        ArenaBytes {
            repr: Repr::Owned { buf, start, len },
        }
    }

    /// Loads `path` with one aligned bulk `read_exact` — the fallback load
    /// path, and the baseline the `oracle_load_ns` bench row compares the
    /// mapped path against.
    pub fn read(path: &Path) -> io::Result<ArenaBytes> {
        let mut file = File::open(path)?;
        let len = file_len(&file)?;
        let mut buf = vec![0u8; len + ARENA_ALIGN];
        let start = buf.as_ptr().align_offset(ARENA_ALIGN) % ARENA_ALIGN;
        file.read_exact(&mut buf[start..start + len])?;
        Ok(ArenaBytes {
            repr: Repr::Owned { buf, start, len },
        })
    }

    /// Opens `path` for borrowing: a `PROT_READ | MAP_PRIVATE` memory map
    /// when built with `--features mmap` on unix (zero-copy — no bytes are
    /// touched until a query faults their pages in), an aligned bulk read
    /// otherwise. Empty files yield an empty owned image on either build.
    #[cfg(all(feature = "mmap", unix))]
    pub fn open(path: &Path) -> io::Result<ArenaBytes> {
        let file = File::open(path)?;
        let len = file_len(&file)?;
        if len == 0 {
            return Ok(ArenaBytes::from_vec(Vec::new()));
        }
        Ok(ArenaBytes {
            repr: Repr::Mapped(mmap_impl::Mapping::map(&file, len)?),
        })
    }

    /// Opens `path` for borrowing — this build has no `mmap` feature, so
    /// the image is acquired with one aligned bulk read.
    #[cfg(not(all(feature = "mmap", unix)))]
    pub fn open(path: &Path) -> io::Result<ArenaBytes> {
        ArenaBytes::read(path)
    }

    /// The whole image. Frozen oracles borrow their sections out of this
    /// slice; the `'&self`-tied lifetime is what makes the zero-copy load
    /// sound.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Owned { buf, start, len } => &buf[*start..*start + *len],
            #[cfg(all(feature = "mmap", unix))]
            Repr::Mapped(m) => m.as_slice(),
        }
    }

    /// Image length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Owned { len, .. } => *len,
            #[cfg(all(feature = "mmap", unix))]
            Repr::Mapped(m) => m.as_slice().len(),
        }
    }

    /// `true` iff the image is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` iff this image is a live file mapping (the `mmap` load path)
    /// rather than an owned heap buffer.
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            Repr::Owned { .. } => false,
            #[cfg(all(feature = "mmap", unix))]
            Repr::Mapped(_) => true,
        }
    }

    /// Heap bytes owned by the image — zero for a mapping (its pages
    /// belong to the page cache, not this process's heap).
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Owned { buf, .. } => buf.capacity(),
            #[cfg(all(feature = "mmap", unix))]
            Repr::Mapped(_) => 0,
        }
    }
}

impl std::ops::Deref for ArenaBytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Clone for ArenaBytes {
    /// Materializes an owned aligned copy (a mapping is not duplicated —
    /// the clone is always heap-backed).
    fn clone(&self) -> ArenaBytes {
        ArenaBytes::copy_aligned(self.as_slice())
    }
}

impl PartialEq for ArenaBytes {
    fn eq(&self, other: &ArenaBytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ArenaBytes {}

impl std::fmt::Debug for ArenaBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArenaBytes")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// A file's length as `usize`, erroring (instead of truncating) on the
/// 32-bit-target edge where it would not fit.
fn file_len(file: &File) -> io::Result<usize> {
    let len = file.metadata()?.len();
    usize::try_from(len).map_err(|_| io::Error::new(io::ErrorKind::FileTooLarge, "arena too large"))
}

/// The zero-copy mapping: raw `mmap`/`munmap` bindings (std already links
/// libc on unix targets — no new dependency), cfg-gated behind
/// `--features mmap` exactly like the AVX2 kernel module, so the default
/// build keeps `forbid(unsafe_code)` intact.
///
/// # Safety argument
///
/// * The mapping is `PROT_READ | MAP_PRIVATE`: the kernel will never let
///   this process write through it, and writes by other processes to the
///   underlying file are not required to be visible — but the persist
///   layer's tmp+rename write discipline means arena files are never
///   modified in place at all, so the bytes are stable for the mapping's
///   lifetime and the truncation SIGBUS hazard cannot arise.
/// * `as_slice` hands out `&[u8]` tied to `&self`; the pages outlive every
///   borrow because `munmap` only runs in `Drop`.
/// * `Send`/`Sync` are sound because the memory is immutable for the
///   mapping's lifetime and `munmap` requires `&mut self` (drop).
#[cfg(all(feature = "mmap", unix))]
#[allow(unsafe_code)]
mod mmap_impl {
    use std::ffi::{c_int, c_long, c_void};
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: c_long,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// `PROT_READ` — identical on every unix this crate targets.
    const PROT_READ: c_int = 0x1;
    /// `MAP_PRIVATE` — identical on linux and the BSD family.
    const MAP_PRIVATE: c_int = 0x2;

    /// One live `mmap` region, unmapped on drop.
    pub(super) struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    impl Mapping {
        /// Maps the first `len` bytes of `file` read-only and private.
        /// `len` must be nonzero (zero-length mappings are `EINVAL`; the
        /// caller special-cases empty files).
        pub(super) fn map(file: &File, len: usize) -> io::Result<Mapping> {
            // SAFETY: we request a fresh kernel-chosen placement (`addr =
            // null`, no MAP_FIXED), pass a file descriptor we own for the
            // duration of the call, and check for MAP_FAILED before using
            // the result. A successful PROT_READ | MAP_PRIVATE mapping of
            // `len` in-range bytes is valid to read for its lifetime.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            // MAP_FAILED is (void*)-1, i.e. the all-ones address.
            if ptr.addr() == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping { ptr, len })
        }

        /// The mapped bytes.
        #[inline]
        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr .. ptr + len` is a live PROT_READ mapping owned
            // by `self` (unmapped only in `Drop`), immutable for its whole
            // lifetime per the module safety argument, and the returned
            // borrow is tied to `&self`.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe exactly the region `map`
            // acquired; after drop no borrow of it can exist (all
            // `as_slice` borrows are tied to the now-gone `&self`).
            let _ = unsafe { munmap(self.ptr, self.len) };
        }
    }

    // SAFETY: the region is immutable for the mapping's lifetime (see the
    // module safety argument); moving the owner across threads or sharing
    // `&Mapping` only ever yields shared reads.
    unsafe impl Send for Mapping {}
    // SAFETY: as above — `&Mapping` exposes read-only access.
    unsafe impl Sync for Mapping {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_round_trips_and_aligns() {
        let data: Vec<u8> = (0..200u8).collect();
        let arena = ArenaBytes::from_vec(data.clone());
        assert_eq!(arena.as_slice(), &data[..]);
        assert_eq!(arena.len(), 200);
        assert!(!arena.is_mapped());
        assert_eq!(arena.as_slice().as_ptr().align_offset(ARENA_ALIGN), 0);
        let cloned = arena.clone();
        assert_eq!(cloned, arena);
        assert_eq!(cloned.as_slice().as_ptr().align_offset(ARENA_ALIGN), 0);
    }

    #[test]
    fn read_and_open_return_identical_aligned_bytes() {
        let dir = std::env::temp_dir().join(format!("infprop-arena-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("arena.bin");
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        std::fs::write(&path, &data).unwrap();

        let read = ArenaBytes::read(&path).unwrap();
        assert_eq!(read.as_slice(), &data[..]);
        assert!(!read.is_mapped());
        assert_eq!(read.as_slice().as_ptr().align_offset(ARENA_ALIGN), 0);

        let opened = ArenaBytes::open(&path).unwrap();
        assert_eq!(opened.as_slice(), &data[..]);
        assert_eq!(opened, read);
        assert_eq!(
            opened.is_mapped(),
            cfg!(all(feature = "mmap", unix)),
            "open() maps exactly when the feature is compiled in"
        );

        let empty = dir.join("empty.bin");
        std::fs::write(&empty, []).unwrap();
        let e = ArenaBytes::open(&empty).unwrap();
        assert!(e.is_empty() && !e.is_mapped());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(all(feature = "mmap", unix))]
    #[test]
    fn mapped_arena_is_shareable_across_threads() {
        let dir = std::env::temp_dir().join(format!("infprop-arena-mt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("arena.bin");
        let data: Vec<u8> = (0..64u8).cycle().take(4096).collect();
        std::fs::write(&path, &data).unwrap();
        let arena = ArenaBytes::open(&path).unwrap();
        assert!(arena.is_mapped());
        assert_eq!(arena.heap_bytes(), 0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| assert_eq!(arena.as_slice(), &data[..]));
            }
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}
