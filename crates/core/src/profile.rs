//! Sliding-window neighbourhood profiles — the sketch's ancestry.
//!
//! The paper's versioned HLL "is based on the same notion as shown in the
//! so-called sliding-window HyperLogLog sketch" of Kumar, Calders, Gionis &
//! Tatti (ECML-PKDD 2015): maintaining, for every node, the number of
//! **distinct contacts within a sliding window** while scanning the
//! interaction log in reverse. This module packages that use case directly:
//!
//! * feed interactions in non-increasing time order;
//! * at any point, ask for the estimated number of distinct out-contacts
//!   (or in-contacts) of a node within `[anchor, anchor + ω − 1]` for any
//!   anchor at or before the stream frontier — the exact contract under
//!   which the versioned lists are lossless (see
//!   [`VersionedHll::estimate_window`]).
//!
//! Unlike the IRS, profiles are 1-hop: no merging between nodes, so a
//! node's sketch only ever receives its own contacts.

use crate::engine::ReverseFrontier;
use infprop_hll::hash;
use infprop_hll::VersionedHll;
use infprop_temporal_graph::{Interaction, InteractionNetwork, NodeId, Timestamp, Window};

/// Which side of each interaction a profile tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContactDirection {
    /// Distinct destinations contacted by the node.
    Outgoing,
    /// Distinct sources that contacted the node.
    Incoming,
}

/// Per-node sliding-window distinct-contact sketches.
pub struct SlidingContacts {
    window: Window,
    direction: ContactDirection,
    precision: u8,
    sketches: Vec<VersionedHll>,
    frontier: ReverseFrontier,
}

impl SlidingContacts {
    /// An empty profile set; the node universe grows as ids appear.
    pub fn new(window: Window, direction: ContactDirection, precision: u8) -> Self {
        window.assert_valid();
        SlidingContacts {
            window,
            direction,
            precision,
            sketches: Vec::new(),
            frontier: ReverseFrontier::new(),
        }
    }

    /// Builds profiles for a whole network in one reverse pass.
    pub fn build(
        net: &InteractionNetwork,
        window: Window,
        direction: ContactDirection,
        precision: u8,
    ) -> Self {
        let mut p = Self::new(window, direction, precision);
        for i in net.iter_reverse() {
            // xtask-allow: no-panic (iter_reverse yields non-increasing times, so push cannot fail)
            p.push(*i).expect("reverse iteration is ordered");
        }
        p
    }

    /// The configured window.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Nodes tracked so far.
    pub fn num_nodes(&self) -> usize {
        self.sketches.len()
    }

    /// Feeds one interaction (non-increasing time order).
    pub fn push(&mut self, i: Interaction) -> Result<(), crate::OutOfOrder> {
        self.frontier.accept(i.time)?;
        let (owner, contact) = match self.direction {
            ContactDirection::Outgoing => (i.src, i.dst),
            ContactDirection::Incoming => (i.dst, i.src),
        };
        let idx = owner.index().max(contact.index());
        if idx >= self.sketches.len() {
            let precision = self.precision;
            self.sketches
                .resize_with(idx + 1, || VersionedHll::new(precision));
        }
        self.sketches[owner.index()].add_hash(hash::hash64(u64::from(contact.0)), i.time.get());
        Ok(())
    }

    /// Estimated distinct contacts of `u` within
    /// `[anchor, anchor + ω − 1]`. Sound for anchors at or before the
    /// stream frontier (the reverse-scan discipline).
    pub fn estimate_at(&self, u: NodeId, anchor: Timestamp) -> f64 {
        if let Some(f) = self.frontier.get() {
            debug_assert!(
                anchor <= f,
                "windowed profile queries must anchor at or before the frontier"
            );
        }
        self.sketches
            .get(u.index())
            .map_or(0.0, |s| s.estimate_window(anchor.get(), self.window.get()))
    }

    /// Estimated distinct contacts of `u` over the whole processed stream.
    pub fn estimate_total(&self, u: NodeId) -> f64 {
        self.sketches
            .get(u.index())
            .map_or(0.0, VersionedHll::estimate)
    }

    /// Heap bytes across all profile sketches.
    pub fn heap_bytes(&self) -> usize {
        self.sketches.iter().map(VersionedHll::heap_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FastSet;

    /// Exact reference: distinct contacts of `u` in `[anchor, anchor+ω-1]`.
    fn exact_contacts(
        net: &InteractionNetwork,
        u: NodeId,
        anchor: i64,
        window: i64,
        direction: ContactDirection,
    ) -> usize {
        let mut set: FastSet<NodeId> = FastSet::default();
        for i in net.iter() {
            let t = i.time.get();
            if t < anchor || t - anchor >= window {
                continue;
            }
            match direction {
                ContactDirection::Outgoing if i.src == u => {
                    set.insert(i.dst);
                }
                ContactDirection::Incoming if i.dst == u => {
                    set.insert(i.src);
                }
                _ => {}
            }
        }
        set.len()
    }

    fn dense_network() -> InteractionNetwork {
        InteractionNetwork::from_triples((0..400u32).map(|i| (i % 7, (i * 3 + 1) % 7, i as i64)))
    }

    #[test]
    fn total_estimates_match_exact_on_small_graph() {
        let net = dense_network();
        let p = SlidingContacts::build(&net, Window(400), ContactDirection::Outgoing, 12);
        for u in net.node_ids() {
            let exact = exact_contacts(&net, u, 0, 400, ContactDirection::Outgoing) as f64;
            let est = p.estimate_total(u);
            assert!((est - exact).abs() < 0.5, "node {u:?}: {est} vs {exact}");
        }
    }

    #[test]
    fn windowed_estimates_at_frontier_match_exact() {
        let net = dense_network();
        for w in [10i64, 50, 200] {
            let p = SlidingContacts::build(&net, Window(w), ContactDirection::Outgoing, 12);
            let frontier = net.min_time().unwrap();
            for u in net.node_ids() {
                let exact =
                    exact_contacts(&net, u, frontier.get(), w, ContactDirection::Outgoing) as f64;
                let est = p.estimate_at(u, frontier);
                assert!(
                    (est - exact).abs() < 0.5,
                    "node {u:?} ω={w}: {est} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn incoming_direction_counts_sources() {
        let net = InteractionNetwork::from_triples([(0, 2, 1), (1, 2, 2), (0, 2, 3)]);
        let p = SlidingContacts::build(&net, Window(10), ContactDirection::Incoming, 12);
        assert!((p.estimate_total(NodeId(2)) - 2.0).abs() < 0.5);
        assert_eq!(p.estimate_total(NodeId(0)), 0.0);
    }

    #[test]
    fn out_of_order_rejected_and_unknown_nodes_zero() {
        let mut p = SlidingContacts::new(Window(5), ContactDirection::Outgoing, 8);
        p.push(Interaction::from_raw(0, 1, 10)).unwrap();
        assert!(p.push(Interaction::from_raw(1, 2, 11)).is_err());
        assert_eq!(p.estimate_total(NodeId(99)), 0.0);
        assert_eq!(p.num_nodes(), 2);
        assert!(p.heap_bytes() > 0);
    }

    #[test]
    fn repeated_contacts_count_once() {
        let net = InteractionNetwork::from_triples([(0, 1, 1), (0, 1, 2), (0, 1, 3)]);
        let p = SlidingContacts::build(&net, Window(10), ContactDirection::Outgoing, 12);
        assert!((p.estimate_total(NodeId(0)) - 1.0).abs() < 0.5);
    }
}
