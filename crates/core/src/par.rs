//! Deterministic scoped-thread fan-out for the query layer.
//!
//! The IRS *build* is inherently sequential (the reverse scan threads one
//! summary state through time), but everything after it — per-node
//! `individual()` sweeps, batch oracle queries, invariant validation — is
//! embarrassingly parallel over the node universe. This module provides the
//! fan-out primitives those call sites share, with a hard determinism
//! contract:
//!
//! > For a pure `f`, `map_indexed(n, threads, f)` returns **byte-identical**
//! > output at every thread count, including 1.
//!
//! The contract holds by construction: indices `0..n` are split into
//! contiguous chunks, each chunk is mapped in index order into its own
//! buffer, and the buffers are concatenated in **chunk order** — so it does
//! not matter which worker processed which chunk, or in what order. Workers
//! pull chunks from a shared atomic cursor (work stealing without a queue),
//! which keeps them balanced when per-index costs are skewed.
//!
//! Two further policies matter for performance:
//!
//! * **Per-worker scratch** ([`map_indexed_with`]): callers that need a
//!   reusable buffer (an oracle union, a bitset) get one scratch value per
//!   *worker*, not per index — the allocation that previously made the
//!   batch-query path regress under threading is paid `O(workers)` times
//!   instead of `O(n)`.
//! * **Hardware clamp**: no matter how many workers a caller requests, at
//!   most [`default_threads`] OS threads are spawned. Requesting 8 workers
//!   on a 1-core container previously spawned 8 threads that time-sliced
//!   one core (pure overhead — the negative scaling in the PR 3/4 bench
//!   trajectory); now the same request runs inline with zero spawn cost and
//!   identical output. Chunk *granularity* still follows the requested
//!   worker count, so `par.chunks` reflects the requested fan-out and the
//!   `par.chunk_ns` histogram exposes imbalance at any hardware width.
//!
//! Threads come from [`std::thread::scope`], so the module adds no
//! dependencies and borrows (the oracle, the store) flow into workers
//! without `Arc`.

use crate::obs::{Counter, Hist, NoopRecorder, Recorder};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Chunks carved per requested worker: finer than one-chunk-per-worker so
/// the atomic cursor can rebalance skewed per-index costs, coarse enough
/// that per-chunk bookkeeping stays invisible.
const CHUNKS_PER_WORKER: usize = 4;

/// Default worker count: the machine's available parallelism, falling back
/// to 1 when it cannot be determined. Cached after the first probe —
/// `available_parallelism` is a syscall, and this sits on the per-batch
/// fast path via the worker-count clamp in [`map_ranges_with`].
// xtask-contract: alloc-free, no-panic
pub fn default_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED
        .get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Maps `f` over `0..n`, fanning out across up to `threads` workers in
/// contiguous index chunks. Results come back in index order —
/// byte-identical to `(0..n).map(f).collect()` at any thread count.
///
/// `threads <= 1` (or tiny `n`) runs inline on the caller's thread, and at
/// most [`default_threads`] OS threads are spawned regardless of `threads`.
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_recorded(n, threads, f, &NoopRecorder)
}

/// [`map_indexed`] with per-chunk instrumentation: each processed chunk
/// bumps `par.chunks` and records its wall time into the `par.chunk_ns`
/// histogram of `rec` — the balance view of the query-layer fan-out. The
/// fan-out and output are byte-identical to the unrecorded path.
pub fn map_indexed_recorded<T, F, R>(n: usize, threads: usize, f: F, rec: &R) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: Recorder,
{
    map_indexed_with_recorded(n, threads, || (), move |_: &mut (), i| f(i), rec)
}

/// Fold-style [`map_indexed`]: `init` builds one scratch value per worker,
/// and `f(&mut scratch, i)` maps index `i` with that worker's scratch —
/// the shape of every oracle batch query, where the scratch is a reusable
/// union buffer that would otherwise be allocated per index.
///
/// `init` is also the per-worker identity seam: it runs exactly once on
/// each worker before its first chunk, so callers that need a per-thread
/// handle — the traced batch queries claim a
/// [`Tracer::worker`](crate::trace::Tracer::worker) ring lane this way —
/// put it in the scratch tuple, with no fan-out API of its own.
///
/// # Determinism contract
///
/// The output is byte-identical to
/// `{ let mut w = init(); (0..n).map(|i| f(&mut w, i)).collect() }` at any
/// thread count **provided `f`'s result does not depend on scratch
/// history** — i.e. `f` must (re)set whatever scratch state it reads, as
/// [`InfluenceOracle::influence_into`](crate::InfluenceOracle::influence_into)
/// does. Chunk results are concatenated in chunk order, so which worker ran
/// which chunk never shows in the output.
pub fn map_indexed_with<T, W, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    map_indexed_with_recorded(n, threads, init, f, &NoopRecorder)
}

/// [`map_indexed_with`] with per-chunk instrumentation: bumps `par.chunks`
/// per processed chunk, records per-chunk wall time into `par.chunk_ns`,
/// and counts `par.scratch_reuse` — chunks served by an already-initialized
/// scratch (chunks processed minus scratches created). The fan-out and
/// output are byte-identical to the unrecorded path.
pub fn map_indexed_with_recorded<T, W, I, F, R>(
    n: usize,
    threads: usize,
    init: I,
    f: F,
    rec: &R,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
    R: Recorder,
{
    let requested = threads.max(1).min(n);
    if requested <= 1 {
        let t0 = rec.span_start();
        let mut scratch = init();
        let out: Vec<T> = (0..n).map(|i| f(&mut scratch, i)).collect();
        if R::ENABLED {
            rec.add(Counter::ParChunks, 1);
            if let Some(ns) = t0.elapsed_ns() {
                rec.record(Hist::ParChunkNs, ns);
            }
        }
        return out;
    }
    // Granularity follows the *requested* fan-out (deterministic metrics at
    // any hardware width); OS threads are clamped to the hardware.
    let chunk_len = n.div_ceil((requested * CHUNKS_PER_WORKER).min(n));
    let chunk_count = n.div_ceil(chunk_len);
    let spawned = requested.min(default_threads()).min(chunk_count);
    let cursor = AtomicUsize::new(0);

    // One worker body, shared by the inline and spawned paths: pull chunks
    // from the cursor until drained, reusing one scratch value throughout.
    let run_worker = |out: &mut Vec<(usize, Vec<T>)>| {
        let mut scratch = init();
        let mut chunks_done = 0usize;
        loop {
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            if c >= chunk_count {
                break;
            }
            let lo = c * chunk_len;
            let hi = (lo + chunk_len).min(n);
            let t0 = rec.span_start();
            out.push((c, (lo..hi).map(|i| f(&mut scratch, i)).collect()));
            chunks_done += 1;
            if R::ENABLED {
                rec.add(Counter::ParChunks, 1);
                if let Some(ns) = t0.elapsed_ns() {
                    rec.record(Hist::ParChunkNs, ns);
                }
            }
        }
        if R::ENABLED && chunks_done > 1 {
            rec.add(Counter::ParScratchReuse, (chunks_done - 1) as u64); // xtask-allow: no-lossy-cast (chunk count fits u64)
        }
    };

    let mut tagged: Vec<(usize, Vec<T>)> = if spawned <= 1 {
        let mut mine = Vec::with_capacity(chunk_count);
        run_worker(&mut mine);
        mine
    } else {
        std::thread::scope(|scope| {
            let run_worker = &run_worker;
            let handles: Vec<_> = (0..spawned)
                .map(|_| {
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        run_worker(&mut mine);
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("parallel map worker panicked")) // xtask-allow: no-panic (re-raising a worker panic is the correct propagation)
                .collect()
        })
    };
    // Chunk indices from `fetch_add` are unique and cover 0..chunk_count, so
    // sorting by chunk index restores exact index order.
    tagged.sort_unstable_by_key(|&(c, _)| c);
    let mut out = Vec::with_capacity(n);
    for (_, mut part) in tagged {
        out.append(&mut part);
    }
    out
}

/// Range-granular [`map_indexed_with`]: instead of calling `f` once per
/// index, each worker hands `f` a whole contiguous index range (plus its
/// per-worker scratch) and receives the range's results as one `Vec` —
/// the shape of batch kernels that process several indices *together*
/// (e.g. the frozen batch-query kernel interleaving a group of queries
/// per register tile). Chunk boundaries are aligned to multiples of
/// `align`, so a kernel with group size `g` never sees a group split
/// across workers.
///
/// # Determinism contract
///
/// `f(&mut scratch, lo..hi)` must return exactly `hi - lo` results, equal
/// to what any other partition of `0..n` into aligned ranges would
/// produce for those indices (and independent of scratch history). Under
/// that contract the output is byte-identical to `f(&mut init(), 0..n)`
/// at any thread count.
pub fn map_ranges_with<T, W, I, F>(n: usize, align: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, std::ops::Range<usize>) -> Vec<T> + Sync,
{
    map_ranges_with_recorded(n, align, threads, init, f, &NoopRecorder)
}

/// [`map_ranges_with`] with the same per-chunk instrumentation as
/// [`map_indexed_with_recorded`] (`par.chunks`, `par.chunk_ns`,
/// `par.scratch_reuse`). The fan-out and output are byte-identical to the
/// unrecorded path.
pub fn map_ranges_with_recorded<T, W, I, F, R>(
    n: usize,
    align: usize,
    threads: usize,
    init: I,
    f: F,
    rec: &R,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, std::ops::Range<usize>) -> Vec<T> + Sync,
    R: Recorder,
{
    let align = align.max(1);
    let groups = n.div_ceil(align);
    // Clamp by the machine's parallelism up front: chunking the range for
    // workers that can never spawn would only pay the worker-pull
    // bookkeeping (per-chunk result vectors, reassembly) with no fan-out
    // to show for it. Output is byte-identical either way.
    let requested = threads
        .max(1)
        .min(groups.max(1))
        .min(default_threads().max(1));
    if requested <= 1 {
        let t0 = rec.span_start();
        let out = f(&mut init(), 0..n);
        debug_assert_eq!(out.len(), n, "range kernel must yield one result per index");
        if R::ENABLED {
            rec.add(Counter::ParChunks, 1);
            if let Some(ns) = t0.elapsed_ns() {
                rec.record(Hist::ParChunkNs, ns);
            }
        }
        return out;
    }
    // Same chunking policy as `map_indexed_with_recorded`, with chunk
    // lengths rounded up to the group alignment.
    let chunk_groups = groups.div_ceil((requested * CHUNKS_PER_WORKER).min(groups));
    let chunk_len = chunk_groups * align;
    let chunk_count = n.div_ceil(chunk_len);
    let spawned = requested.min(default_threads()).min(chunk_count);
    let cursor = AtomicUsize::new(0);

    let run_worker = |out: &mut Vec<(usize, Vec<T>)>| {
        let mut scratch = init();
        let mut chunks_done = 0usize;
        loop {
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            if c >= chunk_count {
                break;
            }
            let lo = c * chunk_len;
            let hi = (lo + chunk_len).min(n);
            let t0 = rec.span_start();
            let part = f(&mut scratch, lo..hi);
            debug_assert_eq!(
                part.len(),
                hi - lo,
                "range kernel must yield one result per index"
            );
            out.push((c, part));
            chunks_done += 1;
            if R::ENABLED {
                rec.add(Counter::ParChunks, 1);
                if let Some(ns) = t0.elapsed_ns() {
                    rec.record(Hist::ParChunkNs, ns);
                }
            }
        }
        if R::ENABLED && chunks_done > 1 {
            rec.add(Counter::ParScratchReuse, (chunks_done - 1) as u64); // xtask-allow: no-lossy-cast (chunk count fits u64)
        }
    };

    let mut tagged: Vec<(usize, Vec<T>)> = if spawned <= 1 {
        let mut mine = Vec::with_capacity(chunk_count);
        run_worker(&mut mine);
        mine
    } else {
        std::thread::scope(|scope| {
            let run_worker = &run_worker;
            let handles: Vec<_> = (0..spawned)
                .map(|_| {
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        run_worker(&mut mine);
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("parallel map worker panicked")) // xtask-allow: no-panic (re-raising a worker panic is the correct propagation)
                .collect()
        })
    };
    tagged.sort_unstable_by_key(|&(c, _)| c);
    let mut out = Vec::with_capacity(n);
    for (_, mut part) in tagged {
        out.append(&mut part);
    }
    out
}

/// Runs `check` over `0..n` in contiguous chunks and returns the error of
/// the **lowest failing index**, exactly as the serial loop would — workers
/// past the first failure stop at their own chunk's first error, and the
/// chunk results are inspected in index order. Spawned OS threads are
/// clamped to [`default_threads`], like the map primitives.
pub fn try_for_each_indexed<E, F>(n: usize, threads: usize, check: F) -> Result<(), E>
where
    E: Send,
    F: Fn(usize) -> Result<(), E> + Sync,
{
    let workers = threads.max(1).min(n).min(default_threads());
    if workers <= 1 {
        return (0..n).try_for_each(check);
    }
    let chunk = n.div_ceil(workers);
    let firsts: Vec<Result<(), E>> = std::thread::scope(|scope| {
        let check = &check;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                scope.spawn(move || (lo..hi).try_for_each(check))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel validate worker panicked")) // xtask-allow: no-panic (re-raising a worker panic is the correct propagation)
            .collect()
    });
    firsts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::MetricsRecorder;

    #[test]
    fn map_is_identical_across_thread_counts() {
        let serial: Vec<u64> = (0..1000).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = map_indexed(1000, threads, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_edge_sizes() {
        assert!(map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(map_indexed(1, 4, |i| i), vec![0]);
        assert_eq!(map_indexed(3, 8, |i| i * 2), vec![0, 2, 4]);
    }

    #[test]
    fn map_with_scratch_matches_serial_fold() {
        // Scratch is a reusable buffer; f resets what it reads, so history
        // must not show in the output at any thread count.
        let serial: Vec<usize> = (0..500)
            .map(|i| {
                let mut buf = [0u8; 64];
                buf[i % 64] = 1;
                buf.iter().map(|&b| b as usize).sum::<usize>() + i
            })
            .collect();
        for threads in [1, 2, 5, 16] {
            let par = map_indexed_with(
                500,
                threads,
                || vec![0u8; 64],
                |buf, i| {
                    buf.fill(0); // reset: result independent of scratch history
                    buf[i % 64] = 1;
                    buf.iter().map(|&b| b as usize).sum::<usize>() + i
                },
            );
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn scratch_is_created_per_worker_not_per_index() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let created = AtomicUsize::new(0);
        let out = map_indexed_with(
            1000,
            4,
            || {
                created.fetch_add(1, Ordering::Relaxed);
            },
            |_, i| i,
        );
        assert_eq!(out.len(), 1000);
        let made = created.load(Ordering::Relaxed);
        // One scratch per participating worker — never one per index. (The
        // exact count depends on the hardware clamp, hence the range.)
        assert!((1..=4).contains(&made), "scratches created: {made}");
    }

    #[test]
    fn recorded_chunk_counters_reflect_requested_fanout() {
        let rec = MetricsRecorder::new();
        let out = map_indexed_with_recorded(100, 2, || (), |_, i| i, &rec);
        assert_eq!(out.len(), 100);
        let snap = rec.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
        };
        // 2 requested workers × CHUNKS_PER_WORKER chunks, independent of how
        // many OS threads the hardware clamp admitted.
        assert_eq!(counter("par.chunks"), Some(2 * 4));
        // Every chunk beyond each worker's first reuses that worker's
        // scratch: at least chunks − workers hits, at most chunks − 1.
        let reuse = counter("par.scratch_reuse").unwrap_or(0);
        assert!((4..=7).contains(&reuse), "scratch reuse: {reuse}");
    }

    #[test]
    fn map_ranges_matches_serial_and_respects_alignment() {
        let serial: Vec<u64> = (0..997).map(|i| (i as u64).wrapping_mul(0xA5A5)).collect();
        for align in [1, 4, 64] {
            for threads in [1, 2, 3, 8, 64] {
                let par = map_ranges_with(
                    997,
                    align,
                    threads,
                    || (),
                    |_, range| {
                        // Every chunk must start on a group boundary so
                        // kernels never see a split group.
                        assert_eq!(range.start % align, 0, "align={align}");
                        range.map(|i| (i as u64).wrapping_mul(0xA5A5)).collect()
                    },
                );
                assert_eq!(par, serial, "align={align} threads={threads}");
            }
        }
    }

    #[test]
    fn map_ranges_handles_edge_sizes() {
        assert!(map_ranges_with(0, 4, 8, || (), |_, r| r.collect::<Vec<_>>()).is_empty());
        assert_eq!(
            map_ranges_with(1, 4, 8, || (), |_, r| r.collect::<Vec<_>>()),
            vec![0]
        );
        assert_eq!(
            map_ranges_with(5, 4, 2, || (), |_, r| r.collect::<Vec<_>>()),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn try_for_each_reports_lowest_failing_index() {
        for threads in [1, 2, 7] {
            let bad = [713usize, 401, 902];
            let got = try_for_each_indexed(1000, threads, |i| {
                if bad.contains(&i) {
                    Err(i)
                } else {
                    Ok(())
                }
            });
            assert_eq!(got, Err(401), "threads={threads}");
            let clean: Result<(), usize> = try_for_each_indexed(1000, threads, |_| Ok(()));
            assert_eq!(clean, Ok(()));
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
