//! Deterministic scoped-thread fan-out for the query layer.
//!
//! The IRS *build* is inherently sequential (the reverse scan threads one
//! summary state through time), but everything after it — per-node
//! `individual()` sweeps, batch oracle queries, invariant validation — is
//! embarrassingly parallel over the node universe. This module provides the
//! one fan-out primitive those call sites share, with a hard determinism
//! contract:
//!
//! > For a pure `f`, `map_indexed(n, threads, f)` returns **byte-identical**
//! > output at every thread count, including 1.
//!
//! The contract holds by construction: indices `0..n` are split into
//! contiguous chunks, each worker maps its chunk in index order into its own
//! buffer, and the buffers are concatenated in chunk order. No work queue,
//! no atomics, no ordering races — the same deterministic chunked fan-out
//! the Monte-Carlo simulator uses for its replicates. Threads come from
//! [`std::thread::scope`], so the module adds no dependencies and borrows
//! (the oracle, the store) flow into workers without `Arc`.

use crate::obs::{Counter, Hist, NoopRecorder, Recorder};

/// Default worker count: the machine's available parallelism, falling back
/// to 1 when it cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `0..n`, fanning out across up to `threads` scoped workers
/// in contiguous index chunks. Results come back in index order —
/// byte-identical to `(0..n).map(f).collect()` at any thread count.
///
/// `threads <= 1` (or tiny `n`) runs inline on the caller's thread.
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_recorded(n, threads, f, &NoopRecorder)
}

/// [`map_indexed`] with per-chunk instrumentation: each worker chunk bumps
/// `par.chunks` and records its wall time into the `par.chunk_ns` histogram
/// of `rec` — the per-thread balance view of the query-layer fan-out. The
/// fan-out and output are byte-identical to the unrecorded path.
pub fn map_indexed_recorded<T, F, R>(n: usize, threads: usize, f: F, rec: &R) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: Recorder,
{
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        let t0 = rec.span_start();
        let out: Vec<T> = (0..n).map(f).collect();
        if R::ENABLED {
            rec.add(Counter::ParChunks, 1);
            if let Some(ns) = t0.elapsed_ns() {
                rec.record(Hist::ParChunkNs, ns);
            }
        }
        return out;
    }
    let chunk = n.div_ceil(workers);
    let chunks: Vec<Vec<T>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                scope.spawn(move || {
                    let t0 = rec.span_start();
                    let out = (lo..hi).map(f).collect::<Vec<T>>();
                    if R::ENABLED {
                        rec.add(Counter::ParChunks, 1);
                        if let Some(ns) = t0.elapsed_ns() {
                            rec.record(Hist::ParChunkNs, ns);
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked")) // xtask-allow: no-panic (re-raising a worker panic is the correct propagation)
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for mut c in chunks {
        out.append(&mut c);
    }
    out
}

/// Runs `check` over `0..n` in contiguous chunks and returns the error of
/// the **lowest failing index**, exactly as the serial loop would — workers
/// past the first failure stop at their own chunk's first error, and the
/// chunk results are inspected in index order.
pub fn try_for_each_indexed<E, F>(n: usize, threads: usize, check: F) -> Result<(), E>
where
    E: Send,
    F: Fn(usize) -> Result<(), E> + Sync,
{
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return (0..n).try_for_each(check);
    }
    let chunk = n.div_ceil(workers);
    let firsts: Vec<Result<(), E>> = std::thread::scope(|scope| {
        let check = &check;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                scope.spawn(move || (lo..hi).try_for_each(check))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel validate worker panicked")) // xtask-allow: no-panic (re-raising a worker panic is the correct propagation)
            .collect()
    });
    firsts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_identical_across_thread_counts() {
        let serial: Vec<u64> = (0..1000).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = map_indexed(1000, threads, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_edge_sizes() {
        assert!(map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(map_indexed(1, 4, |i| i), vec![0]);
        assert_eq!(map_indexed(3, 8, |i| i * 2), vec![0, 2, 4]);
    }

    #[test]
    fn try_for_each_reports_lowest_failing_index() {
        for threads in [1, 2, 7] {
            let bad = [713usize, 401, 902];
            let got = try_for_each_indexed(1000, threads, |i| {
                if bad.contains(&i) {
                    Err(i)
                } else {
                    Ok(())
                }
            });
            assert_eq!(got, Err(401), "threads={threads}");
            let clean: Result<(), usize> = try_for_each_indexed(1000, threads, |_| Ok(()));
            assert_eq!(clean, Ok(()));
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
