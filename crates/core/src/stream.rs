//! Streaming (incremental) builders for the one-pass IRS algorithms.
//!
//! [`ExactIrs::compute`](crate::ExactIrs::compute) and
//! [`ApproxIrs::compute`](crate::ApproxIrs::compute) take a fully
//! materialized [`InteractionNetwork`]. The paper stresses that the
//! algorithms are *one-pass* over the reverse-chronological interaction
//! list — "it treats every interaction exactly once and the time spent per
//! processed interaction is very low" — so this module exposes that shape
//! directly: feed interactions one at a time in **non-increasing time
//! order** (e.g. while scanning a huge log file backwards) and finish into
//! the same summaries `compute` would produce, without ever holding the
//! interaction list in memory.
//!
//! Both builders are thin wrappers over the shared
//! [`ReversePassEngine`](crate::engine::ReversePassEngine): the engine owns
//! frontier tracking, tie buffering and the two-phase flush, so streamed and
//! batch results are identical — a property-tested guarantee.
//!
//! ```
//! use infprop_core::{ExactIrs, ExactIrsStream};
//! use infprop_temporal_graph::{Interaction, InteractionNetwork, NodeId, Window};
//!
//! let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 2, 5)]);
//! let mut stream = ExactIrsStream::new(Window(10));
//! for i in net.iter_reverse() {
//!     stream.push(*i).unwrap();
//! }
//! let irs = stream.finish();
//! assert!(irs.reaches(NodeId(0), NodeId(2)));
//! ```
//!
//! [`InteractionNetwork`]: infprop_temporal_graph::InteractionNetwork

use crate::approx::ApproxIrs;
use crate::engine::{ExactStore, OutOfOrder, ReversePassEngine, VhllStore};
use crate::exact::ExactIrs;
use infprop_temporal_graph::{Interaction, Window};

/// Streaming builder for [`ExactIrs`]: a [`ReversePassEngine`] over an
/// [`ExactStore`].
pub struct ExactIrsStream {
    engine: ReversePassEngine<ExactStore>,
}

impl ExactIrsStream {
    /// A builder with an empty node universe (it grows as ids appear).
    pub fn new(window: Window) -> Self {
        ExactIrsStream {
            engine: ReversePassEngine::new(window, ExactStore::with_nodes(0)),
        }
    }

    /// Number of interactions accepted so far.
    pub fn interactions_seen(&self) -> usize {
        self.engine.interactions_seen()
    }

    /// Feeds one interaction (time must be ≤ every previous time). Ties are
    /// buffered and flushed together, exactly like the batch algorithm.
    pub fn push(&mut self, i: Interaction) -> Result<(), OutOfOrder> {
        self.engine.push(i)
    }

    /// Flushes any buffered ties and returns the finished summaries.
    pub fn finish(self) -> ExactIrs {
        let window = self.engine.window();
        ExactIrs::from_parts(window, self.engine.finish().into_summaries())
    }
}

/// Streaming builder for [`ApproxIrs`]: a [`ReversePassEngine`] over a
/// [`VhllStore`].
pub struct ApproxIrsStream {
    engine: ReversePassEngine<VhllStore>,
}

impl ApproxIrsStream {
    /// A builder with the paper-default precision (β = 512).
    pub fn new(window: Window) -> Self {
        Self::with_precision(window, crate::DEFAULT_PRECISION)
    }

    /// A builder with `β = 2^precision` cells per node.
    pub fn with_precision(window: Window, precision: u8) -> Self {
        ApproxIrsStream {
            engine: ReversePassEngine::new(window, VhllStore::with_nodes(precision, 0)),
        }
    }

    /// Number of interactions accepted so far.
    pub fn interactions_seen(&self) -> usize {
        self.engine.interactions_seen()
    }

    /// Feeds one interaction (time must be ≤ every previous time).
    pub fn push(&mut self, i: Interaction) -> Result<(), OutOfOrder> {
        self.engine.push(i)
    }

    /// Flushes any buffered ties and returns the finished sketches.
    pub fn finish(self) -> ApproxIrs {
        let window = self.engine.window();
        let precision = self.engine.store().precision();
        ApproxIrs::from_parts(window, precision, self.engine.finish().into_sketches())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infprop_temporal_graph::{InteractionNetwork, NodeId, Timestamp};

    fn figure1a() -> InteractionNetwork {
        InteractionNetwork::from_triples([
            (0, 3, 1),
            (4, 5, 2),
            (3, 4, 3),
            (4, 1, 4),
            (0, 1, 5),
            (1, 4, 6),
            (4, 2, 7),
            (1, 2, 8),
        ])
    }

    #[test]
    fn streamed_exact_equals_batch() {
        let net = figure1a();
        for w in [1i64, 3, 8] {
            let batch = ExactIrs::compute(&net, Window(w));
            let mut stream = ExactIrsStream::new(Window(w));
            for i in net.iter_reverse() {
                stream.push(*i).unwrap();
            }
            let streamed = stream.finish();
            for u in net.node_ids() {
                assert_eq!(streamed.irs_sorted(u), batch.irs_sorted(u), "ω={w}");
                for &(v, t) in batch.summary(u) {
                    assert_eq!(streamed.lambda(u, v), Some(t));
                }
            }
        }
    }

    #[test]
    fn streamed_approx_equals_batch() {
        let net = figure1a();
        let batch = ApproxIrs::compute_with_precision(&net, Window(3), 6);
        let mut stream = ApproxIrsStream::with_precision(Window(3), 6);
        for i in net.iter_reverse() {
            stream.push(*i).unwrap();
        }
        let streamed = stream.finish();
        for u in net.node_ids() {
            assert_eq!(streamed.sketch(u), batch.sketch(u));
        }
    }

    #[test]
    fn ties_are_buffered_and_flushed_together() {
        let net = InteractionNetwork::from_triples([(0, 1, 5), (1, 2, 5), (1, 3, 7)]);
        let batch = ExactIrs::compute(&net, Window(10));
        let mut stream = ExactIrsStream::new(Window(10));
        for i in net.iter_reverse() {
            stream.push(*i).unwrap();
        }
        let streamed = stream.finish();
        for u in net.node_ids() {
            assert_eq!(streamed.irs_sorted(u), batch.irs_sorted(u));
        }
        // The tie at t=5 must not have chained.
        assert!(!streamed.reaches(NodeId(0), NodeId(2)));
    }

    #[test]
    fn out_of_order_push_is_rejected() {
        let mut stream = ExactIrsStream::new(Window(5));
        stream.push(Interaction::from_raw(0, 1, 10)).unwrap();
        stream.push(Interaction::from_raw(1, 2, 10)).unwrap(); // tie ok
        let err = stream.push(Interaction::from_raw(2, 3, 11)).unwrap_err();
        assert_eq!(err.got, Timestamp(11));
        assert_eq!(err.frontier, Timestamp(10));
        assert!(err.to_string().contains("non-increasing"));
        // Earlier times still accepted after the error.
        stream.push(Interaction::from_raw(2, 3, 9)).unwrap();
        assert_eq!(stream.interactions_seen(), 3);
    }

    #[test]
    fn node_universe_grows_on_demand() {
        let mut stream = ExactIrsStream::new(Window(5));
        stream.push(Interaction::from_raw(100, 7, 2)).unwrap();
        let irs = stream.finish();
        assert_eq!(irs.num_nodes(), 101);
        assert!(irs.reaches(NodeId(100), NodeId(7)));
    }

    #[test]
    fn empty_stream_finishes_empty() {
        let irs = ExactIrsStream::new(Window(3)).finish();
        assert_eq!(irs.num_nodes(), 0);
        let approx = ApproxIrsStream::new(Window(3)).finish();
        assert_eq!(approx.num_nodes(), 0);
    }
}
