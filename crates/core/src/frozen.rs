//! Frozen oracle arenas: contiguous, read-only CSR-style layouts of the
//! IRS summaries, built once after the reverse pass and shared by every
//! query-path operation.
//!
//! The live stores ([`ExactStore`](crate::ExactStore),
//! [`VhllStore`](crate::VhllStore)) optimize for *mutation* during the
//! one-pass build: one `Vec` (or versioned sketch) per node, each its own
//! heap allocation. Queries have the opposite access pattern — read-only
//! sweeps over every node — and pay for the build layout with pointer
//! chasing and per-node cache misses (the ~3.6 µs oracle queries of the
//! PR 4 bench trajectory). Freezing rewrites the summaries into flat
//! arenas:
//!
//! * [`FrozenExactOracle`] — CSR: `offsets[u] .. offsets[u + 1]` indexes a
//!   single flat entry section of encoded `(NodeId, Timestamp)` pairs,
//!   each node's slice sorted by `NodeId` exactly like its live summary.
//! * [`FrozenApproxOracle`] — one flat `β`-bytes-per-node register arena
//!   (the per-cell maxima of the versioned sketches, i.e. the same
//!   collapse [`ApproxOracle`](crate::ApproxOracle) performs), its
//!   tile-major transpose, plus the per-node estimates **precomputed at
//!   freeze time**, turning the `individuals` sweep and every CELF
//!   first-round probe into a table read.
//!
//! # One image, in memory and on disk
//!
//! Since IPFE layout v2 / IPFA layout v3 each arena *is* its on-disk
//! image: one contiguous [`ArenaBytes`] buffer holding the format header
//! followed by every section, each section padded to start on an
//! [`ARENA_ALIGN`]-byte boundary (see [`layout`]). The persist layer
//! writes the image verbatim and loads by validating the header + section
//! framing and wrapping the bytes — which is what makes `mmap` loading
//! zero-copy: a mapped file is queryable as-is, with zero per-node
//! allocation or decoding pass. Exact entries are decoded on the fly
//! through [`EntriesSlice`] (12-byte little-endian records); register
//! sections are raw bytes and borrow directly.
//!
//! Both oracles implement [`InfluenceOracle`], so `individuals`,
//! `influence_many` and `greedy_top_k` run unchanged — and bit-identically:
//! the frozen layouts preserve entry order and register values, and every
//! estimator path reuses the exact same summation order as the live
//! oracles.

use crate::arena::ArenaBytes;
use crate::invariants::InvariantViolation;
use crate::kernel;
use crate::obs::{metric_u64, Gauge, HeapBytes, NoopRecorder, Recorder};
use crate::oracle::{finish_batch_recorded, push_deduped, record_batch_query};
use crate::oracle::{InfluenceOracle, NodeBitset};
use crate::trace::{NoopTracer, SpanId, TraceEvent, TraceId, Tracer};
use infprop_hll::{estimate_from_registers, HyperLogLog, RunningEstimator, VersionedHll};
use infprop_temporal_graph::{NodeId, Timestamp, Window};
use std::fmt;
use std::ops::Range;

/// Merge-block and transpose-tile width in bytes — one cache line, clamped
/// to `β` for small precisions (`step = min(TILE, β)`).
pub(crate) const TILE: usize = 64;

/// Queries interleaved per group by the approx batch kernel. The latency
/// floor of a single query is the estimator's *serial* dependent-add chain
/// (β float adds that must stay in ascending register order for
/// bit-identity); interleaving `GROUP` independent queries tile by tile
/// lets their chains overlap in the pipeline while the group's merge
/// blocks and estimators still fit in L1.
const GROUP: usize = 4;

/// The arena image layout shared by the in-memory oracles and the persist
/// codecs: IPFE layout v2 and IPFA layout v3 place every section on an
/// [`ARENA_ALIGN`]-byte boundary (gaps zero-filled) so a file loaded — or
/// mapped — into an aligned buffer can serve each section as a borrowed
/// slice.
///
/// * IPFE v2: `header (25 B) | pad | offsets ((n+1)×4 B u32 LE) | pad |
///   entries (total×12 B)` — header = magic `IPFE`, version, window `i64`,
///   `n` `u32`, `total` `u64`, all little-endian.
/// * IPFA v3: `header (10 B) | pad | registers (n·β B) | pad |
///   transposed (n·β B) | pad | individuals (n×8 B f64 LE bits)` —
///   header = magic `IPFA`, version, precision, `n` `u32`.
pub(crate) mod layout {
    use crate::arena::ARENA_ALIGN;

    /// Magic prefix of the frozen exact (CSR) arena image.
    pub(crate) const EXACT_MAGIC: &[u8; 4] = b"IPFE";
    /// Magic prefix of the frozen approx (register) arena image.
    pub(crate) const APPROX_MAGIC: &[u8; 4] = b"IPFA";
    /// Current IPFE layout version: aligned sections, image == arena.
    pub(crate) const EXACT_VERSION: u8 = 2;
    /// Current IPFA layout version: aligned sections plus the precomputed
    /// per-node estimates stored after the register sections.
    pub(crate) const APPROX_VERSION: u8 = 3;
    /// IPFE header bytes: magic, version, window, `n`, `total`.
    pub(crate) const EXACT_HEADER: usize = 25;
    /// IPFA header bytes: magic, version, precision, `n`.
    pub(crate) const APPROX_HEADER: usize = 10;
    /// Encoded bytes per exact entry: `u32` target id + `i64` end time.
    pub(crate) const ENTRY_BYTES: usize = 12;

    /// Rounds `at` up to the next section boundary.
    pub(crate) fn align_up(at: usize) -> usize {
        at.div_ceil(ARENA_ALIGN) * ARENA_ALIGN
    }

    /// IPFE v2 section positions for an `n`-node, `total`-entry arena:
    /// `(offsets_at, entries_at, image_len)`.
    pub(crate) fn exact_sections(num_nodes: usize, total: usize) -> (usize, usize, usize) {
        let offsets_at = align_up(EXACT_HEADER);
        let entries_at = align_up(offsets_at + (num_nodes + 1) * 4);
        (offsets_at, entries_at, entries_at + total * ENTRY_BYTES)
    }

    /// IPFA v3 section positions for an `n`-node, `β`-register arena:
    /// `(registers_at, transposed_at, individuals_at, image_len)`.
    pub(crate) fn approx_sections(num_nodes: usize, beta: usize) -> (usize, usize, usize, usize) {
        let regs_at = align_up(APPROX_HEADER);
        let trans_at = align_up(regs_at + num_nodes * beta);
        let indiv_at = align_up(trans_at + num_nodes * beta);
        (regs_at, trans_at, indiv_at, indiv_at + num_nodes * 8)
    }
}

/// Decodes one image entry: `u32` target id, `i64` end time, little-endian.
#[inline]
// xtask-contract: alloc-free, kernel
fn decode_entry(b: &[u8]) -> (NodeId, Timestamp) {
    (
        NodeId(u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        Timestamp(i64::from_le_bytes([
            b[4], b[5], b[6], b[7], b[8], b[9], b[10], b[11],
        ])),
    )
}

/// Encodes one entry at image position `at`.
fn put_entry(img: &mut [u8], at: usize, v: NodeId, t: Timestamp) {
    img[at..at + 4].copy_from_slice(&v.0.to_le_bytes());
    img[at + 4..at + layout::ENTRY_BYTES].copy_from_slice(&t.0.to_le_bytes());
}

/// Encodes one `u32` at image position `at`, little-endian.
fn put_u32(img: &mut [u8], at: usize, v: u32) {
    img[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

/// Writes the 25-byte IPFE v2 header. Callers have checked that `n` fits
/// `u32` (the format's node field).
fn write_exact_header(img: &mut [u8], window: Window, n: usize, total: usize) {
    img[..4].copy_from_slice(layout::EXACT_MAGIC);
    img[4] = layout::EXACT_VERSION;
    img[5..13].copy_from_slice(&window.0.to_le_bytes());
    img[13..17].copy_from_slice(&(n as u32).to_le_bytes()); // xtask-allow: no-lossy-cast (callers assert n fits u32)
    img[17..25].copy_from_slice(&metric_u64(total).to_le_bytes());
}

/// Writes the 10-byte IPFA v3 header. Callers have checked that `n` fits
/// `u32` (the format's node field).
fn write_approx_header(img: &mut [u8], precision: u8, n: usize) {
    img[..4].copy_from_slice(layout::APPROX_MAGIC);
    img[4] = layout::APPROX_VERSION;
    img[5] = precision;
    img[6..10].copy_from_slice(&(n as u32).to_le_bytes()); // xtask-allow: no-lossy-cast (callers assert n fits u32)
}

/// A node's frozen summary, borrowed directly from the arena image as
/// encoded 12-byte little-endian records and decoded entry-by-entry on
/// the fly — the zero-copy replacement for the `&[(NodeId, Timestamp)]`
/// slices the pre-v2 arenas materialized at load time. Decoding is two
/// `from_le_bytes` per entry (free next to the cache miss that fetches
/// the record), and a mapped arena never pays a per-node allocation.
///
/// Compares equal to the entry slice it encodes, so assertions and merge
/// code read naturally on either representation.
#[derive(Clone, Copy)]
pub struct EntriesSlice<'a> {
    bytes: &'a [u8],
}

impl<'a> EntriesSlice<'a> {
    /// Wraps an image region holding whole encoded entries.
    #[inline]
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        debug_assert!(bytes.len().is_multiple_of(layout::ENTRY_BYTES));
        EntriesSlice { bytes }
    }

    /// The empty summary — what layered lookups answer for nodes outside
    /// a layer's universe.
    #[inline]
    pub fn empty() -> EntriesSlice<'static> {
        EntriesSlice { bytes: &[] }
    }

    /// Number of entries.
    #[inline]
    // xtask-contract: alloc-free, kernel
    pub fn len(&self) -> usize {
        self.bytes.len() / layout::ENTRY_BYTES
    }

    /// True when the summary holds no entries.
    #[inline]
    // xtask-contract: alloc-free, kernel
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Entry `i`, decoded.
    #[inline]
    // xtask-contract: alloc-free, kernel
    pub fn get(&self, i: usize) -> (NodeId, Timestamp) {
        let at = i * layout::ENTRY_BYTES;
        decode_entry(&self.bytes[at..at + layout::ENTRY_BYTES])
    }

    /// Entry `i`'s target id alone — the two-pointer merge's inner loop
    /// never reads end times, so it skips the second decode.
    #[inline]
    // xtask-contract: alloc-free, kernel
    pub fn target(&self, i: usize) -> NodeId {
        let at = i * layout::ENTRY_BYTES;
        NodeId(u32::from_le_bytes([
            self.bytes[at],
            self.bytes[at + 1],
            self.bytes[at + 2],
            self.bytes[at + 3],
        ]))
    }

    /// Iterates the decoded entries in arena order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Timestamp)> + 'a {
        self.bytes
            .chunks_exact(layout::ENTRY_BYTES)
            .map(decode_entry)
    }

    /// Decodes the whole summary into an owned vector (diagnostics and
    /// tests; query paths iterate the image directly).
    pub fn to_vec(&self) -> Vec<(NodeId, Timestamp)> {
        self.iter().collect()
    }
}

impl PartialEq for EntriesSlice<'_> {
    fn eq(&self, other: &Self) -> bool {
        // The encoding is canonical, so equal entries ⇔ equal bytes.
        self.bytes == other.bytes
    }
}

impl Eq for EntriesSlice<'_> {}

impl PartialEq<[(NodeId, Timestamp)]> for EntriesSlice<'_> {
    fn eq(&self, other: &[(NodeId, Timestamp)]) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter().copied()).all(|(a, b)| a == b)
    }
}

impl PartialEq<&[(NodeId, Timestamp)]> for EntriesSlice<'_> {
    fn eq(&self, other: &&[(NodeId, Timestamp)]) -> bool {
        *self == **other
    }
}

impl PartialEq<Vec<(NodeId, Timestamp)>> for EntriesSlice<'_> {
    fn eq(&self, other: &Vec<(NodeId, Timestamp)>) -> bool {
        *self == other[..]
    }
}

impl fmt::Debug for EntriesSlice<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Length of the union of two sorted, duplicate-free summary slices,
/// counted with a two-pointer merge — no union is materialized. The exact
/// batch path's fast path for two-seed queries.
// xtask-contract: alloc-free, kernel
fn sorted_union_len(a: EntriesSlice<'_>, b: EntriesSlice<'_>) -> usize {
    let (mut i, mut j, mut len) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        len += 1;
        match a.target(i).cmp(&b.target(j)) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    len + (a.len() - i) + (b.len() - j)
}

/// Exact IRS summaries frozen into a CSR arena over one contiguous
/// [`ArenaBytes`] image in the IPFE v2 layout (see the module docs and
/// [`layout`]): header, aligned offset section, aligned entry section.
/// The image is the on-disk format — persisting writes it verbatim, and
/// loading (or mapping) wraps the file bytes without copying a section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrozenExactOracle {
    window: Window,
    num_nodes: usize,
    total: usize,
    offsets_at: usize,
    entries_at: usize,
    data: ArenaBytes,
}

impl FrozenExactOracle {
    /// Freezes per-node summaries into the CSR arena. Entry slices are
    /// copied verbatim, so every query answer is bit-identical to the live
    /// [`ExactOracle`](crate::ExactOracle) over the same summaries.
    ///
    /// # Panics
    ///
    /// Panics if the total entry count exceeds `u32::MAX` (≈ 4.3 G
    /// entries — beyond any in-memory summary set this crate targets) or
    /// the node count exceeds `u32::MAX`.
    pub fn from_summaries(window: Window, summaries: &[Vec<(NodeId, Timestamp)>]) -> Self {
        let total: usize = summaries.iter().map(Vec::len).sum();
        assert!(
            u32::try_from(total).is_ok(),
            "frozen arena limited to u32::MAX entries, got {total}"
        );
        let n = summaries.len();
        assert!(
            u32::try_from(n).is_ok(),
            "frozen arena limited to u32::MAX nodes, got {n}"
        );
        let (offsets_at, entries_at, image_len) = layout::exact_sections(n, total);
        let mut img = vec![0u8; image_len];
        write_exact_header(&mut img, window, n, total);
        put_u32(&mut img, offsets_at, 0);
        let mut running = 0u32;
        let mut at = entries_at;
        for (i, summary) in summaries.iter().enumerate() {
            // Fits: the sum of all lengths was checked against u32 above.
            running += summary.len() as u32; // xtask-allow: no-lossy-cast (total checked against u32::MAX)
            put_u32(&mut img, offsets_at + (i + 1) * 4, running);
            for &(v, t) in summary {
                put_entry(&mut img, at, v, t);
                at += layout::ENTRY_BYTES;
            }
        }
        Self::from_image(window, n, total, ArenaBytes::from_vec(img))
    }

    /// Reassembles an arena from decoded CSR parts (legacy-format loads
    /// and tests). The caller must have validated the CSR shape; this
    /// constructor only asserts the cheap global frame, then re-encodes
    /// the parts into a canonical v2 image.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty, does not start at 0, does not end at
    /// `entries.len()`, or frames more than `u32::MAX` nodes.
    pub fn from_parts(
        window: Window,
        offsets: Vec<u32>,
        entries: Vec<(NodeId, Timestamp)>,
    ) -> Self {
        assert!(
            offsets.first() == Some(&0)
                && offsets.last().map(|&e| e as usize) == Some(entries.len()), // xtask-allow: no-lossy-cast (u32 fits usize)
            "offsets must frame the entries array"
        );
        let n = offsets.len() - 1;
        assert!(
            u32::try_from(n).is_ok(),
            "frozen arena limited to u32::MAX nodes, got {n}"
        );
        let total = entries.len();
        let (offsets_at, entries_at, image_len) = layout::exact_sections(n, total);
        let mut img = vec![0u8; image_len];
        write_exact_header(&mut img, window, n, total);
        for (i, &o) in offsets.iter().enumerate() {
            put_u32(&mut img, offsets_at + i * 4, o);
        }
        for (i, &(v, t)) in entries.iter().enumerate() {
            put_entry(&mut img, entries_at + i * layout::ENTRY_BYTES, v, t);
        }
        Self::from_image(window, n, total, ArenaBytes::from_vec(img))
    }

    /// Wraps an already-validated IPFE v2 image: `data` must hold exactly
    /// the sections [`layout::exact_sections`] describes for
    /// (`num_nodes`, `total`) under a header matching `window`. The
    /// constructors above build such images from trusted parts; the
    /// persist layer validates untrusted bytes before calling this.
    ///
    /// # Panics
    ///
    /// Panics if `data`'s length does not match the layout.
    pub(crate) fn from_image(
        window: Window,
        num_nodes: usize,
        total: usize,
        data: ArenaBytes,
    ) -> Self {
        let (offsets_at, entries_at, image_len) = layout::exact_sections(num_nodes, total);
        assert_eq!(data.len(), image_len, "image length must match its header");
        FrozenExactOracle {
            window,
            num_nodes,
            total,
            offsets_at,
            entries_at,
            data,
        }
    }

    /// The arena's whole image — the exact bytes the persist layer
    /// writes, exposed so callers can inspect the load backend (owned vs
    /// mapped) and account heap usage.
    pub fn image(&self) -> &ArenaBytes {
        &self.data
    }

    /// The window `ω` the summaries were computed under.
    #[inline]
    pub fn window(&self) -> Window {
        self.window
    }

    /// CSR offset `i`, decoded from the image.
    #[inline]
    // xtask-contract: alloc-free, kernel
    fn offset(&self, i: usize) -> usize {
        let at = self.offsets_at + i * 4;
        let b = self.data.as_slice();
        u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]]) as usize // xtask-allow: no-lossy-cast (u32 fits usize)
    }

    /// Node `u`'s frozen summary — sorted by `NodeId`, identical content
    /// to the live summary it was frozen from, borrowed straight from the
    /// arena image.
    #[inline]
    // xtask-contract: alloc-free, kernel
    pub fn summary(&self, node: NodeId) -> EntriesSlice<'_> {
        let i = node.index();
        let lo = self.entries_at + self.offset(i) * layout::ENTRY_BYTES;
        let hi = self.entries_at + self.offset(i + 1) * layout::ENTRY_BYTES;
        EntriesSlice::new(&self.data.as_slice()[lo..hi])
    }

    /// The CSR offset array (`num_nodes + 1` entries), decoded from the
    /// image. Allocates — diagnostics and tests; query paths read the
    /// image directly.
    pub fn offsets(&self) -> Vec<u32> {
        (0..=self.num_nodes)
            .map(|i| self.offset(i) as u32) // xtask-allow: no-lossy-cast (decoded from a u32 field)
            .collect()
    }

    /// The flat entry array, decoded from the image. Allocates —
    /// diagnostics and tests; query paths read the image directly.
    pub fn entries(&self) -> Vec<(NodeId, Timestamp)> {
        let lo = self.entries_at;
        EntriesSlice::new(&self.data.as_slice()[lo..lo + self.total * layout::ENTRY_BYTES]).to_vec()
    }

    /// Total entries across all nodes.
    #[inline]
    pub fn total_entries(&self) -> usize {
        self.total
    }

    /// Validates every frozen summary against the paper invariants
    /// (sorted, no self-entry, every target inside the universe) — the
    /// deep counterpart of the persist layer's cheap structural load
    /// checks, read off the arena.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        self.validate_threads(1)
    }

    /// [`validate`](Self::validate) fanned out over up to `threads`
    /// workers; reports the lowest failing node, like the serial loop.
    pub fn validate_threads(&self, threads: usize) -> Result<(), InvariantViolation> {
        let n = self.num_nodes;
        crate::par::try_for_each_indexed(n, threads, |i| {
            let node = NodeId::from_index(i);
            let mut prev: Option<NodeId> = None;
            for (x, _) in self.summary(node).iter() {
                if prev.is_some_and(|p| p >= x) {
                    return Err(InvariantViolation::UnsortedSummary { node });
                }
                prev = Some(x);
                if x == node {
                    return Err(InvariantViolation::SelfEntry { node });
                }
                if x.index() >= n {
                    return Err(InvariantViolation::TargetOutOfUniverse {
                        node,
                        target: x,
                        num_nodes: n,
                    });
                }
            }
            Ok(())
        })
    }

    /// True batch query: `Inf(S_i)` for every seed set, fanned out over up
    /// to `threads` workers. Answers are bit-identical to mapping
    /// [`InfluenceOracle::influence`] over the sets in order, but the
    /// per-query setup is amortized: each worker reuses one seed-dedup
    /// buffer and one union bitset for all its queries, duplicate seeds are
    /// dropped before any summary row is touched, and deduplicated one- and
    /// two-seed queries are answered straight off the sorted CSR slices
    /// without touching the bitset at all.
    pub fn influence_many_frozen(&self, seed_sets: &[Vec<NodeId>], threads: usize) -> Vec<f64> {
        self.influence_many_frozen_recorded(seed_sets, threads, &NoopRecorder)
    }

    /// [`influence_many_frozen`](Self::influence_many_frozen) with
    /// instrumentation: per-query latencies land in `kernel.query_ns`,
    /// merged-row counts in `kernel.merge_rows`, and the whole batch in the
    /// `oracle.query_batch` span. Answers are identical to the unrecorded
    /// path.
    pub fn influence_many_frozen_recorded<R: Recorder>(
        &self,
        seed_sets: &[Vec<NodeId>],
        threads: usize,
        rec: &R,
    ) -> Vec<f64> {
        self.influence_many_frozen_traced(seed_sets, threads, rec, NoopTracer)
    }

    /// [`influence_many_frozen_recorded`](Self::influence_many_frozen_recorded)
    /// with causal tracing: the batch becomes one `query.batch` span and
    /// every element gets its **own trace id** (consecutive from one
    /// [`Tracer::alloc_traces`] reservation, in seed-set order) under a
    /// `query.element` span, emitted on the worker lane that answered it
    /// (payload: deduplicated seed rows merged). With [`NoopTracer`] this
    /// monomorphizes back to the recorded path; answers are bit-identical
    /// either way.
    pub fn influence_many_frozen_traced<R: Recorder, T: Tracer>(
        &self,
        seed_sets: &[Vec<NodeId>],
        threads: usize,
        rec: &R,
        tracer: T,
    ) -> Vec<f64> {
        let t0 = rec.span_start();
        let base = if T::ENABLED {
            tracer.alloc_traces(metric_u64(seed_sets.len()) + 1)
        } else {
            0
        };
        let batch_span = tracer.begin(TraceId(base), SpanId::NONE, TraceEvent::QueryBatch);
        let out = crate::par::map_ranges_with_recorded(
            seed_sets.len(),
            1,
            threads,
            || {
                (
                    NodeBitset::with_nodes(self.num_nodes()),
                    Vec::new(),
                    tracer.worker(),
                )
            },
            |(bits, dedup, tr), range| {
                let mut part = Vec::with_capacity(range.len());
                tr.mark(TraceEvent::QueryElement);
                for q in range {
                    let tq = rec.span_start();
                    dedup.clear();
                    push_deduped(&seed_sets[q], dedup);
                    part.push(self.influence_deduped(dedup, bits));
                    tr.lap(
                        TraceId(base + 1 + metric_u64(q)),
                        batch_span,
                        TraceEvent::QueryElement,
                        metric_u64(dedup.len()),
                    );
                    if R::ENABLED {
                        record_batch_query(dedup.len(), tq, rec);
                    }
                }
                part
            },
            rec,
        );
        tracer.end(
            batch_span,
            TraceEvent::QueryBatch,
            metric_u64(seed_sets.len()),
        );
        finish_batch_recorded(&out, t0, rec);
        out
    }

    /// One deduplicated query against reusable worker scratch: direct
    /// arena-slice lengths for zero or one seed, the allocation-free
    /// two-pointer merge count for two, the recycled bitset union beyond.
    /// All four arms count exactly `|⋃ σω(s)|` — the same integer the trait
    /// path's bitset produces.
    // xtask-contract: kernel
    fn influence_deduped(&self, seeds: &[NodeId], bits: &mut NodeBitset) -> f64 {
        match *seeds {
            [] => 0.0,
            [s] => self.summary(s).len() as f64,
            [a, b] => sorted_union_len(self.summary(a), self.summary(b)) as f64,
            _ => {
                bits.clear();
                for &s in seeds {
                    for (v, _) in self.summary(s).iter() {
                        bits.insert(v.index());
                    }
                }
                bits.len() as f64
            }
        }
    }
}

impl HeapBytes for FrozenExactOracle {
    /// Heap bytes owned by the arena image — zero when the image is a
    /// file mapping rather than owned memory.
    fn heap_bytes(&self) -> usize {
        self.data.heap_bytes()
    }
}

impl InfluenceOracle for FrozenExactOracle {
    type Union = NodeBitset;

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn empty_union(&self) -> Self::Union {
        NodeBitset::with_nodes(self.num_nodes())
    }

    fn union_size(&self, union: &Self::Union) -> f64 {
        union.len() as f64
    }

    // xtask-contract: alloc-free, kernel
    fn absorb(&self, union: &mut Self::Union, node: NodeId) {
        for (v, _) in self.summary(node).iter() {
            union.insert(v.index());
        }
    }

    // xtask-contract: alloc-free, kernel
    fn marginal_gain(&self, union: &Self::Union, node: NodeId) -> f64 {
        self.summary(node)
            .iter()
            .filter(|&(v, _)| !union.contains(v.index()))
            .count() as f64
    }

    // xtask-contract: alloc-free, kernel
    fn individual(&self, node: NodeId) -> f64 {
        self.summary(node).len() as f64
    }

    fn reset_union(&self, union: &mut Self::Union) {
        union.clear();
    }
}

/// Collapsed vHLL sketches frozen into a flat register arena with
/// precomputed per-node estimates, all backed by one contiguous
/// [`ArenaBytes`] image in the IPFA v3 layout (see the module docs and
/// [`layout`]). The node-major registers, the tile-major transpose, and
/// the stored estimates are borrowed sections of the image — a mapped
/// file is queryable without copying or recomputing any of them.
#[derive(Clone, Debug, PartialEq)]
pub struct FrozenApproxOracle {
    precision: u8,
    num_nodes: usize,
    regs_at: usize,
    trans_at: usize,
    indiv_at: usize,
    data: ArenaBytes,
}

impl FrozenApproxOracle {
    /// Freezes versioned sketches: collapses each to its per-cell maxima
    /// (exactly [`VersionedHll::to_hyperloglog`]) directly into the flat
    /// arena, then precomputes every node's estimate.
    pub fn from_vhll(precision: u8, sketches: &[VersionedHll]) -> Self {
        let beta = 1usize << precision;
        let mut registers = vec![0u8; sketches.len() * beta];
        for (sketch, slot) in sketches.iter().zip(registers.chunks_exact_mut(beta)) {
            sketch.collapse_registers_into(slot);
        }
        Self::from_registers_arena(precision, registers)
    }

    /// Freezes already-collapsed sketches (the
    /// [`ApproxOracle`](crate::ApproxOracle) representation) by copying
    /// their registers into the flat arena.
    ///
    /// # Panics
    ///
    /// Panics if any sketch's precision differs from `precision`.
    pub fn from_collapsed(precision: u8, sketches: &[HyperLogLog]) -> Self {
        let beta = 1usize << precision;
        let mut registers = vec![0u8; sketches.len() * beta];
        for (sketch, slot) in sketches.iter().zip(registers.chunks_exact_mut(beta)) {
            assert_eq!(
                sketch.precision(),
                precision,
                "all sketches must share the arena precision"
            );
            slot.copy_from_slice(sketch.registers());
        }
        Self::from_registers_arena(precision, registers)
    }

    /// Builds the arena from a flat register array (`β` bytes per node):
    /// the transpose and per-node estimates are computed once here and
    /// stored in the image, so loading the persisted arena recomputes
    /// neither.
    ///
    /// # Panics
    ///
    /// Panics if `registers.len()` is not a multiple of `β = 2^precision`
    /// or holds more than `u32::MAX` node slots.
    pub fn from_registers_arena(precision: u8, registers: Vec<u8>) -> Self {
        let beta = 1usize << precision;
        assert!(
            registers.len().is_multiple_of(beta),
            "register arena must hold whole β-sized node slots"
        );
        let n = registers.len() / beta;
        assert!(
            u32::try_from(n).is_ok(),
            "frozen arena limited to u32::MAX nodes, got {n}"
        );
        let transposed = transpose_registers(precision, &registers);
        let (regs_at, trans_at, indiv_at, image_len) = layout::approx_sections(n, beta);
        let mut img = vec![0u8; image_len];
        write_approx_header(&mut img, precision, n);
        img[regs_at..regs_at + n * beta].copy_from_slice(&registers);
        img[trans_at..trans_at + n * beta].copy_from_slice(&transposed);
        for (i, row) in registers.chunks_exact(beta).enumerate() {
            let at = indiv_at + i * 8;
            img[at..at + 8].copy_from_slice(&estimate_from_registers(row).to_le_bytes());
        }
        Self::from_image(precision, n, ArenaBytes::from_vec(img))
    }

    /// Wraps an already-validated IPFA v3 image: `data` must hold exactly
    /// the sections [`layout::approx_sections`] describes for
    /// (`num_nodes`, `β = 2^precision`) under a matching header. The
    /// constructors above build such images from trusted registers; the
    /// persist layer validates untrusted bytes before calling this.
    ///
    /// # Panics
    ///
    /// Panics if `data`'s length does not match the layout.
    pub(crate) fn from_image(precision: u8, num_nodes: usize, data: ArenaBytes) -> Self {
        let beta = 1usize << precision;
        let (regs_at, trans_at, indiv_at, image_len) = layout::approx_sections(num_nodes, beta);
        assert_eq!(data.len(), image_len, "image length must match its header");
        FrozenApproxOracle {
            precision,
            num_nodes,
            regs_at,
            trans_at,
            indiv_at,
            data,
        }
    }

    /// The arena's whole image — the exact bytes the persist layer
    /// writes, exposed so callers can inspect the load backend (owned vs
    /// mapped) and account heap usage.
    pub fn image(&self) -> &ArenaBytes {
        &self.data
    }

    /// Sketch precision `k` (`β = 2^k` registers per node).
    #[inline]
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Node `u`'s register slice in the arena.
    #[inline]
    // xtask-contract: alloc-free, kernel
    pub fn node_registers(&self, node: NodeId) -> &[u8] {
        let beta = 1usize << self.precision;
        let lo = self.regs_at + node.index() * beta;
        &self.data.as_slice()[lo..lo + beta]
    }

    /// The whole flat register arena (node-major), borrowed from the
    /// image.
    #[inline]
    // xtask-contract: alloc-free, kernel
    pub fn registers(&self) -> &[u8] {
        let len = self.num_nodes << self.precision;
        &self.data.as_slice()[self.regs_at..self.regs_at + len]
    }

    /// The register-transposed (tile-major) arena the query kernels
    /// stream — same bytes as [`registers`](Self::registers), reordered by
    /// [`transpose_registers`], borrowed from the image.
    #[inline]
    // xtask-contract: alloc-free, kernel
    pub fn transposed(&self) -> &[u8] {
        let len = self.num_nodes << self.precision;
        &self.data.as_slice()[self.trans_at..self.trans_at + len]
    }

    /// The stored estimate of node index `i`, decoded from the image's
    /// individuals section — the exact bits `estimate_from_registers`
    /// produced at freeze time.
    #[inline]
    // xtask-contract: alloc-free, kernel
    fn individual_at(&self, i: usize) -> f64 {
        let at = self.indiv_at + i * 8;
        let b = self.data.as_slice();
        f64::from_le_bytes([
            b[at],
            b[at + 1],
            b[at + 2],
            b[at + 3],
            b[at + 4],
            b[at + 5],
            b[at + 6],
            b[at + 7],
        ])
    }

    /// Node `u`'s `step = min(TILE, β)` registers of transpose tile
    /// `tile` — one contiguous `step`-byte chunk of the tile-major arena.
    /// This is the tile-major counterpart of
    /// [`node_registers`](Self::node_registers): consecutive nodes' chunks
    /// of one tile are adjacent, so kernels that sweep a fixed register
    /// range across *many* nodes (column analytics, seed-id-local scans)
    /// stream it sequentially.
    #[inline]
    // xtask-contract: alloc-free, kernel
    pub fn tile_chunk(&self, tile: usize, node: NodeId) -> &[u8] {
        let step = TILE.min(1usize << self.precision);
        let lo = (tile * self.num_nodes + node.index()) * step;
        &self.transposed()[lo..lo + step]
    }

    /// Node `u`'s `step = min(TILE, β)` registers of tile `tile`, read from
    /// the node-major arena — the query kernels' layout of choice: a seed's
    /// row is one contiguous β-byte run, so the first tile's touch pulls
    /// the whole row through the hardware prefetcher and every later tile
    /// hits L1 (the tile-major arena scatters the same bytes 64 B at a
    /// time across `n · TILE`-byte regions, one cold line per touch).
    #[inline]
    // xtask-contract: alloc-free, kernel
    fn row_chunk(&self, tile: usize, node: NodeId) -> &[u8] {
        let beta = 1usize << self.precision;
        let step = TILE.min(beta);
        let lo = node.index() * beta + tile * step;
        &self.registers()[lo..lo + step]
    }

    /// [`row_chunk`](Self::row_chunk) for the `β ≥ TILE` case: the slice
    /// length is the literal [`TILE`], so after inlining the merge loops
    /// over it compile to full-width vector maxes with no remainder tail.
    /// `beta` is a parameter (not re-read from `self`) so the β-literal
    /// dispatch below const-folds the row stride too.
    #[inline(always)]
    // xtask-contract: alloc-free, kernel
    fn row_tile(&self, beta: usize, tile: usize, node: NodeId) -> &[u8] {
        let lo = node.index() * beta + tile * TILE;
        &self.registers()[lo..lo + TILE]
    }

    /// The fused merge/absorb loop for one seed set when `β ≥ TILE`.
    /// Forced inline so the β-literal match arms in
    /// [`InfluenceOracle::influence`] each stamp out a copy with `beta` (and
    /// therefore the tile count and every row offset) known at compile
    /// time — the tile loop fully unrolls and the merge blocks stay in
    /// vector registers instead of round-tripping through the stack. All
    /// instantiations run the same operations in the same order, so
    /// answers are bit-identical regardless of which arm dispatched.
    #[inline(always)]
    // xtask-contract: alloc-free, kernel
    fn influence_tiles(&self, beta: usize, seeds: &[NodeId]) -> f64 {
        let mut est = RunningEstimator::new();
        let mut block = [0u8; TILE];
        for t in 0..beta / TILE {
            if let Some((&first, rest)) = seeds.split_first() {
                block.copy_from_slice(self.row_tile(beta, t, first));
                for &s in rest {
                    kernel::merge_max(&mut block, self.row_tile(beta, t, s));
                }
            } else {
                block.fill(0);
            }
            est.absorb_registers(&block);
        }
        est.finish()
    }

    /// The fused merge/absorb loop for one [`GROUP`] of a batch when
    /// `β ≥ TILE` — the interleaved counterpart of
    /// [`influence_tiles`](Self::influence_tiles), forced inline for the
    /// same β-literal const-folding (see there).
    #[inline(always)]
    // xtask-contract: alloc-free, kernel
    fn group_merge_tiles(
        &self,
        beta: usize,
        dedup: &[NodeId],
        spans: &[(usize, usize); GROUP],
        ests: &mut [RunningEstimator; GROUP],
        qn: usize,
    ) {
        let regs: &[u8] = self.registers();
        // Lanes past `qn` (and empty seed sets) keep their zero blocks: a
        // zero register absorbs as `2^-0`, and unused lanes' estimators are
        // never read, so the wide absorb below stays safe and exact.
        let mut blocks = [[0u8; TILE]; GROUP];
        for t in 0..beta / TILE {
            for (q, block) in blocks.iter_mut().enumerate().take(qn) {
                let (lo, hi) = spans[q];
                if let Some((&first, rest)) = dedup[lo..hi].split_first() {
                    let o = first.index() * beta + t * TILE;
                    block.copy_from_slice(&regs[o..o + TILE]);
                    for &s in rest {
                        let o = s.index() * beta + t * TILE;
                        kernel::merge_max(block, &regs[o..o + TILE]);
                    }
                }
            }
            let [b0, b1, b2, b3] = &blocks;
            RunningEstimator::absorb_x4(ests, [b0, b1, b2, b3]);
        }
    }

    /// True batch query: `Inf(S_i)` for every seed set, fanned out over up
    /// to `threads` workers. Bit-identical to mapping
    /// [`InfluenceOracle::influence`] over the sets in order (registers are
    /// merged and absorbed in the same ascending position order), but the
    /// batch shape is amortized away: workers reuse one seed-dedup buffer
    /// across their queries, duplicate seeds are dropped before any
    /// register row is merged, and queries run [`GROUP`] at a time through
    /// the row-interleaved kernel so their serial estimator chains — the
    /// latency floor of a single query — overlap in the pipeline.
    pub fn influence_many_frozen(&self, seed_sets: &[Vec<NodeId>], threads: usize) -> Vec<f64> {
        self.influence_many_frozen_recorded(seed_sets, threads, &NoopRecorder)
    }

    /// [`influence_many_frozen`](Self::influence_many_frozen) with
    /// instrumentation: per-query latencies land in `kernel.query_ns`,
    /// merged-row counts in `kernel.merge_rows`, the whole batch in the
    /// `oracle.query_batch` span. Answers are bit-identical to the
    /// unrecorded path.
    pub fn influence_many_frozen_recorded<R: Recorder>(
        &self,
        seed_sets: &[Vec<NodeId>],
        threads: usize,
        rec: &R,
    ) -> Vec<f64> {
        self.influence_many_frozen_traced(seed_sets, threads, rec, NoopTracer)
    }

    /// [`influence_many_frozen_recorded`](Self::influence_many_frozen_recorded)
    /// with causal tracing: one `query.batch` span for the batch and one
    /// `query.element` span **per element with its own trace id**
    /// (consecutive from one [`Tracer::alloc_traces`] reservation, in
    /// seed-set order), emitted on the answering worker's lane as a
    /// [`Tracer::lap`] chain — one ring record and one clock read per
    /// element, the per-element floor. The payload is the seed-row count
    /// merged (deduplicated when metrics recording is also on; raw
    /// otherwise — max-merge is idempotent, so duplicates cannot change
    /// the answer). Tracing (like recording) answers query-at-a-time so
    /// each element's span is honest; both orders merge and absorb
    /// registers identically, so answers stay bit-identical.
    pub fn influence_many_frozen_traced<R: Recorder, T: Tracer>(
        &self,
        seed_sets: &[Vec<NodeId>],
        threads: usize,
        rec: &R,
        tracer: T,
    ) -> Vec<f64> {
        let t0 = rec.span_start();
        let base = if T::ENABLED {
            tracer.alloc_traces(metric_u64(seed_sets.len()) + 1)
        } else {
            0
        };
        let batch_span = tracer.begin(TraceId(base), SpanId::NONE, TraceEvent::QueryBatch);
        let out = crate::par::map_ranges_with_recorded(
            seed_sets.len(),
            GROUP,
            threads,
            || (Vec::new(), tracer.worker()),
            |(dedup, tr), range| {
                self.influence_group_range(seed_sets, range, dedup, rec, *tr, (base, batch_span))
            },
            rec,
        );
        tracer.end(
            batch_span,
            TraceEvent::QueryBatch,
            metric_u64(seed_sets.len()),
        );
        finish_batch_recorded(&out, t0, rec);
        out
    }

    /// Answers queries `range` of a batch. Groups of up to [`GROUP`]
    /// queries are interleaved tile by tile: each tile's node-major row
    /// chunks are merged for all queries in the group (the group's whole
    /// row working set stays L1-resident across tiles), then the four
    /// independent estimators absorb their merged blocks back to back,
    /// overlapping the dependent-add chains a lone query would serialize
    /// on. The recorded and traced
    /// variants answer query-at-a-time instead so each latency lands in
    /// `kernel.query_ns` (and each element's `query.element` span is
    /// honest); both orders merge and absorb every query's registers in
    /// ascending position order, so answers are bit-identical.
    /// `batch_trace` is the batch's `(first trace id, batch span)` pair
    /// from the traced entry point.
    fn influence_group_range<R: Recorder, T: Tracer>(
        &self,
        seed_sets: &[Vec<NodeId>],
        range: Range<usize>,
        dedup: &mut Vec<NodeId>,
        rec: &R,
        tracer: T,
        batch_trace: (u64, SpanId),
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(range.len());
        if R::ENABLED || T::ENABLED {
            let (base, batch_span) = batch_trace;
            tracer.mark(TraceEvent::QueryElement);
            for q in range {
                let tq = rec.span_start();
                // Metrics want the deduplicated row count; a trace-only run
                // skips the dedup pass entirely — register max-merge is
                // idempotent, so duplicate seed rows can't change a bit of
                // the answer, and the lap payload reports raw seed rows.
                let seeds: &[NodeId] = if R::ENABLED {
                    dedup.clear();
                    push_deduped(&seed_sets[q], dedup);
                    dedup
                } else {
                    &seed_sets[q]
                };
                out.push(self.influence(seeds));
                tracer.lap(
                    TraceId(base + 1 + metric_u64(q)),
                    batch_span,
                    TraceEvent::QueryElement,
                    metric_u64(seeds.len()),
                );
                if R::ENABLED {
                    record_batch_query(seeds.len(), tq, rec);
                }
            }
            return out;
        }
        let beta = 1usize << self.precision;
        let mut group = range.start;
        while group < range.end {
            let qn = GROUP.min(range.end - group);
            dedup.clear();
            let mut spans = [(0usize, 0usize); GROUP];
            for (q, span) in spans.iter_mut().enumerate().take(qn) {
                *span = push_deduped(&seed_sets[group + q], dedup);
            }
            let mut ests = [RunningEstimator::new(); GROUP];
            if beta >= TILE {
                // β-literal arms for the common precisions (k = 7..10);
                // see `influence_tiles` for why this wins.
                match beta {
                    512 => self.group_merge_tiles(512, dedup, &spans, &mut ests, qn),
                    256 => self.group_merge_tiles(256, dedup, &spans, &mut ests, qn),
                    1024 => self.group_merge_tiles(1024, dedup, &spans, &mut ests, qn),
                    128 => self.group_merge_tiles(128, dedup, &spans, &mut ests, qn),
                    _ => self.group_merge_tiles(beta, dedup, &spans, &mut ests, qn),
                }
            } else {
                // β < TILE: each query's whole sketch is one sub-tile block.
                let mut blocks = [[0u8; TILE]; GROUP];
                for (q, block) in blocks.iter_mut().enumerate().take(qn) {
                    let blk = &mut block[..beta];
                    let (lo, hi) = spans[q];
                    if let Some((&first, rest)) = dedup[lo..hi].split_first() {
                        blk.copy_from_slice(self.row_chunk(0, first));
                        for &s in rest {
                            kernel::merge_max(blk, self.row_chunk(0, s));
                        }
                    } else {
                        blk.fill(0);
                    }
                }
                for (est, block) in ests.iter_mut().zip(&blocks).take(qn) {
                    est.absorb_registers(&block[..beta]);
                }
            }
            for est in ests.iter().take(qn) {
                out.push(est.finish());
            }
            group += qn;
        }
        out
    }

    /// Validates the arena: every register within the sketch range
    /// invariant `ρ ≤ 64 − k + 1` (any larger value cannot have been
    /// produced by `ApproxAdd`/`ApproxMerge` and would bias estimates),
    /// and the image's derived sections — the tile-major transpose and
    /// the stored per-node estimates — consistent with the node-major
    /// registers they were computed from.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        self.validate_threads(1)
    }

    /// [`validate`](Self::validate) fanned out over up to `threads`
    /// workers; reports the lowest failing node, like the serial loop.
    pub fn validate_threads(&self, threads: usize) -> Result<(), InvariantViolation> {
        let max_rho = 64 - self.precision + 1;
        let beta = 1usize << self.precision;
        let step = TILE.min(beta);
        crate::par::try_for_each_indexed(self.num_nodes, threads, |i| {
            let node = NodeId::from_index(i);
            let row = self.node_registers(node);
            if let Some(&rho) = row.iter().find(|&&r| r > max_rho) {
                return Err(InvariantViolation::RegisterOutOfRange { node, rho, max_rho });
            }
            for t in 0..beta / step {
                if self.tile_chunk(t, node) != &row[t * step..(t + 1) * step] {
                    return Err(InvariantViolation::FrozenSectionMismatch {
                        node,
                        section: "transposed",
                    });
                }
            }
            if self.individual_at(i).to_bits() != estimate_from_registers(row).to_bits() {
                return Err(InvariantViolation::FrozenSectionMismatch {
                    node,
                    section: "individuals",
                });
            }
            Ok(())
        })
    }
}

impl HeapBytes for FrozenApproxOracle {
    /// Heap bytes owned by the arena image (both register layouts plus the
    /// stored estimates) — zero when the image is a file mapping rather
    /// than owned memory.
    fn heap_bytes(&self) -> usize {
        self.data.heap_bytes()
    }
}

impl InfluenceOracle for FrozenApproxOracle {
    type Union = HyperLogLog;

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Fused k-way union estimate: merges the seeds' node-major register
    /// rows tile by tile into a small stack buffer through the wide-lane
    /// kernel ([`kernel::merge_max`] — portable 16-byte lanes always, AVX2
    /// when compiled in and detected) and streams each merged tile
    /// straight into the shared estimator — no union allocation, no full
    /// merged array, no second pass. When `β ≥ TILE` the accumulator is a
    /// whole fixed-size tile, so the merge compiles to full-width vector
    /// maxes with no tail. Register positions are consumed in ascending
    /// order and every merge path is bytewise exact, so the result is
    /// bit-identical to materializing the union like the live oracle does.
    // xtask-contract: alloc-free, kernel
    fn influence(&self, seeds: &[NodeId]) -> f64 {
        let beta = 1usize << self.precision;
        if beta >= TILE {
            // β-literal arms for the common precisions (k = 7..10); see
            // `influence_tiles` for why this wins.
            match beta {
                512 => self.influence_tiles(512, seeds),
                256 => self.influence_tiles(256, seeds),
                1024 => self.influence_tiles(1024, seeds),
                128 => self.influence_tiles(128, seeds),
                _ => self.influence_tiles(beta, seeds),
            }
        } else {
            // β < TILE: the whole sketch is one sub-tile block.
            let mut est = RunningEstimator::new();
            let mut block = [0u8; TILE];
            let blk = &mut block[..beta];
            if let Some((&first, rest)) = seeds.split_first() {
                blk.copy_from_slice(self.row_chunk(0, first));
                for &s in rest {
                    kernel::merge_max(blk, self.row_chunk(0, s));
                }
            }
            est.absorb_registers(blk);
            est.finish()
        }
    }

    fn empty_union(&self) -> Self::Union {
        HyperLogLog::new(self.precision)
    }

    fn union_size(&self, union: &Self::Union) -> f64 {
        union.estimate()
    }

    // xtask-contract: alloc-free, kernel
    fn absorb(&self, union: &mut Self::Union, node: NodeId) {
        union.merge_registers(self.node_registers(node));
    }

    // xtask-contract: alloc-free, kernel
    fn marginal_gain(&self, union: &Self::Union, node: NodeId) -> f64 {
        union.estimate_union_registers(self.node_registers(node)) - union.estimate()
    }

    // xtask-contract: alloc-free, kernel
    fn individual(&self, node: NodeId) -> f64 {
        self.individual_at(node.index())
    }

    fn reset_union(&self, union: &mut Self::Union) {
        if union.precision() == self.precision {
            union.clear();
        } else {
            *union = self.empty_union();
        }
    }
}

/// Rewrites a node-major register arena (`β` bytes per node) into the
/// tile-major layout the frozen query kernels stream: for tile `t` of
/// `step = min(TILE, β)` registers, node `u`'s registers
/// `t·step .. (t+1)·step` live at `transposed[(t·n + u)·step ..][..step]`.
/// A multi-seed union then reads one contiguous `step`-byte chunk per seed
/// per tile — chunks of id-adjacent seeds share cache lines — instead of
/// striding `β` bytes apart through the node-major arena.
pub(crate) fn transpose_registers(precision: u8, registers: &[u8]) -> Vec<u8> {
    let beta = 1usize << precision;
    let step = TILE.min(beta);
    let tiles = beta / step;
    let n = registers.len() / beta;
    let mut out = vec![0u8; registers.len()];
    for u in 0..n {
        for t in 0..tiles {
            let src = u * beta + t * step;
            let dst = (t * n + u) * step;
            out[dst..dst + step].copy_from_slice(&registers[src..src + step]);
        }
    }
    out
}

/// Publishes a frozen arena's size to the `frozen.bytes` gauge — shared by
/// every `freeze_recorded` entry point.
pub(crate) fn record_frozen_bytes<R: Recorder, O: HeapBytes>(oracle: &O, rec: &R) {
    if R::ENABLED {
        rec.gauge(Gauge::FrozenBytes, metric_u64(oracle.heap_bytes()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::ARENA_ALIGN;
    use crate::{ApproxIrs, ExactIrs, InfluenceOracle};
    use infprop_temporal_graph::InteractionNetwork;

    fn figure1a() -> InteractionNetwork {
        InteractionNetwork::from_triples([
            (0, 3, 1),
            (4, 5, 2),
            (3, 4, 3),
            (4, 1, 4),
            (0, 1, 5),
            (1, 4, 6),
            (4, 2, 7),
            (1, 2, 8),
        ])
    }

    #[test]
    fn frozen_exact_matches_live_bitwise() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let live = irs.oracle();
        let frozen = irs.freeze();
        assert_eq!(frozen.num_nodes(), live.num_nodes());
        for i in 0..frozen.num_nodes() {
            let u = NodeId::from_index(i);
            assert_eq!(frozen.summary(u), irs.summary(u));
            assert_eq!(frozen.individual(u).to_bits(), live.individual(u).to_bits());
        }
        let seeds = [NodeId(0), NodeId(4)];
        assert_eq!(
            frozen.influence(&seeds).to_bits(),
            live.influence(&seeds).to_bits()
        );
        frozen.validate().expect("frozen arena validates");
    }

    #[test]
    fn frozen_approx_matches_live_bitwise() {
        let net = figure1a();
        let irs = ApproxIrs::compute(&net, Window(3));
        let live = irs.oracle();
        let frozen = irs.freeze();
        assert_eq!(frozen.num_nodes(), live.num_nodes());
        for i in 0..frozen.num_nodes() {
            let u = NodeId::from_index(i);
            assert_eq!(frozen.node_registers(u), live.sketch(u).registers());
            assert_eq!(frozen.individual(u).to_bits(), live.individual(u).to_bits());
        }
        let seeds = [NodeId(0), NodeId(4), NodeId(1)];
        assert_eq!(
            frozen.influence(&seeds).to_bits(),
            live.influence(&seeds).to_bits()
        );
        // Marginal gains (the CELF probe) agree bitwise too.
        let mut fu = frozen.empty_union();
        let mut lu = live.empty_union();
        frozen.absorb(&mut fu, NodeId(0));
        live.absorb(&mut lu, NodeId(0));
        for i in 0..frozen.num_nodes() {
            let u = NodeId::from_index(i);
            assert_eq!(
                frozen.marginal_gain(&fu, u).to_bits(),
                live.marginal_gain(&lu, u).to_bits()
            );
        }
        frozen.validate().expect("frozen arena validates");
    }

    #[test]
    fn fused_influence_matches_live_for_all_seed_shapes() {
        let net = figure1a();
        // precision 4 exercises β = 16 < the 64-byte merge block.
        for precision in [4u8, 9] {
            let irs = ApproxIrs::compute_with_precision(&net, Window(3), precision);
            let frozen = irs.freeze();
            let live = irs.oracle();
            let seed_sets: Vec<Vec<NodeId>> = vec![
                vec![],
                vec![NodeId(2)],
                vec![NodeId(0), NodeId(0)],
                (0..6).map(NodeId).collect(),
            ];
            for seeds in &seed_sets {
                assert_eq!(
                    frozen.influence(seeds).to_bits(),
                    live.influence(seeds).to_bits(),
                    "k={precision} seeds={seeds:?}"
                );
            }
        }
    }

    #[test]
    fn from_collapsed_equals_from_vhll() {
        let net = figure1a();
        let irs = ApproxIrs::compute(&net, Window(3));
        let via_vhll = irs.freeze();
        let via_collapsed = FrozenApproxOracle::from_collapsed(irs.precision(), &irs.collapse());
        assert_eq!(via_vhll, via_collapsed);
    }

    #[test]
    fn image_sections_are_aligned_and_framed() {
        let net = figure1a();
        let exact = ExactIrs::compute(&net, Window(3)).freeze();
        let (o_at, e_at, len) = layout::exact_sections(exact.num_nodes(), exact.total_entries());
        assert_eq!(exact.image().len(), len);
        assert_eq!(o_at % ARENA_ALIGN, 0);
        assert_eq!(e_at % ARENA_ALIGN, 0);
        assert_eq!(&exact.image().as_slice()[..4], layout::EXACT_MAGIC);
        assert_eq!(exact.image().as_slice()[4], layout::EXACT_VERSION);

        let approx = ApproxIrs::compute(&net, Window(3)).freeze();
        let beta = 1usize << approx.precision();
        let (r_at, t_at, i_at, alen) = layout::approx_sections(approx.num_nodes(), beta);
        assert_eq!(approx.image().len(), alen);
        assert_eq!(r_at % ARENA_ALIGN, 0);
        assert_eq!(t_at % ARENA_ALIGN, 0);
        assert_eq!(i_at % ARENA_ALIGN, 0);
        assert_eq!(&approx.image().as_slice()[..4], layout::APPROX_MAGIC);
        assert_eq!(approx.image().as_slice()[4], layout::APPROX_VERSION);

        // The empty universe is a legal (header-only) image.
        let empty = FrozenExactOracle::from_summaries(Window(1), &[]);
        assert_eq!(empty.num_nodes(), 0);
        assert!(empty.validate().is_ok());
    }

    #[test]
    fn entries_slice_decodes_and_compares() {
        let entries = vec![(NodeId(1), Timestamp(5)), (NodeId(3), Timestamp(-2))];
        let arena = FrozenExactOracle::from_parts(Window(3), vec![0, 2, 2, 2, 2], entries.clone());
        let s = arena.summary(NodeId(0));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.get(1), (NodeId(3), Timestamp(-2)));
        assert_eq!(s.target(0), NodeId(1));
        assert_eq!(s, entries);
        assert_eq!(s.to_vec(), entries);
        assert_eq!(s, arena.summary(NodeId(0)));
        assert!(arena.summary(NodeId(1)).is_empty());
        assert_eq!(arena.summary(NodeId(1)), EntriesSlice::empty());
        assert_eq!(arena.entries(), entries);
        assert_eq!(arena.offsets(), vec![0, 2, 2, 2, 2]);
    }

    #[test]
    fn validate_rejects_out_of_range_register() {
        let arena = FrozenApproxOracle::from_registers_arena(4, vec![0u8; 32]);
        assert!(arena.validate().is_ok());
        let mut regs = vec![0u8; 32];
        regs[20] = 62; // max ρ for k=4 is 61
        let bad = FrozenApproxOracle::from_registers_arena(4, regs);
        match bad.validate() {
            Err(InvariantViolation::RegisterOutOfRange { node, rho, max_rho }) => {
                assert_eq!(node, NodeId(1));
                assert_eq!((rho, max_rho), (62, 61));
            }
            other => panic!("expected RegisterOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_unsorted_frozen_entries() {
        let entries = vec![(NodeId(2), Timestamp(5)), (NodeId(1), Timestamp(6))];
        let arena = FrozenExactOracle::from_parts(Window(3), vec![0, 2, 2, 2], entries);
        assert!(matches!(
            arena.validate(),
            Err(InvariantViolation::UnsortedSummary { node: NodeId(0) })
        ));
    }

    #[test]
    fn validate_rejects_target_outside_universe() {
        let entries = vec![(NodeId(9), Timestamp(5))];
        let arena = FrozenExactOracle::from_parts(Window(3), vec![0, 1, 1], entries);
        assert_eq!(
            arena.validate(),
            Err(InvariantViolation::TargetOutOfUniverse {
                node: NodeId(0),
                target: NodeId(9),
                num_nodes: 2,
            })
        );
    }

    #[test]
    fn validate_rejects_corrupt_derived_sections() {
        let net = figure1a();
        let frozen = ApproxIrs::compute(&net, Window(3)).freeze();
        assert!(frozen.validate().is_ok());

        let mut img = frozen.image().as_slice().to_vec();
        img[frozen.trans_at] ^= 1;
        let bad = FrozenApproxOracle::from_image(
            frozen.precision(),
            frozen.num_nodes(),
            ArenaBytes::from_vec(img),
        );
        assert!(matches!(
            bad.validate(),
            Err(InvariantViolation::FrozenSectionMismatch {
                section: "transposed",
                ..
            })
        ));

        let mut img = frozen.image().as_slice().to_vec();
        img[frozen.indiv_at] ^= 1;
        let bad = FrozenApproxOracle::from_image(
            frozen.precision(),
            frozen.num_nodes(),
            ArenaBytes::from_vec(img),
        );
        assert!(matches!(
            bad.validate(),
            Err(InvariantViolation::FrozenSectionMismatch {
                section: "individuals",
                ..
            })
        ));
    }

    #[test]
    fn transposed_arena_holds_every_register() {
        let net = figure1a();
        for precision in [4u8, 7, 9] {
            let irs = ApproxIrs::compute_with_precision(&net, Window(3), precision);
            let frozen = irs.freeze();
            let beta = 1usize << precision;
            let step = TILE.min(beta);
            let n = frozen.num_nodes();
            assert_eq!(frozen.transposed().len(), frozen.registers().len());
            for u in 0..n {
                let node = NodeId::from_index(u);
                for t in 0..beta / step {
                    let chunk = frozen.tile_chunk(t, node);
                    let row = &frozen.node_registers(node)[t * step..(t + 1) * step];
                    assert_eq!(chunk, row, "k={precision} u={u} t={t}");
                }
            }
        }
    }

    /// Seed-set shapes that exercise every batch arm: empty sets,
    /// singletons, duplicates, two-seed fast path, wide unions, and enough
    /// queries that the GROUP=4 kernel runs a full group plus a remainder.
    fn batch_seed_sets() -> Vec<Vec<NodeId>> {
        vec![
            vec![NodeId(0), NodeId(4)],
            vec![],
            vec![NodeId(2)],
            vec![NodeId(3), NodeId(3), NodeId(3)],
            (0..6).map(NodeId).collect(),
            vec![NodeId(5), NodeId(1), NodeId(5), NodeId(0)],
            vec![NodeId(1), NodeId(2)],
        ]
    }

    #[test]
    fn approx_batch_matches_per_query_bitwise() {
        let net = figure1a();
        // precision 4 exercises β = 16 < the 64-byte tile.
        for precision in [4u8, 9] {
            let irs = ApproxIrs::compute_with_precision(&net, Window(3), precision);
            let frozen = irs.freeze();
            let live = irs.oracle();
            let sets = batch_seed_sets();
            let per_query: Vec<f64> = sets.iter().map(|s| frozen.influence(s)).collect();
            for (s, &want) in sets.iter().zip(&per_query) {
                assert_eq!(live.influence(s).to_bits(), want.to_bits());
            }
            for threads in [1, 2, 8] {
                let batch = frozen.influence_many_frozen(&sets, threads);
                for (got, want) in batch.iter().zip(&per_query) {
                    assert_eq!(got.to_bits(), want.to_bits(), "k={precision} t={threads}");
                }
            }
        }
    }

    #[test]
    fn exact_batch_matches_per_query_bitwise() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let frozen = irs.freeze();
        let sets = batch_seed_sets();
        let per_query: Vec<f64> = sets.iter().map(|s| frozen.influence(s)).collect();
        for threads in [1, 2, 8] {
            let batch = frozen.influence_many_frozen(&sets, threads);
            for (got, want) in batch.iter().zip(&per_query) {
                assert_eq!(got.to_bits(), want.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn recorded_batch_matches_unrecorded_and_counts_kernel_metrics() {
        use crate::obs::MetricsRecorder;
        let net = figure1a();
        let irs = ApproxIrs::compute(&net, Window(3));
        let frozen = irs.freeze();
        let sets = batch_seed_sets();
        let rec = MetricsRecorder::new();
        let recorded = frozen.influence_many_frozen_recorded(&sets, 2, &rec);
        let plain = frozen.influence_many_frozen(&sets, 2);
        assert_eq!(
            recorded.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let snap = rec.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert_eq!(counter("kernel.batch_queries"), sets.len() as u64);
        // Deduplicated rows: 2 + 0 + 1 + 1 + 6 + 3 + 2 = 15.
        assert_eq!(counter("kernel.merge_rows"), 15);
        let query_hist = snap.hists.iter().find(|h| h.name == "kernel.query_ns");
        assert_eq!(query_hist.map(|h| h.count), Some(sets.len() as u64));
    }

    #[test]
    fn frozen_heap_bytes_are_positive_and_compact() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let frozen = irs.freeze();
        assert!(frozen.heap_bytes() > 0);
        assert_eq!(frozen.total_entries(), irs.total_entries());
    }
}
