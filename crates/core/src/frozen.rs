//! Frozen oracle arenas: contiguous, read-only CSR-style layouts of the
//! IRS summaries, built once after the reverse pass and shared by every
//! query-path operation.
//!
//! The live stores ([`ExactStore`](crate::ExactStore),
//! [`VhllStore`](crate::VhllStore)) optimize for *mutation* during the
//! one-pass build: one `Vec` (or versioned sketch) per node, each its own
//! heap allocation. Queries have the opposite access pattern — read-only
//! sweeps over every node — and pay for the build layout with pointer
//! chasing and per-node cache misses (the ~3.6 µs oracle queries of the
//! PR 4 bench trajectory). Freezing rewrites the summaries into two flat
//! arrays:
//!
//! * [`FrozenExactOracle`] — CSR: `offsets[u] .. offsets[u + 1]` indexes a
//!   single flat `entries` array of `(NodeId, Timestamp)` pairs, each
//!   node's slice sorted by `NodeId` exactly like its live summary.
//! * [`FrozenApproxOracle`] — one flat `β`-bytes-per-node register arena
//!   (the per-cell maxima of the versioned sketches, i.e. the same
//!   collapse [`ApproxOracle`](crate::ApproxOracle) performs), plus the
//!   per-node estimates **precomputed at freeze time**, turning the
//!   `individuals` sweep and every CELF first-round probe into a table
//!   read.
//!
//! Both implement [`InfluenceOracle`], so `individuals`, `influence_many`
//! and `greedy_top_k` run unchanged — and bit-identically: the frozen
//! layouts preserve entry order and register values, and every estimator
//! path reuses the exact same summation order as the live oracles.

use crate::invariants::{validate_exact_summary, InvariantViolation};
use crate::obs::{metric_u64, Gauge, HeapBytes, Recorder};
use crate::oracle::{InfluenceOracle, NodeBitset};
use infprop_hll::{estimate_from_registers, HyperLogLog, RunningEstimator, VersionedHll};
use infprop_temporal_graph::{NodeId, Timestamp, Window};

/// Exact IRS summaries frozen into a CSR arena (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrozenExactOracle {
    window: Window,
    /// `offsets.len() == num_nodes + 1`; node `u`'s summary is
    /// `entries[offsets[u] .. offsets[u + 1]]`.
    offsets: Vec<u32>,
    entries: Vec<(NodeId, Timestamp)>,
}

impl FrozenExactOracle {
    /// Freezes per-node summaries into the CSR arena. Entry slices are
    /// copied verbatim, so every query answer is bit-identical to the live
    /// [`ExactOracle`](crate::ExactOracle) over the same summaries.
    ///
    /// # Panics
    ///
    /// Panics if the total entry count exceeds `u32::MAX` (≈ 4.3 G
    /// entries — beyond any in-memory summary set this crate targets).
    pub fn from_summaries(window: Window, summaries: &[Vec<(NodeId, Timestamp)>]) -> Self {
        let total: usize = summaries.iter().map(Vec::len).sum();
        assert!(
            u32::try_from(total).is_ok(),
            "frozen arena limited to u32::MAX entries, got {total}"
        );
        let mut offsets = Vec::with_capacity(summaries.len() + 1);
        let mut entries = Vec::with_capacity(total);
        let mut running = 0u32;
        offsets.push(0);
        for summary in summaries {
            entries.extend_from_slice(summary);
            // Fits: the sum of all lengths was checked against u32 above.
            running += summary.len() as u32; // xtask-allow: no-lossy-cast (total checked against u32::MAX)
            offsets.push(running);
        }
        FrozenExactOracle {
            window,
            offsets,
            entries,
        }
    }

    /// Reassembles an arena from its raw parts (the persist layer's load
    /// path — no per-node allocation). The caller must have validated the
    /// CSR shape; this constructor only asserts the cheap global frame.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty, does not start at 0, or does not end
    /// at `entries.len()`.
    pub fn from_parts(
        window: Window,
        offsets: Vec<u32>,
        entries: Vec<(NodeId, Timestamp)>,
    ) -> Self {
        assert!(
            offsets.first() == Some(&0)
                && offsets.last().map(|&e| e as usize) == Some(entries.len()), // xtask-allow: no-lossy-cast (u32 fits usize)
            "offsets must frame the entries array"
        );
        FrozenExactOracle {
            window,
            offsets,
            entries,
        }
    }

    /// The window `ω` the summaries were computed under.
    #[inline]
    pub fn window(&self) -> Window {
        self.window
    }

    /// Node `u`'s frozen summary — sorted by `NodeId`, identical content
    /// to the live summary it was frozen from.
    #[inline]
    // xtask-contract: alloc-free, kernel
    pub fn summary(&self, node: NodeId) -> &[(NodeId, Timestamp)] {
        let i = node.index();
        let lo = self.offsets[i] as usize; // xtask-allow: no-lossy-cast (u32 fits usize)
        let hi = self.offsets[i + 1] as usize; // xtask-allow: no-lossy-cast (u32 fits usize)
        &self.entries[lo..hi]
    }

    /// The CSR offset array (`num_nodes + 1` entries), for serialization.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat entry array, for serialization.
    #[inline]
    pub fn entries(&self) -> &[(NodeId, Timestamp)] {
        &self.entries
    }

    /// Total entries across all nodes.
    #[inline]
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }

    /// Validates every frozen summary against the paper invariants
    /// (sorted, no self-entry) — the same checks as
    /// [`ExactIrs::validate`](crate::ExactIrs::validate), read off the
    /// arena.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        self.validate_threads(1)
    }

    /// [`validate`](Self::validate) fanned out over up to `threads`
    /// workers; reports the lowest failing node, like the serial loop.
    pub fn validate_threads(&self, threads: usize) -> Result<(), InvariantViolation> {
        crate::par::try_for_each_indexed(self.num_nodes(), threads, |i| {
            let node = NodeId::from_index(i);
            validate_exact_summary(node, self.summary(node), None)
        })
    }
}

impl HeapBytes for FrozenExactOracle {
    /// Bytes owned by the arena: the offset array plus the flat entries.
    fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.entries.capacity() * std::mem::size_of::<(NodeId, Timestamp)>()
    }
}

impl InfluenceOracle for FrozenExactOracle {
    type Union = NodeBitset;

    fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    fn empty_union(&self) -> Self::Union {
        NodeBitset::with_nodes(self.num_nodes())
    }

    fn union_size(&self, union: &Self::Union) -> f64 {
        union.len() as f64
    }

    // xtask-contract: alloc-free, kernel
    fn absorb(&self, union: &mut Self::Union, node: NodeId) {
        for &(v, _) in self.summary(node) {
            union.insert(v.index());
        }
    }

    // xtask-contract: alloc-free, kernel
    fn marginal_gain(&self, union: &Self::Union, node: NodeId) -> f64 {
        self.summary(node)
            .iter()
            .filter(|&&(v, _)| !union.contains(v.index()))
            .count() as f64
    }

    // xtask-contract: alloc-free, kernel
    fn individual(&self, node: NodeId) -> f64 {
        self.summary(node).len() as f64
    }

    fn reset_union(&self, union: &mut Self::Union) {
        union.clear();
    }
}

/// Collapsed vHLL sketches frozen into a flat register arena with
/// precomputed per-node estimates (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct FrozenApproxOracle {
    precision: u8,
    /// `β = 2^precision` bytes per node, nodes concatenated in id order.
    registers: Vec<u8>,
    /// `individual(u)` precomputed at freeze time with the same estimator
    /// (and summation order) the live oracle uses — bit-identical reads.
    individuals: Vec<f64>,
}

impl FrozenApproxOracle {
    /// Freezes versioned sketches: collapses each to its per-cell maxima
    /// (exactly [`VersionedHll::to_hyperloglog`]) directly into the flat
    /// arena, then precomputes every node's estimate.
    pub fn from_vhll(precision: u8, sketches: &[VersionedHll]) -> Self {
        let beta = 1usize << precision;
        let mut registers = vec![0u8; sketches.len() * beta];
        for (sketch, slot) in sketches.iter().zip(registers.chunks_exact_mut(beta)) {
            sketch.collapse_registers_into(slot);
        }
        Self::from_registers_arena(precision, registers)
    }

    /// Freezes already-collapsed sketches (the
    /// [`ApproxOracle`](crate::ApproxOracle) representation) by copying
    /// their registers into the flat arena.
    ///
    /// # Panics
    ///
    /// Panics if any sketch's precision differs from `precision`.
    pub fn from_collapsed(precision: u8, sketches: &[HyperLogLog]) -> Self {
        let beta = 1usize << precision;
        let mut registers = vec![0u8; sketches.len() * beta];
        for (sketch, slot) in sketches.iter().zip(registers.chunks_exact_mut(beta)) {
            assert_eq!(
                sketch.precision(),
                precision,
                "all sketches must share the arena precision"
            );
            slot.copy_from_slice(sketch.registers());
        }
        Self::from_registers_arena(precision, registers)
    }

    /// Builds the arena from a flat register array (`β` bytes per node) —
    /// the persist layer's load path. Per-node estimates are recomputed
    /// here in one pass; nothing else is allocated per node.
    ///
    /// # Panics
    ///
    /// Panics if `registers.len()` is not a multiple of `β = 2^precision`.
    pub fn from_registers_arena(precision: u8, registers: Vec<u8>) -> Self {
        let beta = 1usize << precision;
        assert!(
            registers.len().is_multiple_of(beta),
            "register arena must hold whole β-sized node slots"
        );
        let individuals = registers
            .chunks_exact(beta)
            .map(estimate_from_registers)
            .collect();
        FrozenApproxOracle {
            precision,
            registers,
            individuals,
        }
    }

    /// Sketch precision `k` (`β = 2^k` registers per node).
    #[inline]
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Node `u`'s register slice in the arena.
    #[inline]
    // xtask-contract: alloc-free, kernel
    pub fn node_registers(&self, node: NodeId) -> &[u8] {
        let beta = 1usize << self.precision;
        let lo = node.index() * beta;
        &self.registers[lo..lo + beta]
    }

    /// The whole flat register arena, for serialization.
    #[inline]
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Validates every register against the sketch range invariant
    /// `ρ ≤ 64 − k + 1` — any larger value cannot have been produced by
    /// `ApproxAdd`/`ApproxMerge` and would bias estimates.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        self.validate_threads(1)
    }

    /// [`validate`](Self::validate) fanned out over up to `threads`
    /// workers; reports the lowest failing node, like the serial loop.
    pub fn validate_threads(&self, threads: usize) -> Result<(), InvariantViolation> {
        let max_rho = 64 - self.precision + 1;
        crate::par::try_for_each_indexed(self.num_nodes(), threads, |i| {
            let node = NodeId::from_index(i);
            match self.node_registers(node).iter().find(|&&r| r > max_rho) {
                Some(&rho) => Err(InvariantViolation::RegisterOutOfRange { node, rho, max_rho }),
                None => Ok(()),
            }
        })
    }
}

impl HeapBytes for FrozenApproxOracle {
    /// Bytes owned by the arena: flat registers plus precomputed
    /// estimates.
    fn heap_bytes(&self) -> usize {
        self.registers.capacity() + self.individuals.capacity() * std::mem::size_of::<f64>()
    }
}

impl InfluenceOracle for FrozenApproxOracle {
    type Union = HyperLogLog;

    fn num_nodes(&self) -> usize {
        self.individuals.len()
    }

    /// Fused k-way union estimate: merges the seeds' register slices
    /// block by block into a small stack buffer (vectorizable max loops,
    /// the whole working set in L1) and streams each merged block straight
    /// into the shared estimator kernel — no union allocation, no full
    /// merged array, no second pass. Register positions are consumed in
    /// ascending order, so the result is bit-identical to materializing
    /// the union like the live oracle does (~6× faster per 8-seed query
    /// on the bench profiles).
    // xtask-contract: alloc-free, kernel
    fn influence(&self, seeds: &[NodeId]) -> f64 {
        const BLOCK: usize = 64;
        let beta = 1usize << self.precision;
        let step = BLOCK.min(beta);
        let mut est = RunningEstimator::new();
        let mut block = [0u8; BLOCK];
        let mut base = 0usize;
        while base < beta {
            let blk = &mut block[..step];
            if let Some((&first, rest)) = seeds.split_first() {
                blk.copy_from_slice(&self.node_registers(first)[base..base + step]);
                for &s in rest {
                    for (a, &b) in blk
                        .iter_mut()
                        .zip(&self.node_registers(s)[base..base + step])
                    {
                        if b > *a {
                            *a = b;
                        }
                    }
                }
            } else {
                blk.fill(0);
            }
            est.absorb_registers(blk);
            base += step;
        }
        est.finish()
    }

    fn empty_union(&self) -> Self::Union {
        HyperLogLog::new(self.precision)
    }

    fn union_size(&self, union: &Self::Union) -> f64 {
        union.estimate()
    }

    // xtask-contract: alloc-free, kernel
    fn absorb(&self, union: &mut Self::Union, node: NodeId) {
        union.merge_registers(self.node_registers(node));
    }

    // xtask-contract: alloc-free, kernel
    fn marginal_gain(&self, union: &Self::Union, node: NodeId) -> f64 {
        union.estimate_union_registers(self.node_registers(node)) - union.estimate()
    }

    // xtask-contract: alloc-free, kernel
    fn individual(&self, node: NodeId) -> f64 {
        self.individuals[node.index()]
    }

    fn reset_union(&self, union: &mut Self::Union) {
        if union.precision() == self.precision {
            union.clear();
        } else {
            *union = self.empty_union();
        }
    }
}

/// Publishes a frozen arena's size to the `frozen.bytes` gauge — shared by
/// every `freeze_recorded` entry point.
pub(crate) fn record_frozen_bytes<R: Recorder, O: HeapBytes>(oracle: &O, rec: &R) {
    if R::ENABLED {
        rec.gauge(Gauge::FrozenBytes, metric_u64(oracle.heap_bytes()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApproxIrs, ExactIrs, InfluenceOracle};
    use infprop_temporal_graph::InteractionNetwork;

    fn figure1a() -> InteractionNetwork {
        InteractionNetwork::from_triples([
            (0, 3, 1),
            (4, 5, 2),
            (3, 4, 3),
            (4, 1, 4),
            (0, 1, 5),
            (1, 4, 6),
            (4, 2, 7),
            (1, 2, 8),
        ])
    }

    #[test]
    fn frozen_exact_matches_live_bitwise() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let live = irs.oracle();
        let frozen = irs.freeze();
        assert_eq!(frozen.num_nodes(), live.num_nodes());
        for i in 0..frozen.num_nodes() {
            let u = NodeId::from_index(i);
            assert_eq!(frozen.summary(u), irs.summary(u));
            assert_eq!(frozen.individual(u).to_bits(), live.individual(u).to_bits());
        }
        let seeds = [NodeId(0), NodeId(4)];
        assert_eq!(
            frozen.influence(&seeds).to_bits(),
            live.influence(&seeds).to_bits()
        );
        frozen.validate().expect("frozen arena validates");
    }

    #[test]
    fn frozen_approx_matches_live_bitwise() {
        let net = figure1a();
        let irs = ApproxIrs::compute(&net, Window(3));
        let live = irs.oracle();
        let frozen = irs.freeze();
        assert_eq!(frozen.num_nodes(), live.num_nodes());
        for i in 0..frozen.num_nodes() {
            let u = NodeId::from_index(i);
            assert_eq!(frozen.node_registers(u), live.sketch(u).registers());
            assert_eq!(frozen.individual(u).to_bits(), live.individual(u).to_bits());
        }
        let seeds = [NodeId(0), NodeId(4), NodeId(1)];
        assert_eq!(
            frozen.influence(&seeds).to_bits(),
            live.influence(&seeds).to_bits()
        );
        // Marginal gains (the CELF probe) agree bitwise too.
        let mut fu = frozen.empty_union();
        let mut lu = live.empty_union();
        frozen.absorb(&mut fu, NodeId(0));
        live.absorb(&mut lu, NodeId(0));
        for i in 0..frozen.num_nodes() {
            let u = NodeId::from_index(i);
            assert_eq!(
                frozen.marginal_gain(&fu, u).to_bits(),
                live.marginal_gain(&lu, u).to_bits()
            );
        }
        frozen.validate().expect("frozen arena validates");
    }

    #[test]
    fn fused_influence_matches_live_for_all_seed_shapes() {
        let net = figure1a();
        // precision 4 exercises β = 16 < the 64-byte merge block.
        for precision in [4u8, 9] {
            let irs = ApproxIrs::compute_with_precision(&net, Window(3), precision);
            let frozen = irs.freeze();
            let live = irs.oracle();
            let seed_sets: Vec<Vec<NodeId>> = vec![
                vec![],
                vec![NodeId(2)],
                vec![NodeId(0), NodeId(0)],
                (0..6).map(NodeId).collect(),
            ];
            for seeds in &seed_sets {
                assert_eq!(
                    frozen.influence(seeds).to_bits(),
                    live.influence(seeds).to_bits(),
                    "k={precision} seeds={seeds:?}"
                );
            }
        }
    }

    #[test]
    fn from_collapsed_equals_from_vhll() {
        let net = figure1a();
        let irs = ApproxIrs::compute(&net, Window(3));
        let via_vhll = irs.freeze();
        let via_collapsed = FrozenApproxOracle::from_collapsed(irs.precision(), &irs.collapse());
        assert_eq!(via_vhll, via_collapsed);
    }

    #[test]
    fn validate_rejects_out_of_range_register() {
        let arena = FrozenApproxOracle::from_registers_arena(4, vec![0u8; 32]);
        assert!(arena.validate().is_ok());
        let mut regs = vec![0u8; 32];
        regs[20] = 62; // max ρ for k=4 is 61
        let bad = FrozenApproxOracle::from_registers_arena(4, regs);
        match bad.validate() {
            Err(InvariantViolation::RegisterOutOfRange { node, rho, max_rho }) => {
                assert_eq!(node, NodeId(1));
                assert_eq!((rho, max_rho), (62, 61));
            }
            other => panic!("expected RegisterOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_unsorted_frozen_entries() {
        let entries = vec![(NodeId(2), Timestamp(5)), (NodeId(1), Timestamp(6))];
        let arena = FrozenExactOracle::from_parts(Window(3), vec![0, 2, 2, 2], entries);
        assert!(matches!(
            arena.validate(),
            Err(InvariantViolation::UnsortedSummary { node: NodeId(0) })
        ));
    }

    #[test]
    fn frozen_heap_bytes_are_positive_and_compact() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let frozen = irs.freeze();
        assert!(frozen.heap_bytes() > 0);
        assert_eq!(frozen.total_entries(), irs.total_entries());
    }
}
