//! Layered oracle architecture: a forward-delta overlay stacked on a frozen
//! base arena, with LSM-style re-freeze compaction.
//!
//! The frozen arenas ([`FrozenExactOracle`] / [`FrozenApproxOracle`]) are
//! immutable by design: queries run over contiguous memory, but a single
//! new interaction would force a full rebuild. This module adds the
//! incremental tier on top:
//!
//! * [`DeltaOverlay`] buffers **forward-time** interactions (`t ≥` the
//!   frontier of the base arena) in an append log, together with the
//!   *window tail* of the base history — the suffix of already-frozen
//!   interactions that can still combine with future ones.
//! * [`LayeredExactOracle`] / [`LayeredApproxOracle`] answer every
//!   [`InfluenceOracle`] query from `base ⊕ overlay`, where the overlay is
//!   a small frozen arena rebuilt from the delta log on
//!   [`refresh`](LayeredExactOracle::refresh).
//! * [`compact`](LayeredExactOracle::compact) re-runs the one-pass
//!   [`ReversePassEngine`] over the delta log (minus expired entries) into
//!   a **fresh base arena** — an LSM-style re-freeze that starts the next
//!   generation with an empty pending log.
//!
//! # Why the layering is exact
//!
//! Let `T` be the base frontier (the newest base interaction) and `ω` the
//! window. Every information channel of the full history is either
//!
//! 1. **pure-base** — all its interactions were frozen into the base
//!    arena, so the base summaries already cover it; or
//! 2. **delta-touching** — it contains at least one pending interaction at
//!    time `t_p ≥ T`. A channel's interactions all lie within `ω` of its
//!    end time, so each of its base interactions has `T − t < ω`: they are
//!    all in the retained window tail, and the channel is rediscovered in
//!    full by the overlay build over `tail ++ pending`.
//!
//! Dominance-correct merge then makes `base ⊕ overlay` *bit-identical* to
//! a from-scratch build: exact summaries keep the per-target **minimum
//! end time** (`min` across the two layers), and collapsed vHLL registers
//! keep the per-cell **maximum ρ** (`max` across the two layers). Overlay
//! channels that happen to be pure-tail are genuine full-history channels
//! too, so merging them in is the identity, never an overcount.
//!
//! # Compaction semantics
//!
//! Compaction slides the window forward: interactions with
//! `T' − t ≥ ω` (where `T'` is the new frontier) can never share a channel
//! with anything appended at `t ≥ T'`, so they are dropped and the
//! surviving suffix is re-frozen. The compacted oracle therefore answers
//! over the **retained trailing window** of history — channels that ended
//! before it are gone, which is exactly the LSM/TTL contract. The result
//! is bit-identical to a from-scratch build over the surviving
//! interactions with the same node universe (the universe never shrinks).

use crate::approx::DEFAULT_PRECISION;
use crate::engine::{ExactStore, ReversePassEngine, SummaryStore, VhllStore};
use crate::frozen::{EntriesSlice, FrozenApproxOracle, FrozenExactOracle};
use crate::obs::{metric_u64, Counter, Gauge, Hist, NoopRecorder, Recorder, Span};
use crate::oracle::{InfluenceOracle, NodeBitset};
use crate::trace::{NoopTracer, SpanId, TraceEvent, TraceId, Tracer};
use infprop_hll::{estimate_from_registers, HyperLogLog, RunningEstimator};
use infprop_temporal_graph::{Interaction, InteractionNetwork, NodeId, Timestamp, Window};
use std::fmt;

/// An append moved backwards in time: layered oracles only accept
/// interactions at or after the current [frontier](DeltaOverlay::frontier)
/// (the forward-streaming contract, mirroring
/// [`OutOfOrder`](crate::OutOfOrder) on the engine's reverse side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleAppend {
    /// Timestamp of the rejected interaction.
    pub got: Timestamp,
    /// The frontier it fell behind (newest accepted timestamp).
    pub frontier: Timestamp,
}

impl fmt::Display for StaleAppend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stale append: interaction at t={} is behind the layered frontier t={}",
            self.got.get(),
            self.frontier.get()
        )
    }
}

impl std::error::Error for StaleAppend {}

/// The suffix of a time-sorted interaction slice still inside the window
/// of `frontier`: everything with `frontier − t < ω`. This is precisely
/// the set of frozen interactions that can share a channel with an
/// interaction appended at `t ≥ frontier`.
pub(crate) fn window_tail(
    ints: &[Interaction],
    frontier: Timestamp,
    window: Window,
) -> Vec<Interaction> {
    let cut = ints.partition_point(|i| frontier.delta(i.time) >= window.get());
    ints[cut..].to_vec()
}

/// Register-wise maximum folded into `acc` — the dominance merge of
/// collapsed HLL rows, routed through the wide-lane kernel
/// ([`crate::kernel::merge_max`]: portable 16-byte lanes always, AVX2 when
/// compiled in and detected). Bytewise `max` is exact on every path, so the layered
/// dominance guarantees are untouched.
#[inline]
// xtask-contract: alloc-free, no-panic
fn max_into(acc: &mut [u8], src: &[u8]) {
    crate::kernel::merge_max(acc, src);
}

/// Forward-time delta buffer on top of a frozen base arena.
///
/// Holds the interactions the frozen base cannot see — the **pending**
/// appends — plus the **window tail** of base history they may combine
/// with, as one contiguous time-sorted log (`tail ++ pending`). The
/// overlay store is rebuilt from that log with the re-entrant
/// [`ReversePassEngine::run_slice`] pass; tie batches spanning the
/// tail/pending boundary land in one contiguous run, so the two-phase tie
/// semantics of the engine hold across the split.
///
/// `S` is the summary backend the overlay is built into ([`ExactStore`]
/// or [`VhllStore`]); the layered oracles own the corresponding frozen
/// arena types.
#[derive(Clone)]
pub struct DeltaOverlay<S> {
    window: Window,
    /// Node-universe floor: the base arena's `num_nodes`. Overlay builds
    /// and compactions never produce a smaller universe.
    min_nodes: usize,
    /// Newest timestamp frozen into the base arena (`None` for an empty
    /// base).
    base_frontier: Option<Timestamp>,
    /// `tail ++ pending`, ascending in time.
    log: Vec<Interaction>,
    /// Length of the tail prefix of `log`.
    tail_len: usize,
    /// Empty store cloned as the seed of every overlay rebuild (carries
    /// backend parameters such as the sketch precision).
    template: S,
}

impl<S: SummaryStore + Clone> DeltaOverlay<S> {
    /// An empty delta on top of a base arena with `min_nodes` nodes whose
    /// newest interaction is `base_frontier`.
    ///
    /// # Panics
    ///
    /// Panics if `window < 1`.
    pub fn new(
        window: Window,
        min_nodes: usize,
        base_frontier: Option<Timestamp>,
        template: S,
    ) -> Self {
        Self::from_log(window, min_nodes, base_frontier, Vec::new(), 0, template)
    }

    /// A delta seeded with the base's window tail (see [`DeltaOverlay`]):
    /// the first `tail_len` entries of `log` are the tail, the rest are
    /// pending appends.
    pub(crate) fn from_log(
        window: Window,
        min_nodes: usize,
        base_frontier: Option<Timestamp>,
        log: Vec<Interaction>,
        tail_len: usize,
        template: S,
    ) -> Self {
        window.assert_valid();
        debug_assert!(tail_len <= log.len());
        debug_assert!(
            log.windows(2).all(|w| w[0].time <= w[1].time),
            "delta log is not sorted by time"
        );
        DeltaOverlay {
            window,
            min_nodes,
            base_frontier,
            log,
            tail_len,
            template,
        }
    }

    /// The channel window `ω` shared with the base arena.
    pub fn window(&self) -> Window {
        self.window
    }

    /// The node-universe floor (the base arena's node count).
    pub fn min_nodes(&self) -> usize {
        self.min_nodes
    }

    /// Newest timestamp frozen into the base arena.
    pub fn base_frontier(&self) -> Option<Timestamp> {
        self.base_frontier
    }

    /// Newest timestamp known to the layered oracle: the last log entry,
    /// falling back to the base frontier. `None` only when both base and
    /// delta are empty. Appends must be at or after this.
    pub fn frontier(&self) -> Option<Timestamp> {
        self.log.last().map(|i| i.time).or(self.base_frontier)
    }

    /// The retained window tail of base history.
    pub fn tail(&self) -> &[Interaction] {
        &self.log[..self.tail_len]
    }

    /// Interactions appended since the base arena was frozen.
    pub fn pending(&self) -> &[Interaction] {
        &self.log[self.tail_len..]
    }

    /// The full time-sorted overlay input, `tail ++ pending`.
    pub fn log(&self) -> &[Interaction] {
        &self.log
    }

    /// The node universe an overlay build (or compaction) must cover:
    /// every id mentioned by the log, but never smaller than the base
    /// arena's universe.
    pub fn universe(&self) -> usize {
        let log_max = self
            .log
            .iter()
            .map(|i| i.src.index().max(i.dst.index()) + 1)
            .max()
            .unwrap_or(0);
        self.min_nodes.max(log_max)
    }

    /// Buffers one forward-time interaction.
    ///
    /// Ties with the frontier are allowed (they join its tie batch on the
    /// next rebuild); moving backwards is a [`StaleAppend`].
    pub fn append(&mut self, i: Interaction) -> Result<(), StaleAppend> {
        if let Some(f) = self.frontier() {
            if i.time < f {
                return Err(StaleAppend {
                    got: i.time,
                    frontier: f,
                });
            }
        }
        self.log.push(i);
        Ok(())
    }

    /// Rebuilds the overlay store from the whole log over the current
    /// [`universe`](Self::universe). Engine-level metrics of the pass flow
    /// into `rec`.
    pub fn build_overlay_recorded<R: Recorder>(&self, rec: &R) -> S {
        self.build_slice_recorded(0, self.universe(), rec)
    }

    /// Runs the re-entrant reverse pass over `log[from..]` into a fresh
    /// clone of the template store covering `universe` nodes.
    pub(crate) fn build_slice_recorded<R: Recorder>(
        &self,
        from: usize,
        universe: usize,
        rec: &R,
    ) -> S {
        self.build_slice_traced(from, universe, rec, NoopTracer, TraceId::NONE, SpanId::NONE)
    }

    /// [`build_slice_recorded`](Self::build_slice_recorded) with causal
    /// tracing: the engine pass becomes a `build.reverse_scan` span of
    /// `trace` under `parent` — how a compaction's rebuild nests inside its
    /// `compact.rebuild` span.
    pub(crate) fn build_slice_traced<R: Recorder, T: Tracer>(
        &self,
        from: usize,
        universe: usize,
        rec: &R,
        tracer: T,
        trace: TraceId,
        parent: SpanId,
    ) -> S {
        let mut store = self.template.clone();
        store.ensure_nodes(universe);
        ReversePassEngine::run_slice_traced(
            &self.log[from..],
            self.window,
            store,
            rec,
            tracer,
            trace,
            parent,
        )
    }

    /// Index of the first log entry that survives a compaction at
    /// `frontier`: entries with `frontier − t ≥ ω` can never share a
    /// channel with anything appended at `t ≥ frontier` and are expired.
    pub(crate) fn expiry_cut(&self, frontier: Timestamp) -> usize {
        self.log
            .partition_point(|i| frontier.delta(i.time) >= self.window.get())
    }

    /// Applies a finished compaction: the surviving log suffix becomes the
    /// new generation's tail, pending empties, and the universe floor
    /// rises to the compacted arena's node count.
    pub(crate) fn roll_base(
        &mut self,
        new_frontier: Option<Timestamp>,
        cut: usize,
        universe: usize,
    ) {
        self.min_nodes = universe;
        self.base_frontier = new_frontier;
        self.log.drain(..cut);
        self.tail_len = self.log.len();
    }
}

/// Walks the dominance-correct merge of two exact summaries (both sorted
/// by target id, one entry per target): targets present in both layers
/// keep the **minimum** end time, matching what a from-scratch build
/// records.
// xtask-contract: alloc-free, kernel
fn merged_exact_for_each(
    base: EntriesSlice<'_>,
    over: EntriesSlice<'_>,
    mut f: impl FnMut(NodeId, Timestamp),
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < base.len() && j < over.len() {
        let (bv, bt) = base.get(i);
        let (ov, ot) = over.get(j);
        match bv.cmp(&ov) {
            std::cmp::Ordering::Less => {
                f(bv, bt);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                f(ov, ot);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                f(bv, if ot < bt { ot } else { bt });
                i += 1;
                j += 1;
            }
        }
    }
    while i < base.len() {
        let (v, t) = base.get(i);
        f(v, t);
        i += 1;
    }
    while j < over.len() {
        let (v, t) = over.get(j);
        f(v, t);
        j += 1;
    }
}

/// An exact influence oracle layered as `frozen base arena ⊕ delta
/// overlay`.
///
/// Queries merge the two frozen arenas entry-wise (see the module docs for
/// why the merge is bit-identical to a from-scratch rebuild). Appends
/// buffer into the [`DeltaOverlay`] and mark the oracle
/// [stale](Self::is_stale); an explicit [`refresh`](Self::refresh) folds
/// them into the overlay arena — until then queries answer as of the last
/// refresh.
#[derive(Clone)]
pub struct LayeredExactOracle {
    base: FrozenExactOracle,
    delta: DeltaOverlay<ExactStore>,
    overlay: FrozenExactOracle,
    generation: u64,
    stale: bool,
}

impl LayeredExactOracle {
    /// Builds the base arena from `net` and seeds the delta with its
    /// window tail, ready for forward appends.
    pub fn from_network(net: &InteractionNetwork, window: Window) -> Self {
        Self::from_network_recorded(net, window, &NoopRecorder)
    }

    /// [`from_network`](Self::from_network) with engine metrics reporting
    /// into `rec`.
    pub fn from_network_recorded<R: Recorder>(
        net: &InteractionNetwork,
        window: Window,
        rec: &R,
    ) -> Self {
        let store = ReversePassEngine::run_recorded(
            net,
            window,
            ExactStore::with_nodes(net.num_nodes()),
            rec,
        );
        let base = store.freeze(window);
        let frontier = net.interactions().last().map(|i| i.time);
        let tail = match frontier {
            Some(f) => window_tail(net.interactions(), f, window),
            None => Vec::new(),
        };
        Self::from_parts(base, frontier, tail, Vec::new(), 0)
    }

    /// Reassembles a layered oracle from persisted parts: the frozen base
    /// arena, its frontier, the window tail retained at freeze time, the
    /// pending appends, and the compaction generation.
    ///
    /// `tail ++ pending` must be ascending in time; the tail must be the
    /// base suffix within the window of `base_frontier`.
    pub fn from_parts(
        base: FrozenExactOracle,
        base_frontier: Option<Timestamp>,
        tail: Vec<Interaction>,
        pending: Vec<Interaction>,
        generation: u64,
    ) -> Self {
        let window = base.window();
        let min_nodes = InfluenceOracle::num_nodes(&base);
        let mut log = tail;
        let tail_len = log.len();
        log.extend(pending);
        let delta = DeltaOverlay::from_log(
            window,
            min_nodes,
            base_frontier,
            log,
            tail_len,
            ExactStore::with_nodes(0),
        );
        let overlay = delta.build_overlay_recorded(&NoopRecorder).freeze(window);
        LayeredExactOracle {
            base,
            delta,
            overlay,
            generation,
            stale: false,
        }
    }

    /// The channel window `ω`.
    pub fn window(&self) -> Window {
        self.delta.window()
    }

    /// Compaction generation of the current base arena (starts at 0,
    /// increments per [`compact`](Self::compact)).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// `true` when appends have not yet been folded into the overlay —
    /// queries answer as of the last [`refresh`](Self::refresh).
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Newest timestamp accepted so far (base or delta).
    pub fn frontier(&self) -> Option<Timestamp> {
        self.delta.frontier()
    }

    /// The frozen base arena of the current generation.
    pub fn base(&self) -> &FrozenExactOracle {
        &self.base
    }

    /// The frozen overlay arena of the last refresh.
    pub fn overlay(&self) -> &FrozenExactOracle {
        &self.overlay
    }

    /// The delta buffer (window tail + pending appends).
    pub fn delta(&self) -> &DeltaOverlay<ExactStore> {
        &self.delta
    }

    /// Buffers one forward-time interaction and marks the oracle stale.
    pub fn append(&mut self, i: Interaction) -> Result<(), StaleAppend> {
        self.append_recorded(i, &NoopRecorder)
    }

    /// [`append`](Self::append) counting into `delta.appends`.
    pub fn append_recorded<R: Recorder>(
        &mut self,
        i: Interaction,
        rec: &R,
    ) -> Result<(), StaleAppend> {
        self.delta.append(i)?;
        self.stale = true;
        if R::ENABLED {
            rec.add(Counter::DeltaAppends, 1);
            rec.gauge(Gauge::DeltaPending, metric_u64(self.delta.pending().len()));
        }
        Ok(())
    }

    /// Appends a time-sorted batch, recording its size into the
    /// `delta.append_batch` histogram. Stops at (and returns) the first
    /// stale interaction; earlier ones stay appended.
    pub fn append_batch_recorded<R: Recorder>(
        &mut self,
        batch: &[Interaction],
        rec: &R,
    ) -> Result<(), StaleAppend> {
        for &i in batch {
            self.append_recorded(i, rec)?;
        }
        if R::ENABLED {
            rec.record(Hist::DeltaAppendBatch, metric_u64(batch.len()));
        }
        Ok(())
    }

    /// Rebuilds the overlay arena from the delta log, folding in every
    /// pending append. Queries afterwards see the full appended history.
    pub fn refresh(&mut self) {
        self.refresh_recorded(&NoopRecorder);
    }

    /// [`refresh`](Self::refresh) timed under the `delta.refresh` span,
    /// with the tail/pending gauges updated.
    pub fn refresh_recorded<R: Recorder>(&mut self, rec: &R) {
        let t0 = rec.span_start();
        self.overlay = self
            .delta
            .build_overlay_recorded(rec)
            .freeze(self.delta.window());
        self.stale = false;
        if R::ENABLED {
            rec.add(Counter::DeltaRefreshes, 1);
            rec.gauge(Gauge::DeltaPending, metric_u64(self.delta.pending().len()));
            rec.gauge(Gauge::DeltaTail, metric_u64(self.delta.tail().len()));
        }
        rec.span_end(Span::DeltaRefresh, t0);
    }

    /// LSM-style re-freeze: expires log entries outside the window of the
    /// new frontier, rebuilds a fresh base arena over the survivors with
    /// the one-pass engine, and starts the next generation with an empty
    /// pending log (the survivors become its window tail).
    ///
    /// Post-compaction answers are bit-identical to a from-scratch build
    /// over the surviving interactions with the same node universe; see
    /// the module docs for the retained-window semantics.
    pub fn compact(&mut self) {
        self.compact_recorded(&NoopRecorder);
    }

    /// [`compact`](Self::compact) timed under the `compaction.run` span,
    /// counting expired interactions and the surviving input size, and
    /// publishing the new generation to the `compaction.generation` gauge.
    pub fn compact_recorded<R: Recorder>(&mut self, rec: &R) {
        self.compact_traced(rec, NoopTracer);
    }

    /// [`compact_recorded`](Self::compact_recorded) with causal tracing:
    /// the whole compaction is one `compact.run` trace whose tree nests a
    /// `compact.rebuild` span (the survivors' engine pass, with its
    /// `build.reverse_scan` child) and an `overlay.refresh` span (the
    /// post-roll overlay rebuild). Payloads carry the surviving input size
    /// and pending-append counts.
    pub fn compact_traced<R: Recorder, T: Tracer>(&mut self, rec: &R, tracer: T) {
        let trace = TraceId(if T::ENABLED {
            tracer.alloc_traces(1)
        } else {
            0
        });
        let sp = tracer.begin(trace, SpanId::NONE, TraceEvent::CompactRun);
        let t0 = rec.span_start();
        let new_frontier = self.delta.frontier();
        let universe = self.delta.universe();
        let cut = new_frontier.map_or(0, |f| self.delta.expiry_cut(f));
        let survivors = self.delta.log().len() - cut;
        if R::ENABLED {
            rec.add(Counter::CompactionRuns, 1);
            rec.add(Counter::CompactionExpired, metric_u64(cut));
            rec.record(Hist::CompactionInput, metric_u64(survivors));
        }
        let rb = tracer.begin(trace, sp, TraceEvent::CompactRebuild);
        let store = self
            .delta
            .build_slice_traced(cut, universe, rec, tracer, trace, rb);
        self.base = store.freeze(self.delta.window());
        tracer.end(rb, TraceEvent::CompactRebuild, metric_u64(survivors));
        self.delta.roll_base(new_frontier, cut, universe);
        self.generation += 1;
        if R::ENABLED {
            rec.gauge(Gauge::CompactionGeneration, self.generation);
        }
        let rf = tracer.begin(trace, sp, TraceEvent::OverlayRefresh);
        self.refresh_recorded(rec);
        tracer.end(
            rf,
            TraceEvent::OverlayRefresh,
            metric_u64(self.delta.tail().len()),
        );
        rec.span_end(Span::CompactionRun, t0);
        tracer.end(sp, TraceEvent::CompactRun, metric_u64(survivors));
    }

    /// Entries of `φω(u)` as answered by the layered merge, sorted by
    /// target id with the per-target minimum end time — bit-identical to
    /// the summary a from-scratch arena over the same history stores.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside the universe.
    pub fn summary(&self, u: NodeId) -> Vec<(NodeId, Timestamp)> {
        assert!(
            u.index() < InfluenceOracle::num_nodes(self),
            "node {} outside the layered universe",
            u.index()
        );
        let mut out = Vec::new();
        merged_exact_for_each(self.base_summary(u), self.overlay_summary(u), |v, t| {
            out.push((v, t));
        });
        out
    }

    /// True batch query over the layered merge: `Inf(S_i)` for every seed
    /// set, fanned out over up to `threads` workers. Answers are
    /// bit-identical to mapping [`InfluenceOracle::influence`] over the
    /// sets in order; the batch amortizes per-query setup by reusing one
    /// union bitset and one seed-dedup buffer per worker (insertion is
    /// idempotent, so deduplicated seeds answer identically with each
    /// summary absorbed once).
    pub fn influence_many_frozen(&self, seed_sets: &[Vec<NodeId>], threads: usize) -> Vec<f64> {
        self.influence_many_frozen_recorded(seed_sets, threads, &NoopRecorder)
    }

    /// [`influence_many_frozen`](Self::influence_many_frozen) with
    /// instrumentation: per-query latencies land in `kernel.query_ns`,
    /// merged-row counts in `kernel.merge_rows`, the whole batch in the
    /// `oracle.query_batch` span. Answers are identical to the unrecorded
    /// path.
    pub fn influence_many_frozen_recorded<R: Recorder>(
        &self,
        seed_sets: &[Vec<NodeId>],
        threads: usize,
        rec: &R,
    ) -> Vec<f64> {
        self.influence_many_frozen_traced(seed_sets, threads, rec, NoopTracer)
    }

    /// [`influence_many_frozen_recorded`](Self::influence_many_frozen_recorded)
    /// with causal tracing: one `query.batch` span plus a `query.element`
    /// span per element (a [`Tracer::lap`] chain — one ring record and one
    /// clock read each), each element with its own trace id (consecutive in
    /// seed-set order) and the deduplicated seed-row count as payload.
    /// Answers are bit-identical with any tracer.
    pub fn influence_many_frozen_traced<R: Recorder, T: Tracer>(
        &self,
        seed_sets: &[Vec<NodeId>],
        threads: usize,
        rec: &R,
        tracer: T,
    ) -> Vec<f64> {
        let t0 = rec.span_start();
        let base = if T::ENABLED {
            tracer.alloc_traces(metric_u64(seed_sets.len()) + 1)
        } else {
            0
        };
        let batch_span = tracer.begin(TraceId(base), SpanId::NONE, TraceEvent::QueryBatch);
        let out = crate::par::map_ranges_with_recorded(
            seed_sets.len(),
            1,
            threads,
            || (self.empty_union(), Vec::new(), tracer.worker()),
            |(union, dedup, tr), range| {
                let mut part = Vec::with_capacity(range.len());
                tr.mark(TraceEvent::QueryElement);
                for q in range {
                    let tq = rec.span_start();
                    dedup.clear();
                    crate::oracle::push_deduped(&seed_sets[q], dedup);
                    part.push(self.influence_into(dedup, union));
                    tr.lap(
                        TraceId(base + 1 + metric_u64(q)),
                        batch_span,
                        TraceEvent::QueryElement,
                        metric_u64(dedup.len()),
                    );
                    if R::ENABLED {
                        crate::oracle::record_batch_query(dedup.len(), tq, rec);
                    }
                }
                part
            },
            rec,
        );
        tracer.end(
            batch_span,
            TraceEvent::QueryBatch,
            metric_u64(seed_sets.len()),
        );
        crate::oracle::finish_batch_recorded(&out, t0, rec);
        out
    }

    /// The base layer's summary, empty for nodes the base arena predates.
    fn base_summary(&self, u: NodeId) -> EntriesSlice<'_> {
        if u.index() < InfluenceOracle::num_nodes(&self.base) {
            self.base.summary(u)
        } else {
            EntriesSlice::empty()
        }
    }

    /// The overlay layer's summary, empty for nodes past the overlay
    /// universe (possible only for base nodes never touched by the log).
    fn overlay_summary(&self, u: NodeId) -> EntriesSlice<'_> {
        if u.index() < InfluenceOracle::num_nodes(&self.overlay) {
            self.overlay.summary(u)
        } else {
            EntriesSlice::empty()
        }
    }
}

impl InfluenceOracle for LayeredExactOracle {
    type Union = NodeBitset;

    fn num_nodes(&self) -> usize {
        InfluenceOracle::num_nodes(&self.overlay).max(InfluenceOracle::num_nodes(&self.base))
    }

    fn empty_union(&self) -> Self::Union {
        NodeBitset::with_nodes(self.num_nodes())
    }

    fn union_size(&self, union: &Self::Union) -> f64 {
        union.len() as f64
    }

    // xtask-contract: alloc-free, kernel
    fn absorb(&self, union: &mut Self::Union, node: NodeId) {
        // Distinct-target union: layer order is irrelevant, so no merge
        // walk is needed — both layers' targets just land in the bitset.
        for (v, _) in self.base_summary(node).iter() {
            union.insert(v.index());
        }
        for (v, _) in self.overlay_summary(node).iter() {
            union.insert(v.index());
        }
    }

    // xtask-contract: alloc-free, kernel
    fn marginal_gain(&self, union: &Self::Union, node: NodeId) -> f64 {
        let mut gain = 0usize;
        merged_exact_for_each(
            self.base_summary(node),
            self.overlay_summary(node),
            |v, _| {
                if !union.contains(v.index()) {
                    gain += 1;
                }
            },
        );
        gain as f64
    }

    // xtask-contract: alloc-free, kernel
    fn individual(&self, node: NodeId) -> f64 {
        let mut count = 0usize;
        merged_exact_for_each(
            self.base_summary(node),
            self.overlay_summary(node),
            |_, _| {
                count += 1;
            },
        );
        count as f64
    }

    fn reset_union(&self, union: &mut Self::Union) {
        union.clear();
    }
}

/// Per-node estimates over the register-wise maximum of the two layers —
/// the same estimator (and summation order) a from-scratch arena
/// precomputes at freeze time, so reads are bit-identical.
fn merged_individuals(base: &FrozenApproxOracle, overlay: &FrozenApproxOracle) -> Vec<f64> {
    let beta = 1usize << overlay.precision();
    let base_n = InfluenceOracle::num_nodes(base);
    let n = InfluenceOracle::num_nodes(overlay).max(base_n);
    let mut row = vec![0u8; beta];
    let mut out = Vec::with_capacity(n);
    for u in 0..n {
        row.copy_from_slice(overlay.node_registers(NodeId::from_index(u)));
        if u < base_n {
            max_into(&mut row, base.node_registers(NodeId::from_index(u)));
        }
        out.push(estimate_from_registers(&row));
    }
    out
}

/// A sketch-based influence oracle layered as `frozen base arena ⊕ delta
/// overlay`.
///
/// Queries reuse the fused block-merge kernel of [`FrozenApproxOracle`]:
/// per-seed register blocks are the register-wise maximum of the base and
/// overlay rows, streamed straight into the shared
/// [`RunningEstimator`] — bit-identical to querying a from-scratch arena,
/// because the merged registers *are* the from-scratch registers (see the
/// module docs). Append/refresh/compact mirror [`LayeredExactOracle`].
#[derive(Clone)]
pub struct LayeredApproxOracle {
    base: FrozenApproxOracle,
    delta: DeltaOverlay<VhllStore>,
    overlay: FrozenApproxOracle,
    /// Merged per-node estimates, recomputed on refresh (the frozen-arena
    /// analog precomputes these at freeze time).
    individuals: Vec<f64>,
    generation: u64,
    stale: bool,
}

impl LayeredApproxOracle {
    /// Builds the base arena from `net` at [`DEFAULT_PRECISION`] and seeds
    /// the delta with its window tail.
    pub fn from_network(net: &InteractionNetwork, window: Window) -> Self {
        Self::from_network_with_precision(net, window, DEFAULT_PRECISION)
    }

    /// [`from_network`](Self::from_network) at an explicit sketch
    /// precision.
    pub fn from_network_with_precision(
        net: &InteractionNetwork,
        window: Window,
        precision: u8,
    ) -> Self {
        Self::from_network_with_precision_recorded(net, window, precision, &NoopRecorder)
    }

    /// [`from_network_with_precision`](Self::from_network_with_precision)
    /// with engine metrics reporting into `rec`.
    pub fn from_network_with_precision_recorded<R: Recorder>(
        net: &InteractionNetwork,
        window: Window,
        precision: u8,
        rec: &R,
    ) -> Self {
        let store = ReversePassEngine::run_recorded(
            net,
            window,
            VhllStore::with_nodes(precision, net.num_nodes()),
            rec,
        );
        let base = store.freeze();
        let frontier = net.interactions().last().map(|i| i.time);
        let tail = match frontier {
            Some(f) => window_tail(net.interactions(), f, window),
            None => Vec::new(),
        };
        Self::from_parts(base, window, frontier, tail, Vec::new(), 0)
    }

    /// Reassembles a layered oracle from persisted parts. Unlike the exact
    /// arena the register arena does not carry the window, so it is passed
    /// explicitly; everything else mirrors
    /// [`LayeredExactOracle::from_parts`].
    pub fn from_parts(
        base: FrozenApproxOracle,
        window: Window,
        base_frontier: Option<Timestamp>,
        tail: Vec<Interaction>,
        pending: Vec<Interaction>,
        generation: u64,
    ) -> Self {
        let min_nodes = InfluenceOracle::num_nodes(&base);
        let precision = base.precision();
        let mut log = tail;
        let tail_len = log.len();
        log.extend(pending);
        let delta = DeltaOverlay::from_log(
            window,
            min_nodes,
            base_frontier,
            log,
            tail_len,
            VhllStore::with_nodes(precision, 0),
        );
        let overlay = delta.build_overlay_recorded(&NoopRecorder).freeze();
        let individuals = merged_individuals(&base, &overlay);
        LayeredApproxOracle {
            base,
            delta,
            overlay,
            individuals,
            generation,
            stale: false,
        }
    }

    /// The channel window `ω`.
    pub fn window(&self) -> Window {
        self.delta.window()
    }

    /// The sketch precision `k` (so `β = 2^k`).
    pub fn precision(&self) -> u8 {
        self.base.precision()
    }

    /// Compaction generation of the current base arena.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// `true` when appends have not yet been folded into the overlay.
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Newest timestamp accepted so far (base or delta).
    pub fn frontier(&self) -> Option<Timestamp> {
        self.delta.frontier()
    }

    /// The frozen base arena of the current generation.
    pub fn base(&self) -> &FrozenApproxOracle {
        &self.base
    }

    /// The frozen overlay arena of the last refresh.
    pub fn overlay(&self) -> &FrozenApproxOracle {
        &self.overlay
    }

    /// The delta buffer (window tail + pending appends).
    pub fn delta(&self) -> &DeltaOverlay<VhllStore> {
        &self.delta
    }

    /// Buffers one forward-time interaction and marks the oracle stale.
    pub fn append(&mut self, i: Interaction) -> Result<(), StaleAppend> {
        self.append_recorded(i, &NoopRecorder)
    }

    /// [`append`](Self::append) counting into `delta.appends`.
    pub fn append_recorded<R: Recorder>(
        &mut self,
        i: Interaction,
        rec: &R,
    ) -> Result<(), StaleAppend> {
        self.delta.append(i)?;
        self.stale = true;
        if R::ENABLED {
            rec.add(Counter::DeltaAppends, 1);
            rec.gauge(Gauge::DeltaPending, metric_u64(self.delta.pending().len()));
        }
        Ok(())
    }

    /// Appends a time-sorted batch, recording its size into the
    /// `delta.append_batch` histogram. Stops at (and returns) the first
    /// stale interaction; earlier ones stay appended.
    pub fn append_batch_recorded<R: Recorder>(
        &mut self,
        batch: &[Interaction],
        rec: &R,
    ) -> Result<(), StaleAppend> {
        for &i in batch {
            self.append_recorded(i, rec)?;
        }
        if R::ENABLED {
            rec.record(Hist::DeltaAppendBatch, metric_u64(batch.len()));
        }
        Ok(())
    }

    /// Rebuilds the overlay arena (and the merged per-node estimates)
    /// from the delta log, folding in every pending append.
    pub fn refresh(&mut self) {
        self.refresh_recorded(&NoopRecorder);
    }

    /// [`refresh`](Self::refresh) timed under the `delta.refresh` span,
    /// with the tail/pending gauges updated.
    pub fn refresh_recorded<R: Recorder>(&mut self, rec: &R) {
        let t0 = rec.span_start();
        self.overlay = self.delta.build_overlay_recorded(rec).freeze();
        self.individuals = merged_individuals(&self.base, &self.overlay);
        self.stale = false;
        if R::ENABLED {
            rec.add(Counter::DeltaRefreshes, 1);
            rec.gauge(Gauge::DeltaPending, metric_u64(self.delta.pending().len()));
            rec.gauge(Gauge::DeltaTail, metric_u64(self.delta.tail().len()));
        }
        rec.span_end(Span::DeltaRefresh, t0);
    }

    /// LSM-style re-freeze; see [`LayeredExactOracle::compact`].
    pub fn compact(&mut self) {
        self.compact_recorded(&NoopRecorder);
    }

    /// [`compact`](Self::compact) timed under the `compaction.run` span;
    /// see [`LayeredExactOracle::compact_recorded`].
    pub fn compact_recorded<R: Recorder>(&mut self, rec: &R) {
        self.compact_traced(rec, NoopTracer);
    }

    /// [`compact_recorded`](Self::compact_recorded) with causal tracing;
    /// same span tree as [`LayeredExactOracle::compact_traced`]
    /// (`compact.run` ⊃ `compact.rebuild` ⊃ `build.reverse_scan`, then
    /// `overlay.refresh`).
    pub fn compact_traced<R: Recorder, T: Tracer>(&mut self, rec: &R, tracer: T) {
        let trace = TraceId(if T::ENABLED {
            tracer.alloc_traces(1)
        } else {
            0
        });
        let sp = tracer.begin(trace, SpanId::NONE, TraceEvent::CompactRun);
        let t0 = rec.span_start();
        let new_frontier = self.delta.frontier();
        let universe = self.delta.universe();
        let cut = new_frontier.map_or(0, |f| self.delta.expiry_cut(f));
        let survivors = self.delta.log().len() - cut;
        if R::ENABLED {
            rec.add(Counter::CompactionRuns, 1);
            rec.add(Counter::CompactionExpired, metric_u64(cut));
            rec.record(Hist::CompactionInput, metric_u64(survivors));
        }
        let rb = tracer.begin(trace, sp, TraceEvent::CompactRebuild);
        let store = self
            .delta
            .build_slice_traced(cut, universe, rec, tracer, trace, rb);
        self.base = store.freeze();
        tracer.end(rb, TraceEvent::CompactRebuild, metric_u64(survivors));
        self.delta.roll_base(new_frontier, cut, universe);
        self.generation += 1;
        if R::ENABLED {
            rec.gauge(Gauge::CompactionGeneration, self.generation);
        }
        let rf = tracer.begin(trace, sp, TraceEvent::OverlayRefresh);
        self.refresh_recorded(rec);
        tracer.end(
            rf,
            TraceEvent::OverlayRefresh,
            metric_u64(self.delta.tail().len()),
        );
        rec.span_end(Span::CompactionRun, t0);
        tracer.end(sp, TraceEvent::CompactRun, metric_u64(survivors));
    }

    /// The base layer's register row, or `None` for nodes the base arena
    /// predates (their registers are all-zero by definition).
    // xtask-contract: alloc-free, kernel
    fn base_registers(&self, node: NodeId) -> Option<&[u8]> {
        (node.index() < InfluenceOracle::num_nodes(&self.base))
            .then(|| self.base.node_registers(node))
    }

    /// True batch query over the layered merge: `Inf(S_i)` for every seed
    /// set, fanned out over up to `threads` workers through the fused
    /// two-layer kernel of [`InfluenceOracle::influence`]. Answers are
    /// bit-identical to mapping `influence` over the sets in order
    /// (register `max` is idempotent, so the per-worker seed dedup changes
    /// no merged byte); the batch amortizes seed dedup and scratch across
    /// each worker's queries.
    pub fn influence_many_frozen(&self, seed_sets: &[Vec<NodeId>], threads: usize) -> Vec<f64> {
        self.influence_many_frozen_recorded(seed_sets, threads, &NoopRecorder)
    }

    /// [`influence_many_frozen`](Self::influence_many_frozen) with
    /// instrumentation: per-query latencies land in `kernel.query_ns`,
    /// merged-row counts in `kernel.merge_rows`, the whole batch in the
    /// `oracle.query_batch` span. Answers are identical to the unrecorded
    /// path.
    pub fn influence_many_frozen_recorded<R: Recorder>(
        &self,
        seed_sets: &[Vec<NodeId>],
        threads: usize,
        rec: &R,
    ) -> Vec<f64> {
        self.influence_many_frozen_traced(seed_sets, threads, rec, NoopTracer)
    }

    /// [`influence_many_frozen_recorded`](Self::influence_many_frozen_recorded)
    /// with causal tracing: one `query.batch` span plus one `query.element`
    /// span per element (a [`Tracer::lap`] chain — one ring record and one
    /// clock read each), each with its own consecutive trace id and the
    /// deduplicated seed-row count as payload. Answers stay bit-identical
    /// with any tracer.
    pub fn influence_many_frozen_traced<R: Recorder, T: Tracer>(
        &self,
        seed_sets: &[Vec<NodeId>],
        threads: usize,
        rec: &R,
        tracer: T,
    ) -> Vec<f64> {
        let t0 = rec.span_start();
        let base = if T::ENABLED {
            tracer.alloc_traces(metric_u64(seed_sets.len()) + 1)
        } else {
            0
        };
        let batch_span = tracer.begin(TraceId(base), SpanId::NONE, TraceEvent::QueryBatch);
        let out = crate::par::map_ranges_with_recorded(
            seed_sets.len(),
            1,
            threads,
            || (Vec::new(), tracer.worker()),
            |(dedup, tr): &mut (Vec<NodeId>, T), range| {
                let mut part = Vec::with_capacity(range.len());
                tr.mark(TraceEvent::QueryElement);
                for q in range {
                    let tq = rec.span_start();
                    dedup.clear();
                    crate::oracle::push_deduped(&seed_sets[q], dedup);
                    part.push(self.influence(dedup));
                    tr.lap(
                        TraceId(base + 1 + metric_u64(q)),
                        batch_span,
                        TraceEvent::QueryElement,
                        metric_u64(dedup.len()),
                    );
                    if R::ENABLED {
                        crate::oracle::record_batch_query(dedup.len(), tq, rec);
                    }
                }
                part
            },
            rec,
        );
        tracer.end(
            batch_span,
            TraceEvent::QueryBatch,
            metric_u64(seed_sets.len()),
        );
        crate::oracle::finish_batch_recorded(&out, t0, rec);
        out
    }
}

impl InfluenceOracle for LayeredApproxOracle {
    type Union = HyperLogLog;

    fn num_nodes(&self) -> usize {
        self.individuals.len()
    }

    /// Fused k-way union over the *layered* rows: per-seed blocks are the
    /// register-wise maximum of the base and overlay slices, merged block
    /// by block in a small stack buffer and streamed into the shared
    /// estimator kernel — the same loop as the frozen arena, fed the same
    /// merged bytes in the same order, hence bit-identical answers.
    // xtask-contract: alloc-free, kernel
    fn influence(&self, seeds: &[NodeId]) -> f64 {
        const BLOCK: usize = 64;
        let beta = 1usize << self.precision();
        let step = BLOCK.min(beta);
        let mut est = RunningEstimator::new();
        let mut block = [0u8; BLOCK];
        let mut base = 0usize;
        while base < beta {
            let blk = &mut block[..step];
            if let Some((&first, rest)) = seeds.split_first() {
                blk.copy_from_slice(&self.overlay.node_registers(first)[base..base + step]);
                if let Some(row) = self.base_registers(first) {
                    max_into(blk, &row[base..base + step]);
                }
                for &s in rest {
                    max_into(blk, &self.overlay.node_registers(s)[base..base + step]);
                    if let Some(row) = self.base_registers(s) {
                        max_into(blk, &row[base..base + step]);
                    }
                }
            } else {
                blk.fill(0);
            }
            est.absorb_registers(blk);
            base += step;
        }
        est.finish()
    }

    fn empty_union(&self) -> Self::Union {
        HyperLogLog::new(self.precision())
    }

    fn union_size(&self, union: &Self::Union) -> f64 {
        union.estimate()
    }

    // xtask-contract: alloc-free, kernel
    fn absorb(&self, union: &mut Self::Union, node: NodeId) {
        // Register max is associative and commutative, so folding the two
        // layers in sequence equals folding their merged row.
        union.merge_registers(self.overlay.node_registers(node));
        if let Some(row) = self.base_registers(node) {
            union.merge_registers(row);
        }
    }

    /// Streams `max(union, base row, overlay row)` block by block through
    /// the estimator kernel — the same register sequence (and therefore
    /// the same float summation order) as the frozen arena probing the
    /// merged row, with no allocation.
    // xtask-contract: alloc-free, kernel
    fn marginal_gain(&self, union: &Self::Union, node: NodeId) -> f64 {
        const BLOCK: usize = 64;
        let beta = 1usize << self.precision();
        let step = BLOCK.min(beta);
        let regs = union.registers();
        let over = self.overlay.node_registers(node);
        let base_row = self.base_registers(node);
        let mut est = RunningEstimator::new();
        let mut block = [0u8; BLOCK];
        let mut base = 0usize;
        while base < beta {
            let blk = &mut block[..step];
            blk.copy_from_slice(&regs[base..base + step]);
            max_into(blk, &over[base..base + step]);
            if let Some(row) = base_row {
                max_into(blk, &row[base..base + step]);
            }
            est.absorb_registers(blk);
            base += step;
        }
        est.finish() - union.estimate()
    }

    // xtask-contract: alloc-free, kernel
    fn individual(&self, node: NodeId) -> f64 {
        self.individuals[node.index()]
    }

    fn reset_union(&self, union: &mut Self::Union) {
        if union.precision() == self.precision() {
            union.clear();
        } else {
            *union = self.empty_union();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ReversePassEngine;

    const PRECISION: u8 = 6;

    /// Deterministic dense network: distinct ascending timestamps, every
    /// node id in [0, 13) appears early.
    fn triples(n: usize) -> Vec<(u32, u32, i64)> {
        (0..n as u32)
            .map(|i| (i % 13, (i * 5 + 1) % 13, i as i64))
            .filter(|&(s, d, _)| s != d)
            .collect()
    }

    /// Triples with heavy timestamp ties (pairs share a time), including
    /// across any prefix/suffix split.
    fn tied_triples(n: usize) -> Vec<(u32, u32, i64)> {
        (0..n as u32)
            .map(|i| (i % 13, (i * 5 + 1) % 13, (i / 2) as i64))
            .filter(|&(s, d, _)| s != d)
            .collect()
    }

    fn interactions(triples: &[(u32, u32, i64)]) -> Vec<Interaction> {
        triples
            .iter()
            .map(|&(s, d, t)| Interaction::from_raw(s, d, t))
            .collect()
    }

    fn layered_exact_at_split(
        all: &[(u32, u32, i64)],
        split: usize,
        w: Window,
    ) -> LayeredExactOracle {
        let base_net = InteractionNetwork::from_triples(all[..split].iter().copied());
        let mut layered = LayeredExactOracle::from_network(&base_net, w);
        for i in interactions(&all[split..]) {
            layered.append(i).unwrap();
        }
        layered.refresh();
        layered
    }

    fn scratch_exact(all: &[(u32, u32, i64)], w: Window) -> FrozenExactOracle {
        let net = InteractionNetwork::from_triples(all.iter().copied());
        ReversePassEngine::run(&net, w, ExactStore::with_nodes(net.num_nodes())).freeze(w)
    }

    fn assert_exact_parity(layered: &LayeredExactOracle, scratch: &FrozenExactOracle) {
        let n = InfluenceOracle::num_nodes(scratch);
        assert_eq!(InfluenceOracle::num_nodes(layered), n);
        for u in 0..n {
            let u = NodeId::from_index(u);
            assert_eq!(
                layered.summary(u),
                scratch.summary(u).to_vec(),
                "node {u:?}"
            );
            assert_eq!(layered.individual(u), scratch.individual(u));
        }
        let seeds: Vec<NodeId> = (0..n.min(4)).map(NodeId::from_index).collect();
        assert_eq!(layered.influence(&seeds), scratch.influence(&seeds));
        // Marginal gains against a partially-filled union.
        let mut lu = layered.empty_union();
        let mut su = scratch.empty_union();
        if n > 0 {
            layered.absorb(&mut lu, NodeId(0));
            scratch.absorb(&mut su, NodeId(0));
            for u in 0..n {
                let u = NodeId::from_index(u);
                assert_eq!(layered.marginal_gain(&lu, u), scratch.marginal_gain(&su, u));
            }
        }
    }

    #[test]
    fn append_behind_frontier_is_rejected() {
        let all = triples(40);
        let base_net = InteractionNetwork::from_triples(all.iter().copied());
        let mut layered = LayeredExactOracle::from_network(&base_net, Window(10));
        let frontier = layered.frontier().unwrap();
        let err = layered
            .append(Interaction::from_raw(0, 1, frontier.get() - 1))
            .unwrap_err();
        assert_eq!(err.frontier, frontier);
        assert_eq!(err.got, Timestamp(frontier.get() - 1));
        // Ties with the frontier are accepted.
        layered
            .append(Interaction::from_raw(0, 1, frontier.get()))
            .unwrap();
        assert!(layered.is_stale());
    }

    #[test]
    fn exact_layered_matches_scratch_across_splits() {
        let all = triples(60);
        let scratch = scratch_exact(&all, Window(15));
        for split in [1, 17, 30, all.len() - 1] {
            let layered = layered_exact_at_split(&all, split, Window(15));
            assert_exact_parity(&layered, &scratch);
        }
    }

    #[test]
    fn exact_layered_matches_scratch_with_tie_spanning_split() {
        let all = tied_triples(60);
        let scratch = scratch_exact(&all, Window(8));
        // Split 31 lands mid tie-batch (times i/2 pair up entries).
        for split in [21, 31] {
            let layered = layered_exact_at_split(&all, split, Window(8));
            assert_exact_parity(&layered, &scratch);
        }
    }

    #[test]
    fn tail_only_overlay_is_identity() {
        let all = triples(50);
        let net = InteractionNetwork::from_triples(all.iter().copied());
        let layered = LayeredExactOracle::from_network(&net, Window(12));
        let scratch = scratch_exact(&all, Window(12));
        assert!(!layered.is_stale());
        assert_exact_parity(&layered, &scratch);
    }

    #[test]
    fn stale_queries_answer_as_of_last_refresh() {
        let all = triples(50);
        let split = 30;
        let base_net = InteractionNetwork::from_triples(all[..split].iter().copied());
        let mut layered = LayeredExactOracle::from_network(&base_net, Window(12));
        let before = layered.influence(&[NodeId(0)]);
        for i in interactions(&all[split..]) {
            layered.append(i).unwrap();
        }
        assert!(layered.is_stale());
        assert_eq!(layered.influence(&[NodeId(0)]), before);
        layered.refresh();
        assert!(!layered.is_stale());
        assert_exact_parity(&layered, &scratch_exact(&all, Window(12)));
    }

    #[test]
    fn approx_layered_matches_scratch_bit_identically() {
        let all = tied_triples(60);
        let w = Window(9);
        let net = InteractionNetwork::from_triples(all.iter().copied());
        let scratch =
            ReversePassEngine::run(&net, w, VhllStore::with_nodes(PRECISION, net.num_nodes()))
                .freeze();
        for split in [1, 25, 44] {
            let base_net = InteractionNetwork::from_triples(all[..split].iter().copied());
            let mut layered =
                LayeredApproxOracle::from_network_with_precision(&base_net, w, PRECISION);
            for i in interactions(&all[split..]) {
                layered.append(i).unwrap();
            }
            layered.refresh();
            let n = InfluenceOracle::num_nodes(&scratch);
            assert_eq!(InfluenceOracle::num_nodes(&layered), n);
            for u in 0..n {
                let u = NodeId::from_index(u);
                assert_eq!(layered.individual(u), scratch.individual(u), "node {u:?}");
            }
            let seeds: Vec<NodeId> = (0..4).map(NodeId::from_index).collect();
            assert_eq!(layered.influence(&seeds), scratch.influence(&seeds));
            assert_eq!(layered.influence(&[]), scratch.influence(&[]));
            let mut lu = layered.empty_union();
            let mut su = scratch.empty_union();
            layered.absorb(&mut lu, NodeId(2));
            scratch.absorb(&mut su, NodeId(2));
            assert_eq!(lu.registers(), su.registers());
            for u in 0..n {
                let u = NodeId::from_index(u);
                assert_eq!(layered.marginal_gain(&lu, u), scratch.marginal_gain(&su, u));
            }
        }
    }

    #[test]
    fn compaction_is_bit_identical_to_scratch_over_survivors() {
        let all = triples(60);
        let w = Window(15);
        let mut layered = layered_exact_at_split(&all, 35, w);
        let universe = layered.delta().universe();
        // Reference: from-scratch one-pass build over the window-surviving
        // suffix with the same universe.
        let ints = interactions(&all);
        let frontier = ints.last().unwrap().time;
        let surviving = window_tail(&ints, frontier, w);
        let mut store = ExactStore::with_nodes(universe);
        store.ensure_nodes(universe);
        let reference = ReversePassEngine::run_slice(&surviving, w, store).freeze(w);

        layered.compact();
        assert_eq!(layered.generation(), 1);
        assert_eq!(layered.delta().pending().len(), 0);
        assert_eq!(layered.delta().tail().len(), surviving.len());
        assert_eq!(layered.base().offsets(), reference.offsets());
        assert_eq!(layered.base().entries(), reference.entries());
        // Tail-only overlay merges to identity: queries equal the new base.
        assert_exact_parity(&layered, &reference);

        // Appends keep working across the generation boundary.
        let t = layered.frontier().unwrap().get();
        layered.append(Interaction::from_raw(1, 2, t + 1)).unwrap();
        layered.refresh();
        assert!(layered.individual(NodeId(1)) >= 1.0);
    }

    #[test]
    fn compaction_expires_interactions_outside_window() {
        let all = triples(30);
        let w = Window(10);
        let mut layered = layered_exact_at_split(&all, 20, w);
        // One append far beyond the window expires the whole old log.
        layered.append(Interaction::from_raw(3, 7, 1_000)).unwrap();
        layered.compact();
        assert_eq!(layered.delta().tail().len(), 1);
        // Only the 3 → 7 channel survives.
        assert_eq!(layered.individual(NodeId(3)), 1.0);
        assert_eq!(
            layered.summary(NodeId(3)),
            vec![(NodeId(7), Timestamp(1_000))]
        );
        for u in 0..InfluenceOracle::num_nodes(&layered) {
            if u != 3 {
                assert_eq!(layered.individual(NodeId::from_index(u)), 0.0, "node {u}");
            }
        }
        // The universe never shrinks at compaction.
        assert_eq!(InfluenceOracle::num_nodes(&layered), 13);
    }

    #[test]
    fn approx_compaction_matches_scratch_over_survivors() {
        let all = tied_triples(50);
        let w = Window(7);
        let base_net = InteractionNetwork::from_triples(all[..30].iter().copied());
        let mut layered = LayeredApproxOracle::from_network_with_precision(&base_net, w, PRECISION);
        for i in interactions(&all[30..]) {
            layered.append(i).unwrap();
        }
        layered.refresh();
        let universe = layered.delta().universe();
        let ints = interactions(&all);
        let frontier = ints.last().unwrap().time;
        let surviving = window_tail(&ints, frontier, w);
        let mut store = VhllStore::with_nodes(PRECISION, 0);
        store.ensure_nodes(universe);
        let reference = ReversePassEngine::run_slice(&surviving, w, store).freeze();

        layered.compact();
        assert_eq!(layered.base().registers(), reference.registers());
        let seeds: Vec<NodeId> = (0..5).map(NodeId::from_index).collect();
        assert_eq!(layered.influence(&seeds), reference.influence(&seeds));
        for u in 0..InfluenceOracle::num_nodes(&reference) {
            let u = NodeId::from_index(u);
            assert_eq!(layered.individual(u), reference.individual(u));
        }
    }

    #[test]
    fn universe_grows_with_appended_node_ids() {
        let all = triples(30);
        let base_net = InteractionNetwork::from_triples(all[..20].iter().copied());
        let mut layered = LayeredExactOracle::from_network(&base_net, Window(10));
        let t = layered.frontier().unwrap().get();
        // Self-loop on a brand-new id pads the universe without edges.
        layered
            .append(Interaction::from_raw(40, 40, t + 1))
            .unwrap();
        layered.refresh();
        assert_eq!(InfluenceOracle::num_nodes(&layered), 41);
        assert_eq!(layered.individual(NodeId(40)), 0.0);
        assert_eq!(layered.summary(NodeId(40)), Vec::new());
    }

    #[test]
    fn layered_batch_matches_per_query_bitwise() {
        let all = tied_triples(60);
        let w = Window(9);
        let base_net = InteractionNetwork::from_triples(all[..35].iter().copied());
        let mut exact = LayeredExactOracle::from_network(&base_net, w);
        let mut approx = LayeredApproxOracle::from_network_with_precision(&base_net, w, PRECISION);
        for i in interactions(&all[35..]) {
            exact.append(i).unwrap();
            approx.append(i).unwrap();
        }
        exact.refresh();
        approx.refresh();
        let sets: Vec<Vec<NodeId>> = vec![
            vec![NodeId(0), NodeId(4)],
            vec![],
            vec![NodeId(2), NodeId(2)],
            (0..7).map(NodeId).collect(),
            vec![NodeId(5), NodeId(1), NodeId(5)],
        ];
        let exact_ref: Vec<f64> = sets.iter().map(|s| exact.influence(s)).collect();
        let approx_ref: Vec<f64> = sets.iter().map(|s| approx.influence(s)).collect();
        for threads in [1, 2, 8] {
            let eb = exact.influence_many_frozen(&sets, threads);
            let ab = approx.influence_many_frozen(&sets, threads);
            for ((got, want), (ga, wa)) in eb.iter().zip(&exact_ref).zip(ab.iter().zip(&approx_ref))
            {
                assert_eq!(got.to_bits(), want.to_bits(), "exact t={threads}");
                assert_eq!(ga.to_bits(), wa.to_bits(), "approx t={threads}");
            }
        }
    }

    #[test]
    fn delta_overlay_metrics_flow() {
        use crate::obs::MetricsRecorder;
        let all = triples(40);
        let base_net = InteractionNetwork::from_triples(all[..25].iter().copied());
        let rec = MetricsRecorder::new();
        let mut layered = LayeredExactOracle::from_network(&base_net, Window(10));
        layered
            .append_batch_recorded(&interactions(&all[25..]), &rec)
            .unwrap();
        layered.refresh_recorded(&rec);
        layered.compact_recorded(&rec);
        let snapshot = rec.snapshot().to_json();
        for key in [
            "delta.appends",
            "delta.refreshes",
            "delta.append_batch",
            "delta.pending_interactions",
            "delta.tail_interactions",
            "delta.refresh",
            "compaction.runs",
            "compaction.generation",
            "compaction.input_interactions",
            "compaction.run",
        ] {
            assert!(snapshot.contains(key), "missing {key}: {snapshot}");
        }
    }
}
