//! Influence oracles (paper §4.1, Definition 3).
//!
//! Given precomputed per-node reachability information, an oracle answers
//! `Inf(S) = |⋃_{u∈S} σω(u)|` for arbitrary seed sets `S`, and — the hot
//! path of greedy maximization — *marginal gains* against a running union.
//!
//! Two implementations:
//!
//! * [`ExactOracle`] over [`ExactIrs`] summaries (hash-set unions), and
//! * [`ApproxOracle`] over collapsed HLL sketches (`O(β)` register unions;
//!   query time independent of set sizes, which is why Figure 4's query
//!   latency is flat across datasets).

use crate::approx::ApproxIrs;
use crate::exact::ExactIrs;
use crate::obs::{metric_f64, metric_u64, Counter, HeapBytes, Hist, Recorder, Span, SpanStart};
use infprop_hll::HyperLogLog;
use infprop_temporal_graph::NodeId;

/// Appends `seeds` to `buf` sorted ascending with duplicates removed,
/// returning the `(start, end)` span of the appended run.
///
/// Every frozen union kernel is commutative and idempotent (bytewise `max`
/// on registers, insertion on bitsets), so querying with the deduplicated
/// run is answer-identical to the raw seed list — bit-identical, since the
/// merged register/bit contents are equal before any float is computed —
/// while each summary row is merged exactly once. This is the per-query
/// redundancy the batch API amortizes away.
#[inline]
pub(crate) fn push_deduped(seeds: &[NodeId], buf: &mut Vec<NodeId>) -> (usize, usize) {
    let start = buf.len();
    buf.extend_from_slice(seeds);
    buf[start..].sort_unstable();
    let mut w = start;
    for r in start..buf.len() {
        let v = buf[r];
        if w == start || buf[w - 1] != v {
            buf[w] = v;
            w += 1;
        }
    }
    buf.truncate(w);
    (start, w)
}

/// Per-query instrumentation shared by the frozen batch kernels: counts the
/// deduplicated rows merged and lands the query latency in the
/// `kernel.query_ns` histogram. Callers gate on `R::ENABLED`.
pub(crate) fn record_batch_query<R: Recorder>(rows: usize, tq: SpanStart, rec: &R) {
    rec.add(Counter::KernelMergeRows, metric_u64(rows));
    if let Some(ns) = tq.elapsed_ns() {
        rec.record(Hist::KernelQueryNs, ns);
    }
}

/// Batch-level instrumentation shared by every `influence_many_frozen`
/// entry point: query/batch counters, the batch-size histogram, every
/// answered union size, and the `oracle.query_batch` span.
pub(crate) fn finish_batch_recorded<R: Recorder>(out: &[f64], t0: SpanStart, rec: &R) {
    if R::ENABLED {
        rec.add(Counter::OracleQueries, metric_u64(out.len()));
        rec.add(Counter::KernelBatchQueries, metric_u64(out.len()));
        rec.record(Hist::KernelBatchSize, metric_u64(out.len()));
        for &v in out {
            rec.record(Hist::OracleUnionSize, metric_f64(v));
        }
    }
    rec.span_end(Span::OracleQueryBatch, t0);
}

/// A queryable influence oracle with an incremental union accumulator.
///
/// The accumulator type [`Union`](InfluenceOracle::Union) lets greedy
/// selection grow a covered set one seed at a time and probe marginal gains
/// without re-unioning from scratch.
pub trait InfluenceOracle {
    /// Running union of reachability sets (hash set or HLL sketch).
    type Union: Clone;

    /// Number of nodes in the underlying network.
    fn num_nodes(&self) -> usize;

    /// An empty accumulator.
    fn empty_union(&self) -> Self::Union;

    /// Estimated/exact cardinality of the accumulator.
    fn union_size(&self, union: &Self::Union) -> f64;

    /// Folds `σω(node)` into the accumulator.
    fn absorb(&self, union: &mut Self::Union, node: NodeId);

    /// `|union ∪ σω(node)| − |union|`, without mutating the accumulator.
    fn marginal_gain(&self, union: &Self::Union, node: NodeId) -> f64;

    /// `|σω(node)|` — the individual influence of one node.
    fn individual(&self, node: NodeId) -> f64;

    /// Resets an accumulator to empty, reusing its storage where the
    /// representation allows (bitset words, sketch registers). Semantically
    /// identical to `*union = self.empty_union()` — the default — but the
    /// override lets batch paths recycle one buffer across many queries.
    fn reset_union(&self, union: &mut Self::Union) {
        *union = self.empty_union();
    }

    /// `Inf(S) = |⋃_{u∈S} σω(u)|` for an arbitrary seed set.
    fn influence(&self, seeds: &[NodeId]) -> f64 {
        let mut u = self.empty_union();
        for &s in seeds {
            self.absorb(&mut u, s);
        }
        self.union_size(&u)
    }

    /// [`influence`](Self::influence) into a caller-provided accumulator:
    /// resets `union`, absorbs every seed, and returns the union size. The
    /// answer never depends on the accumulator's prior contents — the
    /// determinism requirement of the per-worker scratch fan-out
    /// ([`crate::par::map_indexed_with`]) that
    /// [`influence_many`](Self::influence_many) rides on.
    fn influence_into(&self, seeds: &[NodeId], union: &mut Self::Union) -> f64 {
        self.reset_union(union);
        for &s in seeds {
            self.absorb(union, s);
        }
        self.union_size(union)
    }

    /// [`individual`](Self::individual) for every node in the universe,
    /// fanned out over up to `threads` scoped workers (see [`crate::par`]).
    /// Byte-identical to the serial sweep at any thread count.
    fn individuals(&self, threads: usize) -> Vec<f64>
    where
        Self: Sync,
    {
        crate::par::map_indexed(self.num_nodes(), threads, |i| {
            self.individual(NodeId::from_index(i))
        })
    }

    /// [`influence`](Self::influence) for a batch of seed sets, fanned out
    /// over up to `threads` scoped workers. Each *worker* allocates one
    /// accumulator and reuses it across its queries via
    /// [`influence_into`](Self::influence_into) — `O(workers)` allocations
    /// per batch instead of `O(queries)`. Answers are byte-identical to
    /// querying serially, in input order, at any thread count.
    fn influence_many(&self, seed_sets: &[Vec<NodeId>], threads: usize) -> Vec<f64>
    where
        Self: Sync,
    {
        crate::par::map_indexed_with(
            seed_sets.len(),
            threads,
            || self.empty_union(),
            |union, i| self.influence_into(&seed_sets[i], union),
        )
    }

    /// [`influence`](Self::influence) with instrumentation: bumps
    /// `oracle.queries` and records the answered union size into the
    /// `oracle.union_size` histogram of `rec`. The answer is identical to
    /// the unrecorded path.
    fn influence_recorded<R: Recorder>(&self, seeds: &[NodeId], rec: &R) -> f64 {
        let v = self.influence(seeds);
        if R::ENABLED {
            rec.add(Counter::OracleQueries, 1);
            rec.record(Hist::OracleUnionSize, metric_f64(v));
        }
        v
    }

    /// [`individuals`](Self::individuals) wrapped in the `oracle.sweep`
    /// span, with per-thread chunk timings flowing through the recorded
    /// [`crate::par`] fan-out. Output is byte-identical to the unrecorded
    /// sweep at any thread count.
    fn individuals_recorded<R: Recorder>(&self, threads: usize, rec: &R) -> Vec<f64>
    where
        Self: Sync,
    {
        let t0 = rec.span_start();
        let out = crate::par::map_indexed_recorded(
            self.num_nodes(),
            threads,
            |i| self.individual(NodeId::from_index(i)),
            rec,
        );
        if R::ENABLED {
            rec.add(Counter::OracleQueries, metric_u64(out.len()));
        }
        rec.span_end(Span::OracleSweep, t0);
        out
    }

    /// [`influence_many`](Self::influence_many) wrapped in the
    /// `oracle.query_batch` span, counting one `oracle.queries` per seed set
    /// and recording every answered union size. Answers are byte-identical
    /// to the unrecorded path at any thread count.
    fn influence_many_recorded<R: Recorder>(
        &self,
        seed_sets: &[Vec<NodeId>],
        threads: usize,
        rec: &R,
    ) -> Vec<f64>
    where
        Self: Sync,
    {
        let t0 = rec.span_start();
        let out = crate::par::map_indexed_with_recorded(
            seed_sets.len(),
            threads,
            || self.empty_union(),
            |union, i| self.influence_into(&seed_sets[i], union),
            rec,
        );
        if R::ENABLED {
            rec.add(Counter::OracleQueries, metric_u64(out.len()));
            for &v in &out {
                rec.record(Hist::OracleUnionSize, metric_f64(v));
            }
        }
        rec.span_end(Span::OracleQueryBatch, t0);
        out
    }
}

/// Dense bitset accumulator for [`ExactOracle`] unions: one bit per node
/// plus a running popcount, so `absorb` and `marginal_gain` stream through
/// machine words instead of hash buckets.
#[derive(Clone, Debug, Default)]
pub struct NodeBitset {
    words: Vec<u64>,
    count: usize,
}

impl NodeBitset {
    /// An all-clear bitset covering `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        NodeBitset {
            words: vec![0; n.div_ceil(64)],
            count: 0,
        }
    }

    /// Clears every bit in place, keeping the allocated words — the cheap
    /// reset the per-worker scratch path relies on.
    #[inline]
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }

    /// Marks node index `i` covered (crate-visible for the frozen arena).
    #[inline]
    pub(crate) fn insert(&mut self, i: usize) {
        let (w, mask) = (i / 64, 1u64 << (i % 64));
        if w >= self.words.len() {
            // Unions are preallocated by `with_nodes` for the node
            // universe, so this growth path is unreachable for valid ids.
            // xtask-allow: contract-alloc-free, contract-kernel (unreachable growth)
            self.words.resize(w + 1, 0);
        }
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.count += 1;
        }
    }

    /// Whether node index `i` is covered (crate-visible for the frozen
    /// arena).
    #[inline]
    pub(crate) fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Number of covered nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no node is covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Exact oracle: unions of the exact IRS key sets.
pub struct ExactOracle<'a> {
    irs: &'a ExactIrs,
}

impl<'a> ExactOracle<'a> {
    /// Wraps exact summaries.
    pub fn new(irs: &'a ExactIrs) -> Self {
        ExactOracle { irs }
    }
}

impl HeapBytes for ExactOracle<'_> {
    /// The bytes backing query answers — the borrowed summaries themselves
    /// (the exact oracle owns no copy; this mirrors
    /// [`ExactIrs::heap_bytes`]).
    fn heap_bytes(&self) -> usize {
        self.irs.heap_bytes()
    }
}

impl InfluenceOracle for ExactOracle<'_> {
    type Union = NodeBitset;

    fn num_nodes(&self) -> usize {
        self.irs.num_nodes()
    }

    fn empty_union(&self) -> Self::Union {
        NodeBitset::with_nodes(self.irs.num_nodes())
    }

    fn union_size(&self, union: &Self::Union) -> f64 {
        union.len() as f64
    }

    fn absorb(&self, union: &mut Self::Union, node: NodeId) {
        for &(v, _) in self.irs.summary(node) {
            union.insert(v.index());
        }
    }

    fn marginal_gain(&self, union: &Self::Union, node: NodeId) -> f64 {
        self.irs
            .summary(node)
            .iter()
            .filter(|&&(v, _)| !union.contains(v.index()))
            .count() as f64
    }

    fn individual(&self, node: NodeId) -> f64 {
        self.irs.irs_size(node) as f64
    }

    fn reset_union(&self, union: &mut Self::Union) {
        union.clear();
    }
}

/// Approximate oracle: `O(β)` unions of collapsed HLL sketches.
///
/// Collapsing the versioned sketches (dropping the version lists, keeping
/// per-cell maxima) happens once at construction; queries then cost
/// `O(|S| · β)` regardless of how many nodes the seeds reach.
pub struct ApproxOracle {
    sketches: Vec<HyperLogLog>,
    precision: u8,
}

impl ApproxOracle {
    /// Collapses an [`ApproxIrs`] into plain per-node HLLs.
    pub fn new(irs: &ApproxIrs) -> Self {
        ApproxOracle {
            sketches: irs.collapse(),
            precision: irs.precision(),
        }
    }

    /// Builds directly from collapsed sketches (all same precision).
    pub fn from_sketches(sketches: Vec<HyperLogLog>) -> Self {
        let precision = sketches
            .first()
            .map_or(crate::DEFAULT_PRECISION, HyperLogLog::precision);
        assert!(
            sketches.iter().all(|s| s.precision() == precision),
            "all sketches must share a precision"
        );
        ApproxOracle {
            sketches,
            precision,
        }
    }

    /// The per-node sketch (e.g. for serialization or inspection).
    pub fn sketch(&self, node: NodeId) -> &HyperLogLog {
        &self.sketches[node.index()]
    }

    /// Sketch precision (inherent access for codecs; the trait method
    /// [`InfluenceOracle::num_nodes`] provides the node count to callers
    /// generic over oracles).
    pub(crate) fn precision_value(&self) -> u8 {
        self.precision
    }

    /// Node count (inherent, codec-facing counterpart of the trait method).
    pub(crate) fn num_nodes_value(&self) -> usize {
        self.sketches.len()
    }

    /// Freezes the collapsed sketches into a flat register arena with
    /// precomputed per-node estimates
    /// ([`FrozenApproxOracle`](crate::FrozenApproxOracle)); answers are
    /// bit-identical to this oracle's.
    pub fn freeze(&self) -> crate::FrozenApproxOracle {
        crate::FrozenApproxOracle::from_collapsed(self.precision, &self.sketches)
    }
}

impl HeapBytes for ApproxOracle {
    /// Bytes owned by the collapsed per-node sketches (Table 4 accounting).
    fn heap_bytes(&self) -> usize {
        self.sketches.capacity() * std::mem::size_of::<HyperLogLog>()
            + self
                .sketches
                .iter()
                .map(HyperLogLog::heap_bytes)
                .sum::<usize>()
    }
}

impl InfluenceOracle for ApproxOracle {
    type Union = HyperLogLog;

    fn num_nodes(&self) -> usize {
        self.sketches.len()
    }

    fn empty_union(&self) -> Self::Union {
        HyperLogLog::new(self.precision)
    }

    fn union_size(&self, union: &Self::Union) -> f64 {
        union.estimate()
    }

    fn absorb(&self, union: &mut Self::Union, node: NodeId) {
        union.merge(&self.sketches[node.index()]);
    }

    fn marginal_gain(&self, union: &Self::Union, node: NodeId) -> f64 {
        union.estimate_union(&self.sketches[node.index()]) - union.estimate()
    }

    fn individual(&self, node: NodeId) -> f64 {
        self.sketches[node.index()].estimate()
    }

    fn reset_union(&self, union: &mut Self::Union) {
        if union.precision() == self.precision {
            union.clear();
        } else {
            *union = self.empty_union();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infprop_temporal_graph::{InteractionNetwork, Window};

    fn figure1a() -> InteractionNetwork {
        InteractionNetwork::from_triples([
            (0, 3, 1),
            (4, 5, 2),
            (3, 4, 3),
            (4, 1, 4),
            (0, 1, 5),
            (1, 4, 6),
            (4, 2, 7),
            (1, 2, 8),
        ])
    }

    #[test]
    fn exact_oracle_matches_set_unions() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let oracle = irs.oracle();
        // From Example 2: σ3(a) = {b,c,d,e}, σ3(e) = {b,c,f}.
        assert_eq!(oracle.individual(NodeId(0)), 4.0);
        assert_eq!(oracle.individual(NodeId(4)), 3.0);
        // Union: {b,c,d,e} ∪ {b,c,f} = {b,c,d,e,f} = 5.
        assert_eq!(oracle.influence(&[NodeId(0), NodeId(4)]), 5.0);
        // Duplicate seeds change nothing.
        assert_eq!(oracle.influence(&[NodeId(0), NodeId(0), NodeId(4)]), 5.0);
    }

    #[test]
    fn exact_marginal_gain_consistent_with_absorb() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let oracle = irs.oracle();
        let mut union = oracle.empty_union();
        oracle.absorb(&mut union, NodeId(0));
        let before = oracle.union_size(&union);
        let gain = oracle.marginal_gain(&union, NodeId(4));
        oracle.absorb(&mut union, NodeId(4));
        assert_eq!(oracle.union_size(&union), before + gain);
    }

    #[test]
    fn approx_oracle_matches_exact_on_tiny_graph() {
        let net = figure1a();
        let exact = ExactIrs::compute(&net, Window(3));
        let approx = crate::ApproxIrs::compute_with_precision(&net, Window(3), 12);
        let eo = exact.oracle();
        let ao = approx.oracle();
        for u in net.node_ids() {
            // ≤ 1 slack: the sketch may count a node's own short cycle.
            assert!((eo.individual(u) - ao.individual(u)).abs() < 1.5);
        }
        let seeds = [NodeId(0), NodeId(4)];
        assert!((eo.influence(&seeds) - ao.influence(&seeds)).abs() < 1.5);
    }

    #[test]
    fn approx_marginal_gain_consistent_with_absorb() {
        let net = figure1a();
        let approx = crate::ApproxIrs::compute(&net, Window(3));
        let oracle = approx.oracle();
        let mut union = oracle.empty_union();
        oracle.absorb(&mut union, NodeId(0));
        let before = oracle.union_size(&union);
        let gain = oracle.marginal_gain(&union, NodeId(4));
        oracle.absorb(&mut union, NodeId(4));
        let after = oracle.union_size(&union);
        assert!((after - (before + gain)).abs() < 1e-9);
    }

    #[test]
    fn empty_seed_set_has_zero_influence() {
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        assert_eq!(irs.oracle().influence(&[]), 0.0);
        let approx = crate::ApproxIrs::compute(&net, Window(3));
        assert_eq!(approx.oracle().influence(&[]), 0.0);
    }

    #[test]
    fn submodularity_spot_check_exact() {
        // Lemma 8: gain w.r.t. S ⊇ gain w.r.t. T when S ⊆ T.
        let net = figure1a();
        let irs = ExactIrs::compute(&net, Window(3));
        let oracle = irs.oracle();
        for x in net.node_ids() {
            let mut small = oracle.empty_union();
            oracle.absorb(&mut small, NodeId(0));
            let mut large = small.clone();
            oracle.absorb(&mut large, NodeId(3));
            assert!(
                oracle.marginal_gain(&small, x) + 1e-9 >= oracle.marginal_gain(&large, x),
                "submodularity violated at {x:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "share a precision")]
    fn mixed_precision_sketches_panic() {
        let _ = ApproxOracle::from_sketches(vec![HyperLogLog::new(8), HyperLogLog::new(9)]);
    }

    #[test]
    fn batch_queries_match_serial_at_any_thread_count() {
        let net = figure1a();
        let exact = ExactIrs::compute(&net, Window(3));
        let approx = crate::ApproxIrs::compute(&net, Window(3));
        let eo = exact.oracle();
        let ao = approx.oracle();
        let seed_sets: Vec<Vec<NodeId>> = vec![
            vec![NodeId(0)],
            vec![NodeId(0), NodeId(4)],
            vec![],
            vec![NodeId(3), NodeId(1), NodeId(5)],
        ];
        let serial_inf: Vec<f64> = seed_sets.iter().map(|s| eo.influence(s)).collect();
        let serial_ind: Vec<f64> = (0..eo.num_nodes())
            .map(|i| eo.individual(NodeId::from_index(i)))
            .collect();
        let a_serial_inf: Vec<f64> = seed_sets.iter().map(|s| ao.influence(s)).collect();
        for threads in [1, 2, 8] {
            assert_eq!(eo.influence_many(&seed_sets, threads), serial_inf);
            assert_eq!(eo.individuals(threads), serial_ind);
            assert_eq!(ao.influence_many(&seed_sets, threads), a_serial_inf);
        }
    }

    #[test]
    fn influence_into_is_history_free() {
        let net = figure1a();
        let exact = ExactIrs::compute(&net, Window(3));
        let approx = crate::ApproxIrs::compute(&net, Window(3));
        let eo = exact.oracle();
        let ao = approx.oracle();
        let sets: Vec<Vec<NodeId>> = vec![
            vec![NodeId(0), NodeId(4)],
            vec![NodeId(3)],
            vec![],
            vec![NodeId(1), NodeId(5)],
        ];
        // One dirty accumulator reused across queries must answer exactly
        // like a fresh accumulator per query.
        let mut eu = eo.empty_union();
        let mut au = ao.empty_union();
        for s in &sets {
            assert_eq!(
                eo.influence_into(s, &mut eu).to_bits(),
                eo.influence(s).to_bits()
            );
            assert_eq!(
                ao.influence_into(s, &mut au).to_bits(),
                ao.influence(s).to_bits()
            );
        }
    }

    #[test]
    fn node_bitset_counts_distinct_insertions() {
        let mut b = NodeBitset::with_nodes(10);
        assert!(b.is_empty());
        b.insert(3);
        b.insert(3);
        b.insert(200); // growth past the preallocated words
        assert_eq!(b.len(), 2);
        assert!(b.contains(3) && b.contains(200));
        assert!(!b.contains(4) && !b.contains(1000));
        b.clear();
        assert!(b.is_empty() && !b.contains(3) && !b.contains(200));
    }
}
