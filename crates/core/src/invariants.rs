//! Runtime verification of the paper's structural invariants.
//!
//! The type system cannot see the properties the IRS algorithms' correctness
//! rests on, so this module checks them at runtime:
//!
//! * **Summary self-exclusion** — a node never appears in its own exact
//!   summary (`x ≠ u` for every `(x, λ) ∈ φω(u)`; the paper's Example 2
//!   trace drops the admissible cycle `e → b → e`).
//! * **End-time monotonicity** — every recorded end time `λ` is the
//!   timestamp of an already-processed interaction. Under the reverse scan
//!   (Lemma 1) processed timestamps are exactly those at or above the
//!   stream frontier, so `λ ≥ frontier` must hold for every entry, in both
//!   backends.
//! * **Sketch dominance chains** — each versioned-HLL register list is
//!   sorted by strictly increasing time *and* strictly increasing ρ, with ρ
//!   in `[1, 64 − k + 1]` (Alg. 3's `ApproxAdd`/`ApproxMerge` shape; checked
//!   by [`VersionedHll::check_dominance_chain`]).
//!
//! The engine calls these validators at every tie-batch boundary when
//! compiled with `debug_assertions` (each batch's *source* nodes are
//! checked, so the per-batch cost tracks the merge work already done). The
//! public [`validate`] entry point — also reachable as
//! [`SummaryStore::validate`] and via `ExactIrs::validate` /
//! `ApproxIrs::validate` — runs the same checks on demand in any build.

use crate::engine::{ExactSummary, SummaryStore};
use infprop_hll::{SketchInvariantError, VersionedHll};
use infprop_temporal_graph::{NodeId, Timestamp};
use std::fmt;

/// A broken structural invariant, reported by the validators in this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantViolation {
    /// A node's exact summary contains the node itself: `u ∈ φω(u)`.
    SelfEntry {
        /// The node whose summary is corrupt.
        node: NodeId,
    },
    /// An entry's end time precedes the stream frontier — impossible under
    /// the reverse scan, where every processed interaction's timestamp is at
    /// or above the frontier.
    StaleEndTime {
        /// The node whose summary is corrupt.
        node: NodeId,
        /// The offending end time `λ`.
        end_time: Timestamp,
        /// The frontier the end time fell below.
        frontier: Timestamp,
    },
    /// A node's versioned-HLL sketch fails its dominance-chain validation.
    Sketch {
        /// The node whose sketch is corrupt.
        node: NodeId,
        /// The sketch-level error.
        error: SketchInvariantError,
    },
    /// A dense exact summary is not sorted by strictly increasing `NodeId`
    /// — every query on it (binary-search `λ` lookup, two-pointer merge)
    /// assumes that order.
    UnsortedSummary {
        /// The node whose summary is out of order.
        node: NodeId,
    },
    /// A frozen register arena holds a ρ value beyond the legal
    /// `64 − k + 1` bound for its precision — impossible output of
    /// `ApproxAdd`/`ApproxMerge`, and a silent estimate bias if accepted.
    RegisterOutOfRange {
        /// The node whose register slot is corrupt.
        node: NodeId,
        /// The offending register value.
        rho: u8,
        /// The largest legal ρ for the arena's precision.
        max_rho: u8,
    },
    /// A frozen exact summary references a target node outside the arena's
    /// universe — the CSR image frames `num_nodes` nodes, so any entry id
    /// at or beyond that count indexes past every per-node structure built
    /// from the arena.
    TargetOutOfUniverse {
        /// The node whose summary is corrupt.
        node: NodeId,
        /// The out-of-universe target id.
        target: NodeId,
        /// The arena's universe size.
        num_nodes: usize,
    },
    /// A derived section of a frozen arena image (the tile-major transpose
    /// or the stored per-node estimates) disagrees with the node-major
    /// registers it was computed from — the sections answer interchangeable
    /// queries, so a mismatch means silently divergent answers.
    FrozenSectionMismatch {
        /// The first node whose derived data is inconsistent.
        node: NodeId,
        /// The inconsistent section (`"transposed"` or `"individuals"`).
        section: &'static str,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::SelfEntry { node } => {
                write!(f, "summary of {node} contains the node itself")
            }
            InvariantViolation::StaleEndTime {
                node,
                end_time,
                frontier,
            } => write!(
                f,
                "summary of {node} records end time {end_time} below the stream frontier {frontier}"
            ),
            InvariantViolation::Sketch { node, error } => {
                write!(f, "sketch of {node}: {error}")
            }
            InvariantViolation::UnsortedSummary { node } => {
                write!(
                    f,
                    "summary of {node} is not sorted by strictly increasing node id"
                )
            }
            InvariantViolation::RegisterOutOfRange { node, rho, max_rho } => {
                write!(
                    f,
                    "frozen registers of {node} hold ρ = {rho} beyond the legal maximum {max_rho}"
                )
            }
            InvariantViolation::TargetOutOfUniverse {
                node,
                target,
                num_nodes,
            } => write!(
                f,
                "summary of {node} references {target} outside the {num_nodes}-node universe"
            ),
            InvariantViolation::FrozenSectionMismatch { node, section } => write!(
                f,
                "frozen arena's {section} section disagrees with the registers of {node}"
            ),
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Validates one node's exact summary: sorted by strictly increasing
/// `NodeId` (the dense representation's ordering contract), no self-entry,
/// and every end time at or above `frontier` (pass `None` to skip the
/// frontier check when no stream position is known, e.g. for deserialized
/// summaries).
pub fn validate_exact_summary(
    node: NodeId,
    summary: &[(NodeId, Timestamp)],
    frontier: Option<Timestamp>,
) -> Result<(), InvariantViolation> {
    let mut prev: Option<NodeId> = None;
    for &(x, lambda) in summary {
        if prev.is_some_and(|p| p >= x) {
            return Err(InvariantViolation::UnsortedSummary { node });
        }
        prev = Some(x);
        if x == node {
            return Err(InvariantViolation::SelfEntry { node });
        }
        if let Some(fr) = frontier {
            if lambda < fr {
                return Err(InvariantViolation::StaleEndTime {
                    node,
                    end_time: lambda,
                    frontier: fr,
                });
            }
        }
    }
    Ok(())
}

/// Validates one node's sketch: the dominance chain of every register list,
/// plus the frontier bound on every version entry's time.
pub fn validate_sketch(
    node: NodeId,
    sketch: &VersionedHll,
    frontier: Option<Timestamp>,
) -> Result<(), InvariantViolation> {
    sketch
        .check_dominance_chain()
        .map_err(|error| InvariantViolation::Sketch { node, error })?;
    if let Some(fr) = frontier {
        for cell in 0..sketch.num_cells() {
            // Lists are time-sorted, so the first entry is the minimum.
            if let Some(e) = sketch.cell(cell).first() {
                if e.time < fr.get() {
                    return Err(InvariantViolation::StaleEndTime {
                        node,
                        end_time: Timestamp(e.time),
                        frontier: fr,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Validates a whole slice of exact summaries (node `i` = summary `i`).
pub fn validate_exact_summaries(
    summaries: &[ExactSummary],
    frontier: Option<Timestamp>,
) -> Result<(), InvariantViolation> {
    for (i, summary) in summaries.iter().enumerate() {
        validate_exact_summary(NodeId::from_index(i), summary, frontier)?;
    }
    Ok(())
}

/// Validates a whole slice of sketches (node `i` = sketch `i`).
pub fn validate_sketches(
    sketches: &[VersionedHll],
    frontier: Option<Timestamp>,
) -> Result<(), InvariantViolation> {
    for (i, sketch) in sketches.iter().enumerate() {
        validate_sketch(NodeId::from_index(i), sketch, frontier)?;
    }
    Ok(())
}

/// Validates every node summary held by `store` against the structural
/// invariants, with an optional stream-frontier bound.
///
/// This is the public entry point of the paper-invariant verification
/// layer: it accepts any [`SummaryStore`] backend and delegates to the
/// backend's own [`SummaryStore::validate_node`] implementation
/// ([`ExactStore`](crate::ExactStore): self-exclusion + end-time bound;
/// [`VhllStore`](crate::VhllStore): dominance chains + end-time bound).
pub fn validate<S: SummaryStore>(
    store: &S,
    frontier: Option<Timestamp>,
) -> Result<(), InvariantViolation> {
    store.validate(frontier)
}

/// [`validate`] fanned out over up to `threads` scoped workers via
/// [`crate::par`]. Node summaries are independent, so the sweep is
/// embarrassingly parallel; the reported violation is exactly the one the
/// serial sweep would find first (lowest node id), at any thread count.
pub fn validate_all<S>(
    store: &S,
    frontier: Option<Timestamp>,
    threads: usize,
) -> Result<(), InvariantViolation>
where
    S: SummaryStore + Sync,
{
    crate::par::try_for_each_indexed(store.num_nodes(), threads, |i| {
        store.validate_node(NodeId::from_index(i), frontier)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ExactStore, VhllStore};

    fn summary(entries: &[(u32, i64)]) -> ExactSummary {
        entries
            .iter()
            .map(|&(v, t)| (NodeId(v), Timestamp(t)))
            .collect()
    }

    #[test]
    fn clean_exact_store_validates() {
        let store = ExactStore::from_summaries(vec![
            summary(&[(1, 5), (2, 7)]),
            summary(&[]),
            summary(&[(0, 9)]),
        ]);
        assert_eq!(validate(&store, None), Ok(()));
        assert_eq!(validate(&store, Some(Timestamp(5))), Ok(()));
    }

    #[test]
    fn self_entry_is_detected() {
        let store = ExactStore::from_summaries(vec![summary(&[(0, 5)])]);
        assert_eq!(
            validate(&store, None),
            Err(InvariantViolation::SelfEntry { node: NodeId(0) })
        );
    }

    #[test]
    fn stale_end_time_is_detected_in_exact_store() {
        let store = ExactStore::from_summaries(vec![summary(&[(1, 3)])]);
        assert_eq!(validate(&store, None), Ok(()));
        let err = validate(&store, Some(Timestamp(5))).unwrap_err();
        assert_eq!(
            err,
            InvariantViolation::StaleEndTime {
                node: NodeId(0),
                end_time: Timestamp(3),
                frontier: Timestamp(5),
            }
        );
        assert!(err.to_string().contains("frontier"));
    }

    #[test]
    fn clean_vhll_store_validates() {
        let mut store = VhllStore::with_nodes(4, 3);
        // Simulate two reverse-order interactions.
        store.add(NodeId(0), NodeId(1), Timestamp(9));
        store.add(NodeId(0), NodeId(2), Timestamp(7));
        assert_eq!(validate(&store, None), Ok(()));
        assert_eq!(validate(&store, Some(Timestamp(7))), Ok(()));
    }

    #[test]
    fn corrupt_sketch_is_detected() {
        // ρ = 0 can never come out of a hash split; insert_raw lets tests
        // script it directly.
        let mut sketch = VersionedHll::new(4);
        sketch.insert_raw(3, 0, 5);
        let store = VhllStore::from_sketches(4, vec![sketch]);
        let err = validate(&store, None).unwrap_err();
        assert!(matches!(
            err,
            InvariantViolation::Sketch {
                node: NodeId(0),
                ..
            }
        ));
    }

    #[test]
    fn stale_sketch_entry_is_detected() {
        let mut store = VhllStore::with_nodes(4, 1);
        store.add(NodeId(0), NodeId(1), Timestamp(3));
        assert!(validate(&store, Some(Timestamp(4))).is_err());
        assert_eq!(validate(&store, Some(Timestamp(3))), Ok(()));
    }

    #[test]
    fn slice_validators_name_the_offending_node() {
        let summaries = vec![summary(&[]), summary(&[(1, 2)])];
        assert_eq!(
            validate_exact_summaries(&summaries, None),
            Err(InvariantViolation::SelfEntry { node: NodeId(1) })
        );
    }

    #[test]
    fn unsorted_summary_is_detected() {
        // Bypass from_summaries' defensive sort by validating the raw slice.
        let raw = vec![(NodeId(2), Timestamp(5)), (NodeId(1), Timestamp(5))];
        assert_eq!(
            validate_exact_summary(NodeId(0), &raw, None),
            Err(InvariantViolation::UnsortedSummary { node: NodeId(0) })
        );
        let dup = vec![(NodeId(1), Timestamp(5)), (NodeId(1), Timestamp(6))];
        let err = validate_exact_summary(NodeId(0), &dup, None).unwrap_err();
        assert!(err.to_string().contains("sorted"));
    }

    #[test]
    fn parallel_validate_all_matches_serial_at_any_thread_count() {
        // Violation planted mid-universe: every thread count must report the
        // same (lowest-node) violation the serial sweep finds.
        let mut summaries: Vec<ExactSummary> = (0..64).map(|_| summary(&[(99, 7)])).collect();
        summaries[37] = summary(&[(37, 7)]); // self-entry at node 37
        summaries[50] = summary(&[(3, 1)]); // later violation (stale under frontier)
        let store = ExactStore::from_summaries(summaries);
        let serial = validate(&store, Some(Timestamp(2)));
        assert_eq!(
            serial,
            Err(InvariantViolation::SelfEntry { node: NodeId(37) })
        );
        for threads in [1, 2, 8] {
            assert_eq!(validate_all(&store, Some(Timestamp(2)), threads), serial);
        }
        let clean = ExactStore::from_summaries(vec![summary(&[(99, 5)]); 16]);
        for threads in [1, 2, 8] {
            assert_eq!(validate_all(&clean, None, threads), Ok(()));
        }
    }
}
