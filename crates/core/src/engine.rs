//! The one reverse-pass IRS engine, generic over the summary backend.
//!
//! Both of the paper's algorithms — exact (Algorithm 2) and versioned-HLL
//! (Algorithm 3) — are the *same* driver: scan the interactions in reverse
//! chronological order and, for each `(u, v, t)`, perform `Add(φ(u), (v, t))`
//! followed by a window-filtered `Merge(φ(u), φ(v), t, ω)`. Only the summary
//! representation differs. This module captures that split:
//!
//! * [`SummaryStore`] — the per-interaction contract (`add`, `merge`,
//!   node-universe growth, and a snapshot facility for timestamp ties);
//! * [`ExactStore`] — dense sorted-vec summaries `φ(u) = {v → λ}`
//!   (Algorithm 2);
//! * [`VhllStore`] — versioned-HLL sketches (Algorithm 3);
//! * [`ReversePassEngine`] — the single driver owning the reverse scan, the
//!   two-phase equal-timestamp batch semantics, and the streaming
//!   frontier/[`OutOfOrder`] contract.
//!
//! [`ExactIrs::compute`](crate::ExactIrs::compute),
//! [`ApproxIrs::compute`](crate::ApproxIrs::compute),
//! [`ExactIrsStream`](crate::ExactIrsStream) and
//! [`ApproxIrsStream`](crate::ApproxIrsStream) are thin wrappers over this
//! engine; a future sharded or parallel store drops in without touching any
//! of those callers.
//!
//! # Timestamp ties
//!
//! The paper assumes all-distinct timestamps (`t1 < t2 < …`). The engine
//! also accepts ties and keeps the channel semantics strict: interactions
//! sharing a timestamp are processed as a **two-phase batch** in which every
//! merge reads the summaries *as they were before the batch*, so a channel
//! can never chain two hops with equal timestamps. With distinct timestamps
//! every batch has size one and the engine follows the paper verbatim.

use crate::obs::{metric_u64, Counter, HeapBytes, Hist, NoopRecorder, Recorder, Span};
use crate::trace::{NoopTracer, SpanId, TraceEvent, TraceId, Tracer};
use infprop_hll::{MergeObserver, VersionEntry, VersionedHll};
use infprop_temporal_graph::{Interaction, InteractionNetwork, NodeId, Timestamp, Window};
use std::fmt;

/// Error returned when the reverse-order streaming contract is violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfOrder {
    /// Timestamp of the rejected interaction.
    pub got: Timestamp,
    /// The stream frontier (smallest timestamp accepted so far).
    pub frontier: Timestamp,
}

impl fmt::Display for OutOfOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interaction at {} arrived after frontier {} (stream must be non-increasing in time)",
            self.got, self.frontier
        )
    }
}

impl std::error::Error for OutOfOrder {}

/// Reverse-order frontier guard shared by every streaming consumer (the
/// engine itself and 1-hop profiles like
/// [`SlidingContacts`](crate::SlidingContacts)).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReverseFrontier {
    frontier: Option<Timestamp>,
}

impl ReverseFrontier {
    /// A frontier that has seen nothing yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts `t` if it does not exceed the frontier, then lowers the
    /// frontier to it.
    #[inline]
    // xtask-contract: alloc-free, no-panic
    pub fn accept(&mut self, t: Timestamp) -> Result<(), OutOfOrder> {
        if let Some(f) = self.frontier {
            if t > f {
                return Err(OutOfOrder {
                    got: t,
                    frontier: f,
                });
            }
        }
        self.frontier = Some(t);
        Ok(())
    }

    /// The smallest timestamp accepted so far, if any.
    #[inline]
    pub fn get(&self) -> Option<Timestamp> {
        self.frontier
    }
}

/// The per-interaction contract of the one-pass IRS algorithms: a growable
/// collection of per-node summaries supporting the paper's `Add` and `Merge`
/// operations plus the snapshot facility the two-phase tie batches need.
///
/// Implementations must uphold two semantic rules the engine relies on:
///
/// 1. `merge(u, v, t, ω)` folds into `φ(u)` exactly those entries of `φ(v)`
///    whose channel end time `tx` satisfies `tx − t + 1 ≤ ω` (Lemma 2's
///    admissibility filter), and
/// 2. `merge_snapshot` applies the same filter against a snapshot taken
///    before the current tie batch instead of the live summary.
pub trait SummaryStore {
    /// A pre-batch copy of one node's summary, read by
    /// [`merge_snapshot`](Self::merge_snapshot) when a tie batch writes a
    /// node that other batch members merge from.
    type Snapshot;

    /// Number of node slots currently allocated.
    fn num_nodes(&self) -> usize;

    /// Grows the node universe so every id below `n` is addressable.
    fn ensure_nodes(&mut self, n: usize);

    /// `Add(φ(u), (v, t))`: record the direct channel `u → v` ending at `t`.
    fn add(&mut self, u: NodeId, v: NodeId, t: Timestamp);

    /// `Merge(φ(u), φ(v), t, ω)`: inherit `v`'s reachable set, filtered to
    /// channels that still fit in the window when extended back to time `t`.
    /// Callers guarantee `u ≠ v`.
    fn merge(&mut self, u: NodeId, v: NodeId, t: Timestamp, window: Window);

    /// Clones `φ(d)` as it stands (called before a tie batch first writes).
    fn snapshot(&self, d: NodeId) -> Self::Snapshot;

    /// [`merge`](Self::merge), reading from a pre-batch snapshot of the
    /// destination's summary instead of the live one.
    fn merge_snapshot(&mut self, u: NodeId, snap: &Self::Snapshot, t: Timestamp, window: Window);

    /// Validates one node's summary against the structural invariants of
    /// [`crate::invariants`], with an optional stream-frontier lower bound
    /// on recorded end times.
    ///
    /// The default accepts everything, so custom backends opt in; the two
    /// built-in backends override it (self-exclusion and end-time bounds for
    /// [`ExactStore`], dominance chains for [`VhllStore`]). The engine calls
    /// it at tie-batch boundaries in debug builds.
    fn validate_node(
        &self,
        _u: NodeId,
        _frontier: Option<Timestamp>,
    ) -> Result<(), crate::invariants::InvariantViolation> {
        Ok(())
    }

    /// Validates every node's summary via
    /// [`validate_node`](Self::validate_node). Public entry point of the
    /// verification layer (also reachable as
    /// [`crate::invariants::validate`]).
    fn validate(
        &self,
        frontier: Option<Timestamp>,
    ) -> Result<(), crate::invariants::InvariantViolation> {
        for i in 0..self.num_nodes() {
            self.validate_node(NodeId::from_index(i), frontier)?;
        }
        Ok(())
    }
}

/// Disjoint mutable + shared borrows of two distinct slots of a slice — the
/// split-borrow trick that lets `Merge` read `φ(v)` while writing `φ(u)`
/// without cloning.
#[inline]
// xtask-contract: alloc-free, kernel
fn src_and_dst<T>(slots: &mut [T], u: usize, v: usize) -> (&mut T, &T) {
    debug_assert_ne!(u, v);
    if u < v {
        let (lo, hi) = slots.split_at_mut(v);
        (&mut lo[u], &hi[0])
    } else {
        let (lo, hi) = slots.split_at_mut(u);
        (&mut hi[0], &lo[v])
    }
}

/// One exact summary: the pairs `(v, λ(u, v))` sorted by strictly
/// increasing `NodeId`. Dense and cache-friendly — membership is a binary
/// search, merges are a two-pointer sweep.
pub type ExactSummary = Vec<(NodeId, Timestamp)>;

/// Exact dense summaries: `φ(u) = {v → λ(u, v)}` (paper Algorithm 2), one
/// NodeId-sorted vec per node slot plus a store-level scratch buffer so the
/// merge path allocates nothing in the steady state.
///
/// The recorder type parameter defaults to [`NoopRecorder`], so existing
/// call sites compile unchanged and pay nothing; pass a live recorder via
/// [`with_nodes_recorded`](Self::with_nodes_recorded) to see inside merges
/// (path taken, splice lengths, entries touched — the `exact.*` catalogue
/// in [`crate::obs`]).
#[derive(Clone, Debug, Default)]
pub struct ExactStore<R: Recorder = NoopRecorder> {
    summaries: Vec<ExactSummary>,
    scratch: ExactSummary,
    recorder: R,
}

/// `Add(φ(u), (v, t))` from Algorithm 2: insert or lower the end time.
/// `O(log |φ(u)|)` to locate the slot.
#[inline]
fn exact_add(summary: &mut ExactSummary, v: NodeId, t: Timestamp) {
    match summary.binary_search_by_key(&v, |&(x, _)| x) {
        Ok(i) => {
            if t < summary[i].1 {
                summary[i].1 = t;
            }
        }
        Err(i) => summary.insert(i, (v, t)),
    }
}

/// Lemma 2's admissibility filter: `tx − t + 1 ≤ ω`. Cycles back to the
/// source are skipped — a node does not influence itself (matching the
/// paper's Example 2 trace, where the admissible channel e → b → e is not
/// recorded in φ(e)).
#[inline]
// xtask-contract: alloc-free, no-panic
fn exact_admissible(x: NodeId, tx: Timestamp, u: NodeId, t: Timestamp, window: Window) -> bool {
    x != u && tx.delta(t) < window.get()
}

/// Small-side heuristic threshold: the per-entry binary-search + backward
/// splice path is taken when `|src| · factor ≤ |φ(u)|`. Instrumented via
/// `exact.merge_small_side` / `exact.splice_len` so the trade-off is
/// measurable (see the PR 3→4 hub-profile regression analysis in
/// `BENCH_core.json` notes).
const SMALL_SIDE_FACTOR: usize = 4;

/// The merge kernel both [`SummaryStore::merge`] paths share: folds the
/// admissible entries of `src` into `phi_u` with one two-pointer sweep over
/// the two sorted runs, building the result in `scratch` and swapping the
/// buffers, so the steady state moves entries without allocating.
fn exact_merge_filtered<R: Recorder>(
    phi_u: &mut ExactSummary,
    src: &[(NodeId, Timestamp)],
    u: NodeId,
    t: Timestamp,
    window: Window,
    scratch: &mut ExactSummary,
    rec: &R,
) {
    if R::ENABLED {
        rec.add(Counter::ExactMergeCalls, 1);
        rec.record(Hist::ExactMergeSrcLen, metric_u64(src.len()));
    }
    if phi_u.is_empty() {
        phi_u.extend(
            src.iter()
                .copied()
                .filter(|&(x, tx)| exact_admissible(x, tx, u, t, window)),
        );
        if R::ENABLED {
            rec.add(Counter::ExactEntriesTouched, metric_u64(phi_u.len()));
        }
        return;
    }
    // Small-side path: when the source contributes far fewer entries than
    // the accumulator holds (the hub pattern — a high-degree node absorbing
    // many small neighbour summaries), per-entry binary searches beat a full
    // rebuild: hits update a timestamp in place, and only genuinely new ids
    // pay for insertion, via one backward in-place merge.
    if src.len() * SMALL_SIDE_FACTOR <= phi_u.len() {
        if R::ENABLED {
            rec.add(Counter::ExactMergeSmallSide, 1);
        }
        scratch.clear();
        for &(x, tx) in src {
            if !exact_admissible(x, tx, u, t, window) {
                continue;
            }
            match phi_u.binary_search_by_key(&x, |&(y, _)| y) {
                Ok(i) => {
                    if tx < phi_u[i].1 {
                        phi_u[i].1 = tx;
                    }
                }
                Err(_) => scratch.push((x, tx)),
            }
        }
        if R::ENABLED {
            rec.record(Hist::ExactSpliceLen, metric_u64(scratch.len()));
        }
        if scratch.is_empty() {
            if R::ENABLED {
                rec.add(Counter::ExactEntriesTouched, metric_u64(src.len()));
            }
            return;
        }
        // `scratch` is sorted (a filtered subset of the sorted `src`) and
        // disjoint from `phi_u`: merge it in from the back in one pass.
        let old_len = phi_u.len();
        let new = scratch.len();
        phi_u.resize(old_len + new, (NodeId(0), Timestamp(0)));
        let (mut i, mut j, mut w) = (old_len, new, old_len + new);
        while j > 0 {
            if i > 0 && phi_u[i - 1].0 > scratch[j - 1].0 {
                phi_u[w - 1] = phi_u[i - 1];
                i -= 1;
            } else {
                phi_u[w - 1] = scratch[j - 1];
                j -= 1;
            }
            w -= 1;
        }
        if R::ENABLED {
            // Probes plus the tail of φ(u) the backward splice actually moved
            // (`old_len − i` old entries shifted right) plus the new entries.
            rec.add(
                Counter::ExactEntriesTouched,
                metric_u64(src.len() + (old_len - i) + new),
            );
        }
        return;
    }
    if !src
        .iter()
        .any(|&(x, tx)| exact_admissible(x, tx, u, t, window))
    {
        if R::ENABLED {
            rec.add(Counter::ExactEntriesTouched, metric_u64(src.len()));
        }
        return;
    }
    if R::ENABLED {
        rec.add(Counter::ExactMergeRebuild, 1);
    }
    scratch.clear();
    scratch.reserve(phi_u.len() + src.len());
    let mut i = 0;
    for &(x, tx) in src {
        if !exact_admissible(x, tx, u, t, window) {
            continue;
        }
        while i < phi_u.len() && phi_u[i].0 < x {
            scratch.push(phi_u[i]);
            i += 1;
        }
        if i < phi_u.len() && phi_u[i].0 == x {
            scratch.push((x, phi_u[i].1.min(tx)));
            i += 1;
        } else {
            scratch.push((x, tx));
        }
    }
    scratch.extend_from_slice(&phi_u[i..]);
    // The old φ(u) buffer becomes the next merge's scratch.
    std::mem::swap(phi_u, scratch);
    if R::ENABLED {
        rec.add(
            Counter::ExactEntriesTouched,
            metric_u64(src.len() + phi_u.len()),
        );
    }
}

impl ExactStore {
    /// An empty store with `n` pre-allocated node slots.
    pub fn with_nodes(n: usize) -> Self {
        Self::with_nodes_recorded(n, NoopRecorder)
    }

    /// Rebuilds a store around existing summaries (codec entry point). Each
    /// summary is sorted by `NodeId` on the way in; node ids must be unique
    /// within a summary.
    pub fn from_summaries(mut summaries: Vec<ExactSummary>) -> Self {
        for s in &mut summaries {
            s.sort_unstable_by_key(|&(v, _)| v);
        }
        ExactStore {
            summaries,
            scratch: Vec::new(),
            recorder: NoopRecorder,
        }
    }
}

impl<R: Recorder> ExactStore<R> {
    /// An empty store with `n` pre-allocated node slots whose merge kernel
    /// reports into `recorder` (typically a borrowed
    /// [`MetricsRecorder`](crate::MetricsRecorder)).
    pub fn with_nodes_recorded(n: usize, recorder: R) -> Self {
        ExactStore {
            summaries: vec![Vec::new(); n],
            scratch: Vec::new(),
            recorder,
        }
    }

    /// Consumes the store, yielding the per-node summaries (sorted by
    /// `NodeId`).
    pub fn into_summaries(self) -> Vec<ExactSummary> {
        self.summaries
    }

    /// Shared view of the per-node summaries (each sorted by `NodeId`).
    pub fn summaries(&self) -> &[ExactSummary] {
        &self.summaries
    }

    /// Freezes the store's summaries into a contiguous CSR arena
    /// ([`crate::FrozenExactOracle`]) for the read-only query phase. The
    /// store itself is untouched (freezing copies), so a streaming build
    /// can keep extending it.
    pub fn freeze(&self, window: Window) -> crate::FrozenExactOracle {
        crate::FrozenExactOracle::from_summaries(window, &self.summaries)
    }
}

impl<R: Recorder> HeapBytes for ExactStore<R> {
    fn heap_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(NodeId, Timestamp)>();
        self.summaries.capacity() * std::mem::size_of::<ExactSummary>()
            + self
                .summaries
                .iter()
                .map(|s| s.capacity() * entry)
                .sum::<usize>()
            + self.scratch.capacity() * entry
    }
}

impl<R: Recorder> SummaryStore for ExactStore<R> {
    type Snapshot = ExactSummary;

    fn num_nodes(&self) -> usize {
        self.summaries.len()
    }

    fn ensure_nodes(&mut self, n: usize) {
        if n > self.summaries.len() {
            self.summaries.resize_with(n, Vec::new);
        }
    }

    #[inline]
    fn add(&mut self, u: NodeId, v: NodeId, t: Timestamp) {
        exact_add(&mut self.summaries[u.index()], v, t);
    }

    fn merge(&mut self, u: NodeId, v: NodeId, t: Timestamp, window: Window) {
        let ExactStore {
            summaries,
            scratch,
            recorder,
        } = self;
        let (phi_u, phi_v) = src_and_dst(summaries, u.index(), v.index());
        exact_merge_filtered(phi_u, phi_v, u, t, window, scratch, recorder);
    }

    fn snapshot(&self, d: NodeId) -> Self::Snapshot {
        self.summaries[d.index()].clone()
    }

    fn merge_snapshot(&mut self, u: NodeId, snap: &Self::Snapshot, t: Timestamp, window: Window) {
        let ExactStore {
            summaries,
            scratch,
            recorder,
        } = self;
        exact_merge_filtered(
            &mut summaries[u.index()],
            snap,
            u,
            t,
            window,
            scratch,
            recorder,
        );
    }

    fn validate_node(
        &self,
        u: NodeId,
        frontier: Option<Timestamp>,
    ) -> Result<(), crate::invariants::InvariantViolation> {
        crate::invariants::validate_exact_summary(u, &self.summaries[u.index()], frontier)
    }
}

/// Versioned-HLL sketch summaries (paper Algorithm 3).
///
/// A sketch cannot filter the source node itself out of a merged cycle
/// (hashed items carry no identity), so a node on a short cycle may count
/// itself — an overcount of at most one, far below the sketch's own
/// `≈ 1.04/√β` error. The paper's Algorithm 3 has the same behaviour.
#[derive(Clone, Debug)]
pub struct VhllStore<R: Recorder = NoopRecorder> {
    precision: u8,
    sketches: Vec<VersionedHll>,
    scratch: Vec<VersionEntry>,
    recorder: R,
}

/// Adapts a [`Recorder`] to the [`MergeObserver`] callbacks the hll crate
/// exposes (the dependency points hll ← core, so the sketch crate defines
/// its own observer trait and core maps it onto the metric catalogue here).
struct RecorderMergeObserver<'a, R: Recorder>(&'a R);

impl<R: Recorder> MergeObserver for RecorderMergeObserver<'_, R> {
    const ENABLED: bool = R::ENABLED;

    #[inline]
    fn cells_visited(&mut self, n: u64) {
        self.0.add(Counter::VhllCellsVisited, n);
    }

    #[inline]
    fn cells_skipped(&mut self, n: u64) {
        self.0.add(Counter::VhllCellsSkipped, n);
    }

    #[inline]
    fn entries_scanned(&mut self, n: u64) {
        self.0.add(Counter::VhllRegisterTouches, n);
    }

    #[inline]
    fn entries_pruned(&mut self, n: u64) {
        self.0.add(Counter::VhllDominancePrunes, n);
    }

    #[inline]
    fn spills(&mut self, n: u64) {
        self.0.add(Counter::VhllSpills, n);
    }
}

/// Stable per-node sketch hash: nodes are hashed once per add via the
/// deterministic 64-bit mixer, so the same network yields the same sketches
/// in every run and on every platform.
#[inline]
fn node_hash(v: NodeId) -> u64 {
    infprop_hll::hash::hash64(u64::from(v.0))
}

impl VhllStore {
    /// An empty store with `β = 2^precision` cells per node and `n`
    /// pre-allocated node slots.
    pub fn with_nodes(precision: u8, n: usize) -> Self {
        Self::with_nodes_recorded(precision, n, NoopRecorder)
    }

    /// Rebuilds a store around existing sketches (codec entry point; all
    /// sketches must share `precision`).
    pub fn from_sketches(precision: u8, sketches: Vec<VersionedHll>) -> Self {
        debug_assert!(sketches.iter().all(|s| s.precision() == precision));
        VhllStore {
            precision,
            sketches,
            scratch: Vec::new(),
            recorder: NoopRecorder,
        }
    }
}

impl<R: Recorder> VhllStore<R> {
    /// An empty store with `β = 2^precision` cells per node and `n`
    /// pre-allocated node slots whose merge path reports into `recorder`
    /// (dominance prunes, spills, bitmap skip rate — the `vhll.*`
    /// catalogue in [`crate::obs`]).
    pub fn with_nodes_recorded(precision: u8, n: usize, recorder: R) -> Self {
        VhllStore {
            precision,
            sketches: (0..n).map(|_| VersionedHll::new(precision)).collect(),
            scratch: Vec::new(),
            recorder,
        }
    }

    /// Sketch precision `k` (β = 2^k cells per node).
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Consumes the store, yielding the per-node sketches.
    pub fn into_sketches(self) -> Vec<VersionedHll> {
        self.sketches
    }

    /// Shared view of the per-node sketches.
    pub fn sketches(&self) -> &[VersionedHll] {
        &self.sketches
    }

    /// Freezes the store's sketches into a flat register arena with
    /// precomputed per-node estimates ([`crate::FrozenApproxOracle`]) for
    /// the read-only query phase. The store itself is untouched (freezing
    /// collapses into a copy), so a streaming build can keep extending it.
    pub fn freeze(&self) -> crate::FrozenApproxOracle {
        crate::FrozenApproxOracle::from_vhll(self.precision, &self.sketches)
    }
}

impl<R: Recorder> HeapBytes for VhllStore<R> {
    fn heap_bytes(&self) -> usize {
        self.sketches.capacity() * std::mem::size_of::<VersionedHll>()
            + self
                .sketches
                .iter()
                .map(VersionedHll::heap_bytes)
                .sum::<usize>()
            + self.scratch.capacity() * std::mem::size_of::<VersionEntry>()
    }
}

impl<R: Recorder> SummaryStore for VhllStore<R> {
    type Snapshot = VersionedHll;

    fn num_nodes(&self) -> usize {
        self.sketches.len()
    }

    fn ensure_nodes(&mut self, n: usize) {
        if n > self.sketches.len() {
            let precision = self.precision;
            self.sketches
                .resize_with(n, || VersionedHll::new(precision));
        }
    }

    #[inline]
    fn add(&mut self, u: NodeId, v: NodeId, t: Timestamp) {
        let changed = self.sketches[u.index()].add_hash(node_hash(v), t.get());
        if R::ENABLED && !changed {
            self.recorder.add(Counter::VhllDominatedAdds, 1);
        }
    }

    fn merge(&mut self, u: NodeId, v: NodeId, t: Timestamp, window: Window) {
        let VhllStore {
            sketches,
            scratch,
            recorder,
            ..
        } = self;
        recorder.add(Counter::VhllMergeCalls, 1);
        let (phi_u, phi_v) = src_and_dst(sketches, u.index(), v.index());
        phi_u.merge_from_observed(
            phi_v,
            t.get(),
            window.get(),
            scratch,
            &mut RecorderMergeObserver(recorder),
        );
    }

    fn snapshot(&self, d: NodeId) -> Self::Snapshot {
        self.sketches[d.index()].clone()
    }

    fn merge_snapshot(&mut self, u: NodeId, snap: &Self::Snapshot, t: Timestamp, window: Window) {
        let VhllStore {
            sketches,
            scratch,
            recorder,
            ..
        } = self;
        recorder.add(Counter::VhllMergeCalls, 1);
        sketches[u.index()].merge_from_observed(
            snap,
            t.get(),
            window.get(),
            scratch,
            &mut RecorderMergeObserver(recorder),
        );
    }

    fn validate_node(
        &self,
        u: NodeId,
        frontier: Option<Timestamp>,
    ) -> Result<(), crate::invariants::InvariantViolation> {
        crate::invariants::validate_sketch(u, &self.sketches[u.index()], frontier)
    }
}

/// Walks a time-sorted (ascending) interaction slice **backwards**, yielding
/// each maximal equal-timestamp run — the reverse scan both `compute` paths
/// share. [`ExactIrs::compute_many`](crate::ExactIrs::compute_many) uses it
/// directly to amortize one scan across several windows.
// xtask-contract: alloc-free, kernel
pub fn for_each_tie_batch(ints: &[Interaction], mut f: impl FnMut(&[Interaction])) {
    let mut hi = ints.len();
    while hi > 0 {
        let t = ints[hi - 1].time;
        let mut lo = hi - 1;
        while lo > 0 && ints[lo - 1].time == t {
            lo -= 1;
        }
        f(&ints[lo..hi]);
        hi = lo;
    }
}

/// Debug-build invariant sweep after one tie batch: every summary the batch
/// wrote must still satisfy the structural invariants, with the batch time
/// as the stream frontier (all recorded end times sit at or above it under
/// the reverse scan). Checking only the batch's sources keeps the cost
/// proportional to the merge work just done.
#[cfg(debug_assertions)]
fn debug_validate_batch<S: SummaryStore>(store: &S, batch: &[Interaction]) {
    let frontier = batch.first().map(|e| e.time);
    for e in batch {
        if e.src != e.dst {
            let checked = store.validate_node(e.src, frontier);
            debug_assert!(
                checked.is_ok(),
                "structural invariant violated after tie batch at {:?}: {}",
                frontier,
                checked.err().map(|v| v.to_string()).unwrap_or_default(),
            );
        }
    }
}

/// Applies one equal-timestamp batch to a store (size 1 = the paper's
/// algorithm verbatim; larger = two-phase tie semantics).
pub fn apply_batch<S: SummaryStore>(store: &mut S, batch: &[Interaction], window: Window) {
    apply_batch_recorded(store, batch, window, &NoopRecorder);
}

/// [`apply_batch`] with engine-level instrumentation: counts interactions
/// and tie batches and records the batch-size distribution into `rec`
/// (store-level metrics flow through the store's own recorder).
pub fn apply_batch_recorded<S: SummaryStore, R: Recorder>(
    store: &mut S,
    batch: &[Interaction],
    window: Window,
    rec: &R,
) {
    if R::ENABLED {
        rec.add(Counter::EngineInteractions, metric_u64(batch.len()));
        rec.record(Hist::EngineTieBatchSize, metric_u64(batch.len()));
        if batch.len() > 1 {
            rec.add(Counter::EngineTieBatches, 1);
        }
    }
    if let [e] = batch {
        if e.src != e.dst {
            store.add(e.src, e.dst, e.time);
            store.merge(e.src, e.dst, e.time, window);
        }
        #[cfg(debug_assertions)]
        debug_validate_batch(store, batch);
        return;
    }
    // Phase 1: snapshot φ(d) for every destination that is also a batch
    // source — merges must read pre-batch state so equal-time hops never
    // chain. Phase 2: apply every edge, routing reads through the snapshots.
    // Batches are tiny (one per distinct timestamp), so sorted vecs beat
    // hash sets here and keep the path allocation-light.
    let mut sources: Vec<usize> = batch.iter().map(|e| e.src.index()).collect();
    sources.sort_unstable();
    sources.dedup();
    let mut dsts: Vec<usize> = batch.iter().map(|e| e.dst.index()).collect();
    dsts.sort_unstable();
    dsts.dedup();
    let snapshots: Vec<(usize, S::Snapshot)> = dsts
        .into_iter()
        .filter(|d| sources.binary_search(d).is_ok())
        .map(|d| (d, store.snapshot(NodeId::from_index(d))))
        .collect();
    for e in batch {
        if e.src == e.dst {
            continue;
        }
        store.add(e.src, e.dst, e.time);
        if let Ok(k) = snapshots.binary_search_by_key(&e.dst.index(), |&(d, _)| d) {
            store.merge_snapshot(e.src, &snapshots[k].1, e.time, window);
        } else {
            store.merge(e.src, e.dst, e.time, window);
        }
    }
    #[cfg(debug_assertions)]
    debug_validate_batch(store, batch);
}

/// The single one-pass driver behind every IRS entry point: owns the reverse
/// scan, the two-phase tie-batch semantics, and the streaming
/// frontier/[`OutOfOrder`] contract, generic over the summary backend.
///
/// Batch use ([`run`](Self::run)) consumes a materialized network in one
/// call; streaming use ([`push`](Self::push) + [`finish`](Self::finish))
/// feeds interactions one at a time in non-increasing time order, buffering
/// timestamp ties so streamed and batch results are identical — a
/// property-tested guarantee.
pub struct ReversePassEngine<S: SummaryStore, R: Recorder = NoopRecorder> {
    window: Window,
    store: S,
    frontier: ReverseFrontier,
    tie_buffer: Vec<Interaction>,
    interactions_seen: usize,
    recorder: R,
}

impl<S: SummaryStore> ReversePassEngine<S> {
    /// A streaming engine over `store`.
    ///
    /// # Panics
    ///
    /// Panics if `window < 1` (see [`Window::assert_valid`]).
    pub fn new(window: Window, store: S) -> Self {
        Self::with_recorder(window, store, NoopRecorder)
    }

    /// Runs the full reverse pass over a materialized network and returns
    /// the finished store. This is the batch entry point behind
    /// [`ExactIrs::compute`](crate::ExactIrs::compute) and
    /// [`ApproxIrs::compute`](crate::ApproxIrs::compute).
    ///
    /// # Panics
    ///
    /// Panics if `window < 1`.
    pub fn run(net: &InteractionNetwork, window: Window, store: S) -> S {
        Self::run_recorded(net, window, store, &NoopRecorder)
    }

    /// Re-entrant variant of [`run`](Self::run) over a raw time-sorted
    /// slice: the reverse pass is applied on top of whatever summaries
    /// `store` already holds, growing the node universe as needed but never
    /// shrinking it. This is the compaction/overlay entry point of the
    /// layered oracle ([`crate::DeltaOverlay`]) — a seeded store can be
    /// extended with a tail of newer interactions without materializing an
    /// [`InteractionNetwork`].
    ///
    /// # Panics
    ///
    /// Panics if `window < 1`.
    pub fn run_slice(ints: &[Interaction], window: Window, store: S) -> S {
        Self::run_slice_recorded(ints, window, store, &NoopRecorder)
    }
}

impl<S: SummaryStore, R: Recorder> ReversePassEngine<S, R> {
    /// A streaming engine over `store` whose driver-level metrics
    /// (interactions, tie batches, out-of-order rejects) report into
    /// `recorder`.
    ///
    /// # Panics
    ///
    /// Panics if `window < 1` (see [`Window::assert_valid`]).
    pub fn with_recorder(window: Window, store: S, recorder: R) -> Self {
        window.assert_valid();
        ReversePassEngine {
            window,
            store,
            frontier: ReverseFrontier::new(),
            tie_buffer: Vec::new(),
            interactions_seen: 0,
            recorder,
        }
    }

    /// [`run`](Self::run) with driver-level instrumentation: wraps the pass
    /// in the `engine.run` span and counts interactions/tie batches into
    /// `rec`. The store carries its own recorder for store-level metrics.
    ///
    /// # Panics
    ///
    /// Panics if `window < 1`.
    pub fn run_recorded(net: &InteractionNetwork, window: Window, store: S, rec: &R) -> S {
        Self::run_traced(
            net,
            window,
            store,
            rec,
            NoopTracer,
            TraceId::NONE,
            SpanId::NONE,
        )
    }

    /// [`run_recorded`](Self::run_recorded) with causal tracing: the whole
    /// reverse pass additionally becomes one `build.reverse_scan` span of
    /// `trace` under `parent` (payload: interactions scanned). With
    /// [`NoopTracer`] this monomorphizes back to the untraced pass.
    ///
    /// # Panics
    ///
    /// Panics if `window < 1`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_traced<T: Tracer>(
        net: &InteractionNetwork,
        window: Window,
        mut store: S,
        rec: &R,
        tracer: T,
        trace: TraceId,
        parent: SpanId,
    ) -> S {
        window.assert_valid();
        // The reverse scan (Lemma 1) is only sound over a time-sorted input;
        // InteractionNetwork guarantees this, so a violation here means the
        // network was corrupted after construction.
        debug_assert!(
            net.interactions()
                .windows(2)
                .all(|w| w[0].time <= w[1].time),
            "interaction network is not sorted by time"
        );
        let t0 = rec.span_start();
        let sp = tracer.begin(trace, parent, TraceEvent::BuildReverseScan);
        store.ensure_nodes(net.num_nodes());
        for_each_tie_batch(net.interactions(), |batch| {
            apply_batch_recorded(&mut store, batch, window, rec);
        });
        tracer.end(
            sp,
            TraceEvent::BuildReverseScan,
            metric_u64(net.interactions().len()),
        );
        rec.span_end(Span::EngineRun, t0);
        store
    }

    /// [`run_slice`](Self::run_slice) with driver-level instrumentation —
    /// the same `engine.run` span and interaction/tie-batch counters as
    /// [`run_recorded`](Self::run_recorded), applied over a raw ascending
    /// slice on top of a (possibly pre-seeded) store.
    ///
    /// # Panics
    ///
    /// Panics if `window < 1`.
    pub fn run_slice_recorded(ints: &[Interaction], window: Window, store: S, rec: &R) -> S {
        Self::run_slice_traced(
            ints,
            window,
            store,
            rec,
            NoopTracer,
            TraceId::NONE,
            SpanId::NONE,
        )
    }

    /// [`run_slice_recorded`](Self::run_slice_recorded) with causal tracing
    /// — the slice pass becomes one `build.reverse_scan` span of `trace`
    /// under `parent` (payload: interactions scanned). This is how a
    /// compaction's rebuild pass shows up inside its `compact.rebuild`
    /// span.
    ///
    /// # Panics
    ///
    /// Panics if `window < 1`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_slice_traced<T: Tracer>(
        ints: &[Interaction],
        window: Window,
        mut store: S,
        rec: &R,
        tracer: T,
        trace: TraceId,
        parent: SpanId,
    ) -> S {
        window.assert_valid();
        debug_assert!(
            ints.windows(2).all(|w| w[0].time <= w[1].time),
            "interaction slice is not sorted by time"
        );
        let t0 = rec.span_start();
        let sp = tracer.begin(trace, parent, TraceEvent::BuildReverseScan);
        let min_nodes = ints
            .iter()
            .map(|i| i.src.index().max(i.dst.index()) + 1)
            .max()
            .unwrap_or(0);
        store.ensure_nodes(min_nodes);
        for_each_tie_batch(ints, |batch| {
            apply_batch_recorded(&mut store, batch, window, rec);
        });
        tracer.end(sp, TraceEvent::BuildReverseScan, metric_u64(ints.len()));
        rec.span_end(Span::EngineRun, t0);
        store
    }

    /// The window ω this engine filters merges with.
    #[inline]
    pub fn window(&self) -> Window {
        self.window
    }

    /// Number of interactions accepted so far.
    #[inline]
    pub fn interactions_seen(&self) -> usize {
        self.interactions_seen
    }

    /// Shared view of the backend store. Buffered ties are not yet applied.
    #[inline]
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Feeds one interaction (time must be ≤ every previous time). Ties are
    /// buffered and flushed together once the time strictly drops, exactly
    /// like the batch path. Self-loops are ignored, mirroring
    /// [`InteractionNetwork`] construction.
    pub fn push(&mut self, i: Interaction) -> Result<(), OutOfOrder> {
        if let Err(e) = self.frontier.accept(i.time) {
            self.recorder.add(Counter::EngineOutOfOrderRejects, 1);
            return Err(e);
        }
        self.store
            .ensure_nodes(i.src.index().max(i.dst.index()) + 1);
        if let Some(last) = self.tie_buffer.last() {
            if last.time != i.time {
                let batch = std::mem::take(&mut self.tie_buffer);
                apply_batch_recorded(&mut self.store, &batch, self.window, &self.recorder);
            }
        }
        self.tie_buffer.push(i);
        self.interactions_seen += 1;
        Ok(())
    }

    /// Flushes any buffered ties and returns the finished store.
    pub fn finish(mut self) -> S {
        let batch = std::mem::take(&mut self.tie_buffer);
        if !batch.is_empty() {
            apply_batch_recorded(&mut self.store, &batch, self.window, &self.recorder);
        }
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1a() -> InteractionNetwork {
        InteractionNetwork::from_triples([
            (0, 3, 1),
            (4, 5, 2),
            (3, 4, 3),
            (4, 1, 4),
            (0, 1, 5),
            (1, 4, 6),
            (4, 2, 7),
            (1, 2, 8),
        ])
    }

    #[test]
    fn generic_run_matches_streaming_push_exact() {
        let net = figure1a();
        for w in [1i64, 3, 8] {
            let batch =
                ReversePassEngine::run(&net, Window(w), ExactStore::with_nodes(net.num_nodes()));
            let mut engine = ReversePassEngine::new(Window(w), ExactStore::with_nodes(0));
            for i in net.iter_reverse() {
                engine.push(*i).unwrap();
            }
            let streamed = engine.finish();
            assert_eq!(batch.summaries(), streamed.summaries(), "ω={w}");
        }
    }

    #[test]
    fn generic_run_matches_streaming_push_vhll() {
        let net = figure1a();
        let batch =
            ReversePassEngine::run(&net, Window(3), VhllStore::with_nodes(6, net.num_nodes()));
        let mut engine = ReversePassEngine::new(Window(3), VhllStore::with_nodes(6, 0));
        for i in net.iter_reverse() {
            engine.push(*i).unwrap();
        }
        let streamed = engine.finish();
        assert_eq!(batch.sketches(), streamed.sketches());
    }

    #[test]
    fn tie_batches_are_grouped_in_reverse() {
        let net = InteractionNetwork::from_triples([(0, 1, 1), (1, 2, 5), (2, 3, 5), (3, 4, 9)]);
        let mut seen: Vec<(usize, i64)> = Vec::new();
        for_each_tie_batch(net.interactions(), |batch| {
            seen.push((batch.len(), batch[0].time.get()));
        });
        assert_eq!(seen, vec![(1, 9), (2, 5), (1, 1)]);
    }

    #[test]
    fn out_of_order_push_is_rejected_and_recoverable() {
        let mut engine = ReversePassEngine::new(Window(5), ExactStore::with_nodes(0));
        engine.push(Interaction::from_raw(0, 1, 10)).unwrap();
        engine.push(Interaction::from_raw(1, 2, 10)).unwrap(); // tie ok
        let err = engine.push(Interaction::from_raw(2, 3, 11)).unwrap_err();
        assert_eq!(err.got, Timestamp(11));
        assert_eq!(err.frontier, Timestamp(10));
        assert!(err.to_string().contains("non-increasing"));
        engine.push(Interaction::from_raw(2, 3, 9)).unwrap();
        assert_eq!(engine.interactions_seen(), 3);
    }

    #[test]
    fn self_loops_are_ignored_in_stream() {
        let mut engine = ReversePassEngine::new(Window(5), ExactStore::with_nodes(0));
        engine.push(Interaction::from_raw(1, 2, 9)).unwrap();
        engine.push(Interaction::from_raw(0, 0, 5)).unwrap();
        let store = engine.finish();
        assert!(store.summaries()[0].is_empty());
        assert_eq!(store.summaries()[1].len(), 1);
    }

    #[test]
    fn ensure_nodes_grows_and_never_shrinks() {
        let mut store = ExactStore::with_nodes(2);
        store.ensure_nodes(5);
        assert_eq!(store.num_nodes(), 5);
        store.ensure_nodes(1);
        assert_eq!(store.num_nodes(), 5);
        let mut vs = VhllStore::with_nodes(5, 0);
        vs.ensure_nodes(3);
        assert_eq!(vs.num_nodes(), 3);
        assert_eq!(vs.precision(), 5);
    }

    #[test]
    fn run_slice_matches_run_over_full_network() {
        let net = figure1a();
        for w in [1i64, 3, 8] {
            let via_net =
                ReversePassEngine::run(&net, Window(w), ExactStore::with_nodes(net.num_nodes()));
            let via_slice = ReversePassEngine::run_slice(
                net.interactions(),
                Window(w),
                ExactStore::with_nodes(0),
            );
            assert_eq!(via_net.summaries(), via_slice.summaries(), "ω={w}");
        }
    }

    #[test]
    fn run_slice_grows_but_never_shrinks_seeded_store() {
        let net = figure1a();
        // A store pre-seeded with more slots than the slice mentions keeps
        // them; the extra slots simply stay empty.
        let store =
            ReversePassEngine::run_slice(net.interactions(), Window(3), ExactStore::with_nodes(10));
        assert_eq!(store.num_nodes(), 10);
        assert!(store.summaries()[8].is_empty());
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_engine_panics() {
        let _ = ReversePassEngine::new(Window(0), ExactStore::with_nodes(0));
    }
}
