//! Zero-overhead observability: counters, gauges, log₂-bucket histograms and
//! span timers for the one-pass engine, the summary stores and the query
//! path.
//!
//! The paper's evaluation (§6, Tables 3–5) is about run time, memory
//! footprint and sketch quality; this module makes those numbers visible
//! *inside* a run — merge-path decisions, dominance prunes, register
//! touches, per-phase wall time — without taxing the hot path when nobody is
//! looking.
//!
//! # Design
//!
//! Everything hangs off the monomorphized [`Recorder`] trait. Instrumented
//! code is generic over `R: Recorder` and calls `rec.add(...)` /
//! `rec.record(...)` / `rec.span_start()` unconditionally; the two
//! implementations are:
//!
//! * [`NoopRecorder`] (the default everywhere) — every method is an empty
//!   `#[inline(always)]` body and [`Recorder::ENABLED`] is `false`, so after
//!   monomorphization the instrumentation compiles to *nothing*: no branch,
//!   no clock read ([`NoopRecorder::span_start`] returns `SpanStart(None)`
//!   without touching [`Instant`]), no allocation. Any extra work needed
//!   only to *compute* a metric value is gated on `R::ENABLED`, a
//!   monomorphization-time constant the optimizer deletes.
//! * [`MetricsRecorder`] — fixed arrays of relaxed [`AtomicU64`] cells
//!   indexed by the metric enums below. `&self` methods and `Sync`, so one
//!   recorder can be shared by reference across the engine, a store and the
//!   [`par`](crate::par) fan-out threads. `impl Recorder for &R` makes
//!   borrow-passing transparent.
//!
//! A run drains into a [`MetricsSnapshot`]: a stable, serde-free JSON
//! document (hand-rolled encoder and parser, following the `persist` module
//! convention of owning our own formats) consumed by the CLI `--metrics`
//! flag and the bench trajectory harness.
//!
//! The metric catalogue is closed: the [`Counter`], [`Gauge`], [`Hist`] and
//! [`Span`] enums below are the single source of truth for names and units,
//! and a snapshot always contains every metric (zero-valued ones included)
//! so downstream key-set validation is trivial.
//!
//! This module is the only library code allowed to name
//! [`std::time::Instant`] (`cargo xtask lint` rule `no-raw-timing`); all
//! other timing must flow through span timers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic event counters. Unit: events, unless the name says otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Interactions applied by the reverse pass (post frontier-accept).
    EngineInteractions,
    /// Two-phase tie batches flushed (batches with ≥ 2 interactions).
    EngineTieBatches,
    /// Streaming pushes rejected by the `OutOfOrder` frontier contract.
    EngineOutOfOrderRejects,
    /// `ExactStore` merge calls (one per admissible interaction).
    ExactMergeCalls,
    /// Exact merges that took the small-side binary-search + splice path.
    ExactMergeSmallSide,
    /// Exact merges that took the two-pointer scratch-swap rebuild path.
    ExactMergeRebuild,
    /// Summary entries read or written across all exact merges.
    ExactEntriesTouched,
    /// `VhllStore` sketch merge calls.
    VhllMergeCalls,
    /// vHLL version entries dropped by dominance during merges.
    VhllDominancePrunes,
    /// vHLL adds rejected because an existing version dominated them.
    VhllDominatedAdds,
    /// Inline→heap spills of vHLL version lists.
    VhllSpills,
    /// Occupied vHLL registers visited during merges.
    VhllCellsVisited,
    /// vHLL registers skipped via the occupancy bitmap (empty in both sides).
    VhllCellsSkipped,
    /// vHLL version entries scanned across all merges.
    VhllRegisterTouches,
    /// Influence-oracle seed-set queries answered.
    OracleQueries,
    /// Greedy maximization rounds (one per selected seed).
    GreedyRounds,
    /// CELF lazy re-evaluations of stale marginal gains.
    GreedyLazyRefreshes,
    /// Chunks dispatched by the deterministic parallel layer.
    ParChunks,
    /// Chunks served by an already-initialized per-worker scratch buffer
    /// (chunks processed minus scratches created by the fan-out).
    ParScratchReuse,
    /// Monte-Carlo simulation runs executed.
    SimRuns,
    /// Forward-time interactions appended to a delta overlay.
    DeltaAppends,
    /// Overlay rebuilds (`LayeredOracle::refresh`) executed.
    DeltaRefreshes,
    /// LSM-style re-freeze compactions executed.
    CompactionRuns,
    /// Interactions dropped by sliding-window expiry at compaction.
    CompactionExpired,
    /// Seed-set queries answered by the batch-first frozen kernel
    /// (`influence_many_frozen`), a subset of `oracle.queries`.
    KernelBatchQueries,
    /// Register rows (seed summaries after dedup) folded by the wide-lane
    /// merge kernel across batch queries.
    KernelMergeRows,
    /// Client connections accepted by the serving tier.
    ServeConnections,
    /// Request frames decoded by the serving tier (one per protocol frame).
    ServeRequests,
    /// Individual influence queries answered by the serving tier (a batched
    /// `influence` frame counts each seed set).
    ServeQueries,
}

impl Counter {
    /// Every counter, in stable catalogue (serialization) order.
    pub const ALL: [Counter; 29] = [
        Counter::EngineInteractions,
        Counter::EngineTieBatches,
        Counter::EngineOutOfOrderRejects,
        Counter::ExactMergeCalls,
        Counter::ExactMergeSmallSide,
        Counter::ExactMergeRebuild,
        Counter::ExactEntriesTouched,
        Counter::VhllMergeCalls,
        Counter::VhllDominancePrunes,
        Counter::VhllDominatedAdds,
        Counter::VhllSpills,
        Counter::VhllCellsVisited,
        Counter::VhllCellsSkipped,
        Counter::VhllRegisterTouches,
        Counter::OracleQueries,
        Counter::GreedyRounds,
        Counter::GreedyLazyRefreshes,
        Counter::ParChunks,
        Counter::ParScratchReuse,
        Counter::SimRuns,
        Counter::DeltaAppends,
        Counter::DeltaRefreshes,
        Counter::CompactionRuns,
        Counter::CompactionExpired,
        Counter::KernelBatchQueries,
        Counter::KernelMergeRows,
        Counter::ServeConnections,
        Counter::ServeRequests,
        Counter::ServeQueries,
    ];

    /// Stable dotted metric name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::EngineInteractions => "engine.interactions",
            Counter::EngineTieBatches => "engine.tie_batches",
            Counter::EngineOutOfOrderRejects => "engine.out_of_order_rejects",
            Counter::ExactMergeCalls => "exact.merge_calls",
            Counter::ExactMergeSmallSide => "exact.merge_small_side",
            Counter::ExactMergeRebuild => "exact.merge_rebuild",
            Counter::ExactEntriesTouched => "exact.entries_touched",
            Counter::VhllMergeCalls => "vhll.merge_calls",
            Counter::VhllDominancePrunes => "vhll.dominance_prunes",
            Counter::VhllDominatedAdds => "vhll.dominated_adds",
            Counter::VhllSpills => "vhll.spills",
            Counter::VhllCellsVisited => "vhll.cells_visited",
            Counter::VhllCellsSkipped => "vhll.cells_skipped",
            Counter::VhllRegisterTouches => "vhll.register_touches",
            Counter::OracleQueries => "oracle.queries",
            Counter::GreedyRounds => "greedy.rounds",
            Counter::GreedyLazyRefreshes => "greedy.lazy_refreshes",
            Counter::ParChunks => "par.chunks",
            Counter::ParScratchReuse => "par.scratch_reuse",
            Counter::SimRuns => "sim.runs",
            Counter::DeltaAppends => "delta.appends",
            Counter::DeltaRefreshes => "delta.refreshes",
            Counter::CompactionRuns => "compaction.runs",
            Counter::CompactionExpired => "compaction.expired_interactions",
            Counter::KernelBatchQueries => "kernel.batch_queries",
            Counter::KernelMergeRows => "kernel.merge_rows",
            Counter::ServeConnections => "serve.connections",
            Counter::ServeRequests => "serve.requests",
            Counter::ServeQueries => "serve.queries",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize // xtask-allow: no-lossy-cast (unit-enum discriminant)
    }
}

/// Last-write-wins gauges. Unit in the name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Heap bytes owned by the summary store after the build.
    StoreHeapBytes,
    /// Nodes tracked by the summary store.
    StoreNodes,
    /// Total summary entries (exact pairs or vHLL versions) after the build.
    StoreEntries,
    /// Heap bytes owned by the influence oracle.
    OracleHeapBytes,
    /// Heap bytes owned by a frozen oracle arena (offsets + flat entries or
    /// registers), set when a store or IRS is frozen.
    FrozenBytes,
    /// Forward-time interactions buffered in the delta overlay but not yet
    /// folded into the overlay arena (delta depth awaiting refresh).
    DeltaPending,
    /// Window-surviving base-tail interactions the overlay replays on each
    /// refresh.
    DeltaTail,
    /// Current base-arena generation of a layered oracle.
    CompactionGeneration,
}

impl Gauge {
    /// Every gauge, in stable catalogue (serialization) order.
    pub const ALL: [Gauge; 8] = [
        Gauge::StoreHeapBytes,
        Gauge::StoreNodes,
        Gauge::StoreEntries,
        Gauge::OracleHeapBytes,
        Gauge::FrozenBytes,
        Gauge::DeltaPending,
        Gauge::DeltaTail,
        Gauge::CompactionGeneration,
    ];

    /// Stable dotted metric name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::StoreHeapBytes => "store.heap_bytes",
            Gauge::StoreNodes => "store.nodes",
            Gauge::StoreEntries => "store.entries",
            Gauge::OracleHeapBytes => "oracle.heap_bytes",
            Gauge::FrozenBytes => "frozen.bytes",
            Gauge::DeltaPending => "delta.pending_interactions",
            Gauge::DeltaTail => "delta.tail_interactions",
            Gauge::CompactionGeneration => "compaction.generation",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize // xtask-allow: no-lossy-cast (unit-enum discriminant)
    }
}

/// Fixed log₂-bucket size/latency histograms. Unit in the variant docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hist {
    /// Interactions per two-phase tie batch (unit: interactions).
    EngineTieBatchSize,
    /// Source-summary length at each exact merge (unit: entries).
    ExactMergeSrcLen,
    /// New entries spliced in per small-side exact merge (unit: entries).
    ExactSpliceLen,
    /// Union size returned per oracle query (unit: nodes, rounded).
    OracleUnionSize,
    /// Wall time per parallel chunk (unit: nanoseconds).
    ParChunkNs,
    /// Interactions per delta-overlay append batch (unit: interactions).
    DeltaAppendBatch,
    /// Interactions fed to each compaction rebuild (unit: interactions).
    CompactionInput,
    /// Seed sets per batch-kernel call (unit: queries).
    KernelBatchSize,
    /// Wall time per query inside a recorded batch-kernel call (unit:
    /// nanoseconds) — the histogram the CLI's p50/p99 report reads.
    KernelQueryNs,
    /// Wall time per oracle file/directory load (unit: nanoseconds) — fed
    /// by the CLI and serve loaders, the histogram behind the load-latency
    /// line and the mmap-vs-read bench row.
    OracleLoadNs,
    /// Wall time per served request frame, decode to flush (unit:
    /// nanoseconds) — the serving tier's p50/p99/p999 source.
    ServeRequestNs,
    /// Influence queries per served batch frame (unit: queries).
    ServeBatchSize,
}

impl Hist {
    /// Every histogram, in stable catalogue (serialization) order.
    pub const ALL: [Hist; 12] = [
        Hist::EngineTieBatchSize,
        Hist::ExactMergeSrcLen,
        Hist::ExactSpliceLen,
        Hist::OracleUnionSize,
        Hist::ParChunkNs,
        Hist::DeltaAppendBatch,
        Hist::CompactionInput,
        Hist::KernelBatchSize,
        Hist::KernelQueryNs,
        Hist::OracleLoadNs,
        Hist::ServeRequestNs,
        Hist::ServeBatchSize,
    ];

    /// Stable dotted metric name.
    pub fn name(self) -> &'static str {
        match self {
            Hist::EngineTieBatchSize => "engine.tie_batch_size",
            Hist::ExactMergeSrcLen => "exact.merge_src_len",
            Hist::ExactSpliceLen => "exact.splice_len",
            Hist::OracleUnionSize => "oracle.union_size",
            Hist::ParChunkNs => "par.chunk_ns",
            Hist::DeltaAppendBatch => "delta.append_batch",
            Hist::CompactionInput => "compaction.input_interactions",
            Hist::KernelBatchSize => "kernel.batch_size",
            Hist::KernelQueryNs => "kernel.query_ns",
            Hist::OracleLoadNs => "oracle.load_ns",
            Hist::ServeRequestNs => "serve.request_ns",
            Hist::ServeBatchSize => "serve.batch_size",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize // xtask-allow: no-lossy-cast (unit-enum discriminant)
    }
}

/// Named wall-time spans (count + total nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// One full reverse-pass build (`ReversePassEngine::run`).
    EngineRun,
    /// One individual-influence sweep over all nodes.
    OracleSweep,
    /// One batch of seed-set influence queries.
    OracleQueryBatch,
    /// One greedy top-k selection.
    GreedySelect,
    /// One Monte-Carlo simulation batch.
    SimRun,
    /// One delta-overlay rebuild (`LayeredOracle::refresh`).
    DeltaRefresh,
    /// One LSM-style re-freeze compaction.
    CompactionRun,
    /// One oracle file/directory load (CLI `oracle-query`).
    OracleLoad,
}

impl Span {
    /// Every span, in stable catalogue (serialization) order.
    pub const ALL: [Span; 8] = [
        Span::EngineRun,
        Span::OracleSweep,
        Span::OracleQueryBatch,
        Span::GreedySelect,
        Span::SimRun,
        Span::DeltaRefresh,
        Span::CompactionRun,
        Span::OracleLoad,
    ];

    /// Stable dotted metric name.
    pub fn name(self) -> &'static str {
        match self {
            Span::EngineRun => "engine.run",
            Span::OracleSweep => "oracle.sweep",
            Span::OracleQueryBatch => "oracle.query_batch",
            Span::GreedySelect => "greedy.select",
            Span::SimRun => "sim.run",
            Span::DeltaRefresh => "delta.refresh",
            Span::CompactionRun => "compaction.run",
            Span::OracleLoad => "oracle.load",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize // xtask-allow: no-lossy-cast (unit-enum discriminant)
    }
}

/// Opaque start token returned by [`Recorder::span_start`]. `None` for the
/// noop recorder, so disabled spans never read the clock.
#[derive(Debug, Clone, Copy)]
pub struct SpanStart(Option<Instant>);

impl SpanStart {
    /// Nanoseconds elapsed since the clock started; `None` for disabled
    /// recorders. Lets call sites feed a duration into a *histogram* (e.g.
    /// per-chunk timings in [`crate::par`]) instead of a span accumulator.
    #[inline]
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0
            .map(|t0| u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

/// Saturating `usize → u64` for metric values (lossless on 64-bit targets;
/// saturates rather than truncates anywhere else).
#[inline]
pub fn metric_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Rounds a nonnegative `f64` metric (e.g. an estimated cardinality) into a
/// `u64` histogram value; negatives clamp to zero, overflow saturates.
#[inline]
pub fn metric_f64(v: f64) -> u64 {
    if v <= 0.0 {
        0
    } else {
        v.round() as u64 // xtask-allow: no-lossy-cast (saturating float→int metric rounding)
    }
}

/// The monomorphized sink instrumented code writes into.
///
/// All methods take `&self` so a recorder can be shared across threads
/// (`Sync` is required); deltas use relaxed atomics — per-counter totals are
/// exact, only inter-counter ordering is unspecified.
pub trait Recorder: Sync {
    /// `true` iff this recorder actually stores anything. Instrumented code
    /// gates *metric-computation* work (not the record calls themselves) on
    /// this constant so the noop path pays nothing.
    const ENABLED: bool;

    /// Adds `delta` to a monotonic counter.
    fn add(&self, counter: Counter, delta: u64);

    /// Sets a gauge to `value` (last write wins).
    fn gauge(&self, gauge: Gauge, value: u64);

    /// Records one `value` observation into a histogram.
    fn record(&self, hist: Hist, value: u64);

    /// Starts a span clock (a no-op token when disabled).
    fn span_start(&self) -> SpanStart;

    /// Ends a span, accumulating elapsed wall time since `start`.
    fn span_end(&self, span: Span, start: SpanStart);
}

/// The default recorder: does nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn add(&self, _counter: Counter, _delta: u64) {}

    #[inline(always)]
    fn gauge(&self, _gauge: Gauge, _value: u64) {}

    #[inline(always)]
    fn record(&self, _hist: Hist, _value: u64) {}

    #[inline(always)]
    fn span_start(&self) -> SpanStart {
        SpanStart(None)
    }

    #[inline(always)]
    fn span_end(&self, _span: Span, _start: SpanStart) {}
}

impl<R: Recorder> Recorder for &R {
    const ENABLED: bool = R::ENABLED;

    #[inline(always)]
    fn add(&self, counter: Counter, delta: u64) {
        (**self).add(counter, delta);
    }

    #[inline(always)]
    fn gauge(&self, gauge: Gauge, value: u64) {
        (**self).gauge(gauge, value);
    }

    #[inline(always)]
    fn record(&self, hist: Hist, value: u64) {
        (**self).record(hist, value);
    }

    #[inline(always)]
    fn span_start(&self) -> SpanStart {
        (**self).span_start()
    }

    #[inline(always)]
    fn span_end(&self, span: Span, start: SpanStart) {
        (**self).span_end(span, start);
    }
}

/// Buckets per histogram: bucket 0 holds zeros, bucket `i ≥ 1` holds values
/// in `[2^(i-1), 2^i)`, and the last bucket saturates upward.
pub const HIST_BUCKETS: usize = 32;

/// The log₂ bucket index for `value`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        let bits = 64 - usize::try_from(value.leading_zeros()).unwrap_or(0);
        bits.min(HIST_BUCKETS - 1)
    }
}

/// The inclusive upper edge of bucket `index` (saturating for the last
/// bucket), used as the reported quantile value.
#[inline]
pub fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        (1u64 << index.min(63)) - 1
    }
}

struct HistCell {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCell {
    fn zeroed() -> HistCell {
        HistCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

struct SpanCell {
    count: AtomicU64,
    total_ns: AtomicU64,
}

/// The live recorder: relaxed atomics behind `&self`, safe to share across
/// the engine, a store and [`par`](crate::par) worker threads.
pub struct MetricsRecorder {
    counters: [AtomicU64; Counter::ALL.len()],
    gauges: [AtomicU64; Gauge::ALL.len()],
    hists: [HistCell; Hist::ALL.len()],
    spans: [SpanCell; Span::ALL.len()],
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricsRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRecorder").finish_non_exhaustive()
    }
}

impl MetricsRecorder {
    /// A fresh all-zero recorder.
    pub fn new() -> MetricsRecorder {
        MetricsRecorder {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| HistCell::zeroed()),
            spans: std::array::from_fn(|_| SpanCell {
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
            }),
        }
    }

    /// Drains the current totals into an owned snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Counter::ALL
                .iter()
                .map(|c| {
                    (
                        c.name().to_string(),
                        self.counters[c.index()].load(Ordering::Relaxed),
                    )
                })
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|g| {
                    (
                        g.name().to_string(),
                        self.gauges[g.index()].load(Ordering::Relaxed),
                    )
                })
                .collect(),
            hists: Hist::ALL
                .iter()
                .map(|h| {
                    let cell = &self.hists[h.index()];
                    HistSnapshot {
                        name: h.name().to_string(),
                        count: cell.count.load(Ordering::Relaxed),
                        sum: cell.sum.load(Ordering::Relaxed),
                        buckets: cell
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                    }
                })
                .collect(),
            spans: Span::ALL
                .iter()
                .map(|s| {
                    let cell = &self.spans[s.index()];
                    SpanSnapshot {
                        name: s.name().to_string(),
                        count: cell.count.load(Ordering::Relaxed),
                        total_ns: cell.total_ns.load(Ordering::Relaxed),
                    }
                })
                .collect(),
        }
    }
}

impl Recorder for MetricsRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn add(&self, counter: Counter, delta: u64) {
        self.counters[counter.index()].fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    fn gauge(&self, gauge: Gauge, value: u64) {
        self.gauges[gauge.index()].store(value, Ordering::Relaxed);
    }

    #[inline]
    fn record(&self, hist: Hist, value: u64) {
        let cell = &self.hists[hist.index()];
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(value, Ordering::Relaxed);
        cell.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn span_start(&self) -> SpanStart {
        SpanStart(Some(Instant::now()))
    }

    #[inline]
    fn span_end(&self, span: Span, start: SpanStart) {
        let Some(t0) = start.0 else { return };
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let cell = &self.spans[span.index()];
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.total_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// One histogram's drained state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Stable dotted metric name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts ([`HIST_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// The bucketed `q`-quantile (0 < q ≤ 1): the inclusive upper edge of
    /// the log₂ bucket containing the rank-⌈q·count⌉ observation. Zero when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let count_f = 0.0_f64.max(q) * self.count_as_f64();
        // xtask-allow: no-lossy-cast (non-negative ceil, rank clamps to count)
        let rank = (count_f.ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(self.buckets.len().saturating_sub(1))
    }

    /// Mean observed value (`sum / count`), zero when empty. Derived from
    /// the exact running sum, so unlike [`quantile`](Self::quantile) it is
    /// not quantized to bucket edges.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // u64 → f64 rounds (never traps) beyond 2^53; fine for a mean.
        self.sum as f64 / self.count_as_f64()
    }

    fn count_as_f64(&self) -> f64 {
        // u64 → f64 is exact for every count a test run can reach and only
        // rounds (never traps) beyond 2^53; float targets are lint-exempt.
        self.count as f64
    }
}

/// One span's drained state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Stable dotted metric name.
    pub name: String,
    /// Completed span instances.
    pub count: u64,
    /// Total wall time across instances, nanoseconds.
    pub total_ns: u64,
}

/// A full drained recorder: every metric in catalogue order, zeros included,
/// with a stable hand-rolled JSON codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals as `(name, value)` in catalogue order.
    pub counters: Vec<(String, u64)>,
    /// Gauge values as `(name, value)` in catalogue order.
    pub gauges: Vec<(String, u64)>,
    /// Histograms in catalogue order.
    pub hists: Vec<HistSnapshot>,
    /// Spans in catalogue order.
    pub spans: Vec<SpanSnapshot>,
}

impl MetricsSnapshot {
    /// Encodes the snapshot as pretty-printed JSON with a stable key order.
    /// Histogram objects carry derived `p50`/`p95`/`p99` fields (recomputed,
    /// not round-tripped) alongside the raw bucket counts.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\n    \"{name}\": {value}");
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\n    \"{name}\": {value}");
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.hists.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \
                 \"p99\": {}, \"buckets\": [",
                h.name,
                h.count,
                h.sum,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            );
            for (j, b) in h.buckets.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(s, "{sep}{b}");
            }
            s.push_str("]}");
        }
        s.push_str("\n  },\n  \"spans\": {");
        for (i, sp) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\n    \"{}\": {{\"count\": {}, \"total_ns\": {}}}",
                sp.name, sp.count, sp.total_ns
            );
        }
        s.push_str("\n  }\n}");
        s
    }

    /// Parses a snapshot previously produced by [`MetricsSnapshot::to_json`].
    /// Derived fields (`p50`/`p95`/`p99`) are skipped, everything else must
    /// round-trip exactly.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, SnapshotParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let snap = p.snapshot()?;
        p.ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after snapshot"));
        }
        Ok(snap)
    }
}

/// Error from [`MetricsSnapshot::from_json`]: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotParseError {
    /// Byte offset in the input where parsing failed.
    pub pos: usize,
    /// What was expected.
    pub msg: &'static str,
}

impl std::fmt::Display for SnapshotParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "metrics snapshot parse error at byte {}: {}",
            self.pos, self.msg
        )
    }
}

impl std::error::Error for SnapshotParseError {}

/// Minimal recursive-descent parser for the snapshot's JSON subset:
/// two-level string-keyed objects, `u64` numbers and `u64` arrays.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> SnapshotParseError {
        SnapshotParseError { pos: self.pos, msg }
    }

    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, msg: &'static str) -> Result<(), SnapshotParseError> {
        self.ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, SnapshotParseError> {
        self.eat(b'"', "expected opening quote")?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("non-UTF-8 string"))?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err(self.err("escapes are not used in metric names"));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<u64, SnapshotParseError> {
        self.ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected unsigned integer"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("integer out of u64 range"))
    }

    fn number_array(&mut self) -> Result<Vec<u64>, SnapshotParseError> {
        self.eat(b'[', "expected '['")?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.number()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    /// Parses `{"name": value, ...}` where `value` is handled by `each`.
    fn object<F>(&mut self, mut each: F) -> Result<(), SnapshotParseError>
    where
        F: FnMut(&mut Self, String) -> Result<(), SnapshotParseError>,
    {
        self.eat(b'{', "expected '{'")?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.eat(b':', "expected ':' after key")?;
            each(self, key)?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn snapshot(&mut self) -> Result<MetricsSnapshot, SnapshotParseError> {
        let mut snap = MetricsSnapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            spans: Vec::new(),
        };
        self.object(|p, section| match section.as_str() {
            "counters" => p.object(|p, name| {
                let value = p.number()?;
                p.ws();
                snap.counters.push((name, value));
                Ok(())
            }),
            "gauges" => p.object(|p, name| {
                let value = p.number()?;
                snap.gauges.push((name, value));
                Ok(())
            }),
            "histograms" => p.object(|p, name| {
                let mut hist = HistSnapshot {
                    name,
                    count: 0,
                    sum: 0,
                    buckets: Vec::new(),
                };
                p.object(|p, field| {
                    match field.as_str() {
                        "count" => hist.count = p.number()?,
                        "sum" => hist.sum = p.number()?,
                        "buckets" => hist.buckets = p.number_array()?,
                        // Derived quantiles: parse and drop.
                        _ => {
                            p.number()?;
                        }
                    }
                    Ok(())
                })?;
                snap.hists.push(hist);
                Ok(())
            }),
            "spans" => p.object(|p, name| {
                let mut span = SpanSnapshot {
                    name,
                    count: 0,
                    total_ns: 0,
                };
                p.object(|p, field| {
                    match field.as_str() {
                        "count" => span.count = p.number()?,
                        "total_ns" => span.total_ns = p.number()?,
                        _ => {
                            p.number()?;
                        }
                    }
                    Ok(())
                })?;
                snap.spans.push(span);
                Ok(())
            }),
            _ => Err(p.err("unknown top-level section")),
        })?;
        Ok(snap)
    }
}

/// Uniform heap-footprint accounting for paper-style memory tables
/// (§6, Table 4): bytes of owned heap memory, excluding
/// `size_of::<Self>()` itself.
pub trait HeapBytes {
    /// Bytes of heap memory currently owned by `self`.
    fn heap_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(11), 2047);
    }

    #[test]
    fn quantiles_from_known_distribution() {
        let rec = MetricsRecorder::new();
        // 90 small values (bucket 1), 10 large (bucket 11: 1024..2047).
        for _ in 0..90 {
            rec.record(Hist::OracleUnionSize, 1);
        }
        for _ in 0..10 {
            rec.record(Hist::OracleUnionSize, 1500);
        }
        let snap = rec.snapshot();
        let h = snap
            .hists
            .iter()
            .find(|h| h.name == "oracle.union_size")
            .unwrap();
        assert_eq!(h.count, 100);
        assert_eq!(h.sum, 90 + 15_000);
        assert_eq!(h.quantile(0.50), 1);
        assert_eq!(h.quantile(0.90), 1);
        assert_eq!(h.quantile(0.95), 2047);
        assert_eq!(h.quantile(0.99), 2047);
        assert_eq!(h.quantile(1.0), 2047);
    }

    #[test]
    fn empty_quantile_is_zero() {
        let h = HistSnapshot {
            name: "x".into(),
            count: 0,
            sum: 0,
            buckets: vec![0; HIST_BUCKETS],
        };
        assert_eq!(h.quantile(0.5), 0);
        // Degenerate q on the empty histogram stays zero too.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(-1.0), 0);
        assert_eq!(h.quantile(2.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantile_degenerate_q_clamps_to_rank_bounds() {
        let rec = MetricsRecorder::new();
        for v in [1, 1500] {
            rec.record(Hist::OracleUnionSize, v);
        }
        let snap = rec.snapshot();
        let h = snap
            .hists
            .iter()
            .find(|h| h.name == "oracle.union_size")
            .unwrap();
        // q ≤ 0 clamps to rank 1 (the smallest bucket), q > 1 to rank
        // `count` (the largest) — never a panic, never an out-of-range rank.
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(-3.5), 1);
        assert_eq!(h.quantile(1.0), 2047);
        assert_eq!(h.quantile(7.0), 2047);
    }

    #[test]
    fn quantile_all_in_one_bucket_is_flat() {
        let rec = MetricsRecorder::new();
        // All 50 observations land in bucket 6 (32..63).
        for _ in 0..50 {
            rec.record(Hist::OracleUnionSize, 40);
        }
        let snap = rec.snapshot();
        let h = snap
            .hists
            .iter()
            .find(|h| h.name == "oracle.union_size")
            .unwrap();
        // Every quantile reports the same bucket edge.
        for q in [0.0, 0.01, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 63, "q={q}");
        }
        assert_eq!(h.mean(), 40.0);
    }

    #[test]
    fn mean_is_exact_not_bucketed() {
        let rec = MetricsRecorder::new();
        rec.record(Hist::OracleUnionSize, 10);
        rec.record(Hist::OracleUnionSize, 21);
        let snap = rec.snapshot();
        let h = snap
            .hists
            .iter()
            .find(|h| h.name == "oracle.union_size")
            .unwrap();
        assert_eq!(h.mean(), 15.5);
    }

    #[test]
    fn snapshot_contains_full_catalogue() {
        let snap = MetricsRecorder::new().snapshot();
        assert_eq!(snap.counters.len(), Counter::ALL.len());
        assert_eq!(snap.gauges.len(), Gauge::ALL.len());
        assert_eq!(snap.hists.len(), Hist::ALL.len());
        assert_eq!(snap.spans.len(), Span::ALL.len());
        for (h, name) in snap.hists.iter().zip(Hist::ALL.iter().map(|h| h.name())) {
            assert_eq!(h.name, name);
            assert_eq!(h.buckets.len(), HIST_BUCKETS);
        }
    }

    #[test]
    fn json_round_trip() {
        let rec = MetricsRecorder::new();
        rec.add(Counter::EngineInteractions, 40_000);
        rec.add(Counter::ExactMergeSmallSide, 123);
        rec.gauge(Gauge::StoreHeapBytes, 1 << 20);
        rec.record(Hist::EngineTieBatchSize, 7);
        rec.record(Hist::EngineTieBatchSize, 2);
        rec.record(Hist::ParChunkNs, 1_000_000);
        let start = rec.span_start();
        rec.span_end(Span::EngineRun, start);
        let snap = rec.snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        // And the encoder is stable: re-encoding the parsed snapshot is
        // byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(MetricsSnapshot::from_json("").is_err());
        assert!(MetricsSnapshot::from_json("{\"counters\": {").is_err());
        assert!(MetricsSnapshot::from_json("{\"bogus\": {}}").is_err());
        let ok = MetricsRecorder::new().snapshot().to_json();
        assert!(MetricsSnapshot::from_json(&format!("{ok} trailing")).is_err());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn noop_never_reads_the_clock() {
        let rec = NoopRecorder;
        let start = rec.span_start();
        assert!(start.0.is_none());
        rec.span_end(Span::EngineRun, start);
        assert!(!NoopRecorder::ENABLED);
        assert!(!<&NoopRecorder as Recorder>::ENABLED);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn borrowed_recorder_forwards() {
        let rec = MetricsRecorder::new();
        let by_ref = &rec;
        by_ref.add(Counter::OracleQueries, 3);
        Recorder::record(&by_ref, Hist::OracleUnionSize, 10);
        let snap = rec.snapshot();
        let queries = snap
            .counters
            .iter()
            .find(|(n, _)| n == "oracle.queries")
            .unwrap()
            .1;
        assert_eq!(queries, 3);
        assert!(<&&MetricsRecorder as Recorder>::ENABLED);
    }

    #[test]
    fn span_accumulates() {
        let rec = MetricsRecorder::new();
        for _ in 0..3 {
            let s = rec.span_start();
            rec.span_end(Span::GreedySelect, s);
        }
        let snap = rec.snapshot();
        let sp = snap
            .spans
            .iter()
            .find(|s| s.name == "greedy.select")
            .unwrap();
        assert_eq!(sp.count, 3);
    }
}
