//! The batched oracle serving tier: a long-lived, std-only server that
//! maps one or more frozen arenas (or layered directories) and answers
//! influence queries over a length-prefixed binary protocol.
//!
//! # Protocol (version 1)
//!
//! Every message — request or response — is one **frame**: a `u32` LE
//! payload length followed by that many payload bytes. The payload grammar
//! is fixed-width little-endian throughout (serde-free by construction):
//!
//! ```text
//! request   := op:u8 body
//! op 1      := INFLUENCE  oracle:u8 sets:u32 { len:u32 node:u32{len} }{sets}
//! op 2      := TOPK       oracle:u8 k:u32
//! op 3      := SUMMARY    oracle:u8 node:u32
//! op 4      := SHUTDOWN   (empty body)
//!
//! response  := status:u8 body
//! status 0  := OK; body per op:
//!   INFLUENCE → count:u32 { bits:u64 }{count}          (f64::to_bits)
//!   TOPK      → count:u32 { node:u32 marginal:u64 cumulative:u64 }{count}
//!   SUMMARY   → individual:u64 has_entries:u8
//!               [ len:u32 { target:u32 time:i64 }{len} ]
//!   SHUTDOWN  → (empty)
//! status 1  := ERROR; body = len:u32 utf8-message
//! ```
//!
//! Influence answers travel as raw `f64::to_bits` words, so what a client
//! decodes is **bit-identical** to calling
//! [`influence_many_frozen`](crate::FrozenExactOracle::influence_many_frozen)
//! in-process — the bench client asserts exactly that before timing.
//!
//! # Batching model
//!
//! One `INFLUENCE` frame carries many seed sets; the server answers the
//! whole frame with a single `influence_many_frozen` call, which fans the
//! sets over up to `threads` workers with per-worker scratch reuse (one
//! dedup buffer + one union bitset per worker for the whole batch). Clients
//! amortize framing and syscall cost the same way the in-process batch API
//! amortizes query setup.
//!
//! # Instrumentation
//!
//! Each accepted connection bumps `serve.connections`; each decoded frame
//! bumps `serve.requests`, lands its decode-to-flush wall time in
//! `serve.request_ns`, and opens a `serve.request` trace span (payload:
//! influence queries answered). Influence frames additionally bump
//! `serve.queries` per seed set and record the batch width in
//! `serve.batch_size`.

use crate::frozen::{FrozenApproxOracle, FrozenExactOracle};
use crate::maximize::{greedy_top_k_recorded, Selection};
use crate::obs::{metric_u64, Counter, Hist, Recorder, Span};
use crate::oracle::InfluenceOracle;
use crate::persist::{LayeredKind, LayeredManifest, MANIFEST_FILE};
use crate::trace::{SpanId, TraceEvent, TraceId, Tracer};
use crate::{LayeredApproxOracle, LayeredExactOracle};
use infprop_hll::CodecError;
use infprop_temporal_graph::{NodeId, Timestamp};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use std::{fs, thread};

/// Request op: batched influence queries.
pub const OP_INFLUENCE: u8 = 1;
/// Request op: greedy top-k seed selection.
pub const OP_TOPK: u8 = 2;
/// Request op: one node's individual influence (+ explicit summary
/// entries when the backing oracle keeps exact summaries).
pub const OP_SUMMARY: u8 = 3;
/// Request op: ask the server to stop accepting and drain.
pub const OP_SHUTDOWN: u8 = 4;

/// Response status: request answered.
pub const STATUS_OK: u8 = 0;
/// Response status: request rejected; body carries a message.
pub const STATUS_ERROR: u8 = 1;

/// Hard cap on a single frame's payload (64 MiB) — a malformed or hostile
/// length prefix fails fast instead of provoking a giant allocation.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Errors surfaced by the client-side protocol helpers.
#[derive(Debug)]
pub enum ServeError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The peer sent bytes that do not parse as protocol frames.
    Protocol(&'static str),
    /// The server answered with `STATUS_ERROR` and this message.
    Remote(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
            ServeError::Protocol(m) => write!(f, "serve protocol error: {m}"),
            ServeError::Remote(m) => write!(f, "server rejected request: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame and flushes the stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds MAX_FRAME_LEN")
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer closed between frames); EOF mid-frame is an
/// error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME_LEN",
        ));
    }
    let mut payload = vec![0u8; len as usize]; // xtask-allow: no-lossy-cast (u32 fits usize)
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Payload codec — bounds-checked reader + little-endian writers
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over one request payload. Every getter returns a
/// protocol error instead of panicking, so a malformed frame can never
/// bring the server down.
struct ByteReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, at: 0 }
    }

    /// Borrows the next `n` bytes, or errors without panicking.
    // xtask-contract: alloc-free, no-panic
    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ServeError::Protocol("request truncated"))?;
        let out = self
            .buf
            .get(self.at..end)
            .ok_or(ServeError::Protocol("request truncated"))?;
        self.at = end;
        Ok(out)
    }

    // xtask-contract: alloc-free, no-panic
    fn u8(&mut self) -> Result<u8, ServeError> {
        let b = self.take(1)?;
        b.first()
            .copied()
            .ok_or(ServeError::Protocol("request truncated"))
    }

    // xtask-contract: alloc-free, no-panic
    fn u32(&mut self) -> Result<u32, ServeError> {
        let b = self.take(4)?;
        match b {
            [a, bb, c, d] => Ok(u32::from_le_bytes([*a, *bb, *c, *d])),
            _ => Err(ServeError::Protocol("request truncated")),
        }
    }

    // xtask-contract: alloc-free, no-panic
    fn u64(&mut self) -> Result<u64, ServeError> {
        let b = self.take(8)?;
        match b {
            [a, bb, c, d, e, ff, g, h] => {
                Ok(u64::from_le_bytes([*a, *bb, *c, *d, *e, *ff, *g, *h]))
            }
            _ => Err(ServeError::Protocol("request truncated")),
        }
    }

    // xtask-contract: alloc-free, no-panic
    fn i64(&mut self) -> Result<i64, ServeError> {
        self.u64().map(|v| i64::from_le_bytes(v.to_le_bytes()))
    }

    /// True iff every payload byte was consumed — trailing garbage is a
    /// protocol error, not something to ignore.
    // xtask-contract: alloc-free, no-panic
    fn finished(&self) -> bool {
        self.at == self.buf.len()
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Client-side request encoders / response decoders
// ---------------------------------------------------------------------------

/// Encodes an `INFLUENCE` request payload: answer `Inf(S_i)` for every
/// seed set against oracle `oracle` (index into the server's mapped list).
pub fn encode_influence(oracle: u8, seed_sets: &[Vec<NodeId>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + seed_sets.iter().map(|s| 4 + 4 * s.len()).sum::<usize>());
    out.push(OP_INFLUENCE);
    out.push(oracle);
    put_u32(&mut out, metric_u64(seed_sets.len()) as u32); // xtask-allow: no-lossy-cast (guarded by MAX_FRAME_LEN framing)
    for set in seed_sets {
        put_u32(&mut out, metric_u64(set.len()) as u32); // xtask-allow: no-lossy-cast (guarded by MAX_FRAME_LEN framing)
        for &node in set {
            put_u32(&mut out, node.0);
        }
    }
    out
}

/// Encodes a `TOPK` request payload.
pub fn encode_topk(oracle: u8, k: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(6);
    out.push(OP_TOPK);
    out.push(oracle);
    put_u32(&mut out, k);
    out
}

/// Encodes a `SUMMARY` request payload.
pub fn encode_summary(oracle: u8, node: NodeId) -> Vec<u8> {
    let mut out = Vec::with_capacity(6);
    out.push(OP_SUMMARY);
    out.push(oracle);
    put_u32(&mut out, node.0);
    out
}

/// Encodes a `SHUTDOWN` request payload.
pub fn encode_shutdown() -> Vec<u8> {
    vec![OP_SHUTDOWN]
}

/// Splits a response payload into its body, or surfaces the server's error
/// message / a protocol error.
fn decode_status(payload: &[u8]) -> Result<&[u8], ServeError> {
    match payload.split_first() {
        Some((&STATUS_OK, body)) => Ok(body),
        Some((&STATUS_ERROR, body)) => {
            let mut r = ByteReader::new(body);
            let len = r.u32()? as usize; // xtask-allow: no-lossy-cast (u32 fits usize)
            let msg = r.take(len)?;
            Err(ServeError::Remote(
                String::from_utf8_lossy(msg).into_owned(),
            ))
        }
        _ => Err(ServeError::Protocol("empty or unknown response status")),
    }
}

/// Decodes an `INFLUENCE` response into the per-set answers. The `f64`s
/// are reconstructed from raw bits, so they compare bit-identical to the
/// in-process batch API.
pub fn decode_influence_response(payload: &[u8]) -> Result<Vec<f64>, ServeError> {
    let body = decode_status(payload)?;
    let mut r = ByteReader::new(body);
    let n = r.u32()? as usize; // xtask-allow: no-lossy-cast (u32 fits usize)
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(f64::from_bits(r.u64()?));
    }
    if !r.finished() {
        return Err(ServeError::Protocol("trailing bytes in influence response"));
    }
    Ok(out)
}

/// Decodes a `TOPK` response into the greedy selections.
pub fn decode_topk_response(payload: &[u8]) -> Result<Vec<Selection>, ServeError> {
    let body = decode_status(payload)?;
    let mut r = ByteReader::new(body);
    let n = r.u32()? as usize; // xtask-allow: no-lossy-cast (u32 fits usize)
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let node = NodeId(r.u32()?);
        let marginal = f64::from_bits(r.u64()?);
        let cumulative = f64::from_bits(r.u64()?);
        out.push(Selection {
            node,
            marginal,
            cumulative,
        });
    }
    if !r.finished() {
        return Err(ServeError::Protocol("trailing bytes in topk response"));
    }
    Ok(out)
}

/// One node's served summary: its individual influence, plus the explicit
/// frozen summary entries when the backing oracle keeps them (exact
/// families only — sketch-backed oracles answer `entries: None`).
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryReply {
    /// `|σω(node)|` (exact) or its sketch estimate (approx), bit-identical
    /// to the in-process [`InfluenceOracle::individual`] answer.
    pub individual: f64,
    /// The `(target, earliest end time)` entries of the node's frozen
    /// summary, when the oracle stores them explicitly.
    pub entries: Option<Vec<(NodeId, Timestamp)>>,
}

/// Decodes a `SUMMARY` response.
pub fn decode_summary_response(payload: &[u8]) -> Result<SummaryReply, ServeError> {
    let body = decode_status(payload)?;
    let mut r = ByteReader::new(body);
    let individual = f64::from_bits(r.u64()?);
    let entries = match r.u8()? {
        0 => None,
        1 => {
            let len = r.u32()? as usize; // xtask-allow: no-lossy-cast (u32 fits usize)
            let mut es = Vec::with_capacity(len);
            for _ in 0..len {
                let target = NodeId(r.u32()?);
                let time = r.i64()?;
                es.push((target, Timestamp(time)));
            }
            Some(es)
        }
        _ => return Err(ServeError::Protocol("bad has_entries flag")),
    };
    if !r.finished() {
        return Err(ServeError::Protocol("trailing bytes in summary response"));
    }
    Ok(SummaryReply {
        individual,
        entries,
    })
}

/// Checks a `SHUTDOWN` (or any body-less) response for success.
pub fn decode_ack_response(payload: &[u8]) -> Result<(), ServeError> {
    let body = decode_status(payload)?;
    if body.is_empty() {
        Ok(())
    } else {
        Err(ServeError::Protocol("trailing bytes in ack response"))
    }
}

// ---------------------------------------------------------------------------
// ServedOracle — the mapped oracles a server answers from
// ---------------------------------------------------------------------------

/// One mapped oracle a server instance answers queries from: a frozen
/// arena file loaded zero-copy through
/// [`ArenaBytes`](crate::ArenaBytes), or a layered directory whose base
/// arena is.
pub enum ServedOracle {
    /// A frozen exact arena (`IPFE`).
    FrozenExact(FrozenExactOracle),
    /// A frozen register arena (`IPFA`).
    FrozenApprox(FrozenApproxOracle),
    /// A layered exact directory (base arena + delta overlay).
    LayeredExact(Box<LayeredExactOracle>),
    /// A layered approx directory (base registers + delta overlay).
    LayeredApprox(Box<LayeredApproxOracle>),
}

impl ServedOracle {
    /// Maps `path` — a frozen arena file (magic-sniffed `IPFE`/`IPFA`) or
    /// a layered directory (holds a `MANIFEST`) — validates it deeply, and
    /// records the wall time in the `oracle.load_ns` histogram and the
    /// `oracle.load` span.
    pub fn open_recorded<R: Recorder>(path: &Path, rec: &R) -> Result<Self, CodecError> {
        let t0 = rec.span_start();
        let out = Self::open_impl(path)?;
        if let Some(ns) = t0.elapsed_ns() {
            rec.record(Hist::OracleLoadNs, ns);
        }
        rec.span_end(Span::OracleLoad, t0);
        Ok(out)
    }

    fn open_impl(path: &Path) -> Result<Self, CodecError> {
        if path.join(MANIFEST_FILE).is_file() {
            let manifest = LayeredManifest::read_from_dir(path)?;
            return Ok(match manifest.kind {
                LayeredKind::Exact => {
                    ServedOracle::LayeredExact(Box::new(LayeredExactOracle::open_layered(path)?))
                }
                LayeredKind::Approx => {
                    ServedOracle::LayeredApprox(Box::new(LayeredApproxOracle::open_layered(path)?))
                }
            });
        }
        let mut magic = [0u8; 4];
        fs::File::open(path)?.read_exact(&mut magic)?;
        match &magic {
            b"IPFE" => {
                let oracle = FrozenExactOracle::load(path)?;
                oracle
                    .validate()
                    .map_err(|_| CodecError::Corrupt("frozen arena violates paper invariants"))?;
                Ok(ServedOracle::FrozenExact(oracle))
            }
            b"IPFA" => {
                let oracle = FrozenApproxOracle::load(path)?;
                oracle.validate().map_err(|_| {
                    CodecError::Corrupt("frozen register arena violates its invariants")
                })?;
                Ok(ServedOracle::FrozenApprox(oracle))
            }
            _ => Err(CodecError::BadMagic),
        }
    }

    /// Human-readable description for startup logging.
    pub fn describe(&self) -> String {
        match self {
            ServedOracle::FrozenExact(o) => format!(
                "IPFE frozen exact arena ({} nodes, {} entries)",
                o.num_nodes(),
                o.total_entries()
            ),
            ServedOracle::FrozenApprox(o) => format!(
                "IPFA frozen register arena ({} nodes, precision {})",
                o.num_nodes(),
                o.precision()
            ),
            ServedOracle::LayeredExact(o) => format!(
                "layered exact directory ({} nodes)",
                InfluenceOracle::num_nodes(o.as_ref())
            ),
            ServedOracle::LayeredApprox(o) => format!(
                "layered approx directory ({} nodes, precision {})",
                InfluenceOracle::num_nodes(o.as_ref()),
                o.precision()
            ),
        }
    }

    /// Universe size — seeds at or past this index are rejected.
    pub fn num_nodes(&self) -> usize {
        match self {
            ServedOracle::FrozenExact(o) => o.num_nodes(),
            ServedOracle::FrozenApprox(o) => o.num_nodes(),
            ServedOracle::LayeredExact(o) => InfluenceOracle::num_nodes(o.as_ref()),
            ServedOracle::LayeredApprox(o) => InfluenceOracle::num_nodes(o.as_ref()),
        }
    }

    /// The batched influence query every `INFLUENCE` frame funnels into.
    pub fn influence_many<R: Recorder>(
        &self,
        seed_sets: &[Vec<NodeId>],
        threads: usize,
        rec: &R,
    ) -> Vec<f64> {
        match self {
            ServedOracle::FrozenExact(o) => {
                o.influence_many_frozen_recorded(seed_sets, threads, rec)
            }
            ServedOracle::FrozenApprox(o) => {
                o.influence_many_frozen_recorded(seed_sets, threads, rec)
            }
            ServedOracle::LayeredExact(o) => {
                o.influence_many_frozen_recorded(seed_sets, threads, rec)
            }
            ServedOracle::LayeredApprox(o) => {
                o.influence_many_frozen_recorded(seed_sets, threads, rec)
            }
        }
    }

    fn top_k<R: Recorder>(&self, k: usize, threads: usize, rec: &R) -> Vec<Selection> {
        match self {
            ServedOracle::FrozenExact(o) => greedy_top_k_recorded(o, k, threads, rec),
            ServedOracle::FrozenApprox(o) => greedy_top_k_recorded(o, k, threads, rec),
            ServedOracle::LayeredExact(o) => greedy_top_k_recorded(o.as_ref(), k, threads, rec),
            ServedOracle::LayeredApprox(o) => greedy_top_k_recorded(o.as_ref(), k, threads, rec),
        }
    }

    fn individual(&self, node: NodeId) -> f64 {
        match self {
            ServedOracle::FrozenExact(o) => o.individual(node),
            ServedOracle::FrozenApprox(o) => o.individual(node),
            ServedOracle::LayeredExact(o) => o.individual(node),
            ServedOracle::LayeredApprox(o) => o.individual(node),
        }
    }

    /// Explicit summary entries for exact families; `None` for sketches.
    fn summary_entries(&self, node: NodeId) -> Option<Vec<(NodeId, Timestamp)>> {
        match self {
            ServedOracle::FrozenExact(o) => Some(o.summary(node).to_vec()),
            ServedOracle::LayeredExact(o) => Some(o.summary(node)),
            ServedOracle::FrozenApprox(_) | ServedOracle::LayeredApprox(_) => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

/// What handling one request frame produced.
struct Handled {
    /// The response payload to frame back.
    response: Vec<u8>,
    /// Influence queries answered in this frame (trace span payload).
    queries: u64,
    /// The frame asked the server to shut down.
    shutdown: bool,
}

fn error_response(msg: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + msg.len());
    out.push(STATUS_ERROR);
    put_u32(&mut out, metric_u64(msg.len()) as u32); // xtask-allow: no-lossy-cast (short literal messages)
    out.extend_from_slice(msg.as_bytes());
    out
}

fn resolve_oracle(oracles: &[ServedOracle], idx: u8) -> Result<&ServedOracle, Vec<u8>> {
    oracles
        .get(usize::from(idx))
        .ok_or_else(|| error_response("oracle index out of range"))
}

/// Decodes and answers one request frame against `oracles`. Infallible by
/// construction: malformed input becomes a `STATUS_ERROR` response, never
/// a panic or a dropped connection.
fn handle_request<R: Recorder>(
    oracles: &[ServedOracle],
    payload: &[u8],
    threads: usize,
    rec: &R,
) -> Handled {
    match handle_request_inner(oracles, payload, threads, rec) {
        Ok(h) => h,
        Err(ServeError::Protocol(msg)) => Handled {
            response: error_response(msg),
            queries: 0,
            shutdown: false,
        },
        Err(e) => Handled {
            response: error_response(&e.to_string()),
            queries: 0,
            shutdown: false,
        },
    }
}

fn handle_request_inner<R: Recorder>(
    oracles: &[ServedOracle],
    payload: &[u8],
    threads: usize,
    rec: &R,
) -> Result<Handled, ServeError> {
    let mut r = ByteReader::new(payload);
    let op = r.u8()?;
    match op {
        OP_INFLUENCE => {
            let idx = r.u8()?;
            let oracle = match resolve_oracle(oracles, idx) {
                Ok(o) => o,
                Err(response) => {
                    return Ok(Handled {
                        response,
                        queries: 0,
                        shutdown: false,
                    })
                }
            };
            let n = oracle.num_nodes();
            let sets = r.u32()? as usize; // xtask-allow: no-lossy-cast (u32 fits usize)
            let mut seed_sets = Vec::with_capacity(sets.min(1 << 16));
            for _ in 0..sets {
                let len = r.u32()? as usize; // xtask-allow: no-lossy-cast (u32 fits usize)
                let mut set = Vec::with_capacity(len.min(1 << 16));
                for _ in 0..len {
                    let node = r.u32()? as usize; // xtask-allow: no-lossy-cast (u32 fits usize)
                    if node >= n {
                        return Ok(Handled {
                            response: error_response("seed node outside the oracle universe"),
                            queries: 0,
                            shutdown: false,
                        });
                    }
                    set.push(NodeId(node as u32)); // xtask-allow: no-lossy-cast (decoded from u32)
                }
                seed_sets.push(set);
            }
            if !r.finished() {
                return Err(ServeError::Protocol("trailing bytes in influence request"));
            }
            let answers = oracle.influence_many(&seed_sets, threads, rec);
            rec.add(Counter::ServeQueries, metric_u64(answers.len()));
            rec.record(Hist::ServeBatchSize, metric_u64(answers.len()));
            let mut response = Vec::with_capacity(5 + 8 * answers.len());
            response.push(STATUS_OK);
            put_u32(&mut response, metric_u64(answers.len()) as u32); // xtask-allow: no-lossy-cast (bounded by request framing)
            for v in &answers {
                put_u64(&mut response, v.to_bits());
            }
            Ok(Handled {
                response,
                queries: metric_u64(answers.len()),
                shutdown: false,
            })
        }
        OP_TOPK => {
            let idx = r.u8()?;
            let oracle = match resolve_oracle(oracles, idx) {
                Ok(o) => o,
                Err(response) => {
                    return Ok(Handled {
                        response,
                        queries: 0,
                        shutdown: false,
                    })
                }
            };
            let k = r.u32()? as usize; // xtask-allow: no-lossy-cast (u32 fits usize)
            if !r.finished() {
                return Err(ServeError::Protocol("trailing bytes in topk request"));
            }
            let picks = oracle.top_k(k.min(oracle.num_nodes()), threads, rec);
            let mut response = Vec::with_capacity(5 + 20 * picks.len());
            response.push(STATUS_OK);
            put_u32(&mut response, metric_u64(picks.len()) as u32); // xtask-allow: no-lossy-cast (k fits u32)
            for s in &picks {
                put_u32(&mut response, s.node.0);
                put_u64(&mut response, s.marginal.to_bits());
                put_u64(&mut response, s.cumulative.to_bits());
            }
            Ok(Handled {
                response,
                queries: metric_u64(picks.len()),
                shutdown: false,
            })
        }
        OP_SUMMARY => {
            let idx = r.u8()?;
            let oracle = match resolve_oracle(oracles, idx) {
                Ok(o) => o,
                Err(response) => {
                    return Ok(Handled {
                        response,
                        queries: 0,
                        shutdown: false,
                    })
                }
            };
            let node = r.u32()? as usize; // xtask-allow: no-lossy-cast (u32 fits usize)
            if !r.finished() {
                return Err(ServeError::Protocol("trailing bytes in summary request"));
            }
            if node >= oracle.num_nodes() {
                return Ok(Handled {
                    response: error_response("node outside the oracle universe"),
                    queries: 0,
                    shutdown: false,
                });
            }
            let node = NodeId(node as u32); // xtask-allow: no-lossy-cast (decoded from u32)
            let mut response = Vec::with_capacity(16);
            response.push(STATUS_OK);
            put_u64(&mut response, oracle.individual(node).to_bits());
            match oracle.summary_entries(node) {
                Some(entries) => {
                    response.push(1);
                    put_u32(&mut response, metric_u64(entries.len()) as u32); // xtask-allow: no-lossy-cast (entries bounded by u32 format field)
                    for &(target, time) in &entries {
                        put_u32(&mut response, target.0);
                        put_i64(&mut response, time.get());
                    }
                }
                None => response.push(0),
            }
            Ok(Handled {
                response,
                queries: 1,
                shutdown: false,
            })
        }
        OP_SHUTDOWN => {
            if !r.finished() {
                return Err(ServeError::Protocol("trailing bytes in shutdown request"));
            }
            Ok(Handled {
                response: vec![STATUS_OK],
                queries: 0,
                shutdown: true,
            })
        }
        _ => Err(ServeError::Protocol("unknown request op")),
    }
}

/// Answers one request frame with full serve instrumentation — the exact
/// routine every connection thread runs per frame, exposed so the bench
/// client and tests can drive the engine in-process. Returns the response
/// payload and whether the frame requested shutdown.
pub fn answer_frame<R: Recorder, T: Tracer>(
    oracles: &[ServedOracle],
    payload: &[u8],
    threads: usize,
    rec: &R,
    tracer: T,
) -> (Vec<u8>, bool) {
    let t0 = rec.span_start();
    let trace = if T::ENABLED {
        TraceId(tracer.alloc_traces(1))
    } else {
        TraceId::NONE
    };
    let span = tracer.begin(trace, SpanId::NONE, TraceEvent::ServeRequest);
    let handled = handle_request(oracles, payload, threads, rec);
    rec.add(Counter::ServeRequests, 1);
    if let Some(ns) = t0.elapsed_ns() {
        rec.record(Hist::ServeRequestNs, ns);
    }
    tracer.end(span, TraceEvent::ServeRequest, handled.queries);
    (handled.response, handled.shutdown)
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// Where a [`Server`] listens and how wide each batch fans out.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Bind a Unix socket at this path (a stale socket file is replaced).
    pub unix_path: Option<PathBuf>,
    /// Bind a TCP listener at this address (e.g. `127.0.0.1:0`).
    pub tcp_addr: Option<String>,
    /// Worker fan-out for each influence batch (0 ⇒ 1).
    pub threads: usize,
}

/// Poll interval for the nonblocking accept loop and the per-connection
/// read timeout — how quickly the server notices a shutdown request.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// A long-lived serving instance: one or more mapped oracles behind a Unix
/// socket and/or TCP listener. `run` blocks until a client sends
/// `SHUTDOWN` (or [`Server::stop_handle`] is flipped), then drains every
/// open connection and returns.
pub struct Server {
    oracles: Vec<ServedOracle>,
    unix: Option<(UnixListener, PathBuf)>,
    tcp: Option<TcpListener>,
    threads: usize,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the configured listeners (at least one must be configured)
    /// around `oracles` (at least one).
    pub fn bind(config: &ServerConfig, oracles: Vec<ServedOracle>) -> io::Result<Self> {
        if oracles.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a server needs at least one oracle",
            ));
        }
        if config.unix_path.is_none() && config.tcp_addr.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a server needs a unix socket path or a tcp address",
            ));
        }
        let unix = match &config.unix_path {
            Some(path) => {
                // A dead server leaves its socket file behind; binding over
                // it is the expected restart path.
                let _ = fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some((l, path.clone()))
            }
            None => None,
        };
        let tcp = match &config.tcp_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        Ok(Server {
            oracles,
            unix,
            tcp,
            threads: config.threads.max(1),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actual TCP address bound (resolves port 0), if TCP is enabled.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// A flag that makes [`run`](Self::run) wind down when set — the
    /// programmatic equivalent of a `SHUTDOWN` frame (e.g. from a signal
    /// handler).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// The mapped oracles, in index order (for startup logging).
    pub fn oracles(&self) -> &[ServedOracle] {
        &self.oracles
    }

    /// Serves until shutdown: accepts connections from both listeners,
    /// answers frames on one thread per connection, and returns once a
    /// `SHUTDOWN` frame (or the stop handle) fires and every connection
    /// drains. Per-connection I/O errors drop that connection only.
    pub fn run<R: Recorder, T: Tracer>(&self, rec: &R, tracer: T) -> io::Result<()> {
        let stop: &AtomicBool = &self.stop;
        let oracles = &self.oracles[..];
        let threads = self.threads;
        thread::scope(|scope| {
            let mut result = Ok(());
            while !stop.load(Ordering::Acquire) {
                let mut accepted = false;
                let mut spawn = |conn: Conn| {
                    accepted = true;
                    rec.add(Counter::ServeConnections, 1);
                    let worker = tracer.worker();
                    scope.spawn(move || {
                        serve_connection(conn, oracles, threads, stop, rec, worker);
                    });
                };
                if let Some((listener, _)) = &self.unix {
                    match listener.accept() {
                        Ok((stream, _)) => spawn(Conn::Unix(stream)),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => {
                            // A broken listener is fatal; flip the stop flag
                            // so in-flight connections drain instead of
                            // deadlocking the scope join.
                            result = Err(e);
                            stop.store(true, Ordering::Release);
                            break;
                        }
                    }
                }
                if let Some(listener) = &self.tcp {
                    match listener.accept() {
                        Ok((stream, _)) => spawn(Conn::Tcp(stream)),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => {
                            result = Err(e);
                            stop.store(true, Ordering::Release);
                            break;
                        }
                    }
                }
                if !accepted {
                    thread::sleep(POLL_INTERVAL);
                }
            }
            result
        })
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some((_, path)) = &self.unix {
            let _ = fs::remove_file(path);
        }
    }
}

/// Either transport, unified behind `Read + Write` with a read timeout so
/// connection threads notice the stop flag while idle.
enum Conn {
    /// A Unix-domain connection.
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl Conn {
    fn set_read_timeout(&self, d: Duration) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(Some(d)),
            Conn::Tcp(s) => s.set_read_timeout(Some(d)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// One connection's frame loop: read frame → answer → write frame, until
/// clean EOF, an I/O error (drops just this connection), a `SHUTDOWN`
/// frame, or the server-wide stop flag.
fn serve_connection<R: Recorder, T: Tracer>(
    mut conn: Conn,
    oracles: &[ServedOracle],
    threads: usize,
    stop: &AtomicBool,
    rec: &R,
    tracer: T,
) {
    if conn.set_read_timeout(POLL_INTERVAL).is_err() {
        return;
    }
    while !stop.load(Ordering::Acquire) {
        let payload = match read_frame_timeout(&mut conn) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF between frames
            Err(Timeout::Idle) => continue,
            Err(Timeout::Fatal) => return,
        };
        let (response, shutdown) = answer_frame(oracles, &payload, threads, rec, tracer);
        if write_frame(&mut conn, &response).is_err() {
            return;
        }
        if shutdown {
            stop.store(true, Ordering::Release);
            return;
        }
    }
}

/// Why a timed read loop iteration yielded no frame.
enum Timeout {
    /// The read timed out with no bytes — poll the stop flag and retry.
    Idle,
    /// The stream is unusable (error or EOF mid-frame) — drop it.
    Fatal,
}

/// [`read_frame`] over a stream with a read timeout: distinguishes "no
/// frame yet" (timeout before any header byte) from real errors. A timeout
/// *inside* a frame keeps reading — the header already committed the peer
/// to sending the rest.
fn read_frame_timeout(conn: &mut Conn) -> Result<Option<Vec<u8>>, Timeout> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match conn.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(Timeout::Fatal),
            Ok(n) => got += n,
            Err(e)
                if got == 0
                    && (e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut) =>
            {
                return Err(Timeout::Idle)
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(Timeout::Fatal),
        }
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(Timeout::Fatal);
    }
    let mut payload = vec![0u8; len as usize]; // xtask-allow: no-lossy-cast (u32 fits usize)
    let mut at = 0;
    while at < payload.len() {
        match conn.read(&mut payload[at..]) {
            Ok(0) => return Err(Timeout::Fatal),
            Ok(n) => at += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(Timeout::Fatal),
        }
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// A minimal blocking client (CLI bench-serve + tests)
// ---------------------------------------------------------------------------

/// A blocking protocol client over either transport.
pub struct Client {
    conn: Conn,
}

impl Client {
    /// Connects to a Unix socket server.
    pub fn connect_unix(path: &Path) -> io::Result<Self> {
        Ok(Client {
            conn: Conn::Unix(UnixStream::connect(path)?),
        })
    }

    /// Connects to a TCP server.
    pub fn connect_tcp(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            conn: Conn::Tcp(stream),
        })
    }

    /// Sends one request payload and reads the response payload.
    pub fn roundtrip(&mut self, request: &[u8]) -> Result<Vec<u8>, ServeError> {
        write_frame(&mut self.conn, request)?;
        read_frame(&mut self.conn)?.ok_or(ServeError::Protocol("server closed before responding"))
    }

    /// Batched influence: `Inf(S_i)` for every seed set, bit-identical to
    /// the in-process batch API.
    pub fn influence_many(
        &mut self,
        oracle: u8,
        seed_sets: &[Vec<NodeId>],
    ) -> Result<Vec<f64>, ServeError> {
        let resp = self.roundtrip(&encode_influence(oracle, seed_sets))?;
        decode_influence_response(&resp)
    }

    /// Greedy top-k selection.
    pub fn top_k(&mut self, oracle: u8, k: u32) -> Result<Vec<Selection>, ServeError> {
        let resp = self.roundtrip(&encode_topk(oracle, k))?;
        decode_topk_response(&resp)
    }

    /// One node's summary.
    pub fn summary(&mut self, oracle: u8, node: NodeId) -> Result<SummaryReply, ServeError> {
        let resp = self.roundtrip(&encode_summary(oracle, node))?;
        decode_summary_response(&resp)
    }

    /// Asks the server to shut down and waits for the acknowledgement.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        let resp = self.roundtrip(&encode_shutdown())?;
        decode_ack_response(&resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{MetricsRecorder, NoopRecorder};
    use crate::trace::NoopTracer;
    use crate::ExactIrs;
    use infprop_temporal_graph::{InteractionNetwork, Window};

    fn fixture() -> FrozenExactOracle {
        let net = InteractionNetwork::from_triples([
            (0, 1, 1),
            (0, 3, 2),
            (3, 2, 3),
            (4, 2, 6),
            (1, 2, 4),
            (2, 4, 3),
            (2, 5, 5),
            (2, 5, 8),
        ]);
        ExactIrs::compute(&net, Window(3)).freeze()
    }

    fn seed_sets() -> Vec<Vec<NodeId>> {
        vec![
            vec![NodeId(0)],
            vec![NodeId(2), NodeId(4)],
            vec![NodeId(1), NodeId(2), NodeId(3)],
            vec![],
        ]
    }

    #[test]
    fn influence_frame_round_trips_bit_identical() {
        let oracle = fixture();
        let expected = oracle.influence_many_frozen(&seed_sets(), 1);
        let served = vec![ServedOracle::FrozenExact(oracle)];
        let req = encode_influence(0, &seed_sets());
        let (resp, shutdown) = answer_frame(&served, &req, 1, &NoopRecorder, NoopTracer);
        assert!(!shutdown);
        let got = decode_influence_response(&resp).unwrap();
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn topk_and_summary_frames_match_in_process() {
        let oracle = fixture();
        let expected = greedy_top_k_recorded(&oracle, 2, 1, &NoopRecorder);
        let expected_summary = oracle.summary(NodeId(2)).to_vec();
        let expected_individual = oracle.individual(NodeId(2));
        let served = vec![ServedOracle::FrozenExact(oracle)];

        let (resp, _) = answer_frame(&served, &encode_topk(0, 2), 1, &NoopRecorder, NoopTracer);
        let picks = decode_topk_response(&resp).unwrap();
        assert_eq!(picks.len(), expected.len());
        for (g, e) in picks.iter().zip(&expected) {
            assert_eq!(g.node, e.node);
            assert_eq!(g.marginal.to_bits(), e.marginal.to_bits());
            assert_eq!(g.cumulative.to_bits(), e.cumulative.to_bits());
        }

        let (resp, _) = answer_frame(
            &served,
            &encode_summary(0, NodeId(2)),
            1,
            &NoopRecorder,
            NoopTracer,
        );
        let reply = decode_summary_response(&resp).unwrap();
        assert_eq!(reply.individual.to_bits(), expected_individual.to_bits());
        assert_eq!(reply.entries.as_deref(), Some(&expected_summary[..]));
    }

    #[test]
    fn malformed_frames_answer_errors_not_panics() {
        let served = vec![ServedOracle::FrozenExact(fixture())];
        for bad in [
            &[][..],                            // empty payload
            &[99][..],                          // unknown op
            &[OP_INFLUENCE][..],                // truncated header
            &[OP_INFLUENCE, 0, 1][..],          // truncated set count
            &[OP_TOPK, 7, 1, 0, 0, 0][..],      // oracle index out of range
            &[OP_SUMMARY, 0, 200, 0, 0, 0][..], // node outside universe
            &[OP_SHUTDOWN, 1][..],              // trailing bytes
        ] {
            let (resp, shutdown) = answer_frame(&served, bad, 1, &NoopRecorder, NoopTracer);
            assert!(!shutdown, "malformed frame must not shut the server down");
            assert!(decode_status(&resp).is_err());
        }
    }

    #[test]
    fn out_of_universe_seed_rejected() {
        let served = vec![ServedOracle::FrozenExact(fixture())];
        let req = encode_influence(0, &[vec![NodeId(77)]]);
        let (resp, _) = answer_frame(&served, &req, 1, &NoopRecorder, NoopTracer);
        assert!(matches!(
            decode_influence_response(&resp),
            Err(ServeError::Remote(_))
        ));
    }

    #[test]
    fn shutdown_frame_acks_and_signals() {
        let served = vec![ServedOracle::FrozenExact(fixture())];
        let (resp, shutdown) =
            answer_frame(&served, &encode_shutdown(), 1, &NoopRecorder, NoopTracer);
        assert!(shutdown);
        assert!(decode_ack_response(&resp).is_ok());
    }

    #[test]
    fn serve_metrics_are_recorded() {
        let served = vec![ServedOracle::FrozenExact(fixture())];
        let rec = MetricsRecorder::new();
        let req = encode_influence(0, &seed_sets());
        let _ = answer_frame(&served, &req, 1, &rec, NoopTracer);
        let snap = rec.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap()
        };
        let hist_count = |name: &str| snap.hists.iter().find(|h| h.name == name).unwrap().count;
        assert_eq!(counter("serve.requests"), 1);
        assert_eq!(counter("serve.queries"), 4);
        assert_eq!(hist_count("serve.batch_size"), 1);
        assert_eq!(hist_count("serve.request_ns"), 1);
    }

    #[test]
    fn server_over_unix_socket_round_trips_and_drains() {
        let dir = std::env::temp_dir().join(format!("infprop-serve-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("serve.sock");
        let oracle = fixture();
        let expected = oracle.influence_many_frozen(&seed_sets(), 1);
        let server = Server::bind(
            &ServerConfig {
                unix_path: Some(sock.clone()),
                tcp_addr: None,
                threads: 1,
            },
            vec![ServedOracle::FrozenExact(oracle)],
        )
        .unwrap();
        thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&NoopRecorder, NoopTracer));
            let mut client = connect_with_retry(&sock);
            let got = client.influence_many(0, &seed_sets()).unwrap();
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.to_bits(), e.to_bits());
            }
            client.shutdown().unwrap();
            handle.join().unwrap().unwrap();
        });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn server_over_tcp_round_trips() {
        let oracle = fixture();
        let expected = oracle.influence_many_frozen(&seed_sets(), 1);
        let server = Server::bind(
            &ServerConfig {
                unix_path: None,
                tcp_addr: Some("127.0.0.1:0".into()),
                threads: 1,
            },
            vec![ServedOracle::FrozenExact(oracle)],
        )
        .unwrap();
        let addr = server.tcp_addr().unwrap();
        thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&NoopRecorder, NoopTracer));
            let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
            let got = client.influence_many(0, &seed_sets()).unwrap();
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.to_bits(), e.to_bits());
            }
            client.shutdown().unwrap();
            handle.join().unwrap().unwrap();
        });
    }

    fn connect_with_retry(sock: &Path) -> Client {
        for _ in 0..200 {
            if let Ok(c) = Client::connect_unix(sock) {
                return c;
            }
            thread::sleep(Duration::from_millis(5));
        }
        panic!("server socket never came up");
    }
}
