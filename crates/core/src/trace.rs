//! Causal tracing: span trees per query, Chrome-trace export, and a
//! tail-latency flight recorder.
//!
//! The obs layer ([`crate::obs`]) answers *how much* — counters, gauges,
//! histograms aggregated over a whole run. This module answers *where
//! inside one operation* the time went: every traced operation (a reverse
//! pass, one batch element, a greedy selection, a compaction) emits
//! begin/end events carrying a **trace id** (which logical operation) and a
//! **span id** (which node of that operation's tree), so a single query's
//! reverse-scan → merge → estimator chain reconstructs as one tree.
//!
//! The design follows the proven obs pattern exactly:
//!
//! * [`Tracer`] is a monomorphized trait; the zero-sized [`NoopTracer`]
//!   has empty `#[inline(always)]` bodies, so the default untraced paths
//!   compile to the same code as before tracing existed (proven by the
//!   counting-allocator test in `tests/trace_noop_alloc.rs` and the
//!   traced-vs-untraced parity proptests).
//! * [`RingTracer`] is the live implementation: per-lane fixed-capacity
//!   ring buffers of `AtomicU64` words. Emitting is lock-free and
//!   allocation-free — claim a slot with one relaxed `fetch_add`, store
//!   four relaxed words — so the hot path never blocks, never allocates,
//!   and old events are simply overwritten when a ring wraps.
//! * Worker threads claim a **lane** through [`Tracer::worker`] inside the
//!   `par` fan-out's per-worker scratch init, so thread lanes in the
//!   exported trace map one-to-one onto `par` workers (lane 0 is the
//!   caller's thread).
//!
//! Harvesting ([`RingTracer::records`]) happens on the caller's thread
//! after all parallel work has joined, so decoding never races a writer.
//! On top of the decoded records sit:
//!
//! * [`trace_to_json`] — a serde-free Chrome Trace Event Format exporter
//!   whose output loads directly in Perfetto / `chrome://tracing`.
//!   Unmatched begin/end events (ring-wrap casualties) are dropped, so the
//!   export is balanced by construction.
//! * [`validate_trace_json`] — a serde-free structural validator for the
//!   exported JSON (balanced per-thread begin/end stacks, known event
//!   names, valid parent ids); the CLI re-validates every trace file it
//!   writes and CI validates the artifacts again.
//! * [`attribution`] — per-phase count / total-time / self-time rollup,
//!   the `infprop profile` table.
//! * [`FlightRecorder`] — retains the K slowest traces by root-span wall
//!   time, the always-on tail-latency capture mode.
//!
//! Like `obs`, this module is the only sanctioned home for raw
//! [`Instant`] reads on the query path (the `no-raw-timing` xtask rule
//! exempts `obs.rs` and `trace.rs` only): every other module must express
//! timing through a [`Recorder`](crate::obs::Recorder) or a [`Tracer`].

use crate::obs::metric_u64;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Identifies one logical traced operation (one query, one build, one
/// compaction). Trace id 0 is reserved for "untraced" ([`TraceId::NONE`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The id carried by untraced operations (the [`NoopTracer`] path).
    pub const NONE: TraceId = TraceId(0);
}

/// Identifies one span (one node of a trace's tree). Span id 0 is reserved
/// for "no span" ([`SpanId::NONE`]) — the parent of every root span.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span: parent of roots, return value of disabled tracers.
    pub const NONE: SpanId = SpanId(0);
}

/// Static registry of every span/instant name a tracer can emit, mirroring
/// the metric catalogues in [`crate::obs`]. `cargo xtask analyze`
/// cross-checks this roster against every trace-shaped literal in code and
/// CI, so a renamed or misspelled event fails the build, not the dashboard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// One reverse pass over an interaction slice
    /// ([`ReversePassEngine`](crate::engine::ReversePassEngine)); payload:
    /// interactions scanned.
    BuildReverseScan,
    /// Freezing live summaries into the contiguous arenas; payload: arena
    /// heap bytes.
    BuildFreeze,
    /// One `influence_many_frozen` batch; payload: queries answered.
    QueryBatch,
    /// One element of a batch (its own trace id); payload: deduplicated
    /// seed rows merged.
    QueryElement,
    /// One CELF greedy selection; payload: seeds picked.
    GreedySelection,
    /// Instant marking one greedy pick; payload: round number.
    GreedyRound,
    /// One forward-delta append batch (CLI `append`); payload: interactions
    /// appended.
    AppendBatch,
    /// One LSM-style compaction; payload: window-surviving interactions.
    CompactRun,
    /// The re-freeze engine pass inside a compaction; payload: interactions
    /// rebuilt.
    CompactRebuild,
    /// One delta-overlay rebuild; payload: pending interactions absorbed.
    OverlayRefresh,
    /// Loading an oracle from disk (CLI); payload: file/arena bytes.
    LoadOracle,
    /// One simulation run batch (CLI `simulate`); payload: runs.
    SimulateRun,
    /// The whole `infprop profile` workload; payload: queries driven.
    ProfileRun,
    /// One request frame handled by the serving tier, decode to flush;
    /// payload: influence queries answered in the frame.
    ServeRequest,
}

impl TraceEvent {
    /// Every event, in declaration order — the index into this roster is
    /// the on-ring encoding of the event.
    pub const ALL: [TraceEvent; 14] = [
        TraceEvent::BuildReverseScan,
        TraceEvent::BuildFreeze,
        TraceEvent::QueryBatch,
        TraceEvent::QueryElement,
        TraceEvent::GreedySelection,
        TraceEvent::GreedyRound,
        TraceEvent::AppendBatch,
        TraceEvent::CompactRun,
        TraceEvent::CompactRebuild,
        TraceEvent::OverlayRefresh,
        TraceEvent::LoadOracle,
        TraceEvent::SimulateRun,
        TraceEvent::ProfileRun,
        TraceEvent::ServeRequest,
    ];

    /// Stable exported name (`prefix.event`, distinct from every obs metric
    /// name — the analyzer enforces global uniqueness across both
    /// registries).
    pub fn name(self) -> &'static str {
        match self {
            TraceEvent::BuildReverseScan => "build.reverse_scan",
            TraceEvent::BuildFreeze => "build.freeze",
            TraceEvent::QueryBatch => "query.batch",
            TraceEvent::QueryElement => "query.element",
            TraceEvent::GreedySelection => "greedy.selection",
            TraceEvent::GreedyRound => "greedy.round",
            TraceEvent::AppendBatch => "append.batch",
            TraceEvent::CompactRun => "compact.run",
            TraceEvent::CompactRebuild => "compact.rebuild",
            TraceEvent::OverlayRefresh => "overlay.refresh",
            TraceEvent::LoadOracle => "load.oracle",
            TraceEvent::SimulateRun => "simulate.run",
            TraceEvent::ProfileRun => "profile.run",
            TraceEvent::ServeRequest => "serve.request",
        }
    }

    /// On-ring index of this event (its position in [`ALL`](Self::ALL)).
    #[inline]
    // xtask-contract: alloc-free
    fn index(self) -> u64 {
        self as u64 // xtask-allow: no-lossy-cast (unit-enum discriminant)
    }

    /// Inverse of [`index`](Self::index); `None` for a corrupt record.
    #[inline]
    fn from_index(i: u64) -> Option<TraceEvent> {
        usize::try_from(i)
            .ok()
            .and_then(|i| TraceEvent::ALL.get(i))
            .copied()
    }
}

/// What one decoded ring record marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point event attached to an open span.
    Instant,
}

/// The emit interface every traced code path is generic over. All methods
/// take `self` by value ([`Copy`]) so handles thread through parallel
/// closures without borrows; when `ENABLED` is `false` every body is an
/// empty `#[inline(always)]` shell and the traced code monomorphizes to
/// exactly the untraced code.
pub trait Tracer: Copy + Send + Sync {
    /// `false` for [`NoopTracer`]; lets call sites skip payload
    /// computation entirely, like [`Recorder::ENABLED`](crate::obs::Recorder::ENABLED).
    const ENABLED: bool;

    /// Opens a span of `trace` under `parent` and returns its id.
    fn begin(self, trace: TraceId, parent: SpanId, ev: TraceEvent) -> SpanId;

    /// Closes `span`, attaching a payload counter (entries merged,
    /// registers touched, tile count — see each event's doc).
    fn end(self, span: SpanId, ev: TraceEvent, payload: u64);

    /// Emits a point event under `parent`.
    fn instant(self, trace: TraceId, parent: SpanId, ev: TraceEvent, payload: u64);

    /// Stamps a chain-start timestamp on this lane without opening a
    /// span: the next [`lap`](Self::lap) on the lane begins here. Call
    /// once before a lap chain (e.g. at the top of a worker's batch
    /// range) so the first lap's duration is honest.
    fn mark(self, ev: TraceEvent);

    /// Records one *complete* span that began at this lane's previous
    /// record (a [`mark`](Self::mark), an earlier lap, or any other emit)
    /// and ends now. This is the cheap way to trace back-to-back work
    /// items — one ring record and one clock read per span instead of a
    /// begin/end pair (two of each) — and is exact for contiguous chains
    /// because element *i*'s end instant *is* element *i+1*'s begin.
    /// Decoding expands each lap into a matched begin/end record pair, so
    /// every consumer (export, attribution, flight recorder) sees
    /// ordinary spans.
    fn lap(self, trace: TraceId, parent: SpanId, ev: TraceEvent, payload: u64);

    /// Reserves `n` consecutive trace ids and returns the first — how a
    /// batch gives each element its own trace.
    fn alloc_traces(self, n: u64) -> u64;

    /// A handle for one `par` worker: live tracers claim a worker lane,
    /// so each fan-out worker writes its own ring. Called once per worker
    /// from the scratch-init closure.
    fn worker(self) -> Self;
}

/// The disabled tracer: zero-sized, compiles out entirely (counting-
/// allocator proven). This is the default every existing call site pays
/// nothing for.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn begin(self, _trace: TraceId, _parent: SpanId, _ev: TraceEvent) -> SpanId {
        SpanId::NONE
    }

    #[inline(always)]
    fn end(self, _span: SpanId, _ev: TraceEvent, _payload: u64) {}

    #[inline(always)]
    fn instant(self, _trace: TraceId, _parent: SpanId, _ev: TraceEvent, _payload: u64) {}

    #[inline(always)]
    fn mark(self, _ev: TraceEvent) {}

    #[inline(always)]
    fn lap(self, _trace: TraceId, _parent: SpanId, _ev: TraceEvent, _payload: u64) {}

    #[inline(always)]
    fn alloc_traces(self, _n: u64) -> u64 {
        0
    }

    #[inline(always)]
    fn worker(self) -> Self {
        NoopTracer
    }
}

/// Events a lane's ring can hold before wrapping (power of two). At four
/// words per event this is 512 KiB per lane — enough for ~8k spans, far
/// beyond one CLI workload's live window, and wraps simply drop the oldest
/// events (the exporter keeps the trace balanced regardless).
const DEFAULT_CAPACITY: usize = 1 << 14;

/// Words per ring record: timestamp, trace id, packed kind/event/span,
/// and parent-or-payload.
const WORDS: usize = 4;

/// One per-lane ring: a relaxed claim cursor plus `capacity × WORDS`
/// atomic slots. Writers claim disjoint slots via `fetch_add`, so two
/// threads sharing a lane (more workers than lanes) still never interleave
/// within a record — only a full ring wrap can overwrite one, and the
/// exporter drops the resulting unmatched halves.
struct Lane {
    cursor: AtomicU64,
    slots: Box<[AtomicU64]>,
}

/// The live tracer: an epoch instant, per-lane rings, and global trace-id /
/// worker-lane allocators. Construct one per workload, hand out
/// [`lane`](Self::lane) handles, harvest with [`records`](Self::records)
/// after the workload joins.
pub struct RingTracer {
    epoch: Instant,
    lanes: Box<[Lane]>,
    mask: u64,
    next_worker: AtomicUsize,
    next_trace: AtomicU64,
}

impl RingTracer {
    /// A tracer with lane 0 for the calling thread plus `workers` worker
    /// lanes, each holding [`DEFAULT_CAPACITY`] events.
    pub fn new(workers: usize) -> Self {
        Self::with_capacity(workers, DEFAULT_CAPACITY)
    }

    /// [`new`](Self::new) with an explicit per-lane event capacity
    /// (rounded up to a power of two, minimum 8).
    pub fn with_capacity(workers: usize, capacity: usize) -> Self {
        let capacity = capacity.max(8).next_power_of_two();
        let lanes = (0..=workers)
            .map(|_| Lane {
                cursor: AtomicU64::new(0),
                slots: (0..capacity * WORDS).map(|_| AtomicU64::new(0)).collect(),
            })
            .collect();
        RingTracer {
            epoch: Instant::now(),
            lanes,
            mask: metric_u64(capacity - 1),
            next_worker: AtomicUsize::new(0),
            next_trace: AtomicU64::new(1),
        }
    }

    /// The emit handle for lane `lane` (0 = the calling thread's lane).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane(&self, lane: usize) -> LaneTracer<'_> {
        assert!(lane < self.lanes.len(), "lane {lane} out of range");
        LaneTracer { ring: self, lane }
    }

    /// Reserves `n` consecutive trace ids, returning the first (ids start
    /// at 1; 0 is [`TraceId::NONE`]).
    pub fn alloc_traces(&self, n: u64) -> u64 {
        self.next_trace.fetch_add(n, Ordering::Relaxed)
    }

    /// Claims the next worker lane round-robin over lanes `1..`, reserving
    /// lane 0 for the constructing thread. With a single lane everything
    /// shares lane 0 (still correct — slot claims are atomic).
    fn claim_worker_lane(&self) -> usize {
        let lanes = self.lanes.len();
        if lanes <= 1 {
            return 0;
        }
        let w = self.next_worker.fetch_add(1, Ordering::Relaxed);
        1 + (w % (lanes - 1))
    }

    /// The hot emit path: claim one record slot with a relaxed `fetch_add`
    /// and store four relaxed words. No locks, no allocation, no branches
    /// beyond the ring mask. Returns the claimed sequence number so `begin`
    /// can derive the span id of the record it just wrote; `Begin` records
    /// (`kind` 0) ignore the `span_field` argument and store the
    /// seq-derived span id instead.
    ///
    /// On-ring kinds: 0 begin (span_field = own span id), 1 end
    /// (span_field = the span being closed), 2 instant (span_field =
    /// parent), 3 lap (span_field = parent; own span id re-derived from
    /// the slot's sequence number at decode), 4 mark (timestamp only —
    /// decoded to nothing, it just restarts the lane's lap chain).
    #[inline]
    // xtask-contract: alloc-free
    fn emit(
        &self,
        lane: usize,
        kind: u64,
        ev: TraceEvent,
        trace: u64,
        span_field: u64,
        aux: u64,
    ) -> u64 {
        let l = &self.lanes[lane];
        let seq = l.cursor.fetch_add(1, Ordering::Relaxed);
        let span_field = if kind == 0 {
            self.span_id(lane, seq).0
        } else {
            span_field
        };
        let base = usize::try_from((seq & self.mask) * WORDS as u64).unwrap_or(0); // xtask-allow: no-lossy-cast (WORDS is 4)
        let ts = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        l.slots[base].store(ts, Ordering::Relaxed);
        l.slots[base + 1].store(trace, Ordering::Relaxed);
        l.slots[base + 2].store(
            kind | (ev.index() << 8) | (span_field << 16),
            Ordering::Relaxed,
        );
        l.slots[base + 3].store(aux, Ordering::Relaxed);
        seq
    }

    /// The span id for sequence `seq` of `lane`: `(lane+1) << 32 | seq+1`,
    /// nonzero and globally unique, 48 bits so it packs next to the kind
    /// and event bytes.
    #[inline]
    // xtask-contract: alloc-free
    fn span_id(&self, lane: usize, seq: u64) -> SpanId {
        SpanId(((metric_u64(lane) + 1) << 32) | ((seq + 1) & 0xFFFF_FFFF))
    }

    /// Decodes every lane's surviving records, per lane in emission order
    /// (lane 0 first). Call only after all traced work has joined — decoding
    /// does not synchronize with writers.
    pub fn records(&self) -> Vec<TraceRecord> {
        let cap = self.mask + 1;
        let mut out = Vec::new();
        for (lane, l) in self.lanes.iter().enumerate() {
            let cursor = l.cursor.load(Ordering::Relaxed);
            let valid = cursor.min(cap);
            // Timestamp of the lane's previous decoded record — the begin
            // instant of the next lap. `None` until the first record (a
            // lap whose chain start was overwritten by a ring wrap decodes
            // as a zero-width span rather than inventing a begin time).
            let mut chain_ts: Option<u64> = None;
            for seq in (cursor - valid)..cursor {
                let base = usize::try_from((seq & self.mask) * WORDS as u64).unwrap_or(0); // xtask-allow: no-lossy-cast (WORDS is 4)
                let ts_ns = l.slots[base].load(Ordering::Relaxed);
                let trace = l.slots[base + 1].load(Ordering::Relaxed);
                let packed = l.slots[base + 2].load(Ordering::Relaxed);
                let aux = l.slots[base + 3].load(Ordering::Relaxed);
                let Some(event) = TraceEvent::from_index((packed >> 8) & 0xFF) else {
                    continue;
                };
                let span_field = packed >> 16;
                let begin_ts = chain_ts.replace(ts_ns).unwrap_or(ts_ns);
                let rec = match packed & 0xFF {
                    0 => TraceRecord {
                        ts_ns,
                        trace: TraceId(trace),
                        kind: TraceKind::Begin,
                        event,
                        span: SpanId(span_field),
                        parent: SpanId(aux),
                        payload: 0,
                        lane,
                    },
                    1 => TraceRecord {
                        ts_ns,
                        trace: TraceId(trace),
                        kind: TraceKind::End,
                        event,
                        span: SpanId(span_field),
                        parent: SpanId::NONE,
                        payload: aux,
                        lane,
                    },
                    2 => TraceRecord {
                        ts_ns,
                        trace: TraceId(trace),
                        kind: TraceKind::Instant,
                        event,
                        span: SpanId::NONE,
                        parent: SpanId(span_field),
                        payload: aux,
                        lane,
                    },
                    3 => {
                        // A lap expands into a matched begin/end pair: it
                        // began at the lane's previous record and ends at
                        // its own timestamp.
                        let span = self.span_id(lane, seq);
                        out.push(TraceRecord {
                            ts_ns: begin_ts,
                            trace: TraceId(trace),
                            kind: TraceKind::Begin,
                            event,
                            span,
                            parent: SpanId(span_field),
                            payload: 0,
                            lane,
                        });
                        TraceRecord {
                            ts_ns,
                            trace: TraceId(trace),
                            kind: TraceKind::End,
                            event,
                            span,
                            parent: SpanId::NONE,
                            payload: aux,
                            lane,
                        }
                    }
                    // Kind 4 (mark) carries only its timestamp, which the
                    // `chain_ts` update above has already consumed.
                    _ => continue,
                };
                out.push(rec);
            }
        }
        out
    }
}

/// A [`Copy`] emit handle borrowing one [`RingTracer`] lane — the live
/// [`Tracer`] implementation threaded through the query kernels.
#[derive(Clone, Copy)]
pub struct LaneTracer<'a> {
    ring: &'a RingTracer,
    lane: usize,
}

impl Tracer for LaneTracer<'_> {
    const ENABLED: bool = true;

    #[inline]
    // xtask-contract: alloc-free
    fn begin(self, trace: TraceId, parent: SpanId, ev: TraceEvent) -> SpanId {
        let seq = self.ring.emit(self.lane, 0, ev, trace.0, 0, parent.0);
        self.ring.span_id(self.lane, seq)
    }

    #[inline]
    // xtask-contract: alloc-free
    fn end(self, span: SpanId, ev: TraceEvent, payload: u64) {
        self.ring.emit(self.lane, 1, ev, 0, span.0, payload);
    }

    #[inline]
    // xtask-contract: alloc-free
    fn instant(self, trace: TraceId, parent: SpanId, ev: TraceEvent, payload: u64) {
        self.ring.emit(self.lane, 2, ev, trace.0, parent.0, payload);
    }

    #[inline]
    // xtask-contract: alloc-free
    fn mark(self, ev: TraceEvent) {
        self.ring.emit(self.lane, 4, ev, 0, 0, 0);
    }

    #[inline]
    // xtask-contract: alloc-free
    fn lap(self, trace: TraceId, parent: SpanId, ev: TraceEvent, payload: u64) {
        self.ring.emit(self.lane, 3, ev, trace.0, parent.0, payload);
    }

    #[inline]
    fn alloc_traces(self, n: u64) -> u64 {
        self.ring.alloc_traces(n)
    }

    #[inline]
    fn worker(self) -> Self {
        LaneTracer {
            ring: self.ring,
            lane: self.ring.claim_worker_lane(),
        }
    }
}

/// One decoded ring record (see [`RingTracer::records`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Nanoseconds since the tracer's epoch.
    pub ts_ns: u64,
    /// The logical operation this record belongs to (0 on `End` records —
    /// matching the begin by span id recovers it).
    pub trace: TraceId,
    /// Begin, end, or instant.
    pub kind: TraceKind,
    /// Which registered event.
    pub event: TraceEvent,
    /// The span opened/closed (`NONE` for instants).
    pub span: SpanId,
    /// Parent span (`NONE` for ends and roots).
    pub parent: SpanId,
    /// The payload counter (ends and instants; 0 for begins).
    pub payload: u64,
    /// Ring lane (= exported thread lane) the record was written on.
    pub lane: usize,
}

/// One begin/end-matched span, reconstructed from the raw records.
#[derive(Clone, Copy, Debug)]
pub struct MatchedSpan {
    /// The span's id.
    pub span: SpanId,
    /// Its parent (possibly `NONE`, possibly dropped by a ring wrap).
    pub parent: SpanId,
    /// The owning trace.
    pub trace: TraceId,
    /// The event name.
    pub event: TraceEvent,
    /// Begin timestamp (ns since epoch).
    pub start_ns: u64,
    /// End timestamp (ns since epoch).
    pub end_ns: u64,
    /// The end record's payload counter.
    pub payload: u64,
    /// The lane the span was emitted on.
    pub lane: usize,
}

impl MatchedSpan {
    /// Wall time of the span in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Pairs begin and end records by span id, dropping unmatched halves (ring
/// wraps) — the well-formed skeleton every consumer below builds on.
pub fn matched_spans(records: &[TraceRecord]) -> Vec<MatchedSpan> {
    let mut begins: crate::FastMap<u64, usize> = crate::FastMap::default();
    for (i, r) in records.iter().enumerate() {
        if r.kind == TraceKind::Begin {
            begins.insert(r.span.0, i);
        }
    }
    let mut out = Vec::new();
    for r in records {
        if r.kind != TraceKind::End {
            continue;
        }
        let Some(&bi) = begins.get(&r.span.0) else {
            continue;
        };
        let b = &records[bi];
        if b.ts_ns > r.ts_ns {
            continue; // wrapped ring reused the span id; halves don't pair
        }
        out.push(MatchedSpan {
            span: r.span,
            parent: b.parent,
            trace: b.trace,
            event: b.event,
            start_ns: b.ts_ns,
            end_ns: r.ts_ns,
            payload: r.payload,
            lane: b.lane,
        });
    }
    out
}

/// Appends `ns` as a microsecond decimal (`ns/1000.fff`) — the Chrome
/// Trace Event `ts` unit.
fn push_us(out: &mut String, ns: u64) {
    use std::fmt::Write as _;
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

/// Serializes decoded records as a Chrome Trace Event Format array
/// (loadable in Perfetto / `chrome://tracing`; thread lanes map to `par`
/// workers via `tid`). Serde-free, like every codec in this workspace.
///
/// The export is **balanced by construction**: only begin/end pairs that
/// both survived the ring are emitted, a begin whose parent was overwritten
/// is re-rooted at 0, and instants whose parent vanished are dropped.
pub fn trace_to_json(records: &[TraceRecord]) -> String {
    let spans = matched_spans(records);
    let mut known: crate::FastSet<u64> = crate::FastSet::default();
    for s in &spans {
        known.insert(s.span.0);
    }
    // (ts, order) keyed events; the stable sort keeps each lane's
    // emission order at equal timestamps, so a zero-duration span still
    // exports begin-before-end.
    let mut events: Vec<(u64, usize, String)> = Vec::new();
    let mut order = 0usize;
    for s in &spans {
        let parent = if known.contains(&s.parent.0) {
            s.parent.0
        } else {
            0
        };
        let mut b = format!(
            "{{\"name\":\"{}\",\"cat\":\"infprop\",\"ph\":\"B\",\"pid\":0,\"tid\":{},\"ts\":",
            s.event.name(),
            s.lane
        );
        push_us(&mut b, s.start_ns);
        use std::fmt::Write as _;
        let _ = write!(
            b,
            ",\"args\":{{\"trace\":{},\"span\":{},\"parent\":{}}}}}",
            s.trace.0, s.span.0, parent
        );
        events.push((s.start_ns, order, b));
        order += 1;
        let mut e = format!(
            "{{\"name\":\"{}\",\"cat\":\"infprop\",\"ph\":\"E\",\"pid\":0,\"tid\":{},\"ts\":",
            s.event.name(),
            s.lane
        );
        push_us(&mut e, s.end_ns);
        let _ = write!(
            e,
            ",\"args\":{{\"span\":{},\"payload\":{}}}}}",
            s.span.0, s.payload
        );
        events.push((s.end_ns, order, e));
        order += 1;
    }
    for r in records {
        if r.kind != TraceKind::Instant {
            continue;
        }
        let parent = r.parent.0;
        if parent != 0 && !known.contains(&parent) {
            continue; // parent span lost to a ring wrap
        }
        let mut i = format!(
            "{{\"name\":\"{}\",\"cat\":\"infprop\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":",
            r.event.name(),
            r.lane
        );
        push_us(&mut i, r.ts_ns);
        use std::fmt::Write as _;
        let _ = write!(
            i,
            ",\"args\":{{\"trace\":{},\"parent\":{},\"payload\":{}}}}}",
            r.trace.0, parent, r.payload
        );
        events.push((r.ts_ns, order, i));
        order += 1;
    }
    events.sort_by_key(|&(ts, ord, _)| (ts, ord));
    let mut out = String::from("[");
    for (i, (_, _, e)) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(e);
    }
    out.push_str("\n]\n");
    out
}

/// Why [`validate_trace_json`] rejected a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceJsonError {
    /// Byte offset the failure was detected at (0 for semantic errors).
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TraceJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid trace JSON at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for TraceJsonError {}

/// Structural summary returned by a successful [`validate_trace_json`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total Chrome events in the file.
    pub events: usize,
    /// Matched spans (begin/end pairs).
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
}

/// One parsed Chrome event — just the fields the validator inspects.
struct ChromeEvent {
    name: String,
    ph: u8,
    tid: u64,
    span: u64,
    parent: u64,
}

/// Minimal recursive-descent JSON reader for the exporter's output —
/// the same serde-free pattern as the obs snapshot parser.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, TraceJsonError> {
        Err(TraceJsonError {
            at: self.pos,
            message: message.to_owned(),
        })
    }

    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), TraceJsonError> {
        self.ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", char::from(b)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, TraceJsonError> {
        self.eat(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\\' {
                return self.err("escapes are not used by the exporter");
            }
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| TraceJsonError {
                        at: start,
                        message: "invalid utf-8 in string".to_owned(),
                    })?
                    .to_owned();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        self.err("unterminated string")
    }

    /// Reads a number, returning its integer part (timestamps keep their
    /// fractional microseconds in the file; the validator only needs ids).
    fn number(&mut self) -> Result<u64, TraceJsonError> {
        self.ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || *b == b'.' || *b == b'-')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("expected a number");
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        let int = text.split('.').next().unwrap_or("");
        int.parse().or_else(|_| self.err("bad number"))
    }

    /// Parses one event object, capturing name/ph/tid/args ids.
    fn event(&mut self) -> Result<ChromeEvent, TraceJsonError> {
        self.eat(b'{')?;
        let mut ev = ChromeEvent {
            name: String::new(),
            ph: 0,
            tid: 0,
            span: 0,
            parent: 0,
        };
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            match key.as_str() {
                "name" => ev.name = self.string()?,
                "ph" => {
                    let ph = self.string()?;
                    ev.ph = *ph.as_bytes().first().unwrap_or(&0);
                }
                "cat" | "s" => {
                    self.string()?;
                }
                "tid" => ev.tid = self.number()?,
                "pid" | "ts" => {
                    self.number()?;
                }
                "args" => {
                    self.eat(b'{')?;
                    if self.peek() != Some(b'}') {
                        loop {
                            let k = self.string()?;
                            self.eat(b':')?;
                            let v = self.number()?;
                            match k.as_str() {
                                "span" => ev.span = v,
                                "parent" => ev.parent = v,
                                _ => {}
                            }
                            if self.peek() == Some(b',') {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(b'}')?;
                }
                _ => return self.err("unknown key"),
            }
            if self.peek() == Some(b',') {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.eat(b'}')?;
        Ok(ev)
    }
}

/// Structurally validates an exported Chrome trace: parses the array with
/// the serde-free reader above, checks every event name against
/// [`TraceEvent::ALL`], checks per-`tid` begin/end stacks balance with
/// matching names, and checks every referenced parent id is 0 or a span
/// that begins somewhere in the file. Returns counts on success.
pub fn validate_trace_json(json: &str) -> Result<TraceStats, TraceJsonError> {
    let mut p = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    p.eat(b'[')?;
    let mut events: Vec<ChromeEvent> = Vec::new();
    if p.peek() != Some(b']') {
        loop {
            events.push(p.event()?);
            if p.peek() == Some(b',') {
                p.pos += 1;
            } else {
                break;
            }
        }
    }
    p.eat(b']')?;
    p.ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing bytes after the event array");
    }

    let semantic = |message: String| TraceJsonError { at: 0, message };
    let mut span_ids: crate::FastSet<u64> = crate::FastSet::default();
    for e in &events {
        if !TraceEvent::ALL.iter().any(|ev| ev.name() == e.name) {
            return Err(semantic(format!("unknown event name {:?}", e.name)));
        }
        if e.ph == b'B' {
            span_ids.insert(e.span);
        }
    }
    let mut stacks: crate::FastMap<u64, Vec<String>> = crate::FastMap::default();
    let mut spans = 0usize;
    let mut instants = 0usize;
    for e in &events {
        match e.ph {
            b'B' => {
                if e.parent != 0 && !span_ids.contains(&e.parent) {
                    return Err(semantic(format!(
                        "span {} begins under unknown parent {}",
                        e.span, e.parent
                    )));
                }
                stacks.entry(e.tid).or_default().push(e.name.clone());
            }
            b'E' => {
                let stack = stacks.entry(e.tid).or_default();
                match stack.pop() {
                    Some(open) if open == e.name => spans += 1,
                    Some(open) => {
                        return Err(semantic(format!(
                            "tid {} ends {:?} while {:?} is open",
                            e.tid, e.name, open
                        )));
                    }
                    None => {
                        return Err(semantic(format!(
                            "tid {} ends {:?} with no open span",
                            e.tid, e.name
                        )));
                    }
                }
            }
            b'i' => {
                if e.parent != 0 && !span_ids.contains(&e.parent) {
                    return Err(semantic(format!(
                        "instant {:?} references unknown parent {}",
                        e.name, e.parent
                    )));
                }
                instants += 1;
            }
            other => {
                return Err(semantic(format!(
                    "unexpected phase {:?}",
                    char::from(other)
                )));
            }
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(semantic(format!("tid {tid} never ends {open:?}")));
        }
    }
    Ok(TraceStats {
        events: events.len(),
        spans,
        instants,
    })
}

/// One row of the profile attribution table: how often an event ran, its
/// total wall time, and its self time (total minus matched children).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// The event.
    pub event: TraceEvent,
    /// Matched spans of this event.
    pub count: u64,
    /// Summed wall time across those spans.
    pub total_ns: u64,
    /// Total minus time attributed to child spans (saturating: children of
    /// a parallel fan-out can overlap, so concurrent child time never drives
    /// self time negative).
    pub self_ns: u64,
}

/// Rolls matched spans up into per-event count / total / self rows, in
/// [`TraceEvent::ALL`] order, skipping events that never ran — the
/// `infprop profile` attribution table.
pub fn attribution(records: &[TraceRecord]) -> Vec<PhaseStat> {
    let spans = matched_spans(records);
    let mut child_ns: crate::FastMap<u64, u64> = crate::FastMap::default();
    for s in &spans {
        if s.parent != SpanId::NONE {
            *child_ns.entry(s.parent.0).or_insert(0) += s.wall_ns();
        }
    }
    let mut rows: Vec<PhaseStat> = TraceEvent::ALL
        .iter()
        .map(|&event| PhaseStat {
            event,
            count: 0,
            total_ns: 0,
            self_ns: 0,
        })
        .collect();
    for s in &spans {
        let i = usize::try_from(s.event.index()).unwrap_or(0);
        let children = child_ns.get(&s.span.0).copied().unwrap_or(0);
        rows[i].count += 1;
        rows[i].total_ns += s.wall_ns();
        rows[i].self_ns += s.wall_ns().saturating_sub(children);
    }
    rows.retain(|r| r.count > 0);
    rows
}

/// Summary of one retained trace (see [`FlightRecorder`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// The trace id.
    pub trace: TraceId,
    /// The root span's event.
    pub root: TraceEvent,
    /// The root span's wall time.
    pub wall_ns: u64,
    /// Matched spans in the trace.
    pub spans: u64,
}

/// Retains the K slowest traces by root-span wall time — always-on
/// tail-latency capture. The recorder is post-hoc: it absorbs harvested
/// records after a workload joins, so it adds nothing to the emit path
/// (the ring's own overwrite-on-wrap is the eviction policy upstream).
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    k: usize,
    slowest: Vec<TraceSummary>,
}

impl FlightRecorder {
    /// A recorder keeping the `k` slowest traces.
    pub fn new(k: usize) -> Self {
        FlightRecorder {
            k,
            slowest: Vec::new(),
        }
    }

    /// Folds one harvest into the recorder: traces are grouped by id, the
    /// root is the span whose parent lies outside the trace (ties: the
    /// longest), and the K slowest roots survive.
    pub fn absorb(&mut self, records: &[TraceRecord]) {
        let spans = matched_spans(records);
        let mut members: crate::FastMap<u64, u64> = crate::FastMap::default();
        for s in &spans {
            if s.trace != TraceId::NONE {
                *members.entry(s.trace.0).or_insert(0) += 1;
            }
        }
        let in_trace: crate::FastSet<(u64, u64)> =
            spans.iter().map(|s| (s.trace.0, s.span.0)).collect();
        let mut roots: crate::FastMap<u64, (TraceEvent, u64)> = crate::FastMap::default();
        for s in &spans {
            if s.trace == TraceId::NONE || in_trace.contains(&(s.trace.0, s.parent.0)) {
                continue;
            }
            let entry = roots.entry(s.trace.0).or_insert((s.event, 0));
            if s.wall_ns() >= entry.1 {
                *entry = (s.event, s.wall_ns());
            }
        }
        for (trace, (root, wall_ns)) in roots {
            let summary = TraceSummary {
                trace: TraceId(trace),
                root,
                wall_ns,
                spans: members.get(&trace).copied().unwrap_or(0),
            };
            if let Some(existing) = self.slowest.iter_mut().find(|s| s.trace.0 == trace) {
                if summary.wall_ns > existing.wall_ns {
                    *existing = summary;
                }
            } else {
                self.slowest.push(summary);
            }
        }
        self.slowest
            .sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then(a.trace.0.cmp(&b.trace.0)));
        self.slowest.truncate(self.k);
    }

    /// The retained traces, slowest first.
    pub fn slowest(&self) -> &[TraceSummary] {
        &self.slowest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn noop_tracer_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopTracer>(), 0);
        assert!(!NoopTracer::ENABLED);
        assert_eq!(
            NoopTracer.begin(TraceId(1), SpanId::NONE, TraceEvent::QueryBatch),
            SpanId::NONE
        );
        assert_eq!(NoopTracer.alloc_traces(16), 0);
    }

    #[test]
    fn event_roster_is_consistent() {
        for (i, ev) in TraceEvent::ALL.iter().enumerate() {
            assert_eq!(ev.index(), i as u64); // discriminants follow roster order
            assert_eq!(TraceEvent::from_index(ev.index()), Some(*ev));
            assert!(ev.name().contains('.'), "{}", ev.name());
        }
        let mut names: Vec<&str> = TraceEvent::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TraceEvent::ALL.len(), "duplicate event name");
    }

    #[test]
    fn ring_round_trips_span_trees() {
        let ring = RingTracer::new(2);
        let t = ring.lane(0);
        let trace = TraceId(ring.alloc_traces(1));
        let root = t.begin(trace, SpanId::NONE, TraceEvent::QueryBatch);
        let child = t.begin(trace, root, TraceEvent::QueryElement);
        t.instant(trace, child, TraceEvent::GreedyRound, 7);
        t.end(child, TraceEvent::QueryElement, 3);
        t.end(root, TraceEvent::QueryBatch, 1);
        let records = ring.records();
        assert_eq!(records.len(), 5);
        let spans = matched_spans(&records);
        assert_eq!(spans.len(), 2);
        let c = spans.iter().find(|s| s.span == child).unwrap();
        assert_eq!(c.parent, root);
        assert_eq!(c.trace, trace);
        assert_eq!(c.payload, 3);
        assert!(c.end_ns >= c.start_ns);
    }

    #[test]
    fn lap_chain_decodes_to_contiguous_matched_spans() {
        let ring = RingTracer::new(2);
        let t = ring.lane(0);
        let base = ring.alloc_traces(4);
        let batch = t.begin(TraceId(base), SpanId::NONE, TraceEvent::QueryBatch);
        t.mark(TraceEvent::QueryElement);
        for q in 0..3u64 {
            t.lap(
                TraceId(base + 1 + q),
                batch,
                TraceEvent::QueryElement,
                q + 10,
            );
        }
        t.end(batch, TraceEvent::QueryBatch, 3);
        let records = ring.records();
        // begin + mark-consumed-nothing + 3 laps × (begin, end) + end = 8.
        assert_eq!(records.len(), 8);
        let spans = matched_spans(&records);
        assert_eq!(spans.len(), 4);
        let elements: Vec<_> = spans
            .iter()
            .filter(|s| s.event == TraceEvent::QueryElement)
            .collect();
        assert_eq!(elements.len(), 3);
        for (i, el) in elements.iter().enumerate() {
            assert_eq!(el.parent, batch, "laps parent under the batch span");
            assert_eq!(el.trace, TraceId(base + 1 + i as u64));
            assert_eq!(el.payload, i as u64 + 10);
            assert!(el.end_ns >= el.start_ns);
        }
        // The chain is contiguous: element i ends exactly where i+1 begins,
        // and the first element begins at the mark (>= the batch begin).
        for w in elements.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns);
        }
        let batch_span = spans
            .iter()
            .find(|s| s.event == TraceEvent::QueryBatch)
            .unwrap();
        assert!(elements[0].start_ns >= batch_span.start_ns);
        // Exported JSON stays balanced with known names.
        let json = trace_to_json(&records);
        let stats = validate_trace_json(&json).unwrap();
        assert_eq!(stats.spans, 4);
    }

    #[test]
    fn lap_without_chain_start_is_zero_width_not_negative() {
        let ring = RingTracer::new(1);
        let t = ring.lane(0);
        // No mark, no prior record on the lane — the lap's begin falls back
        // to its own timestamp (the ring-wrap recovery path).
        t.lap(TraceId(1), SpanId::NONE, TraceEvent::QueryElement, 5);
        let records = ring.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].kind, TraceKind::Begin);
        assert_eq!(records[1].kind, TraceKind::End);
        assert_eq!(records[0].ts_ns, records[1].ts_ns);
        assert_eq!(records[0].span, records[1].span);
        assert_eq!(records[1].payload, 5);
    }

    #[test]
    fn worker_lanes_round_robin_and_skip_lane_zero() {
        let ring = RingTracer::new(2);
        let main = ring.lane(0);
        let w1 = main.worker();
        let w2 = main.worker();
        let w3 = main.worker();
        assert_eq!(w1.lane, 1);
        assert_eq!(w2.lane, 2);
        assert_eq!(w3.lane, 1); // wraps over the worker lanes only
    }

    #[test]
    fn ring_wrap_keeps_export_balanced() {
        let ring = RingTracer::with_capacity(0, 8);
        let t = ring.lane(0);
        let trace = TraceId(ring.alloc_traces(1));
        // 12 spans of 2 events each in an 8-event ring: early begins are
        // overwritten, their ends survive unmatched.
        for _ in 0..12 {
            let s = t.begin(trace, SpanId::NONE, TraceEvent::QueryElement);
            t.end(s, TraceEvent::QueryElement, 0);
        }
        let json = trace_to_json(&ring.records());
        let stats = validate_trace_json(&json).expect("wrapped trace still validates");
        assert!(stats.spans >= 1 && stats.spans <= 4, "{stats:?}");
    }

    #[test]
    fn exported_json_validates_and_rejects_corruption() {
        let ring = RingTracer::new(1);
        let t = ring.lane(0);
        let trace = TraceId(ring.alloc_traces(1));
        let root = t.begin(trace, SpanId::NONE, TraceEvent::ProfileRun);
        let el = t.begin(trace, root, TraceEvent::QueryElement);
        t.end(el, TraceEvent::QueryElement, 2);
        t.instant(trace, root, TraceEvent::GreedyRound, 1);
        t.end(root, TraceEvent::ProfileRun, 1);
        let json = trace_to_json(&ring.records());
        let stats = validate_trace_json(&json).expect("export validates");
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.events, 5);

        let unbalanced = json.replacen("\"ph\":\"E\"", "\"ph\":\"B\"", 1);
        assert!(validate_trace_json(&unbalanced).is_err());
        let unknown = json.replace("profile.run", "profile.bogus");
        assert!(validate_trace_json(&unknown).is_err());
        assert!(validate_trace_json("[").is_err());
        assert!(validate_trace_json("[]").is_ok());
    }

    #[test]
    fn attribution_subtracts_child_time() {
        let ring = RingTracer::new(1);
        let t = ring.lane(0);
        let trace = TraceId(ring.alloc_traces(1));
        let root = t.begin(trace, SpanId::NONE, TraceEvent::QueryBatch);
        let el = t.begin(trace, root, TraceEvent::QueryElement);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.end(el, TraceEvent::QueryElement, 1);
        t.end(root, TraceEvent::QueryBatch, 1);
        let rows = attribution(&ring.records());
        let batch = rows
            .iter()
            .find(|r| r.event == TraceEvent::QueryBatch)
            .unwrap();
        let element = rows
            .iter()
            .find(|r| r.event == TraceEvent::QueryElement)
            .unwrap();
        assert_eq!(batch.count, 1);
        assert!(element.total_ns > 0);
        assert!(batch.total_ns >= element.total_ns);
        assert_eq!(
            batch.self_ns,
            batch.total_ns - element.total_ns,
            "parent self time excludes the child"
        );
        assert_eq!(element.self_ns, element.total_ns);
    }

    #[test]
    fn flight_recorder_keeps_k_slowest_roots() {
        let ring = RingTracer::new(1);
        let t = ring.lane(0);
        let base = ring.alloc_traces(5);
        let mut spans = Vec::new();
        for i in 0..5 {
            spans.push((
                TraceId(base + i),
                t.begin(TraceId(base + i), SpanId::NONE, TraceEvent::QueryElement),
            ));
        }
        // End in reverse so earlier-begun traces are slower.
        for &(_, s) in spans.iter().rev() {
            t.end(s, TraceEvent::QueryElement, 0);
        }
        let mut fr = FlightRecorder::new(3);
        fr.absorb(&ring.records());
        let kept = fr.slowest();
        assert_eq!(kept.len(), 3);
        assert!(kept.windows(2).all(|w| w[0].wall_ns >= w[1].wall_ns));
        // The slowest trace is the first begun.
        assert_eq!(kept[0].trace, TraceId(base));
        assert_eq!(kept[0].root, TraceEvent::QueryElement);
        assert_eq!(kept[0].spans, 1);
    }
}
