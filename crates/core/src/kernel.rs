//! Wide-lane register-merge kernels for the frozen query path.
//!
//! Every approximate influence query reduces to the same inner operation:
//! fold one β-byte register row into an accumulator row with a bytewise
//! unsigned maximum (the HLL dominance merge). PR 5 wrote that fold as a
//! scalar `if b > *a` loop and relied on the auto-vectorizer; this module
//! makes the merge **vectorized by construction**:
//!
//! * [`merge_max_lanes`] — the always-on portable baseline: a branch-free
//!   bytewise maximum over 16-byte lane blocks whose inner loop is the
//!   exact shape LLVM lowers to one `pmaxub`/`vpmaxub` per block on x86
//!   (and the equivalent byte-max on other SIMD ISAs), with a scalar pass
//!   closing ragged tails. No `unsafe`, no platform assumptions, exact
//!   for all byte values — and measurably as fast as the best the
//!   auto-vectorizer ever did to the PR 5 loop, without depending on it
//!   recognizing a branchy compare.
//! * [`merge_max_swar`]/[`max_u8x8`] — the word-parallel alternative:
//!   registers packed eight at a time into `u64` words and merged with a
//!   branch-free SWAR bytewise maximum. Guaranteed wide even on targets
//!   where the vectorizer has no SIMD to work with, and proptested as an
//!   independent implementation of the same merge (on SIMD-capable
//!   hardware the 16-byte lane form wins — one `pmaxub` replaces ~12 ALU
//!   ops — which is why [`merge_max`] dispatches to lanes, not words).
//! * An optional AVX2 path (feature `simd-avx2`, `x86_64` only) that runs
//!   the same merge 32 bytes per instruction via `_mm256_max_epu8`,
//!   runtime-dispatched with `is_x86_feature_detected!`. All `unsafe` is
//!   confined to that one `#[cfg]`-gated module; the default build keeps
//!   the crate `unsafe`-free.
//! * [`merge_max_scalar`] — the PR 5 reference loop, kept as the parity
//!   baseline the proptests compare every wide path against.
//!
//! All three produce **bit-identical** accumulator contents for any input
//! (`max` on `u8` is exact — there is no float in sight until the merged
//! registers reach the estimator), so callers may dispatch freely without
//! perturbing the frozen-vs-live parity guarantees.
//!
//! The kernels themselves carry no instrumentation: both the recorder
//! ([`crate::obs`]) and the causal tracer ([`crate::trace`]) observe the
//! query path from its *callers* (`query.batch`/`query.element` spans
//! around the batch drivers in `frozen`/`delta`), so the merge inner loop
//! stays alloc-free and branch-free with or without tracing. The zero-cost
//! claim is enforced, not assumed — `trace_noop_alloc.rs` proves the
//! `NoopTracer` path never allocates, and the parity proptests re-check
//! bit-identical answers with the live ring tracer attached.

/// Byte width of one SWAR lane group (one `u64` word).
pub const SWAR_LANES: usize = 8;

/// High (sign) bit of every byte lane in a `u64` word.
const HI: u64 = 0x8080_8080_8080_8080;

/// Branch-free per-byte unsigned maximum of two packed `u64` words: lane
/// `i` of the result is `max(x_i, y_i)` for all eight byte lanes.
///
/// The comparison is split per lane into its high bit and low seven bits:
/// setting the guard (high) bit of every `x` lane and subtracting the
/// 7-bit `y` lane can never borrow across lanes, and the guard survives
/// exactly when `low7(x) ≥ low7(y)`. A lane's full unsigned `x ≥ y` is
/// then `high(x) > high(y)`, or equal high bits and `low7(x) ≥ low7(y)`.
/// The per-lane 0/1 verdict is widened to a full-byte select mask with a
/// `0xFF` multiply (lanes hold 0 or 1, so no cross-lane carries).
// xtask-contract: alloc-free, kernel
#[inline]
pub fn max_u8x8(x: u64, y: u64) -> u64 {
    let ge_low = ((x | HI).wrapping_sub(y & !HI)) & HI;
    let xh = x & HI;
    let yh = y & HI;
    let eq_hi = !(xh ^ yh) & HI;
    let ge = (xh & !yh) | (eq_hi & ge_low);
    let mask = (ge >> 7).wrapping_mul(0xFF);
    (x & mask) | (y & !mask)
}

/// Scalar bytewise-max fold — the PR 5 reference loop. Merges the common
/// prefix of the two slices (`zip` semantics).
// xtask-contract: alloc-free, kernel
#[inline]
pub fn merge_max_scalar(acc: &mut [u8], src: &[u8]) {
    for (a, &b) in acc.iter_mut().zip(src) {
        if b > *a {
            *a = b;
        }
    }
}

/// SWAR bytewise-max fold: `acc[i] = max(acc[i], src[i])` eight bytes per
/// step via [`max_u8x8`], with a scalar tail for lengths not a multiple of
/// [`SWAR_LANES`] (register rows are powers of two ≥ 16, so the tail is
/// empty on every arena path). Bit-identical to [`merge_max_scalar`],
/// including `zip` semantics on length-mismatched slices: the tail resumes
/// at the first byte the word loop did not cover and stops at the shorter
/// slice.
// xtask-contract: alloc-free, kernel
#[inline]
pub fn merge_max_swar(acc: &mut [u8], src: &[u8]) {
    let mut words = 0usize;
    for (a8, s8) in acc
        .chunks_exact_mut(SWAR_LANES)
        .zip(src.chunks_exact(SWAR_LANES))
    {
        let mut aw = [0u8; SWAR_LANES];
        aw.copy_from_slice(a8);
        let mut sw = [0u8; SWAR_LANES];
        sw.copy_from_slice(s8);
        let merged = max_u8x8(u64::from_le_bytes(aw), u64::from_le_bytes(sw));
        a8.copy_from_slice(&merged.to_le_bytes());
        words += 1;
    }
    let done = words * SWAR_LANES;
    for (a, &b) in acc.iter_mut().skip(done).zip(src.iter().skip(done)) {
        if b > *a {
            *a = b;
        }
    }
}

/// Byte width of one portable wide lane block (one SSE/NEON vector).
pub const WIDE_LANES: usize = 16;

/// Branch-free bytewise-max fold over 16-byte lane blocks: the inner
/// fixed-width `max` loop is the canonical shape every SIMD backend lowers
/// to a single unsigned byte-max instruction per block, so the merge is
/// wide by construction rather than by the vectorizer's goodwill at
/// recognizing a branchy compare. Tail bytes (never produced by the
/// arenas, whose rows are powers of two ≥ 16) are closed by a scalar loop
/// with the same `zip` semantics as [`merge_max_scalar`].
// xtask-contract: alloc-free, kernel
#[inline]
pub fn merge_max_lanes(acc: &mut [u8], src: &[u8]) {
    let mut blocks = 0usize;
    for (a16, s16) in acc
        .chunks_exact_mut(WIDE_LANES)
        .zip(src.chunks_exact(WIDE_LANES))
    {
        for (a, &b) in a16.iter_mut().zip(s16) {
            *a = (*a).max(b);
        }
        blocks += 1;
    }
    let done = blocks * WIDE_LANES;
    for (a, &b) in acc.iter_mut().skip(done).zip(src.iter().skip(done)) {
        if b > *a {
            *a = b;
        }
    }
}

/// Bytewise-max fold through the widest lanes available at runtime: the
/// AVX2 path when the `simd-avx2` feature is compiled in and the CPU
/// supports it, the portable 16-byte lane kernel otherwise. Every
/// dispatch target writes bit-identical accumulator contents.
// xtask-contract: alloc-free, kernel
#[inline]
pub fn merge_max(acc: &mut [u8], src: &[u8]) {
    #[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
    if avx2::try_merge_max(acc, src) {
        return;
    }
    merge_max_lanes(acc, src);
}

/// AVX2 bytewise-max fold, or `false` without touching `acc` when the
/// running CPU lacks AVX2 (or the path is compiled out). Exposed so the
/// parity proptests can exercise the wide path explicitly when available.
// xtask-contract: alloc-free, kernel
#[inline]
pub fn try_merge_max_avx2(acc: &mut [u8], src: &[u8]) -> bool {
    #[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
    {
        avx2::try_merge_max(acc, src)
    }
    #[cfg(not(all(feature = "simd-avx2", target_arch = "x86_64")))]
    {
        let _ = (acc, src);
        false
    }
}

/// The one `unsafe`-scoped corner of the workspace: 32-lane register
/// merges through `core::arch` AVX2 intrinsics, compiled only under
/// `--features simd-avx2` on `x86_64` and entered only after a runtime
/// CPU-feature check. `_mm256_max_epu8` computes the same per-byte
/// unsigned maximum as [`max_u8x8`], so the path is bit-identical to the
/// portable kernels (proven by the kernel parity proptests).
#[cfg(all(feature = "simd-avx2", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx2 {
    use core::arch::x86_64::{__m256i, _mm256_loadu_si256, _mm256_max_epu8, _mm256_storeu_si256};

    /// Width of one AVX2 vector in bytes.
    const AVX2_LANES: usize = 32;

    /// Merges with `_mm256_max_epu8` when the CPU supports AVX2; returns
    /// `false` (leaving `acc` untouched) otherwise.
    #[inline]
    pub(super) fn try_merge_max(acc: &mut [u8], src: &[u8]) -> bool {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return false;
        }
        // SAFETY: the detection above proves the `avx2` target feature is
        // available on the running CPU, the only requirement of the
        // `#[target_feature]` function.
        unsafe { merge_max_avx2(acc, src) };
        true
    }

    /// The 32-lane merge loop, compiled with the AVX2 feature enabled so
    /// the intrinsics inline into one `vpmaxub` per step.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    // xtask-contract: alloc-free, kernel
    #[target_feature(enable = "avx2")]
    unsafe fn merge_max_avx2(acc: &mut [u8], src: &[u8]) {
        let mut vectors = 0usize;
        for (a32, s32) in acc
            .chunks_exact_mut(AVX2_LANES)
            .zip(src.chunks_exact(AVX2_LANES))
        {
            // SAFETY: both chunks are exactly 32 bytes, and the unaligned
            // load/store intrinsics carry no alignment requirement.
            unsafe {
                let a = _mm256_loadu_si256(a32.as_ptr().cast::<__m256i>());
                let s = _mm256_loadu_si256(s32.as_ptr().cast::<__m256i>());
                _mm256_storeu_si256(a32.as_mut_ptr().cast::<__m256i>(), _mm256_max_epu8(a, s));
            }
            vectors += 1;
        }
        // Same zip-semantics tail as the SWAR kernel: resume at the first
        // uncovered byte, stop at the shorter slice.
        let done = vectors * AVX2_LANES;
        for (a, &b) in acc.iter_mut().skip(done).zip(src.iter().skip(done)) {
            if b > *a {
                *a = b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packed(bytes: [u8; 8]) -> u64 {
        u64::from_le_bytes(bytes)
    }

    #[test]
    fn max_u8x8_handles_high_bit_lanes() {
        // Lanes crossing the 0x80 boundary in every combination.
        let x = packed([0x00, 0x7F, 0x80, 0xFF, 0x01, 0xFE, 0x3D, 0x80]);
        let y = packed([0xFF, 0x80, 0x7F, 0x00, 0x01, 0xFF, 0x3C, 0x81]);
        let want = packed([0xFF, 0x80, 0x80, 0xFF, 0x01, 0xFF, 0x3D, 0x81]);
        assert_eq!(max_u8x8(x, y), want);
        assert_eq!(max_u8x8(y, x), want);
    }

    #[test]
    fn max_u8x8_exhaustive_single_lane() {
        // Every (a, b) byte pair in lane 3, junk in the neighbours to catch
        // cross-lane borrows.
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let x = packed([0xFF, 0x00, 0x80, a, 0x7F, 0x01, 0x00, 0xFF]);
                let y = packed([0x00, 0xFF, 0x7F, b, 0x80, 0x01, 0xFF, 0x00]);
                let got = max_u8x8(x, y).to_le_bytes()[3];
                assert_eq!(got, a.max(b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn swar_merge_matches_scalar_with_tail() {
        // 19 bytes: two full words plus a 3-byte scalar tail.
        let src: Vec<u8> = (0..19).map(|i| (i * 37 + 11) as u8).collect();
        let base: Vec<u8> = (0..19).map(|i| (200 - i * 13) as u8).collect();
        let mut scalar = base.clone();
        merge_max_scalar(&mut scalar, &src);
        let mut swar = base.clone();
        merge_max_swar(&mut swar, &src);
        assert_eq!(swar, scalar);
        let mut lanes = base.clone();
        merge_max_lanes(&mut lanes, &src);
        assert_eq!(lanes, scalar);
        let mut dispatched = base.clone();
        merge_max(&mut dispatched, &src);
        assert_eq!(dispatched, scalar);
    }

    #[test]
    fn avx2_path_matches_scalar_when_available() {
        let src: Vec<u8> = (0..100).map(|i| (i * 71 + 3) as u8).collect();
        let base: Vec<u8> = (0..100).map(|i| (i * 29 + 150) as u8).collect();
        let mut scalar = base.clone();
        merge_max_scalar(&mut scalar, &src);
        let mut wide = base.clone();
        if try_merge_max_avx2(&mut wide, &src) {
            assert_eq!(wide, scalar);
        } else {
            // Path compiled out or CPU lacks AVX2: acc must be untouched.
            assert_eq!(wide, base);
        }
    }
}
