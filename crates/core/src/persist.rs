//! Persistence for the build-once / query-many structures.
//!
//! Building an [`ApproxIrs`](crate::ApproxIrs) costs one pass over the full
//! interaction log; the resulting sketches are small. These codecs let an
//! application precompute the sketches offline and serve
//! influence-oracle queries from a file:
//!
//! * [`ApproxOracle`]: `"IPAO"` header + per-node raw HLL registers — the
//!   minimal artefact needed to answer `Inf(S)` queries.
//! * [`ApproxIrs`]: `"IPAI"` header + window + per-node versioned-HLL
//!   blocks — the full sketch state, from which the oracle can be rebuilt
//!   and per-node estimates queried.
//! * [`FrozenExactOracle`]: `"IPFE"` header + the CSR arena verbatim
//!   (offset array, then the flat entry array) — loads with two bulk reads
//!   and **no per-node allocation**.
//! * [`FrozenApproxOracle`]: `"IPFA"` header + the flat node-major
//!   register arena (`β` bytes per node) + the register-transposed
//!   (tile-major) arena the query kernels stream (layout version 2; the
//!   transposed section is verified, version-1 files still load) —
//!   bulk reads, per-node estimates recomputed in a single pass on load.
//!
//! Formats are little-endian and validated on read (magic, version,
//! precision, per-sketch/per-summary invariants) via [`CodecError`].
//!
//! # Layered oracle directories
//!
//! A [`LayeredExactOracle`]/[`LayeredApproxOracle`] persists as a
//! *directory* of generation-stamped files rather than a single blob:
//!
//! * `gen-N.arena` — the frozen base arena of generation `N` (`IPFE` or
//!   `IPFA`, unchanged formats);
//! * `gen-N.tail` / `gen-N.pending` — interaction logs (`"IPIL"`: 16-byte
//!   little-endian `(src, dst, time)` records) holding the window tail and
//!   the forward appends;
//! * `MANIFEST` — the `"IPMF"` commit record naming the live generation,
//!   the oracle kind, the base frontier, and the window.
//!
//! Every file is written to a `.tmp` sibling and atomically renamed into
//! place, and the `MANIFEST` is written **last**: a crash anywhere during a
//! save or compaction leaves the previous manifest pointing at the
//! previous generation's complete files, which remain loadable. Stale
//! generations are swept only after the manifest commit.

use crate::approx::ApproxIrs;
use crate::delta::{LayeredApproxOracle, LayeredExactOracle};
use crate::engine::ExactSummary;
use crate::exact::ExactIrs;
use crate::frozen::{FrozenApproxOracle, FrozenExactOracle};
use crate::oracle::{ApproxOracle, InfluenceOracle};
use infprop_hll::{validate_version, CodecError, HyperLogLog, VersionedHll, FORMAT_VERSION};
use infprop_temporal_graph::{Interaction, NodeId, Timestamp, Window};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const ORACLE_MAGIC: &[u8; 4] = b"IPAO";
const IRS_MAGIC: &[u8; 4] = b"IPAI";
const EXACT_MAGIC: &[u8; 4] = b"IPEI";
const FROZEN_EXACT_MAGIC: &[u8; 4] = b"IPFE";
const FROZEN_APPROX_MAGIC: &[u8; 4] = b"IPFA";
const MANIFEST_MAGIC: &[u8; 4] = b"IPMF";
const LOG_MAGIC: &[u8; 4] = b"IPIL";

/// File name of the layered-directory commit record.
pub const MANIFEST_FILE: &str = "MANIFEST";

fn read_array<const N: usize>(r: &mut impl Read) -> Result<[u8; N], CodecError> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

impl ApproxOracle {
    /// Writes the oracle (all per-node collapsed sketches) in `IPAO` format.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        let precision = self.precision_value();
        w.write_all(ORACLE_MAGIC)?;
        w.write_all(&[FORMAT_VERSION, precision])?;
        let n = u32::try_from(self.num_nodes_value())
            .map_err(|_| CodecError::Corrupt("too many nodes to encode"))?;
        w.write_all(&n.to_le_bytes())?;
        for u in 0..self.num_nodes_value() {
            w.write_all(
                self.sketch(infprop_temporal_graph::NodeId::from_index(u))
                    .registers(),
            )?;
        }
        Ok(())
    }

    /// Reads an oracle written by [`write_to`](Self::write_to).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let header: [u8; 4] = read_array(r)?;
        if &header != ORACLE_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version, precision] = read_array::<2>(r)?;
        validate_version(version)?;
        if !(4..=16).contains(&precision) {
            return Err(CodecError::Corrupt("precision out of range"));
        }
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let beta = 1usize << precision;
        let max_rho = 64 - precision + 1;
        let mut sketches = Vec::with_capacity(n);
        let mut registers = vec![0u8; beta];
        for _ in 0..n {
            r.read_exact(&mut registers)?;
            if registers.iter().any(|&b| b > max_rho) {
                return Err(CodecError::Corrupt("register exceeds maximal rho"));
            }
            sketches.push(HyperLogLog::from_registers(registers.clone()));
        }
        if n == 0 {
            return Ok(ApproxOracle::from_sketches(Vec::new()));
        }
        Ok(ApproxOracle::from_sketches(sketches))
    }
}

impl ApproxIrs {
    /// Writes the full sketch state (window, precision, per-node versioned
    /// HLLs) in `IPAI` format.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(IRS_MAGIC)?;
        w.write_all(&[FORMAT_VERSION, self.precision()])?;
        w.write_all(&self.window().get().to_le_bytes())?;
        let n = u32::try_from(self.num_nodes())
            .map_err(|_| CodecError::Corrupt("too many nodes to encode"))?;
        w.write_all(&n.to_le_bytes())?;
        for u in 0..self.num_nodes() {
            self.sketch(infprop_temporal_graph::NodeId::from_index(u))
                .write_to(w)?;
        }
        Ok(())
    }

    /// Reads sketch state written by [`write_to`](Self::write_to).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let header: [u8; 4] = read_array(r)?;
        if &header != IRS_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version, precision] = read_array::<2>(r)?;
        validate_version(version)?;
        let window = Window::try_new(i64::from_le_bytes(read_array(r)?))
            .map_err(|_| CodecError::Corrupt("window must be positive"))?;
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let mut sketches = Vec::with_capacity(n);
        for _ in 0..n {
            let sketch = VersionedHll::read_from(r)?;
            if sketch.precision() != precision {
                return Err(CodecError::Corrupt("mixed sketch precisions"));
            }
            sketches.push(sketch);
        }
        Ok(ApproxIrs::from_parts(window, precision, sketches))
    }
}

impl ExactIrs {
    /// Writes the exact summaries (window + per-node `(v, λ)` maps) in
    /// `IPEI` format. Entries are written in ascending `v` order so the
    /// output is byte-deterministic.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(EXACT_MAGIC)?;
        w.write_all(&[FORMAT_VERSION])?;
        w.write_all(&self.window().get().to_le_bytes())?;
        let n = u32::try_from(self.num_nodes())
            .map_err(|_| CodecError::Corrupt("too many nodes to encode"))?;
        w.write_all(&n.to_le_bytes())?;
        for u in 0..self.num_nodes() {
            let summary = self.summary(NodeId::from_index(u));
            let len = u32::try_from(summary.len())
                .map_err(|_| CodecError::Corrupt("summary too long to encode"))?;
            w.write_all(&len.to_le_bytes())?;
            // Dense summaries are already in ascending v order.
            for &(v, t) in summary {
                w.write_all(&v.0.to_le_bytes())?;
                w.write_all(&t.get().to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Reads summaries written by [`write_to`](Self::write_to).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let header: [u8; 4] = read_array(r)?;
        if &header != EXACT_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version] = read_array::<1>(r)?;
        validate_version(version)?;
        let window = Window::try_new(i64::from_le_bytes(read_array(r)?))
            .map_err(|_| CodecError::Corrupt("window must be positive"))?;
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let mut summaries = Vec::with_capacity(n);
        for _ in 0..n {
            let len = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
            if len > n {
                return Err(CodecError::Corrupt("summary larger than node universe"));
            }
            let mut summary: ExactSummary = Vec::with_capacity(len);
            for _ in 0..len {
                let v = NodeId(u32::from_le_bytes(read_array(r)?));
                if v.index() >= n {
                    return Err(CodecError::Corrupt("summary entry outside universe"));
                }
                let t = Timestamp(i64::from_le_bytes(read_array(r)?));
                match summary.last() {
                    Some(&(prev, _)) if prev == v => {
                        return Err(CodecError::Corrupt("duplicate summary entry"));
                    }
                    Some(&(prev, _)) if prev > v => {
                        return Err(CodecError::Corrupt("summary entries out of order"));
                    }
                    _ => {}
                }
                summary.push((v, t));
            }
            summaries.push(summary);
        }
        Ok(ExactIrs::from_parts(window, summaries))
    }
}

impl FrozenExactOracle {
    /// Writes the CSR arena verbatim in `IPFE` format: header, the whole
    /// offset array, then the whole flat entry array — two bulk writes, so
    /// the file layout mirrors the in-memory arena byte for byte.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(FROZEN_EXACT_MAGIC)?;
        w.write_all(&[FORMAT_VERSION])?;
        w.write_all(&self.window().get().to_le_bytes())?;
        let n = u32::try_from(self.num_nodes())
            .map_err(|_| CodecError::Corrupt("too many nodes to encode"))?;
        w.write_all(&n.to_le_bytes())?;
        let total = u64::try_from(self.total_entries())
            .map_err(|_| CodecError::Corrupt("too many entries to encode"))?;
        w.write_all(&total.to_le_bytes())?;
        let mut buf = Vec::with_capacity(self.offsets().len() * 4);
        for &o in self.offsets() {
            buf.extend_from_slice(&o.to_le_bytes());
        }
        w.write_all(&buf)?;
        buf.clear();
        buf.reserve(self.total_entries() * 12);
        for &(v, t) in self.entries() {
            buf.extend_from_slice(&v.0.to_le_bytes());
            buf.extend_from_slice(&t.get().to_le_bytes());
        }
        w.write_all(&buf)?;
        Ok(())
    }

    /// Reads an arena written by [`write_to`](Self::write_to). The load
    /// path is two bulk reads straight into the flat arrays — **no
    /// per-node allocation** — followed by the same invariant validation
    /// the live summaries get (monotone offsets framing the entry array,
    /// each node's slice sorted with no self-entry, every target inside
    /// the universe).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let header: [u8; 4] = read_array(r)?;
        if &header != FROZEN_EXACT_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version] = read_array::<1>(r)?;
        validate_version(version)?;
        let window = Window::try_new(i64::from_le_bytes(read_array(r)?))
            .map_err(|_| CodecError::Corrupt("window must be positive"))?;
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let total = u64::from_le_bytes(read_array(r)?);
        if total > u64::from(u32::MAX) {
            return Err(CodecError::Corrupt("entry count exceeds arena limit"));
        }
        let total = usize::try_from(total)
            .map_err(|_| CodecError::Corrupt("entry count exceeds arena limit"))?;
        let mut bytes = vec![0u8; (n + 1) * 4];
        r.read_exact(&mut bytes)?;
        let mut offsets = Vec::with_capacity(n + 1);
        for c in bytes.chunks_exact(4) {
            offsets.push(u32::from_le_bytes([c[0], c[1], c[2], c[3]]));
        }
        let last = offsets.last().map(|&e| e as usize); // xtask-allow: no-lossy-cast (u32 fits usize)
        if offsets.first() != Some(&0) || last != Some(total) {
            return Err(CodecError::Corrupt("offsets do not frame the entries"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(CodecError::Corrupt("offsets not monotone"));
        }
        let mut bytes = vec![0u8; total * 12];
        r.read_exact(&mut bytes)?;
        let mut entries = Vec::with_capacity(total);
        for c in bytes.chunks_exact(12) {
            let v = NodeId(u32::from_le_bytes([c[0], c[1], c[2], c[3]]));
            if v.index() >= n {
                return Err(CodecError::Corrupt("entry outside universe"));
            }
            let t = Timestamp(i64::from_le_bytes([
                c[4], c[5], c[6], c[7], c[8], c[9], c[10], c[11],
            ]));
            entries.push((v, t));
        }
        let arena = FrozenExactOracle::from_parts(window, offsets, entries);
        arena
            .validate()
            .map_err(|_| CodecError::Corrupt("frozen summary violates paper invariants"))?;
        Ok(arena)
    }
}

/// `IPFA` layout version. Version 1 stored only the node-major register
/// arena; version 2 (this build) appends the register-transposed
/// (tile-major) section the query kernels stream, so the on-disk artefact
/// captures the full query-ready layout and its integrity is checkable.
/// Version-1 files remain loadable (the transposed arena is a pure
/// function of the registers and is recomputed); versions beyond 2 are
/// rejected as [`CodecError::FutureVersion`]. Local to the `IPFA` format —
/// every other codec stays at the workspace-wide [`FORMAT_VERSION`].
const FROZEN_APPROX_LAYOUT_VERSION: u8 = 2;

impl FrozenApproxOracle {
    /// Writes both register layouts in `IPFA` layout-version-2 format:
    /// header, the `n · β`-byte node-major arena, then the equally-sized
    /// tile-major (register-transposed) arena — two bulk writes. Per-node
    /// estimates are *not* stored — they are a pure function of the
    /// registers and are recomputed on load, keeping the file unfakeable.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(FROZEN_APPROX_MAGIC)?;
        w.write_all(&[FROZEN_APPROX_LAYOUT_VERSION, self.precision()])?;
        let n = u32::try_from(self.num_nodes())
            .map_err(|_| CodecError::Corrupt("too many nodes to encode"))?;
        w.write_all(&n.to_le_bytes())?;
        w.write_all(self.registers())?;
        w.write_all(self.transposed())?;
        Ok(())
    }

    /// Reads an arena written by [`write_to`](Self::write_to) (layout
    /// version 2) or by the PR 5 writer (version 1, node-major only): bulk
    /// reads with no per-node allocation, a range check on every register,
    /// then one estimator pass to rebuild the per-node `individual`
    /// table — bit-identical to the values frozen from the live sketches.
    /// A version-2 transposed section must match the node-major registers
    /// byte for byte (it is rederived, never trusted); a truncated or
    /// mismatched section is rejected.
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let header: [u8; 4] = read_array(r)?;
        if &header != FROZEN_APPROX_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version, precision] = read_array::<2>(r)?;
        match version {
            1 | FROZEN_APPROX_LAYOUT_VERSION => {}
            v if v > FROZEN_APPROX_LAYOUT_VERSION => return Err(CodecError::FutureVersion(v)),
            v => return Err(CodecError::BadVersion(v)),
        }
        if !(4..=16).contains(&precision) {
            return Err(CodecError::Corrupt("precision out of range"));
        }
        let n = u32::from_le_bytes(read_array(r)?) as usize; // xtask-allow: no-lossy-cast (u32 → usize widens on ≥32-bit targets)
        let beta = 1usize << precision;
        let max_rho = 64 - precision + 1;
        let mut registers = vec![0u8; n * beta];
        r.read_exact(&mut registers)?;
        if registers.iter().any(|&b| b > max_rho) {
            return Err(CodecError::Corrupt("register exceeds maximal rho"));
        }
        if version == FROZEN_APPROX_LAYOUT_VERSION {
            let mut transposed = vec![0u8; n * beta];
            r.read_exact(&mut transposed)?;
            if transposed != crate::frozen::transpose_registers(precision, &registers) {
                return Err(CodecError::Corrupt(
                    "transposed section does not match the node-major registers",
                ));
            }
        }
        Ok(FrozenApproxOracle::from_registers_arena(
            precision, registers,
        ))
    }
}

/// Which layered oracle family a directory holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayeredKind {
    /// [`LayeredExactOracle`] over an `IPFE` base arena.
    Exact,
    /// [`LayeredApproxOracle`] over an `IPFA` base arena.
    Approx,
}

/// The `MANIFEST` commit record of a layered oracle directory (`"IPMF"`).
///
/// Naming the live generation here — and writing the manifest last — is
/// what makes saves and compactions crash-safe: until the manifest rename
/// lands, readers keep resolving the previous generation's files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayeredManifest {
    /// Which oracle family the directory holds.
    pub kind: LayeredKind,
    /// Newest timestamp frozen into the base arena (`None` for an empty
    /// base). Appends only touch the pending log, so this changes only at
    /// compaction.
    pub base_frontier: Option<Timestamp>,
    /// The live generation: `gen-N.{arena,tail,pending}` are the current
    /// files.
    pub generation: u64,
    /// The channel window `ω` (the `IPFA` arena does not carry it).
    pub window: Window,
}

impl LayeredManifest {
    /// Writes the commit record in `IPMF` format.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CodecError> {
        w.write_all(MANIFEST_MAGIC)?;
        let kind = match self.kind {
            LayeredKind::Exact => 0u8,
            LayeredKind::Approx => 1u8,
        };
        w.write_all(&[FORMAT_VERSION, kind, u8::from(self.base_frontier.is_some())])?;
        w.write_all(&self.base_frontier.map_or(0, |t| t.get()).to_le_bytes())?;
        w.write_all(&self.generation.to_le_bytes())?;
        w.write_all(&self.window.get().to_le_bytes())?;
        Ok(())
    }

    /// Reads a record written by [`write_to`](Self::write_to).
    pub fn read_from(r: &mut impl Read) -> Result<Self, CodecError> {
        let magic: [u8; 4] = read_array(r)?;
        if &magic != MANIFEST_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version, kind, has_frontier] = read_array::<3>(r)?;
        validate_version(version)?;
        let kind = match kind {
            0 => LayeredKind::Exact,
            1 => LayeredKind::Approx,
            _ => return Err(CodecError::Corrupt("unknown layered oracle kind")),
        };
        let frontier_raw = i64::from_le_bytes(read_array(r)?);
        let base_frontier = match has_frontier {
            0 => None,
            1 => Some(Timestamp(frontier_raw)),
            _ => return Err(CodecError::Corrupt("manifest frontier flag must be 0 or 1")),
        };
        let generation = u64::from_le_bytes(read_array(r)?);
        let window = Window::try_new(i64::from_le_bytes(read_array(r)?))
            .map_err(|_| CodecError::Corrupt("window must be positive"))?;
        Ok(LayeredManifest {
            kind,
            base_frontier,
            generation,
            window,
        })
    }

    /// Reads the `MANIFEST` of a layered directory — the cheap probe the
    /// CLI uses to detect the stored format before loading the arenas.
    pub fn read_from_dir(dir: &Path) -> Result<Self, CodecError> {
        Self::read_from(&mut fs::read(dir.join(MANIFEST_FILE))?.as_slice())
    }
}

/// Writes a time-sorted interaction log in `IPIL` format: header + count +
/// 16-byte `(src: u32, dst: u32, time: i64)` little-endian records.
fn write_interactions(w: &mut impl Write, ints: &[Interaction]) -> Result<(), CodecError> {
    w.write_all(LOG_MAGIC)?;
    w.write_all(&[FORMAT_VERSION])?;
    let n = u64::try_from(ints.len())
        .map_err(|_| CodecError::Corrupt("too many interactions to encode"))?;
    w.write_all(&n.to_le_bytes())?;
    let mut buf = Vec::with_capacity(ints.len() * 16);
    for i in ints {
        buf.extend_from_slice(&i.src.0.to_le_bytes());
        buf.extend_from_slice(&i.dst.0.to_le_bytes());
        buf.extend_from_slice(&i.time.get().to_le_bytes());
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads a log written by [`write_interactions`], validating the explicit
/// count (truncation detection) and ascending time order.
fn read_interactions(r: &mut impl Read) -> Result<Vec<Interaction>, CodecError> {
    let magic: [u8; 4] = read_array(r)?;
    if &magic != LOG_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let [version] = read_array::<1>(r)?;
    validate_version(version)?;
    let n = u64::from_le_bytes(read_array(r)?);
    let n = usize::try_from(n).map_err(|_| CodecError::Corrupt("log too large for this target"))?;
    let mut bytes = vec![0u8; n * 16];
    r.read_exact(&mut bytes)?;
    let mut ints = Vec::with_capacity(n);
    for c in bytes.chunks_exact(16) {
        let src = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let dst = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        let time = i64::from_le_bytes([c[8], c[9], c[10], c[11], c[12], c[13], c[14], c[15]]);
        let i = Interaction::from_raw(src, dst, time);
        if let Some(prev) = ints.last() {
            let prev: &Interaction = prev;
            if i.time < prev.time {
                return Err(CodecError::Corrupt("interaction log is not sorted by time"));
            }
        }
        ints.push(i);
    }
    Ok(ints)
}

/// Path of one generation-stamped file inside a layered directory.
fn gen_file(dir: &Path, generation: u64, suffix: &str) -> PathBuf {
    dir.join(format!("gen-{generation}.{suffix}"))
}

/// Writes `bytes` to `path` via a `.tmp` sibling and an atomic rename, so
/// readers only ever observe complete files.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CodecError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Best-effort removal of files from generations other than `keep` (and of
/// orphaned `.tmp` files): crash leftovers and the pre-compaction
/// generation, swept only *after* the manifest commit. Errors are ignored —
/// a stale file is wasted disk, never a correctness problem.
fn sweep_stale_generations(dir: &Path, keep: u64) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let keep_prefix = format!("gen-{keep}.");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        let stale_gen = name.starts_with("gen-") && !name.starts_with(&keep_prefix);
        let orphan_tmp = name.ends_with(".tmp");
        if (stale_gen || orphan_tmp) && name != MANIFEST_FILE {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// Validates that `tail ++ pending` is one ascending log across the file
/// boundary (each file is already internally sorted).
fn validate_log_boundary(tail: &[Interaction], pending: &[Interaction]) -> Result<(), CodecError> {
    if let (Some(last), Some(first)) = (tail.last(), pending.first()) {
        if first.time < last.time {
            return Err(CodecError::Corrupt(
                "pending log starts before the tail ends",
            ));
        }
    }
    Ok(())
}

impl LayeredExactOracle {
    /// Saves the full layered state into `dir` (created if missing):
    /// `gen-N.arena`, `gen-N.tail`, `gen-N.pending`, then the `MANIFEST`
    /// commit; previous generations are swept after the commit. Safe to
    /// call while [stale](Self::is_stale) — the logs carry the un-refreshed
    /// appends and [`open_layered`](Self::open_layered) rebuilds the
    /// overlay.
    pub fn save_layered(&self, dir: &Path) -> Result<(), CodecError> {
        fs::create_dir_all(dir)?;
        let g = self.generation();
        let mut bytes = Vec::new();
        self.base().write_to(&mut bytes)?;
        write_atomic(&gen_file(dir, g, "arena"), &bytes)?;
        bytes.clear();
        write_interactions(&mut bytes, self.delta().tail())?;
        write_atomic(&gen_file(dir, g, "tail"), &bytes)?;
        self.persist_pending(dir)?;
        let manifest = LayeredManifest {
            kind: LayeredKind::Exact,
            base_frontier: self.delta().base_frontier(),
            generation: g,
            window: self.window(),
        };
        bytes.clear();
        manifest.write_to(&mut bytes)?;
        write_atomic(&dir.join(MANIFEST_FILE), &bytes)?;
        sweep_stale_generations(dir, g);
        Ok(())
    }

    /// Rewrites only `gen-N.pending` — the cheap per-append persistence
    /// path. The arena, tail, and manifest are immutable between
    /// compactions, so buffered appends are durable after this one atomic
    /// file swap.
    pub fn persist_pending(&self, dir: &Path) -> Result<(), CodecError> {
        let mut bytes = Vec::new();
        write_interactions(&mut bytes, self.delta().pending())?;
        write_atomic(&gen_file(dir, self.generation(), "pending"), &bytes)
    }

    /// Opens a directory written by [`save_layered`](Self::save_layered),
    /// resolving the live generation through the `MANIFEST` and rebuilding
    /// the overlay from the persisted logs.
    pub fn open_layered(dir: &Path) -> Result<Self, CodecError> {
        let manifest = LayeredManifest::read_from_dir(dir)?;
        if manifest.kind != LayeredKind::Exact {
            return Err(CodecError::Corrupt(
                "directory holds an approx layered oracle",
            ));
        }
        let g = manifest.generation;
        let base =
            FrozenExactOracle::read_from(&mut fs::read(gen_file(dir, g, "arena"))?.as_slice())?;
        if base.window() != manifest.window {
            return Err(CodecError::Corrupt(
                "manifest window disagrees with the arena",
            ));
        }
        let tail = read_interactions(&mut fs::read(gen_file(dir, g, "tail"))?.as_slice())?;
        let pending = read_interactions(&mut fs::read(gen_file(dir, g, "pending"))?.as_slice())?;
        validate_log_boundary(&tail, &pending)?;
        Ok(Self::from_parts(
            base,
            manifest.base_frontier,
            tail,
            pending,
            g,
        ))
    }
}

impl LayeredApproxOracle {
    /// Saves the full layered state into `dir`; see
    /// [`LayeredExactOracle::save_layered`] — identical layout with an
    /// `IPFA` arena and `kind = Approx`.
    pub fn save_layered(&self, dir: &Path) -> Result<(), CodecError> {
        fs::create_dir_all(dir)?;
        let g = self.generation();
        let mut bytes = Vec::new();
        self.base().write_to(&mut bytes)?;
        write_atomic(&gen_file(dir, g, "arena"), &bytes)?;
        bytes.clear();
        write_interactions(&mut bytes, self.delta().tail())?;
        write_atomic(&gen_file(dir, g, "tail"), &bytes)?;
        self.persist_pending(dir)?;
        let manifest = LayeredManifest {
            kind: LayeredKind::Approx,
            base_frontier: self.delta().base_frontier(),
            generation: g,
            window: self.window(),
        };
        bytes.clear();
        manifest.write_to(&mut bytes)?;
        write_atomic(&dir.join(MANIFEST_FILE), &bytes)?;
        sweep_stale_generations(dir, g);
        Ok(())
    }

    /// Rewrites only `gen-N.pending`; see
    /// [`LayeredExactOracle::persist_pending`].
    pub fn persist_pending(&self, dir: &Path) -> Result<(), CodecError> {
        let mut bytes = Vec::new();
        write_interactions(&mut bytes, self.delta().pending())?;
        write_atomic(&gen_file(dir, self.generation(), "pending"), &bytes)
    }

    /// Opens a directory written by [`save_layered`](Self::save_layered).
    /// The window comes from the manifest (the register arena does not
    /// carry one).
    pub fn open_layered(dir: &Path) -> Result<Self, CodecError> {
        let manifest = LayeredManifest::read_from_dir(dir)?;
        if manifest.kind != LayeredKind::Approx {
            return Err(CodecError::Corrupt(
                "directory holds an exact layered oracle",
            ));
        }
        let g = manifest.generation;
        let base =
            FrozenApproxOracle::read_from(&mut fs::read(gen_file(dir, g, "arena"))?.as_slice())?;
        let tail = read_interactions(&mut fs::read(gen_file(dir, g, "tail"))?.as_slice())?;
        let pending = read_interactions(&mut fs::read(gen_file(dir, g, "pending"))?.as_slice())?;
        validate_log_boundary(&tail, &pending)?;
        Ok(Self::from_parts(
            base,
            manifest.window,
            manifest.base_frontier,
            tail,
            pending,
            g,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infprop_temporal_graph::{InteractionNetwork, NodeId};

    fn network() -> InteractionNetwork {
        InteractionNetwork::from_triples((0..500u32).map(|i| (i % 40, (i * 13 + 1) % 40, i as i64)))
    }

    #[test]
    fn oracle_roundtrip_preserves_queries() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(100), 7);
        let oracle = irs.oracle();
        let mut bytes = Vec::new();
        oracle.write_to(&mut bytes).unwrap();
        let back = ApproxOracle::read_from(&mut bytes.as_slice()).unwrap();
        use crate::oracle::InfluenceOracle;
        let seeds: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert_eq!(oracle.influence(&seeds), back.influence(&seeds));
        for u in net.node_ids() {
            assert_eq!(oracle.individual(u), back.individual(u));
        }
    }

    #[test]
    fn irs_roundtrip_preserves_everything() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(250), 6);
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        let back = ApproxIrs::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.window(), irs.window());
        assert_eq!(back.precision(), irs.precision());
        assert_eq!(back.num_nodes(), irs.num_nodes());
        for u in net.node_ids() {
            assert_eq!(back.sketch(u), irs.sketch(u));
        }
    }

    #[test]
    fn empty_oracle_roundtrips() {
        let oracle = ApproxOracle::from_sketches(Vec::new());
        let mut bytes = Vec::new();
        oracle.write_to(&mut bytes).unwrap();
        let back = ApproxOracle::read_from(&mut bytes.as_slice()).unwrap();
        use crate::oracle::InfluenceOracle;
        assert_eq!(back.num_nodes(), 0);
    }

    #[test]
    fn cross_format_magic_rejected() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(10), 5);
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        // Reading an IRS file as an oracle fails on magic.
        assert!(matches!(
            ApproxOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn exact_irs_roundtrip() {
        let net = network();
        let irs = ExactIrs::compute(&net, Window(300));
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        let back = ExactIrs::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.window(), irs.window());
        assert_eq!(back.num_nodes(), irs.num_nodes());
        for u in net.node_ids() {
            assert_eq!(back.irs_sorted(u), irs.irs_sorted(u));
            for v in net.node_ids() {
                assert_eq!(back.lambda(u, v), irs.lambda(u, v));
            }
        }
        // Byte-deterministic output.
        let mut again = Vec::new();
        irs.write_to(&mut again).unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn exact_irs_corrupt_entry_rejected() {
        let net = network();
        let irs = ExactIrs::compute(&net, Window(50));
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        // Clobber the node-count field to a smaller universe: summary
        // entries then point outside it.
        bytes[13] = 1;
        bytes[14] = 0;
        bytes[15] = 0;
        bytes[16] = 0;
        assert!(ExactIrs::read_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn frozen_exact_roundtrip_preserves_queries() {
        let net = network();
        let irs = ExactIrs::compute(&net, Window(300));
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        let back = FrozenExactOracle::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, frozen);
        let seeds: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert_eq!(
            frozen.influence(&seeds).to_bits(),
            back.influence(&seeds).to_bits()
        );
        for u in net.node_ids() {
            assert_eq!(frozen.individual(u).to_bits(), back.individual(u).to_bits());
        }
        // Byte-deterministic output.
        let mut again = Vec::new();
        frozen.write_to(&mut again).unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn frozen_approx_roundtrip_preserves_queries() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(100), 7);
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        let back = FrozenApproxOracle::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, frozen);
        let seeds: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert_eq!(
            frozen.influence(&seeds).to_bits(),
            back.influence(&seeds).to_bits()
        );
        for u in net.node_ids() {
            assert_eq!(frozen.individual(u).to_bits(), back.individual(u).to_bits());
        }
    }

    #[test]
    fn frozen_approx_v1_file_still_loads() {
        let irs = ApproxIrs::compute_with_precision(&network(), Window(100), 7);
        let frozen = irs.freeze();
        // A layout-version-1 file: header with version byte 1, node-major
        // registers, no transposed section — exactly what PR 5 wrote.
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"IPFA");
        v1.extend_from_slice(&[1, frozen.precision()]);
        v1.extend_from_slice(&u32::try_from(frozen.num_nodes()).unwrap().to_le_bytes());
        v1.extend_from_slice(frozen.registers());
        let back = FrozenApproxOracle::read_from(&mut v1.as_slice()).unwrap();
        assert_eq!(back, frozen); // transposed arena recomputed on load
    }

    #[test]
    fn frozen_approx_truncated_transposed_rejected() {
        let irs = ApproxIrs::compute_with_precision(&network(), Window(100), 7);
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        // Chop half of the trailing transposed section: the v2 header
        // promises a full second arena, so the load must fail, not fall
        // back to recomputing.
        bytes.truncate(bytes.len() - frozen.transposed().len() / 2);
        assert!(FrozenApproxOracle::read_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn frozen_approx_mismatched_transposed_rejected() {
        let irs = ApproxIrs::compute_with_precision(&network(), Window(100), 7);
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        // Flip a byte inside the transposed section only (keep it within
        // the valid register range so the mismatch check must catch it).
        let t0 = bytes.len() - frozen.transposed().len();
        bytes[t0] = if bytes[t0] == 1 { 2 } else { 1 };
        assert!(matches!(
            FrozenApproxOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn frozen_approx_future_layout_version_rejected() {
        let irs = ApproxIrs::compute_with_precision(&network(), Window(100), 7);
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        bytes[4] = 3; // one past FROZEN_APPROX_LAYOUT_VERSION
        assert!(matches!(
            FrozenApproxOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::FutureVersion(3))
        ));
        bytes[4] = 0; // below the oldest layout ever written
        assert!(matches!(
            FrozenApproxOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::BadVersion(0))
        ));
    }

    #[test]
    fn frozen_future_version_rejected() {
        let frozen = ExactIrs::compute(&network(), Window(50)).freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        bytes[4] = 99; // the version byte follows the 4-byte magic
                       // Newer-than-this-build is FutureVersion ("upgrade the binary"),
                       // not corruption.
        assert!(matches!(
            FrozenExactOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::FutureVersion(99))
        ));
    }

    #[test]
    fn frozen_unknown_old_version_rejected() {
        let frozen = ExactIrs::compute(&network(), Window(50)).freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        bytes[4] = 0; // below the oldest version this build ever wrote
        assert!(matches!(
            FrozenExactOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::BadVersion(0))
        ));
    }

    #[test]
    fn frozen_cross_format_magic_rejected() {
        let frozen = ExactIrs::compute(&network(), Window(50)).freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        assert!(matches!(
            FrozenApproxOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn frozen_exact_corrupt_offsets_rejected() {
        let frozen = ExactIrs::compute(&network(), Window(50)).freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        // Offsets start after magic(4) + version(1) + window(8) + n(4) +
        // total(8) = byte 25; offsets[0] must be zero.
        bytes[25] = 1;
        assert!(matches!(
            FrozenExactOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn frozen_approx_corrupt_register_rejected() {
        let irs = ApproxIrs::compute_with_precision(&network(), Window(100), 7);
        let frozen = irs.freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        // Registers start after magic(4) + version/precision(2) + n(4) =
        // byte 10; max ρ for k = 7 is 58.
        bytes[10] = 63;
        assert!(matches!(
            FrozenApproxOracle::read_from(&mut bytes.as_slice()),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_frozen_rejected() {
        let frozen = ExactIrs::compute(&network(), Window(50)).freeze();
        let mut bytes = Vec::new();
        frozen.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(FrozenExactOracle::read_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn truncated_irs_rejected() {
        let net = network();
        let irs = ApproxIrs::compute_with_precision(&net, Window(10), 5);
        let mut bytes = Vec::new();
        irs.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(ApproxIrs::read_from(&mut bytes.as_slice()).is_err());
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("infprop-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn layered_exact_dir_roundtrip_preserves_queries() {
        let net = network();
        let mut oracle = LayeredExactOracle::from_network(&net, Window(120));
        let t = oracle.frontier().unwrap().get();
        oracle.append(Interaction::from_raw(1, 2, t + 5)).unwrap();
        let dir = tempdir("exact-roundtrip");
        // Saved while stale: the pending log carries the append.
        oracle.save_layered(&dir).unwrap();
        let back = LayeredExactOracle::open_layered(&dir).unwrap();
        assert_eq!(back.generation(), oracle.generation());
        assert_eq!(back.delta().pending(), oracle.delta().pending());
        assert_eq!(back.delta().tail(), oracle.delta().tail());
        assert_eq!(back.delta().base_frontier(), oracle.delta().base_frontier());
        oracle.refresh();
        for u in net.node_ids() {
            assert_eq!(back.summary(u), oracle.summary(u));
        }
        let seeds: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert_eq!(
            back.influence(&seeds).to_bits(),
            oracle.influence(&seeds).to_bits()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn layered_approx_dir_roundtrip_preserves_registers() {
        let net = network();
        let mut oracle = LayeredApproxOracle::from_network_with_precision(&net, Window(120), 6);
        let t = oracle.frontier().unwrap().get();
        oracle.append(Interaction::from_raw(3, 4, t + 1)).unwrap();
        oracle.refresh();
        let dir = tempdir("approx-roundtrip");
        oracle.save_layered(&dir).unwrap();
        let back = LayeredApproxOracle::open_layered(&dir).unwrap();
        assert_eq!(back.generation(), oracle.generation());
        assert_eq!(back.window(), oracle.window());
        assert_eq!(back.base().registers(), oracle.base().registers());
        assert_eq!(back.overlay().registers(), oracle.overlay().registers());
        for u in net.node_ids() {
            assert_eq!(back.individual(u).to_bits(), oracle.individual(u).to_bits());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn layered_manifest_roundtrip_and_kind_mismatch() {
        let manifest = LayeredManifest {
            kind: LayeredKind::Approx,
            base_frontier: Some(Timestamp(-7)),
            generation: 3,
            window: Window(42),
        };
        let mut bytes = Vec::new();
        manifest.write_to(&mut bytes).unwrap();
        assert_eq!(
            LayeredManifest::read_from(&mut bytes.as_slice()).unwrap(),
            manifest
        );

        let net = network();
        let oracle = LayeredExactOracle::from_network(&net, Window(60));
        let dir = tempdir("kind-mismatch");
        oracle.save_layered(&dir).unwrap();
        assert_eq!(
            LayeredManifest::read_from_dir(&dir).unwrap().kind,
            LayeredKind::Exact
        );
        assert!(matches!(
            LayeredApproxOracle::open_layered(&dir),
            Err(CodecError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_pending_is_durable_without_full_save() {
        let net = network();
        let mut oracle = LayeredExactOracle::from_network(&net, Window(90));
        let dir = tempdir("pending-only");
        oracle.save_layered(&dir).unwrap();
        let t = oracle.frontier().unwrap().get();
        oracle.append(Interaction::from_raw(5, 6, t + 2)).unwrap();
        oracle.persist_pending(&dir).unwrap();
        let back = LayeredExactOracle::open_layered(&dir).unwrap();
        assert_eq!(back.delta().pending(), oracle.delta().pending());
        assert!(!back.is_stale());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_compaction_leaves_previous_generation_loadable() {
        let net = network();
        let mut oracle = LayeredExactOracle::from_network(&net, Window(90));
        let t = oracle.frontier().unwrap().get();
        oracle.append(Interaction::from_raw(7, 8, t + 3)).unwrap();
        oracle.refresh();
        let dir = tempdir("crash-safety");
        oracle.save_layered(&dir).unwrap();

        // Simulate a compaction that crashed after writing the next
        // generation's arena but before the manifest commit: a partial
        // (truncated) gen-1 arena plus an orphaned tmp file.
        let mut compacted = oracle.clone();
        compacted.compact();
        let mut arena = Vec::new();
        compacted.base().write_to(&mut arena).unwrap();
        arena.truncate(arena.len() / 2);
        fs::write(gen_file(&dir, 1, "arena"), &arena).unwrap();
        fs::write(dir.join("gen-1.tail.tmp"), b"junk").unwrap();

        // The manifest still names generation 0, whose files are intact.
        let back = LayeredExactOracle::open_layered(&dir).unwrap();
        assert_eq!(back.generation(), 0);
        let seeds: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert_eq!(
            back.influence(&seeds).to_bits(),
            oracle.influence(&seeds).to_bits()
        );

        // Completing the compaction commits generation 1 and sweeps the
        // stale generation-0 files and tmp leftovers.
        compacted.save_layered(&dir).unwrap();
        let back = LayeredExactOracle::open_layered(&dir).unwrap();
        assert_eq!(back.generation(), 1);
        assert!(!gen_file(&dir, 0, "arena").exists());
        assert!(!dir.join("gen-1.tail.tmp").exists());
        assert_eq!(
            back.influence(&seeds).to_bits(),
            compacted.influence(&seeds).to_bits()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interaction_log_truncation_and_future_version_rejected() {
        let ints: Vec<Interaction> = (0..10)
            .map(|i| Interaction::from_raw(i, i + 1, i64::from(i)))
            .collect();
        let mut bytes = Vec::new();
        write_interactions(&mut bytes, &ints).unwrap();
        assert_eq!(read_interactions(&mut bytes.as_slice()).unwrap(), ints);
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 8);
        assert!(read_interactions(&mut truncated.as_slice()).is_err());
        let mut future = bytes.clone();
        future[4] = 99; // version byte
        assert!(matches!(
            read_interactions(&mut future.as_slice()),
            Err(CodecError::FutureVersion(99))
        ));
        // Unsorted logs are corruption, not silently accepted.
        let mut unsorted = ints.clone();
        unsorted.swap(0, 9);
        let mut bytes = Vec::new();
        write_interactions(&mut bytes, &unsorted).unwrap();
        assert!(matches!(
            read_interactions(&mut bytes.as_slice()),
            Err(CodecError::Corrupt(_))
        ));
    }
}
